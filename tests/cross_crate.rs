//! Cross-crate consistency tests: the quantized execution paths must agree
//! with their references, and the performance models must be consistent
//! with the kernels' byte accounting.

use atom::calibrate::ReorderPlan;
use atom::qlinear::{AtomLinearConfig, OutlierMode, QuantizedLinear};
use atom_kernels::attention::{attention_quant_kv, attention_reference, QuantizedKvHead};
use atom_kernels::gemm::{fused_group_gemm, reference_gemm};
use atom_kernels::{GroupQuantized, QuantSpec};
use atom_nn::{DenseLinear, LinearLayer};
use atom_tensor::{Matrix, SeededRng};

#[test]
fn quantized_linear_agrees_with_manual_kernel_composition() {
    // QuantizedLinear (reorder + dynamic quant + mixed GEMM) must equal the
    // hand-assembled pipeline built from the kernel crate directly.
    let mut rng = SeededRng::new(1);
    let (n, k, outliers) = (12usize, 48usize, 4usize);
    let w = rng.normal_matrix(n, k, 0.0, 0.5);
    let mut x = rng.normal_matrix(6, k, 0.0, 1.0);
    for r in 0..x.rows() {
        x[(r, 3)] *= 40.0;
        x[(r, 30)] *= 35.0;
    }
    let plan = ReorderPlan::from_outlier_set(k, &[3, 30, 9, 21]);
    let cfg = AtomLinearConfig {
        weight: QuantSpec::new(4, 16).with_clip(1.0),
        act: QuantSpec::new(4, 16).with_clip(1.0),
        n_outliers: outliers,
        outlier_mode: OutlierMode::Int8,
        use_gptq: false,
    };
    let layer = QuantizedLinear::quantize(&DenseLinear::new(w.clone()), plan.clone(), None, &cfg);
    let got = layer.forward(&x);

    // Manual composition.
    let k_norm = k - outliers;
    let wr = plan.reorder_weight(&w);
    let xr = plan.reorder_activation(&x);
    let qw_n = GroupQuantized::quantize(&wr.slice_cols(0, k_norm), QuantSpec::new(4, 16));
    let qw_o = GroupQuantized::quantize(&wr.slice_cols(k_norm, k), QuantSpec::new(8, 16));
    let qa_n = GroupQuantized::quantize(&xr.slice_cols(0, k_norm), QuantSpec::new(4, 16));
    let qa_o = GroupQuantized::quantize(&xr.slice_cols(k_norm, k), QuantSpec::new(8, 16));
    let manual = atom_kernels::gemm::mixed_gemm(&qa_n, &qw_n, Some((&qa_o, &qw_o))).unwrap();

    for (a, b) in got.as_slice().iter().zip(manual.as_slice()) {
        assert!((a - b).abs() < 1e-4, "{a} vs {b}");
    }
}

#[test]
fn fused_gemm_matches_dequantized_reference_across_shapes() {
    let mut rng = SeededRng::new(2);
    for (m, n, k, g) in [(1usize, 8usize, 32usize, 8usize), (5, 12, 48, 16), (3, 7, 20, 6)] {
        let a = rng.normal_matrix(m, k, 0.0, 1.0);
        let w = rng.normal_matrix(n, k, 0.0, 1.0);
        let qa = GroupQuantized::quantize(&a, QuantSpec::new(4, g));
        let qw = GroupQuantized::quantize(&w, QuantSpec::new(4, g));
        let fused = fused_group_gemm(&qa, &qw).unwrap();
        let reference = reference_gemm(&qa, &qw);
        for (x, y) in fused.as_slice().iter().zip(reference.as_slice()) {
            assert!((x - y).abs() < 1e-3, "shape ({m},{n},{k},{g}): {x} vs {y}");
        }
    }
}

#[test]
fn quantized_kv_cache_matches_head_kernel() {
    // The model-facing QuantizedKvCache and the kernel-level attention must
    // be built from the same containers: materialized K/V equal per-head
    // dequantization.
    use atom::QuantizedKvCache;
    use atom_nn::KvStore;

    let mut rng = SeededRng::new(3);
    let (kv_dim, head_dim) = (16usize, 8usize);
    let k = rng.normal_matrix(10, kv_dim, 0.0, 1.0);
    let v = rng.normal_matrix(10, kv_dim, 0.0, 1.0);
    let mut cache = QuantizedKvCache::new(1, kv_dim, head_dim, 8);
    cache.append(0, &k, &v);

    for h in 0..2 {
        let mut head = QuantizedKvHead::new(head_dim, 8);
        head.append(
            &k.slice_cols(h * head_dim, (h + 1) * head_dim),
            &v.slice_cols(h * head_dim, (h + 1) * head_dim),
        );
        let from_cache = cache.keys(0).slice_cols(h * head_dim, (h + 1) * head_dim);
        let mut buf = vec![0.0f32; head_dim];
        for t in 0..10 {
            head.keys.dequantize_row_into(t, &mut buf);
            assert_eq!(from_cache.row(t), &buf[..], "head {h} token {t}");
        }
    }
}

#[test]
fn quant_kv_attention_error_scales_with_bits() {
    let mut rng = SeededRng::new(4);
    let hd = 16;
    let k = rng.normal_matrix(40, hd, 0.0, 1.0);
    let v = rng.normal_matrix(40, hd, 0.0, 1.0);
    let q = rng.normal_matrix(3, hd, 0.0, 1.0);
    let scale = 1.0 / (hd as f32).sqrt();
    let reference = attention_reference(&q, &k, &v, scale);
    let mut last_err = 0.0f32;
    for bits in [8u8, 6, 4, 3, 2] {
        let mut kv = QuantizedKvHead::new(hd, bits);
        kv.append(&k, &v);
        let out = attention_quant_kv(&q, &kv, scale);
        let err = out.sub(&reference).frob_norm() / reference.frob_norm();
        assert!(
            err >= last_err * 0.5,
            "error should broadly grow as bits shrink: int{bits} err {err} vs prev {last_err}"
        );
        last_err = err;
    }
    assert!(last_err > 0.05, "2-bit KV should visibly distort");
}

#[test]
fn memory_model_consistent_with_container_bytes() {
    // gpu-sim's KV byte accounting must match what the kernel containers
    // actually store (up to per-row scale/min overhead).
    use atom_gpu_sim::{LlamaGpuConfig, MemoryModel, SimScheme};

    let config = LlamaGpuConfig {
        dim: 64,
        layers: 2,
        heads: 4,
        ffn_dim: 128,
        vocab: 96,
    };
    let model = MemoryModel::new(config, SimScheme::AtomW4A4, 1 << 30);
    let per_token_model = model.kv_bytes_per_token();

    // Build the real thing: 2 layers x 4 heads of head_dim 16 at INT4.
    let tokens = 128;
    let mut cache = atom::QuantizedKvCache::new(2, 64, 16, 4);
    let k = Matrix::zeros(tokens, 64);
    for layer in 0..2 {
        use atom_nn::KvStore;
        cache.append(layer, &k, &k);
    }
    let per_token_real = cache.packed_bytes() as f64 / tokens as f64;
    // The container adds f16 scale+min per (token, head): 2 layers x 2 (K
    // and V) x 4 heads x 4 bytes = 64 bytes/token of overhead.
    let overhead = per_token_real - per_token_model;
    assert!(
        (0.0..=80.0).contains(&overhead),
        "model {per_token_model} vs real {per_token_real}"
    );
}

#[test]
fn workload_trace_feeds_scheduler_and_simulator_consistently() {
    use atom_data::WorkloadSpec;
    use atom_gpu_sim::{HardwareProfile, LlamaGpuConfig, SimScheme};
    use atom_serve::ServingSimulator;

    let trace = WorkloadSpec::default().generate(24, 5);
    let sim = ServingSimulator::with_device_memory(
        LlamaGpuConfig::llama7b(),
        HardwareProfile::rtx4090(),
        SimScheme::AtomW4A4,
        8,
    );
    let report = sim.run(&trace).expect("non-empty trace");
    assert_eq!(report.finished, trace.len());
    // Total decode tokens must equal the trace's decode budget.
    let decode_total: usize = trace.iter().map(|r| r.decode_tokens).sum();
    let implied = report.throughput_tps * report.busy_s;
    assert!(
        (implied - decode_total as f64).abs() < 1.0,
        "throughput accounting drifted: {implied} vs {decode_total}"
    );
}
