//! End-to-end integration tests spanning the whole stack:
//! data -> training -> outlier injection -> calibration -> quantization ->
//! evaluation -> serving.

use atom::pipeline::{AtomScheme, Scheme};
use atom::{Calibration, QuantizedKvCache};
use atom_data::{Corpus, CorpusStyle, TaskSuite, Tokenizer};
use atom_nn::train::{train, TrainSpec};
use atom_nn::transform::{inject_outliers, OutlierSpec};
use atom_nn::{eval, DenseLinear, LlamaModel, ModelConfig};
use atom_serve::engine::CpuEngine;
use std::sync::OnceLock;

/// A micro model trained on real corpus text, with injected outliers —
/// shared across the tests in this file (training takes a couple of
/// seconds in debug mode).
fn trained_micro() -> &'static (LlamaModel<DenseLinear>, Vec<u16>) {
    static MODEL: OnceLock<(LlamaModel<DenseLinear>, Vec<u16>)> = OnceLock::new();
    MODEL.get_or_init(|| {
        let corpus = Corpus::generate(CorpusStyle::Wiki, 30_000, 99);
        let tok = Tokenizer::new();
        let (train_text, valid_text) = corpus.split(0.9);
        let train_tokens = tok.encode(train_text);
        let valid_tokens = tok.encode(valid_text);
        let config = ModelConfig {
            dim: 32,
            layers: 2,
            heads: 4,
            kv_heads: 4,
            ffn_dim: 64,
            max_seq_len: 128,
            ..ModelConfig::default()
        };
        let spec = TrainSpec {
            steps: 60,
            batch: 2,
            seq_len: 48,
            lr: 4e-3,
            warmup: 8,
            ..TrainSpec::default()
        };
        let (mut model, metrics) = train(config, &train_tokens, spec);
        assert!(
            metrics.tail_loss(10) < metrics.losses[0],
            "micro model failed to learn"
        );
        inject_outliers(
            &mut model,
            &OutlierSpec {
                channels_per_site: 3,
                magnitude: 35.0,
                value_magnitude: 4.0,
                spread: 0.3,
                seed: 5,
            },
        );
        (model, valid_tokens)
    })
}

fn calibration() -> Calibration {
    let (model, _) = trained_micro();
    let corpus = Corpus::generate(CorpusStyle::Wiki, 30_000, 99);
    let tok = Tokenizer::new();
    let seqs: Vec<Vec<u16>> = corpus
        .calibration_sentences(32, 1)
        .iter()
        .map(|s| tok.encode(s))
        .collect();
    Calibration::collect(model, &seqs, true, 1)
}

#[test]
fn atom_w4a4_tracks_fp32_while_rtn_collapses() {
    let (model, valid) = trained_micro();
    let calib = calibration();
    let valid = &valid[..valid.len().min(800)];

    let fp = eval::perplexity(model, valid, 64);
    let atom = Scheme::Atom(AtomScheme::w4a4())
        .quantize(model, &calib)
        .perplexity(valid, 64);
    let rtn = Scheme::Rtn { w_bits: 4, a_bits: 4 }
        .quantize(model, &calib)
        .perplexity(valid, 64);

    assert!(fp > 1.0 && fp < 40.0, "fp ppl {fp}");
    assert!(atom < fp * 2.0, "Atom drifted: {atom} vs fp {fp}");
    assert!(rtn > atom * 2.0, "RTN should collapse: rtn {rtn} vs atom {atom}");
}

#[test]
fn zero_shot_pipeline_runs_above_chance_for_fp() {
    let (model, _) = trained_micro();
    let suite = TaskSuite::generate(20, 3);
    let tok = Tokenizer::new();
    // BoolQA is 2-way; a trained model should beat coin flipping at least
    // slightly; mostly this asserts the scoring machinery works end to end.
    let (accs, avg) = eval::zero_shot_row(model, &suite, &tok);
    assert_eq!(accs.len(), 6);
    assert!((0.0..=1.0).contains(&avg));
}

#[test]
fn quantized_model_serves_real_requests() {
    let (model, _) = trained_micro();
    let calib = calibration();
    let quantized = Scheme::Atom(AtomScheme::w4a4()).quantize(model, &calib);
    let config = *quantized.model.config();

    let mut engine = CpuEngine::new(
        quantized.model,
        Box::new(move || {
            Box::new(QuantizedKvCache::new(
                config.layers,
                config.kv_dim(),
                config.head_dim(),
                4,
            ))
        }),
        2,
        2048,
    )
    .expect("valid engine config");
    let tok = Tokenizer::new();
    engine.submit(tok.encode("the robin "), 8).unwrap();
    engine.submit(tok.encode("the mill "), 8).unwrap();
    engine.submit(tok.encode("is the wolf a "), 6).unwrap();
    let done = engine.run_to_completion();
    assert_eq!(done.len(), 3);
    for c in done {
        assert!(!c.tokens.is_empty());
        assert!(c.tokens.iter().all(|&t| (t as usize) < 96));
    }
}

#[test]
fn ablation_ladder_monotone_shape_on_trained_model() {
    let (model, valid) = trained_micro();
    let calib = calibration();
    let valid = &valid[..valid.len().min(600)];
    let ppls: Vec<f64> = atom::ablation_stages()
        .iter()
        .map(|s| s.scheme.quantize(model, &calib).perplexity(valid, 60))
        .collect();
    // Headline shape: outlier handling rescues RTN; the final full recipe
    // is far below the RTN start.
    assert!(ppls[1] < ppls[0] / 2.0, "{ppls:?}");
    assert!(*ppls.last().unwrap() < ppls[0] / 2.0, "{ppls:?}");
    // INT8 outliers cost little over FP16 outliers.
    assert!(ppls[2] < ppls[1] * 1.5, "{ppls:?}");
}

#[test]
fn kv_cache_bits_sweep_degrades_gracefully() {
    let (model, valid) = trained_micro();
    let config = *model.config();
    let valid = &valid[..valid.len().min(600)];
    let fp = eval::perplexity(model, valid, 60);
    let with_bits = |bits| {
        eval::perplexity_with_cache(model, valid, 60, &mut || {
            Box::new(QuantizedKvCache::new(
                config.layers,
                config.kv_dim(),
                config.head_dim(),
                bits,
            ))
        })
    };
    let p8 = with_bits(8);
    let p4 = with_bits(4);
    let p2 = with_bits(2);
    assert!((p8 - fp).abs() < fp * 0.05, "INT8 KV ~free: {p8} vs {fp}");
    assert!(p4 < fp * 1.6, "INT4 KV small cost: {p4} vs {fp}");
    assert!(p2 > p4, "INT2 should hurt more than INT4: {p2} vs {p4}");
}
