//! The interprocedural value-range analysis backing the
//! `accumulator-width` and `unchecked-arith` rules.
//!
//! Three layers, all zero-dependency and token-based:
//!
//! * [`interval`] — the abstract domain: closed `i128` intervals, with
//!   every transfer function falling to top (`None`) rather than guessing.
//! * [`expr`] — a tolerant expression/statement parser over the lexer's
//!   token stream, evaluation into the domain, and the `// bound:`
//!   proof-comment grammar.
//! * [`callgraph`] — per-crate name-based call edges, used to attribute
//!   findings to the public entry points that reach them.
//!
//! [`WorkspaceAnalysis`] is built in a pre-pass over every source file
//! (constants resolved to a fixpoint, call graphs per crate), then handed
//! to each rule invocation. Constants declared with the same name but
//! different values in different files are *ambiguous* and deliberately
//! resolve to nothing: a proof that depends on which file you meant is not
//! a proof.

pub mod callgraph;
pub mod expr;
pub mod interval;

use crate::lexer::{const_defs, fn_spans, lex, FnSpan, Lexed};
use crate::FileCtx;
use callgraph::CallGraph;
use expr::{
    classify_ty, eval, parse_expr_range, pattern_leaves, seed_scalar, Binding, EvalEnv, Expr,
    ExprKind, Stmt, StmtKind, TyAnn, Value,
};
use interval::{IntTy, Interval};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose production code is on the serving hot path and therefore
/// subject to the arithmetic rules (`accumulator-width`, `unchecked-arith`).
pub const HOT_CRATES: &[&str] = &["atom-kernels", "atom", "atom-nn", "atom-tensor"];

/// Workspace-wide facts shared by every rule invocation.
#[derive(Debug, Default)]
pub struct WorkspaceAnalysis {
    /// Constant name → exact value. Names declared with conflicting
    /// values across files are excluded (see [`WorkspaceAnalysis::ambiguous`]).
    pub consts: BTreeMap<String, i128>,
    /// Constant names with conflicting definitions, reported as such when
    /// a proof comment references them.
    pub ambiguous: BTreeSet<String>,
    /// crate name → call graph.
    pub graphs: BTreeMap<String, CallGraph>,
    /// The workspace quantizer-width range `[MIN_BITS, MAX_BITS]`, seeded
    /// into otherwise-unbound `bits` identifiers/fields. Present only when
    /// both constants resolve.
    pub bits_seed: Option<Interval>,
}

impl WorkspaceAnalysis {
    /// Builds the analysis from `(context, source)` pairs — the same set
    /// of files the lint pass will visit.
    pub fn build(files: &[(FileCtx, String)]) -> WorkspaceAnalysis {
        let lexed: Vec<(usize, Lexed)> =
            files.iter().enumerate().map(|(i, (_, src))| (i, lex(src))).collect();

        // Constants: collect raw (name, expr-span) per file, then resolve
        // to a fixpoint so constants defined in terms of each other
        // (`MAX_ACC_K = ... >> (2 * (MAX_BITS - 1))`) land.
        let mut raw: Vec<(String, usize, (usize, usize))> = Vec::new(); // (name, file_idx, span)
        for (fi, lx) in &lexed {
            for def in const_defs(lx) {
                raw.push((def.name, *fi, def.expr));
            }
        }
        let mut consts: BTreeMap<String, i128> = BTreeMap::new();
        let mut ambiguous: BTreeSet<String> = BTreeSet::new();
        for _round in 0..4 {
            let mut changed = false;
            for (name, fi, span) in &raw {
                if ambiguous.contains(name) {
                    continue;
                }
                let lx = &lexed[*fi].1;
                let Some(e) = parse_expr_range(&lx.tokens, span.0, span.1) else { continue };
                let env = EvalEnv { consts: Some(&consts), ..EvalEnv::default() };
                let Some(v) = eval(&e, &env).iv.and_then(|iv| iv.exact()) else { continue };
                match consts.get(name) {
                    Some(&old) if old == v => {}
                    Some(_) => {
                        ambiguous.insert(name.clone());
                        consts.remove(name);
                        changed = true;
                    }
                    None => {
                        consts.insert(name.clone(), v);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Call graphs: first every crate's defined fn names, then edges.
        let mut defined: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
        for ((ctx, _), (_, lx)) in files.iter().zip(&lexed) {
            let set = defined.entry(ctx.crate_name.as_str()).or_default();
            for span in fn_spans(lx) {
                set.insert(span.name);
            }
        }
        let mut graphs: BTreeMap<String, CallGraph> = BTreeMap::new();
        for ((ctx, _), (_, lx)) in files.iter().zip(&lexed) {
            let Some(names) = defined.get(ctx.crate_name.as_str()) else { continue };
            graphs
                .entry(ctx.crate_name.clone())
                .or_default()
                .add_file(lx, names);
        }

        let bits_seed = match (consts.get("MIN_BITS"), consts.get("MAX_BITS")) {
            (Some(&lo), Some(&hi)) if 0 < lo && lo <= hi && hi <= 64 => {
                Some(Interval::new(lo, hi))
            }
            _ => None,
        };

        WorkspaceAnalysis { consts, ambiguous, graphs, bits_seed }
    }

    /// The evaluation environment for a function body in `crate_name`,
    /// with `locals` built by [`fn_env`].
    pub fn env<'a>(&'a self, locals: &'a BTreeMap<String, Binding>) -> EvalEnv<'a> {
        EvalEnv {
            locals: Some(locals),
            consts: Some(&self.consts),
            bits_seed: self.bits_seed,
        }
    }

    /// "reached from `a`, `b`" attribution suffix for a function, or an
    /// empty string for entry points nothing calls.
    pub fn reached_from(&self, crate_name: &str, fn_name: &str) -> String {
        let Some(g) = self.graphs.get(crate_name) else { return String::new() };
        let callers = g.reached_from(fn_name, 3);
        if callers.is_empty() {
            return String::new();
        }
        format!(
            " (reached from {})",
            callers.iter().map(|c| format!("`{c}`")).collect::<Vec<_>>().join(", ")
        )
    }
}

/// Element type of a slice-valued expression (`&xs[a..b]`, `m.unpack()`,
/// a `Vec<i8>` binding...).
fn value_elem(e: &Expr, locals: &BTreeMap<String, Binding>) -> Option<IntTy> {
    match &e.kind {
        ExprKind::Path(segs) if segs.len() == 1 => match locals.get(&segs[0]) {
            Some(Binding::Slice(t)) => Some(*t),
            _ => None,
        },
        ExprKind::Index(recv, idx) => {
            // Only range indexing yields a slice.
            matches!(idx.kind, ExprKind::Bin(expr::BinOp::Range, ..) | ExprKind::Unknown)
                .then(|| value_elem(recv, locals))
                .flatten()
        }
        ExprKind::Method { recv, name, .. } => match name.as_str() {
            "to_vec" | "clone" | "as_slice" | "as_ref" | "as_mut_slice" | "get" | "get_mut" => {
                value_elem(recv, locals)
            }
            // Workspace-known producers: PackedMatrix unpacking yields i8
            // (both the env-selected entry points and the explicit
            // `KernelPath` variants added with the SWAR kernels).
            "unpack" | "unpack_with" | "unpack_with_path" => Some(IntTy::I8),
            _ => None,
        },
        _ => None,
    }
}

/// What one step of iterating `e` yields.
enum IterItem {
    Scalar(IntTy),
    Slice(IntTy),
}

fn iter_item(e: &Expr, locals: &BTreeMap<String, Binding>) -> Option<IterItem> {
    if let Some(t) = value_elem(e, locals) {
        return Some(IterItem::Scalar(t));
    }
    match &e.kind {
        ExprKind::Method { recv, name, .. } => match name.as_str() {
            "iter" | "iter_mut" | "into_iter" | "copied" | "cloned" | "rev" | "take" | "skip"
            | "step_by" | "by_ref" | "filter" => iter_item(recv, locals),
            "chunks" | "chunks_exact" | "rchunks" | "windows" => {
                value_elem(recv, locals).map(IterItem::Slice)
            }
            _ => None,
        },
        _ => None,
    }
}

fn bind_leaf(env: &mut BTreeMap<String, Binding>, name: &str, item: IterItem) {
    let b = match item {
        IterItem::Scalar(t) => Binding::Scalar(seed_scalar(t)),
        IterItem::Slice(t) => Binding::Slice(t),
    };
    env.insert(name.to_string(), b);
}

/// Transparent iterator adapters: one element in, one element out, same
/// tuple shape.
fn is_transparent_adapter(name: &str) -> bool {
    matches!(
        name,
        "iter" | "iter_mut" | "into_iter" | "copied" | "cloned" | "rev" | "take" | "skip"
            | "step_by" | "by_ref" | "filter" | "inspect"
    )
}

/// How many pattern leaves one element of `e` binds: `zip` sums both
/// sides, `enumerate` adds the index, transparent adapters pass through,
/// and everything else (resolved or not) is assumed to yield exactly one
/// leaf. [`bind_iter_pattern`] only walks the structure when this arity
/// matches the pattern's leaf count, so an unresolved sub-iterator that
/// actually yields a tuple makes the totals disagree and aborts the whole
/// binding rather than attaching values to the wrong names.
fn leaf_arity(e: &Expr) -> usize {
    if let ExprKind::Method { recv, name, args, .. } = &e.kind {
        return match name.as_str() {
            "zip" => leaf_arity(recv) + args.first().map_or(1, leaf_arity),
            "enumerate" => 1 + leaf_arity(recv),
            n if is_transparent_adapter(n) => leaf_arity(recv),
            _ => 1,
        };
    }
    1
}

/// Recursively binds `leaves` against the zip/enumerate structure of `e`,
/// returning how many leaves were consumed. Sub-iterators that do not
/// resolve consume one leaf and bind nothing (unknown stays unknown).
fn bind_rec(
    leaves: &[String],
    e: &Expr,
    env: &mut BTreeMap<String, Binding>,
    consts: &BTreeMap<String, i128>,
    bits_seed: Option<Interval>,
) -> usize {
    if leaves.is_empty() {
        return 0;
    }
    // `0..n` yields the index interval.
    if let ExprKind::Bin(expr::BinOp::Range, lo, hi) = &e.kind {
        let eenv = EvalEnv { locals: Some(env), consts: Some(consts), bits_seed };
        let l = eval(lo, &eenv);
        let h = eval(hi, &eenv);
        let iv = match (l.iv, h.iv) {
            (Some(a), Some(b)) => Some(Interval::new(a.lo, b.hi)),
            _ => None,
        };
        env.insert(
            leaves[0].clone(),
            Binding::Scalar(Value { iv, ty: Some(IntTy::Usize) }),
        );
        return 1;
    }
    if let ExprKind::Method { recv, name, args, .. } = &e.kind {
        match name.as_str() {
            "zip" => {
                let n = bind_rec(leaves, recv, env, consts, bits_seed);
                let m = match args.first() {
                    Some(arg) => bind_rec(&leaves[n..], arg, env, consts, bits_seed),
                    None => 1.min(leaves.len() - n),
                };
                return n + m;
            }
            "enumerate" => {
                env.insert(
                    leaves[0].clone(),
                    Binding::Scalar(Value { iv: None, ty: Some(IntTy::Usize) }),
                );
                return 1 + bind_rec(&leaves[1..], recv, env, consts, bits_seed);
            }
            _ => {}
        }
    }
    if let Some(item) = iter_item(e, env) {
        bind_leaf(env, &leaves[0], item);
    }
    1
}

/// Binds an iteration pattern's leaves against the iterated expression:
/// ranges, plain element iteration, and arbitrarily nested `zip` /
/// `enumerate` trees (`a.zip(b).zip(c.zip(d))` against
/// `|((a, b), (c, d))|`). When the chain's structural leaf count disagrees
/// with the pattern's, nothing is bound — misattributing a value to the
/// wrong name could manufacture a false proof, while an unbound name only
/// costs precision.
pub fn bind_iter_pattern(
    leaves: &[String],
    iter: &Expr,
    env: &mut BTreeMap<String, Binding>,
    consts: &BTreeMap<String, i128>,
    bits_seed: Option<Interval>,
) {
    if leaf_arity(iter) == leaves.len() {
        bind_rec(leaves, iter, env, consts, bits_seed);
    } else if leaves.len() == 1 {
        if let Some(item) = iter_item(iter, env) {
            bind_leaf(env, &leaves[0], item);
        }
    }
}

/// Collects names assigned (`=`, `+=`, ...) inside loop bodies — their
/// intervals widen to the type range (narrow types) or to top, because a
/// loop-carried value's range cannot be read off its initializer.
fn loop_mutated(body: &Expr) -> BTreeSet<String> {
    fn go(e: &Expr, in_loop: bool, out: &mut BTreeSet<String>) {
        let visit_stmt = |s: &Stmt, in_loop: bool, out: &mut BTreeSet<String>| match &s.kind {
            StmtKind::Assign(place, _) | StmtKind::Compound(_, place, _) if in_loop => {
                if let ExprKind::Path(segs) = &place.kind {
                    if segs.len() == 1 {
                        out.insert(segs[0].clone());
                    }
                }
            }
            _ => {}
        };
        match &e.kind {
            ExprKind::Block(stmts, tail) => {
                for s in stmts {
                    visit_stmt(s, in_loop, out);
                    match &s.kind {
                        StmtKind::Let { init, .. } => go(init, in_loop, out),
                        StmtKind::Assign(_, v) | StmtKind::Compound(_, _, v) => {
                            go(v, in_loop, out)
                        }
                        StmtKind::Expr(inner) => go(inner, in_loop, out),
                    }
                }
                if let Some(t) = tail {
                    go(t, in_loop, out);
                }
            }
            ExprKind::Loop(b) => go(b, true, out),
            ExprKind::For { body, .. } => go(body, true, out),
            ExprKind::If(_, t, f) => {
                go(t, in_loop, out);
                if let Some(f) = f {
                    go(f, in_loop, out);
                }
            }
            ExprKind::Closure(_, b) => go(b, in_loop, out),
            ExprKind::Method { recv, args, .. } => {
                go(recv, in_loop, out);
                for a in args {
                    go(a, in_loop, out);
                }
            }
            ExprKind::Call(_, args) => {
                for a in args {
                    go(a, in_loop, out);
                }
            }
            _ => {}
        }
    }
    let mut out = BTreeSet::new();
    go(body, false, &mut out);
    out
}

/// Builds the per-function local environment: parameter ascriptions, `let`
/// bindings (in statement order, no shadowing), loop patterns, and closure
/// parameters unified against their receiver chains. Bindings mutated
/// inside loop bodies are widened.
pub fn fn_env(
    lexed: &Lexed,
    span: &FnSpan,
    body: &Expr,
    analysis: &WorkspaceAnalysis,
) -> BTreeMap<String, Binding> {
    let mut env: BTreeMap<String, Binding> = BTreeMap::new();

    // Parameters: `name: ty` pairs at paren depth 1 of the signature. The
    // parameter list is the first `(` between the `fn` keyword's line and
    // the body brace.
    let toks = &lexed.tokens;
    let mut open = None;
    for (i, t) in toks.iter().enumerate().take(span.body_start) {
        if t.line >= span.line && t.text == "(" {
            open = Some(i);
            break;
        }
    }
    if let Some(open) = open {
        let mut depth = 0usize;
        let mut i = open;
        let mut piece_start = open + 1;
        while i < span.body_start {
            match toks[i].text.as_str() {
                "(" | "[" | "<" | "{" => depth += 1,
                ")" | "]" | ">" | "}" => {
                    depth -= usize::from(depth > 0);
                    if depth == 0 && toks[i].text == ")" {
                        bind_param(&toks[piece_start..i], &mut env, analysis.bits_seed);
                        break;
                    }
                }
                "," if depth == 1 => {
                    bind_param(&toks[piece_start..i], &mut env, analysis.bits_seed);
                    piece_start = i + 1;
                }
                _ => {}
            }
            i += 1;
        }
    }

    let widen = loop_mutated(body);
    collect_bindings(body, &mut env, analysis);

    for name in &widen {
        if let Some(Binding::Scalar(v)) = env.get(name) {
            let widened = match v.ty {
                Some(t) if t.narrow() => Value { iv: Some(t.range()), ty: Some(t) },
                ty => Value { iv: None, ty },
            };
            env.insert(name.clone(), Binding::Scalar(widened));
        }
    }
    env
}

/// One `pat: ty` parameter slice → binding. A `u8` parameter named `bits`
/// tightens its type range by the workspace quantizer-width seed — the
/// same invariant the [`EvalEnv::bits_seed`] doc ties to
/// `QuantSpec::validate` (every public entry point asserts it). Only `u8`:
/// quantizer widths are `u8` throughout the workspace, while wider
/// integers named `bits` are bit *patterns* (the f16 codec), where the
/// seed would be flatly wrong.
fn bind_param(
    piece: &[crate::lexer::Token],
    env: &mut BTreeMap<String, Binding>,
    bits_seed: Option<Interval>,
) {
    // Split at the top-level `:` (skipping `::`).
    let mut depth = 0usize;
    let mut colon = None;
    for (i, t) in piece.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth = depth.saturating_sub(1),
            ":" if depth == 0 => {
                if piece.get(i + 1).is_some_and(|n| n.text == ":")
                    || (i > 0 && piece[i - 1].text == ":")
                {
                    continue;
                }
                colon = Some(i);
                break;
            }
            _ => {}
        }
    }
    let Some(colon) = colon else { return };
    let names = pattern_leaves(&piece[..colon]);
    let [name] = names.as_slice() else { return };
    match classify_ty(&piece[colon + 1..]) {
        TyAnn::Int(t) => {
            let mut v = seed_scalar(t);
            if name == "bits" && t == IntTy::U8 {
                if let (Some(iv), Some(seed)) = (v.iv, bits_seed) {
                    v.iv = iv.intersect(&seed).or(v.iv);
                }
            }
            env.insert(name.clone(), Binding::Scalar(v));
        }
        TyAnn::SliceOf(t) => {
            env.insert(name.clone(), Binding::Slice(t));
        }
        TyAnn::Other => {}
    }
}

/// Walks the body collecting `let`, `for`, and closure-parameter bindings
/// in order, evaluating initializers against the environment built so far.
fn collect_bindings(
    e: &Expr,
    env: &mut BTreeMap<String, Binding>,
    analysis: &WorkspaceAnalysis,
) {
    match &e.kind {
        ExprKind::Block(stmts, tail) => {
            for s in stmts {
                if let StmtKind::Let { pat, ann, init, .. } = &s.kind {
                    collect_bindings(init, env, analysis);
                    if let [name] = pat.as_slice() {
                        let binding = match ann {
                            Some(TyAnn::Int(t)) => {
                                let eenv = analysis.env(env);
                                let v = eval(init, &eenv);
                                let iv = v.iv.or_else(|| t.narrow().then(|| t.range()));
                                Some(Binding::Scalar(Value { iv, ty: Some(*t) }))
                            }
                            Some(TyAnn::SliceOf(t)) => Some(Binding::Slice(*t)),
                            Some(TyAnn::Other) => None,
                            None => {
                                if let Some(t) = value_elem(init, env) {
                                    Some(Binding::Slice(t))
                                } else {
                                    // Unresolvable initializers still bind
                                    // (to top): a locally-defined name must
                                    // shadow the free-variable fallbacks in
                                    // `eval` (notably the `bits` seed — a
                                    // `let bits = v.to_bits()` is a bit
                                    // pattern, not a quantizer width).
                                    let eenv = analysis.env(env);
                                    Some(Binding::Scalar(eval(init, &eenv)))
                                }
                            }
                        };
                        if let Some(b) = binding {
                            env.insert(name.clone(), b);
                        }
                    }
                } else {
                    match &s.kind {
                        StmtKind::Assign(_, v) | StmtKind::Compound(_, _, v) => {
                            collect_bindings(v, env, analysis)
                        }
                        StmtKind::Expr(inner) => collect_bindings(inner, env, analysis),
                        StmtKind::Let { .. } => unreachable!("handled above"),
                    }
                }
            }
            if let Some(t) = tail {
                collect_bindings(t, env, analysis);
            }
        }
        ExprKind::For { pat, iter, body } => {
            collect_bindings(iter, env, analysis);
            bind_iter_pattern(pat, iter, env, &analysis.consts, analysis.bits_seed);
            collect_bindings(body, env, analysis);
        }
        ExprKind::Method { recv, args, name, .. } => {
            collect_bindings(recv, env, analysis);
            let binds_elements = matches!(
                name.as_str(),
                "map" | "for_each" | "filter" | "filter_map" | "inspect" | "any" | "all"
                    | "flat_map" | "position" | "find"
            );
            for a in args {
                if let ExprKind::Closure(params, body) = &a.kind {
                    if binds_elements {
                        bind_iter_pattern(
                            params,
                            recv,
                            env,
                            &analysis.consts,
                            analysis.bits_seed,
                        );
                    }
                    collect_bindings(body, env, analysis);
                } else {
                    collect_bindings(a, env, analysis);
                }
            }
        }
        ExprKind::Call(_, args) | ExprKind::Seq(args) => {
            for a in args {
                collect_bindings(a, env, analysis);
            }
        }
        ExprKind::If(c, t, f) => {
            collect_bindings(c, env, analysis);
            collect_bindings(t, env, analysis);
            if let Some(f) = f {
                collect_bindings(f, env, analysis);
            }
        }
        ExprKind::Loop(b) | ExprKind::Closure(_, b) | ExprKind::Neg(b) => {
            collect_bindings(b, env, analysis)
        }
        ExprKind::Cast(i, _) | ExprKind::From(_, i) => collect_bindings(i, env, analysis),
        ExprKind::Bin(_, l, r) | ExprKind::Index(l, r) => {
            collect_bindings(l, env, analysis);
            collect_bindings(r, env, analysis);
        }
        ExprKind::Field(r, _) => collect_bindings(r, env, analysis),
        ExprKind::Int(..) | ExprKind::Path(..) | ExprKind::Unknown => {}
    }
}

/// One function, parsed and flow-analyzed: its span, mini-AST body, and
/// the local value environment the rules evaluate against.
#[derive(Debug)]
pub struct FnFlow {
    /// The function's lexer span (name, signature line, body token range).
    pub span: FnSpan,
    /// Parsed body.
    pub body: Expr,
    /// Locals: parameters, `let`s, loop patterns, unified closure params.
    pub env: BTreeMap<String, Binding>,
}

/// Parses and flow-analyzes every function in a lexed file. Functions
/// whose bodies fail to parse are skipped (the tolerant parser isolates
/// faults per statement, so this is rare and affects only that function).
pub fn analyze_fns(lexed: &Lexed, analysis: &WorkspaceAnalysis) -> Vec<FnFlow> {
    fn_spans(lexed)
        .into_iter()
        .filter_map(|span| {
            let body = expr::parse_fn_body(&lexed.tokens, span.body_start, span.body_end)?;
            let env = fn_env(lexed, &span, &body, analysis);
            Some(FnFlow { span, body, env })
        })
        .collect()
}

/// The per-element value of iterating `e` (for `.sum()` receivers that are
/// not `map` chains): `Some(seeded scalar)` when the chain's element type
/// resolves, `None` otherwise.
pub fn iter_scalar_seed(e: &Expr, env: &BTreeMap<String, Binding>) -> Option<Value> {
    match iter_item(e, env)? {
        IterItem::Scalar(t) => Some(seed_scalar(t)),
        IterItem::Slice(_) => None,
    }
}

/// Innermost function span containing token-stream line `line`, by taking
/// the latest-starting span whose body covers it.
pub fn enclosing_fn<'s>(spans: &'s [FnSpan], lexed: &Lexed, line: usize) -> Option<&'s FnSpan> {
    let toks = &lexed.tokens;
    spans
        .iter()
        .filter(|s| {
            let start_line = toks.get(s.body_start).map(|t| t.line).unwrap_or(s.line);
            let end_line = toks.get(s.body_end).map(|t| t.line).unwrap_or(usize::MAX);
            line >= start_line && line <= end_line
        })
        .max_by_key(|s| s.line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileKind;

    fn ctx(name: &str, path: &str) -> FileCtx {
        FileCtx { crate_name: name.into(), path: path.into(), kind: FileKind::Src }
    }

    #[test]
    fn consts_resolve_across_files_to_fixpoint() {
        let files = vec![
            (
                ctx("atom-kernels", "crates/kernels/src/a.rs"),
                "pub const MAX_BITS: u8 = 8;\npub const MIN_BITS: u8 = 2;".to_string(),
            ),
            (
                ctx("atom-kernels", "crates/kernels/src/b.rs"),
                "pub const MAX_ACC_K: usize = (i32::MAX as usize) >> (2 * (MAX_BITS as usize - 1));"
                    .to_string(),
            ),
        ];
        let a = WorkspaceAnalysis::build(&files);
        assert_eq!(a.consts.get("MAX_BITS"), Some(&8));
        assert_eq!(a.consts.get("MAX_ACC_K"), Some(&131071));
        assert_eq!(a.bits_seed, Some(Interval::new(2, 8)));
    }

    #[test]
    fn conflicting_consts_are_ambiguous() {
        let files = vec![
            (ctx("atom", "crates/core/src/a.rs"), "const GROUP: usize = 128;".to_string()),
            (ctx("atom", "crates/core/src/b.rs"), "const GROUP: usize = 64;".to_string()),
        ];
        let a = WorkspaceAnalysis::build(&files);
        assert!(!a.consts.contains_key("GROUP"));
        assert!(a.ambiguous.contains("GROUP"));
    }

    #[test]
    fn fn_env_binds_params_lets_and_loop_patterns() {
        let src = "fn f(a: &[i8], n: usize) {\n\
                       let scale: i16 = 3;\n\
                       let b = a.to_vec();\n\
                       for &x in a.iter() { let _ = x; }\n\
                   }\n";
        let lexed = lex(src);
        let spans = fn_spans(&lexed);
        let body = expr::parse_fn_body(&lexed.tokens, spans[0].body_start, spans[0].body_end)
            .expect("parses");
        let analysis = WorkspaceAnalysis::default();
        let env = fn_env(&lexed, &spans[0], &body, &analysis);
        assert!(matches!(env.get("a"), Some(Binding::Slice(IntTy::I8))));
        assert!(matches!(env.get("b"), Some(Binding::Slice(IntTy::I8))));
        match env.get("x") {
            Some(Binding::Scalar(v)) => {
                assert_eq!(v.iv, Some(Interval::new(-128, 127)));
                assert_eq!(v.ty, Some(IntTy::I8));
            }
            other => panic!("x should be a seeded i8 scalar, got {other:?}"),
        }
        match env.get("scale") {
            Some(Binding::Scalar(v)) => assert_eq!(v.iv, Some(Interval::point(3))),
            other => panic!("scale should be an exact scalar, got {other:?}"),
        }
    }

    #[test]
    fn loop_mutated_bindings_widen() {
        let src = "fn f(xs: &[i16]) {\n\
                       let mut acc: i16 = 0;\n\
                       for &x in xs { acc = x; }\n\
                   }\n";
        let lexed = lex(src);
        let spans = fn_spans(&lexed);
        let body = expr::parse_fn_body(&lexed.tokens, spans[0].body_start, spans[0].body_end)
            .expect("parses");
        let analysis = WorkspaceAnalysis::default();
        let env = fn_env(&lexed, &spans[0], &body, &analysis);
        match env.get("acc") {
            Some(Binding::Scalar(v)) => {
                // Widened from the point 0 to the full i16 range.
                assert_eq!(v.iv, Some(IntTy::I16.range()));
            }
            other => panic!("acc should be widened, got {other:?}"),
        }
    }

    #[test]
    fn closure_params_unify_against_zip_chains() {
        let src = "fn dot(a: &[i8], w: &[i8]) -> i32 {\n\
                       a.iter().zip(w.iter()).map(|(&x, &y)| i32::from(x) * i32::from(y)).sum()\n\
                   }\n";
        let lexed = lex(src);
        let spans = fn_spans(&lexed);
        let body = expr::parse_fn_body(&lexed.tokens, spans[0].body_start, spans[0].body_end)
            .expect("parses");
        let analysis = WorkspaceAnalysis::default();
        let env = fn_env(&lexed, &spans[0], &body, &analysis);
        for name in ["x", "y"] {
            match env.get(name) {
                Some(Binding::Scalar(v)) => {
                    assert_eq!(v.iv, Some(Interval::new(-128, 127)), "{name}");
                }
                other => panic!("{name} should be a seeded i8 scalar, got {other:?}"),
            }
        }
    }
}
