//! A per-crate call graph over the lexer's function spans.
//!
//! Resolution is name-based: an identifier followed by `(` (or a turbofish
//! `::<..>(`) inside one function's body, matching the name of a function
//! defined in the same crate, is an edge. Method calls resolve the same
//! way (an `impl` block's `fn` appears in `fn_spans` too). Name collisions
//! across types over-approximate — fine for an audit layer, where the
//! graph only *attributes* findings ("reached from ...") and never
//! suppresses them.

use crate::lexer::{fn_spans, Lexed, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// Call edges of one crate: callee → set of direct callers.
#[derive(Debug, Default, Clone)]
pub struct CallGraph {
    /// callee name → direct caller names.
    pub callers: BTreeMap<String, BTreeSet<String>>,
}

impl CallGraph {
    /// Adds one file's functions to the graph. `defined` must hold every
    /// function name of the crate (collected in a prior pass over all its
    /// files), so cross-file calls within the crate resolve.
    pub fn add_file(&mut self, lexed: &Lexed, defined: &BTreeSet<String>) {
        let toks = &lexed.tokens;
        for span in fn_spans(lexed) {
            for i in span.body_start..=span.body_end.min(toks.len().saturating_sub(1)) {
                let t = &toks[i];
                if t.kind != TokKind::Ident || !defined.contains(&t.text) {
                    continue;
                }
                // `fn` keyword introduces a definition, not a call.
                if i > 0 && toks[i - 1].text == "fn" {
                    continue;
                }
                let next = toks.get(i + 1).map(|t| t.text.as_str());
                let is_call = next == Some("(")
                    || (next == Some(":")
                        && toks.get(i + 2).is_some_and(|t| t.text == ":")
                        && toks.get(i + 3).is_some_and(|t| t.text == "<"));
                if is_call && t.text != span.name {
                    self.callers
                        .entry(t.text.clone())
                        .or_default()
                        .insert(span.name.clone());
                }
            }
        }
    }

    /// Transitive callers of `name`, breadth-first, capped at `limit`
    /// names — enough to say where a hot-path helper is reached from
    /// without exploding the message.
    pub fn reached_from(&self, name: &str, limit: usize) -> Vec<String> {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut queue: Vec<&str> = vec![name];
        let mut out = Vec::new();
        while let Some(n) = queue.pop() {
            let Some(direct) = self.callers.get(n) else { continue };
            for c in direct {
                if seen.insert(c.as_str()) {
                    out.push(c.clone());
                    if out.len() >= limit {
                        return out;
                    }
                    queue.push(c.as_str());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn edges_and_transitive_callers() {
        let src = "fn leaf(x: i32) -> i32 { x }\n\
                   fn mid(x: i32) -> i32 { leaf(x) + 1 }\n\
                   fn top(x: i32) -> i32 { mid(x) }\n\
                   fn other() { let leaf = 3; let _ = leaf; }\n";
        let lexed = lex(src);
        let defined: BTreeSet<String> =
            ["leaf", "mid", "top", "other"].iter().map(|s| s.to_string()).collect();
        let mut g = CallGraph::default();
        g.add_file(&lexed, &defined);
        let mut reached = g.reached_from("leaf", 8);
        reached.sort();
        assert_eq!(reached, ["mid", "top"]);
        // `let leaf = 3;` is not a call.
        assert!(!g.callers.get("leaf").expect("has callers").contains("other"));
    }
}
