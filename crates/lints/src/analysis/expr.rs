//! A tolerant expression parser over the lexer's token stream, plus
//! evaluation into the interval domain.
//!
//! This is deliberately **not** a Rust parser. It recognizes the statement
//! and expression shapes that integer arithmetic in this workspace's hot
//! paths actually takes — literals, paths, casts, `iN::from`, method
//! chains, closures, blocks, loops, `let` bindings — and collapses
//! everything else to an `Unknown` node whose value is top. Failure is
//! isolated per statement: a statement the grammar cannot parse becomes
//! `Unknown` and the rest of the block is still analyzed. An `Unknown`
//! operand can never prove a range claim, so parser gaps cost coverage,
//! never soundness.
//!
//! The same `Expr` AST doubles as the representation for `// bound:`
//! proof-comment expressions (see [`parse_bound_comment`]), which add a
//! `^` power operator and unicode `·`/`−`/`≤` spellings.

use super::interval::{IntTy, Interval};
use crate::lexer::{TokKind, Token};
use std::collections::BTreeMap;

/// Binary operators the analysis distinguishes. Everything else parses as
/// [`ExprKind::Unknown`]-valued but still recurses into its operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^` (bit-xor in code; exponentiation in `// bound:` comments)
    BitXor,
    /// `^` in a proof comment: exact integer power.
    Pow,
    /// Comparison / logical operators, folded together: the value is a
    /// bool, unknown to the integer domain.
    Cmp,
    /// `..` / `..=`
    Range,
}

impl BinOp {
    fn sym(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Pow => "^",
            BinOp::Cmp => "<cmp>",
            BinOp::Range => "..",
        }
    }
}

/// One parsed expression node.
#[derive(Debug, Clone)]
pub struct Expr {
    /// What the node is.
    pub kind: ExprKind,
    /// 1-based source line of the node's leading (or operator) token.
    pub line: usize,
}

/// Expression shapes. `Unknown` is the catch-all: top in the value domain.
#[derive(Debug, Clone)]
pub enum ExprKind {
    /// Integer literal, with its suffix type if any.
    Int(i128, Option<IntTy>),
    /// `ident(::ident)*` — locals, consts, unit paths (`i32::MAX`).
    Path(Vec<String>),
    /// Field access `recv.name` (also tuple index `recv.0`).
    Field(Box<Expr>, String),
    /// `-e`.
    Neg(Box<Expr>),
    /// `e as ty` (None when the target is not an integer type).
    Cast(Box<Expr>, Option<IntTy>),
    /// `iN::from(e)` / `uN::from(e)` — lossless widening.
    From(IntTy, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Free/path call that is not `From`; value unknown, args analyzed.
    Call(Box<Expr>, Vec<Expr>),
    /// `recv.name::<tf>(args)`.
    Method {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Turbofish integer type, when simple (`sum::<i32>`).
        turbofish: Option<IntTy>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `|params| body` (`params` are the leaf identifiers of the patterns,
    /// in order, with `&`/`mut`/parens stripped).
    Closure(Vec<String>, Box<Expr>),
    /// `{ stmts; tail }`.
    Block(Vec<Stmt>, Option<Box<Expr>>),
    /// `if cond { .. } else ..`; value is the hull of the branches.
    If(Box<Expr>, Box<Expr>, Option<Box<Expr>>),
    /// `loop`/`while`/`while let` body (condition folded away).
    Loop(Box<Expr>),
    /// `for <pat> in <iter> { body }`.
    For {
        /// Leaf identifiers of the loop pattern.
        pat: Vec<String>,
        /// The iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Box<Expr>,
    },
    /// `recv[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// `(a, b, ..)` / `[a, b, ..]` — elements analyzed, value unknown.
    Seq(Vec<Expr>),
    /// Anything the grammar does not model: top.
    Unknown,
}

/// One parsed statement inside a block.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// What the statement is.
    pub kind: StmtKind,
    /// 1-based line the statement starts on.
    pub line: usize,
}

/// Statement shapes.
#[derive(Debug, Clone)]
pub enum StmtKind {
    /// `let <pat>[: ty] = init;` (`init` is `Unknown` for `let x;`).
    Let {
        /// Leaf identifiers of the pattern, in order.
        pat: Vec<String>,
        /// `true` for `let Some(x) = ..` / `let Ok(x) = ..` — the binding
        /// takes the *inner* value of the initializer.
        unwraps: bool,
        /// Parsed type ascription.
        ann: Option<TyAnn>,
        /// Initializer.
        init: Box<Expr>,
    },
    /// `place = value;`
    Assign(Box<Expr>, Box<Expr>),
    /// `place <op>= value;`
    Compound(BinOp, Box<Expr>, Box<Expr>),
    /// A bare expression statement.
    Expr(Box<Expr>),
}

/// A type ascription the analysis understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TyAnn {
    /// A plain integer type.
    Int(IntTy),
    /// `&[T]` / `&mut [T]` / `Vec<T>` / `[T; N]` with integer elements.
    SliceOf(IntTy),
    /// Anything else.
    Other,
}

/// Classifies a type-token slice into a [`TyAnn`].
pub fn classify_ty(toks: &[Token]) -> TyAnn {
    let mut i = 0;
    while i < toks.len()
        && (toks[i].text == "&"
            || toks[i].text == "mut"
            || toks[i].kind == TokKind::Lifetime)
    {
        i += 1;
    }
    let rest = &toks[i..];
    if rest.is_empty() {
        return TyAnn::Other;
    }
    if rest[0].text == "[" {
        if let Some(t) = rest.get(1).and_then(|t| IntTy::parse(&t.text)) {
            if rest.get(2).is_some_and(|t| t.text == "]" || t.text == ";") {
                return TyAnn::SliceOf(t);
            }
        }
        return TyAnn::Other;
    }
    if rest[0].text == "Vec" && rest.get(1).is_some_and(|t| t.text == "<") {
        if let Some(t) = rest.get(2).and_then(|t| IntTy::parse(&t.text)) {
            if rest.get(3).is_some_and(|t| t.text == ">") {
                return TyAnn::SliceOf(t);
            }
        }
        return TyAnn::Other;
    }
    if rest.len() == 1 {
        if let Some(t) = IntTy::parse(&rest[0].text) {
            return TyAnn::Int(t);
        }
    }
    TyAnn::Other
}

/// Keywords that begin a statement-like expression the parser models (or
/// deliberately consumes).
const EXPR_KEYWORDS: &[&str] = &[
    "if", "match", "loop", "while", "for", "unsafe", "return", "break", "continue", "move",
];

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    end: usize,
    /// Inside a loop/if/match header: a `{` terminates the expression
    /// instead of starting a struct literal.
    no_struct: bool,
}

impl<'a> Parser<'a> {
    fn peek(&self, k: usize) -> Option<&'a Token> {
        let i = self.pos + k;
        (i < self.end).then(|| &self.toks[i])
    }

    fn at(&self, s: &str) -> bool {
        self.peek(0).is_some_and(|t| t.text == s)
    }

    fn at2(&self, a: &str, b: &str) -> bool {
        self.peek(0).is_some_and(|t| t.text == a) && self.peek(1).is_some_and(|t| t.text == b)
    }

    fn line(&self) -> usize {
        self.peek(0)
            .map(|t| t.line)
            .unwrap_or_else(|| self.toks.get(self.end.saturating_sub(1)).map_or(1, |t| t.line))
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    /// Advances past a balanced `open`..`close` group whose opening token
    /// is current. Tolerates truncation.
    fn skip_balanced(&mut self) {
        let open = match self.peek(0) {
            Some(t) => t.text.clone(),
            None => return,
        };
        let close = match open.as_str() {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => {
                self.bump();
                return;
            }
        };
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    /// Binary operator at the current position: `(op, token_count,
    /// binding_power)`. `None` at a non-operator or at a compound
    /// assignment (`+=`), which the statement layer owns.
    fn peek_binop(&self) -> Option<(BinOp, usize, u8)> {
        let t = self.peek(0)?;
        if t.kind == TokKind::Ident {
            return None; // `as` handled in the climb loop directly
        }
        let a = t.text.as_str();
        let b = self.peek(1).map(|t| t.text.as_str());
        let c = self.peek(2).map(|t| t.text.as_str());
        let r = match (a, b) {
            (".", Some(".")) => {
                if c == Some("=") {
                    (BinOp::Range, 3, 1)
                } else {
                    (BinOp::Range, 2, 1)
                }
            }
            ("|", Some("|")) => (BinOp::Cmp, 2, 2),
            ("&", Some("&")) => (BinOp::Cmp, 2, 2),
            ("=", Some("=")) => (BinOp::Cmp, 2, 3),
            ("!", Some("=")) => (BinOp::Cmp, 2, 3),
            ("<", Some("<")) => {
                if c == Some("=") {
                    return None; // `<<=`
                }
                (BinOp::Shl, 2, 7)
            }
            (">", Some(">")) => {
                if c == Some("=") {
                    return None; // `>>=`
                }
                (BinOp::Shr, 2, 7)
            }
            ("<", Some("=")) => (BinOp::Cmp, 2, 3),
            (">", Some("=")) => (BinOp::Cmp, 2, 3),
            ("<", _) => (BinOp::Cmp, 1, 3),
            (">", _) => (BinOp::Cmp, 1, 3),
            ("|", other) if other != Some("=") => (BinOp::BitOr, 1, 4),
            ("^", other) if other != Some("=") => (BinOp::BitXor, 1, 5),
            ("&", other) if other != Some("=") => (BinOp::BitAnd, 1, 6),
            ("+", other) if other != Some("=") => (BinOp::Add, 1, 8),
            ("-", other) if other != Some("=") => (BinOp::Sub, 1, 8),
            ("*", other) if other != Some("=") => (BinOp::Mul, 1, 9),
            ("/", other) if other != Some("=") => (BinOp::Div, 1, 9),
            ("%", other) if other != Some("=") => (BinOp::Rem, 1, 9),
            _ => return None,
        };
        Some(r)
    }

    /// Precedence-climbing expression parser.
    fn expr(&mut self, min_bp: u8) -> Option<Expr> {
        let line = self.line();
        // Prefix range `..end` / bare `..`.
        let mut lhs = if self.at2(".", ".") {
            self.bump();
            self.bump();
            if self.at("=") {
                self.bump();
            }
            let hi = self.expr(2); // best-effort end bound
            let _ = hi;
            Expr { kind: ExprKind::Unknown, line }
        } else {
            self.unary()?
        };
        loop {
            // `as <ty>` binds tighter than every binary operator.
            if self.peek(0).is_some_and(|t| t.text == "as" && t.kind == TokKind::Ident) {
                let line = self.line();
                self.bump();
                let ty = self.cast_ty()?;
                lhs = Expr { kind: ExprKind::Cast(Box::new(lhs), ty), line };
                continue;
            }
            let Some((op, ntoks, bp)) = self.peek_binop() else { break };
            if bp < min_bp {
                break;
            }
            let line = self.line();
            for _ in 0..ntoks {
                self.bump();
            }
            // `a..` with no end bound (e.g. `&xs[k..]`).
            if op == BinOp::Range
                && self
                    .peek(0)
                    .is_none_or(|t| matches!(t.text.as_str(), "]" | ")" | "," | ";" | "{"))
            {
                lhs = Expr { kind: ExprKind::Bin(op, Box::new(lhs), Box::new(Expr { kind: ExprKind::Unknown, line })), line };
                continue;
            }
            let rhs = self.expr(bp + 1)?;
            lhs = Expr { kind: ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)), line };
        }
        Some(lhs)
    }

    /// The target of an `as` cast: a type path, possibly with generics we
    /// do not model. Returns `Some(None)` for non-integer targets.
    fn cast_ty(&mut self) -> Option<Option<IntTy>> {
        let t = self.peek(0)?;
        if t.kind != TokKind::Ident {
            return None;
        }
        let ty = IntTy::parse(&t.text);
        self.bump();
        // Swallow a path tail (`as std::os::raw::c_int` — none in tree,
        // defensive) and a simple generic suffix.
        while self.at2(":", ":") {
            self.bump();
            self.bump();
            if self.peek(0).map(|t| t.kind) == Some(TokKind::Ident) {
                self.bump();
            } else {
                return None;
            }
        }
        Some(ty)
    }

    fn unary(&mut self) -> Option<Expr> {
        let t = self.peek(0)?;
        let line = t.line;
        match t.text.as_str() {
            "-" => {
                self.bump();
                let inner = self.unary()?;
                Some(Expr { kind: ExprKind::Neg(Box::new(inner)), line })
            }
            "!" => {
                self.bump();
                let inner = self.unary()?;
                Some(Expr { kind: ExprKind::Call(Box::new(Expr { kind: ExprKind::Unknown, line }), vec![inner]), line })
            }
            "&" => {
                self.bump();
                if self.at("mut") {
                    self.bump();
                }
                self.unary()
            }
            "*" => {
                self.bump();
                self.unary()
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Option<Expr> {
        let mut e = self.primary()?;
        loop {
            if self.at2(".", ".") {
                break; // range operator, not field access
            }
            if self.at(".") {
                let Some(name_tok) = self.peek(1) else { break };
                let line = name_tok.line;
                if name_tok.kind == TokKind::NumLit {
                    // tuple index `.0`
                    self.bump();
                    self.bump();
                    e = Expr { kind: ExprKind::Field(Box::new(e), name_tok.text.clone()), line };
                    continue;
                }
                if name_tok.kind != TokKind::Ident {
                    break;
                }
                let name = name_tok.text.clone();
                self.bump();
                self.bump();
                // `.await` and field access share the no-call shape.
                let turbofish = if self.at2(":", ":") && self.peek(2).is_some_and(|t| t.text == "<") {
                    self.bump();
                    self.bump();
                    self.turbofish()
                } else {
                    None
                };
                if self.at("(") {
                    let args = self.call_args()?;
                    e = Expr { kind: ExprKind::Method { recv: Box::new(e), name, turbofish, args }, line };
                } else {
                    e = Expr { kind: ExprKind::Field(Box::new(e), name), line };
                }
                continue;
            }
            if self.at("(") {
                let line = self.line();
                let args = self.call_args()?;
                e = Expr { kind: ExprKind::Call(Box::new(e), args), line };
                continue;
            }
            if self.at("[") {
                let line = self.line();
                self.bump();
                let idx = self.expr(0).unwrap_or(Expr { kind: ExprKind::Unknown, line });
                // Tolerate whatever is left up to the `]`.
                let mut depth = 0usize;
                while let Some(t) = self.peek(0) {
                    match t.text.as_str() {
                        "[" | "(" | "{" => depth += 1,
                        "]" if depth == 0 => {
                            self.bump();
                            break;
                        }
                        "]" | ")" | "}" => depth = depth.saturating_sub(1),
                        _ => {}
                    }
                    self.bump();
                }
                e = Expr { kind: ExprKind::Index(Box::new(e), Box::new(idx)), line };
                continue;
            }
            if self.at("?") {
                self.bump();
                continue;
            }
            break;
        }
        Some(e)
    }

    /// Parses `( arg, arg, .. )` with per-argument fault isolation.
    fn call_args(&mut self) -> Option<Vec<Expr>> {
        if !self.at("(") {
            return None;
        }
        let close = self.matching_close(self.pos)?;
        self.bump();
        let mut args = Vec::new();
        while self.pos < close {
            let arg_end = self.arg_end(close);
            let mut sub = Parser { toks: self.toks, pos: self.pos, end: arg_end, no_struct: false };
            let line = sub.line();
            let parsed = sub.expr(0);
            let arg = match parsed {
                Some(a) if sub.pos == arg_end => a,
                _ => Expr { kind: ExprKind::Unknown, line },
            };
            args.push(arg);
            self.pos = arg_end;
            if self.at(",") {
                self.bump();
            }
        }
        self.pos = close + 1;
        Some(args)
    }

    /// Token index just past the current argument (the next top-level `,`
    /// or the closing paren at `close`).
    fn arg_end(&self, close: usize) -> usize {
        let mut depth = 0usize;
        let mut i = self.pos;
        while i < close {
            match self.toks[i].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                "," if depth == 0 => return i,
                "|" if depth == 0 => {
                    // A closure argument: its body may contain top-level
                    // commas only inside nesting; skip to the closing `|`
                    // so `|(&x, &w)| x * w` stays one argument.
                    i += 1;
                    let mut d2 = 0usize;
                    while i < close {
                        match self.toks[i].text.as_str() {
                            "(" | "[" | "{" => d2 += 1,
                            ")" | "]" | "}" => d2 = d2.saturating_sub(1),
                            "|" if d2 == 0 => break,
                            _ => {}
                        }
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        close
    }

    /// Index of the token closing the group opened at `open_idx`.
    fn matching_close(&self, open_idx: usize) -> Option<usize> {
        let open = self.toks.get(open_idx)?.text.as_str();
        let close = match open {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => return None,
        };
        let mut depth = 0usize;
        for i in open_idx..self.end {
            let t = self.toks[i].text.as_str();
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
        None
    }

    /// Turbofish type argument, current position just past `::<`'s `<`…
    /// actually *at* the `<`. Returns the single integer type if simple.
    fn turbofish(&mut self) -> Option<IntTy> {
        if !self.at("<") {
            return None;
        }
        let mut depth = 0usize;
        let start = self.pos;
        while let Some(t) = self.peek(0) {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        let inner = &self.toks[start + 1..self.pos];
                        self.bump();
                        if inner.len() == 1 {
                            return IntTy::parse(&inner[0].text);
                        }
                        return None;
                    }
                }
                _ => {}
            }
            self.bump();
        }
        None
    }

    fn primary(&mut self) -> Option<Expr> {
        let t = self.peek(0)?;
        let line = t.line;
        match t.kind {
            TokKind::NumLit => {
                let lit = parse_int_lit(&t.text);
                self.bump();
                Some(match lit {
                    Some((v, ty)) => Expr { kind: ExprKind::Int(v, ty), line },
                    None => Expr { kind: ExprKind::Unknown, line }, // float
                })
            }
            TokKind::StrLit | TokKind::CharLit | TokKind::Lifetime => {
                self.bump();
                // A loop label `'x: loop` — swallow the colon too.
                if self.at(":") {
                    self.bump();
                }
                Some(Expr { kind: ExprKind::Unknown, line })
            }
            TokKind::Punct => match t.text.as_str() {
                "(" => {
                    let close = self.matching_close(self.pos)?;
                    self.bump();
                    let mut elems = Vec::new();
                    while self.pos < close {
                        let arg_end = self.arg_end(close);
                        let mut sub =
                            Parser { toks: self.toks, pos: self.pos, end: arg_end, no_struct: false };
                        let sline = sub.line();
                        let parsed = sub.expr(0);
                        elems.push(match parsed {
                            Some(a) if sub.pos == arg_end => a,
                            _ => Expr { kind: ExprKind::Unknown, line: sline },
                        });
                        self.pos = arg_end;
                        if self.at(",") {
                            self.bump();
                        }
                    }
                    self.pos = close + 1;
                    Some(if elems.len() == 1 {
                        elems.pop().expect("len checked")
                    } else {
                        Expr { kind: ExprKind::Seq(elems), line }
                    })
                }
                "[" => {
                    let close = self.matching_close(self.pos)?;
                    self.bump();
                    let mut elems = Vec::new();
                    while self.pos < close {
                        let mut arg_end = self.arg_end(close);
                        // `[v; n]` — the `;` splits like a `,`.
                        let mut i = self.pos;
                        let mut depth = 0usize;
                        while i < arg_end {
                            match self.toks[i].text.as_str() {
                                "(" | "[" | "{" => depth += 1,
                                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                                ";" if depth == 0 => {
                                    arg_end = i;
                                    break;
                                }
                                _ => {}
                            }
                            i += 1;
                        }
                        let mut sub =
                            Parser { toks: self.toks, pos: self.pos, end: arg_end, no_struct: false };
                        let sline = sub.line();
                        let parsed = sub.expr(0);
                        elems.push(match parsed {
                            Some(a) if sub.pos == arg_end => a,
                            _ => Expr { kind: ExprKind::Unknown, line: sline },
                        });
                        self.pos = arg_end;
                        if self.at(",") || self.at(";") {
                            self.bump();
                        }
                    }
                    self.pos = close + 1;
                    Some(Expr { kind: ExprKind::Seq(elems), line })
                }
                "{" => self.block(),
                "|" => self.closure(),
                _ => None,
            },
            TokKind::Ident => {
                let word = t.text.as_str();
                if EXPR_KEYWORDS.contains(&word) {
                    return self.keyword_expr();
                }
                if word == "let" {
                    return None; // `while let` headers; statement layer owns `let`
                }
                if word == "true" || word == "false" {
                    self.bump();
                    return Some(Expr { kind: ExprKind::Unknown, line });
                }
                // Path: ident (:: ident)*, with optional turbofish.
                let mut segs = vec![t.text.clone()];
                self.bump();
                let mut turbofish = None;
                while self.at2(":", ":") {
                    if self.peek(2).is_some_and(|t| t.text == "<") {
                        self.bump();
                        self.bump();
                        turbofish = self.turbofish();
                        break;
                    }
                    match self.peek(2) {
                        Some(seg) if seg.kind == TokKind::Ident => {
                            segs.push(seg.text.clone());
                            self.bump();
                            self.bump();
                            self.bump();
                        }
                        _ => break,
                    }
                }
                // Macro invocation: `name!(..)` / `name![..]` / `name!{..}`.
                if self.at("!")
                    && self
                        .peek(1)
                        .is_some_and(|t| matches!(t.text.as_str(), "(" | "[" | "{"))
                {
                    self.bump();
                    self.skip_balanced();
                    return Some(Expr { kind: ExprKind::Unknown, line });
                }
                // Struct literal `Path { .. }` (illegal in headers).
                if self.at("{") && !self.no_struct {
                    self.skip_balanced();
                    return Some(Expr { kind: ExprKind::Unknown, line });
                }
                let path = Expr { kind: ExprKind::Path(segs.clone()), line };
                if self.at("(") {
                    let args = self.call_args()?;
                    // `iN::from(x)` is the one call with value semantics.
                    if segs.len() == 2 && segs[1] == "from" && args.len() == 1 {
                        if let Some(ty) = IntTy::parse(&segs[0]) {
                            let arg = args.into_iter().next().expect("len checked");
                            return Some(Expr { kind: ExprKind::From(ty, Box::new(arg)), line });
                        }
                    }
                    return Some(Expr { kind: ExprKind::Call(Box::new(path), args), line });
                }
                let _ = turbofish;
                Some(path)
            }
        }
    }

    fn closure(&mut self) -> Option<Expr> {
        let line = self.line();
        if self.at2("|", "|") {
            self.bump();
            self.bump();
        } else if self.at("|") {
            self.bump();
            // Everything to the matching `|` at group depth 0 is the
            // parameter list; keep the identifier leaves.
            let mut depth = 0usize;
            let start = self.pos;
            while let Some(t) = self.peek(0) {
                match t.text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth = depth.saturating_sub(1),
                    "|" if depth == 0 => break,
                    _ => {}
                }
                self.bump();
            }
            let params_toks = &self.toks[start..self.pos];
            if !self.at("|") {
                return None;
            }
            self.bump();
            let params = pattern_leaves(params_toks);
            let body = self.expr(0)?;
            return Some(Expr { kind: ExprKind::Closure(params, Box::new(body)), line });
        } else {
            return None;
        }
        let body = self.expr(0)?;
        Some(Expr { kind: ExprKind::Closure(Vec::new(), Box::new(body)), line })
    }

    fn block(&mut self) -> Option<Expr> {
        let line = self.line();
        if !self.at("{") {
            return None;
        }
        let close = self.matching_close(self.pos)?;
        self.bump();
        let mut stmts = Vec::new();
        let mut tail: Option<Box<Expr>> = None;
        while self.pos < close {
            let before = self.pos;
            let stmt = self.stmt(close);
            match stmt {
                Some((s, is_tail)) => {
                    if is_tail {
                        if let StmtKind::Expr(e) = s.kind {
                            tail = Some(e);
                        } else {
                            stmts.push(s);
                        }
                    } else {
                        stmts.push(s);
                    }
                }
                None => self.resync(close),
            }
            if self.pos == before {
                // Defensive: guarantee progress.
                self.bump();
            }
        }
        self.pos = close + 1;
        Some(Expr { kind: ExprKind::Block(stmts, tail), line })
    }

    /// Skips to the end of an unparseable statement: past the next `;` at
    /// depth 0, or past one balanced `{..}` group (item bodies, match
    /// arms), or to `limit`.
    fn resync(&mut self, limit: usize) {
        let mut depth = 0usize;
        while self.pos < limit {
            match self.toks[self.pos].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "{" if depth == 0 => {
                    self.skip_balanced();
                    return;
                }
                "{" => depth += 1,
                "}" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// One statement inside a block bounded by `close`. Returns the
    /// statement and whether it is the block's tail expression.
    fn stmt(&mut self, close: usize) -> Option<(Stmt, bool)> {
        // Attributes on statements/items.
        while self.at("#") {
            self.bump();
            if self.at("!") {
                self.bump();
            }
            self.skip_balanced();
        }
        if self.pos >= close {
            return None;
        }
        let line = self.line();
        if self.at("let") {
            self.bump();
            let (pat, unwraps) = self.let_pattern()?;
            let ann = if self.at(":") && self.peek(1).is_none_or(|t| t.text != ":") {
                self.bump();
                let ty_start = self.pos;
                let mut depth = 0usize;
                while let Some(t) = self.peek(0) {
                    match t.text.as_str() {
                        "<" | "(" | "[" => depth += 1,
                        ">" | ")" | "]" => depth = depth.saturating_sub(1),
                        "=" | ";" if depth == 0 => break,
                        _ => {}
                    }
                    self.bump();
                }
                Some(classify_ty(&self.toks[ty_start..self.pos]))
            } else {
                None
            };
            let init = if self.at("=") {
                self.bump();
                match self.expr(0) {
                    Some(e) => e,
                    None => {
                        self.resync(close);
                        return Some((
                            Stmt {
                                kind: StmtKind::Let {
                                    pat,
                                    unwraps,
                                    ann,
                                    init: Box::new(Expr { kind: ExprKind::Unknown, line }),
                                },
                                line,
                            },
                            false,
                        ));
                    }
                }
            } else {
                Expr { kind: ExprKind::Unknown, line }
            };
            // `let .. else { .. }`.
            if self.at("else") {
                self.bump();
                self.skip_balanced();
            }
            if self.at(";") {
                self.bump();
            }
            return Some((
                Stmt { kind: StmtKind::Let { pat, unwraps, ann, init: Box::new(init) }, line },
                false,
            ));
        }
        let e = self.expr(0)?;
        // Assignment / compound assignment.
        if self.at("=") && self.peek(1).is_none_or(|t| t.text != "=") {
            self.bump();
            let v = self.expr(0)?;
            if self.at(";") {
                self.bump();
            }
            return Some((Stmt { kind: StmtKind::Assign(Box::new(e), Box::new(v)), line }, false));
        }
        let compound = match self.peek(0).map(|t| t.text.as_str()) {
            Some("+") if self.peek(1).is_some_and(|t| t.text == "=") => Some((BinOp::Add, 2)),
            Some("-") if self.peek(1).is_some_and(|t| t.text == "=") => Some((BinOp::Sub, 2)),
            Some("*") if self.peek(1).is_some_and(|t| t.text == "=") => Some((BinOp::Mul, 2)),
            Some("/") if self.peek(1).is_some_and(|t| t.text == "=") => Some((BinOp::Div, 2)),
            Some("%") if self.peek(1).is_some_and(|t| t.text == "=") => Some((BinOp::Rem, 2)),
            Some("<")
                if self.peek(1).is_some_and(|t| t.text == "<")
                    && self.peek(2).is_some_and(|t| t.text == "=") =>
            {
                Some((BinOp::Shl, 3))
            }
            Some(">")
                if self.peek(1).is_some_and(|t| t.text == ">")
                    && self.peek(2).is_some_and(|t| t.text == "=") =>
            {
                Some((BinOp::Shr, 3))
            }
            Some("|") if self.peek(1).is_some_and(|t| t.text == "=") => Some((BinOp::BitOr, 2)),
            Some("&") if self.peek(1).is_some_and(|t| t.text == "=") => Some((BinOp::BitAnd, 2)),
            Some("^") if self.peek(1).is_some_and(|t| t.text == "=") => Some((BinOp::BitXor, 2)),
            _ => None,
        };
        if let Some((op, n)) = compound {
            for _ in 0..n {
                self.bump();
            }
            let v = self.expr(0)?;
            if self.at(";") {
                self.bump();
            }
            return Some((Stmt { kind: StmtKind::Compound(op, Box::new(e), Box::new(v)), line }, false));
        }
        let is_tail = self.pos >= close;
        if self.at(";") {
            self.bump();
        }
        Some((Stmt { kind: StmtKind::Expr(Box::new(e)), line }, is_tail))
    }

    /// A `let` pattern, returning its leaf identifiers and whether it
    /// unwraps (`Some(x)` / `Ok(x)`).
    fn let_pattern(&mut self) -> Option<(Vec<String>, bool)> {
        while self.at("mut") || self.at("&") || self.at("ref") {
            self.bump();
        }
        let t = self.peek(0)?;
        if (t.text == "Some" || t.text == "Ok") && self.peek(1).is_some_and(|n| n.text == "(") {
            self.bump();
            let close = self.matching_close(self.pos)?;
            let leaves = pattern_leaves(&self.toks[self.pos + 1..close]);
            self.pos = close + 1;
            return Some((leaves, true));
        }
        if t.text == "(" {
            let close = self.matching_close(self.pos)?;
            let leaves = pattern_leaves(&self.toks[self.pos + 1..close]);
            self.pos = close + 1;
            return Some((leaves, false));
        }
        if t.kind == TokKind::Ident && t.text != "_" {
            // Struct patterns (`let Foo { a } = ..`) have a `{` next: skip.
            if self.peek(1).is_some_and(|n| n.text == "{") {
                self.bump();
                self.skip_balanced();
                return Some((Vec::new(), false));
            }
            let name = t.text.clone();
            self.bump();
            return Some((vec![name], false));
        }
        if t.text == "_" {
            self.bump();
            return Some((Vec::new(), false));
        }
        None
    }

    fn keyword_expr(&mut self) -> Option<Expr> {
        let t = self.peek(0)?;
        let line = t.line;
        match t.text.as_str() {
            "if" => {
                self.bump();
                if self.at("let") {
                    // `if let <pat> = <expr> { .. }` — scan to the body.
                    let mut depth = 0usize;
                    while let Some(t) = self.peek(0) {
                        match t.text.as_str() {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth = depth.saturating_sub(1),
                            "{" if depth == 0 => break,
                            _ => {}
                        }
                        self.bump();
                    }
                    let then = self.block()?;
                    let els = self.else_tail();
                    return Some(Expr {
                        kind: ExprKind::If(
                            Box::new(Expr { kind: ExprKind::Unknown, line }),
                            Box::new(then),
                            els.map(Box::new),
                        ),
                        line,
                    });
                }
                let saved = self.no_struct;
                self.no_struct = true;
                let cond = self.expr(0);
                self.no_struct = saved;
                let cond = cond.unwrap_or(Expr { kind: ExprKind::Unknown, line });
                if !self.at("{") {
                    // Header we failed to parse cleanly: scan to the body.
                    let mut depth = 0usize;
                    while let Some(t) = self.peek(0) {
                        match t.text.as_str() {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth = depth.saturating_sub(1),
                            "{" if depth == 0 => break,
                            _ => {}
                        }
                        self.bump();
                    }
                }
                let then = self.block()?;
                let els = self.else_tail();
                Some(Expr { kind: ExprKind::If(Box::new(cond), Box::new(then), els.map(Box::new)), line })
            }
            "while" => {
                self.bump();
                let mut depth = 0usize;
                while let Some(t) = self.peek(0) {
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth = depth.saturating_sub(1),
                        "{" if depth == 0 => break,
                        _ => {}
                    }
                    self.bump();
                }
                let body = self.block()?;
                Some(Expr { kind: ExprKind::Loop(Box::new(body)), line })
            }
            "loop" => {
                self.bump();
                let body = self.block()?;
                Some(Expr { kind: ExprKind::Loop(Box::new(body)), line })
            }
            "for" => {
                self.bump();
                // Pattern up to `in` at depth 0.
                let pat_start = self.pos;
                let mut depth = 0usize;
                while let Some(t) = self.peek(0) {
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth = depth.saturating_sub(1),
                        "in" if depth == 0 && t.kind == TokKind::Ident => break,
                        _ => {}
                    }
                    self.bump();
                }
                let pat = pattern_leaves(&self.toks[pat_start..self.pos]);
                if !self.at("in") {
                    return None;
                }
                self.bump();
                let iter_start = self.pos;
                let saved = self.no_struct;
                self.no_struct = true;
                let iter = self.expr(0);
                self.no_struct = saved;
                let iter = match iter {
                    Some(e) if self.at("{") => e,
                    _ => {
                        // Re-scan: consume the header to the body brace.
                        self.pos = iter_start;
                        let mut depth = 0usize;
                        while let Some(t) = self.peek(0) {
                            match t.text.as_str() {
                                "(" | "[" => depth += 1,
                                ")" | "]" => depth = depth.saturating_sub(1),
                                "{" if depth == 0 => break,
                                _ => {}
                            }
                            self.bump();
                        }
                        Expr { kind: ExprKind::Unknown, line }
                    }
                };
                let body = self.block()?;
                Some(Expr { kind: ExprKind::For { pat, iter: Box::new(iter), body: Box::new(body) }, line })
            }
            "match" => {
                self.bump();
                let saved = self.no_struct;
                self.no_struct = true;
                let scrut = self.expr(0);
                self.no_struct = saved;
                let _ = scrut;
                if !self.at("{") {
                    let mut depth = 0usize;
                    while let Some(t) = self.peek(0) {
                        match t.text.as_str() {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth = depth.saturating_sub(1),
                            "{" if depth == 0 => break,
                            _ => {}
                        }
                        self.bump();
                    }
                }
                self.skip_balanced(); // arms are opaque
                Some(Expr { kind: ExprKind::Unknown, line })
            }
            "unsafe" => {
                self.bump();
                self.block()
            }
            "move" => {
                self.bump();
                self.closure()
            }
            "return" | "break" | "continue" => {
                self.bump();
                if !self.at(";") && !self.at("}") && self.pos < self.end {
                    let _ = self.expr(0);
                }
                Some(Expr { kind: ExprKind::Unknown, line })
            }
            _ => None,
        }
    }

    fn else_tail(&mut self) -> Option<Expr> {
        if !self.at("else") {
            return None;
        }
        self.bump();
        if self.at("if") {
            return self.keyword_expr();
        }
        self.block()
    }
}

/// Identifier leaves of a pattern token slice, in source order, with
/// grouping/borrow/`mut` noise stripped and type ascriptions skipped.
pub fn pattern_leaves(toks: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.text == ":" && toks.get(i + 1).is_none_or(|n| n.text != ":") {
            // Skip an ascription to the next `,` at depth 0.
            let mut depth = 0usize;
            i += 1;
            while i < toks.len() {
                match toks[i].text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth = depth.saturating_sub(1),
                    "," if depth == 0 => break,
                    _ => {}
                }
                i += 1;
            }
            continue;
        }
        if t.kind == TokKind::Ident
            && !matches!(t.text.as_str(), "mut" | "ref" | "_" | "Some" | "Ok")
        {
            out.push(t.text.clone());
        }
        i += 1;
    }
    out
}

/// Parses an integer literal token (`"200_000"`, `"0x7fff_ffff"`,
/// `"1i16"`). Returns `None` for float literals.
pub fn parse_int_lit(text: &str) -> Option<(i128, Option<IntTy>)> {
    let clean: String = text.chars().filter(|&c| c != '_').collect();
    let (body, ty) = split_suffix(&clean);
    if matches!(ty, Some(s) if s == "f32" || s == "f64") {
        return None;
    }
    let ty = ty.and_then(IntTy::parse);
    let (digits, radix) = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        (hex, 16)
    } else if let Some(oct) = body.strip_prefix("0o") {
        (oct, 8)
    } else if let Some(bin) = body.strip_prefix("0b") {
        (bin, 2)
    } else {
        (body, 10)
    };
    if digits.is_empty() || (radix == 10 && digits.contains(['.', 'e', 'E'])) {
        return None;
    }
    i128::from_str_radix(digits, radix).ok().map(|v| (v, ty))
}

fn split_suffix(s: &str) -> (&str, Option<&str>) {
    for suf in [
        "i128", "u128", "isize", "usize", "i16", "u16", "i32", "u32", "i64", "u64", "i8", "u8",
        "f32", "f64",
    ] {
        if let Some(body) = s.strip_suffix(suf) {
            if !body.is_empty() && body.as_bytes()[0].is_ascii_digit() {
                return (body, Some(suf));
            }
        }
    }
    (s, None)
}

/// Parses the body of a function (`toks[body_start..=body_end]`, where
/// `body_start` indexes the opening `{`) into a block expression.
pub fn parse_fn_body(toks: &[Token], body_start: usize, body_end: usize) -> Option<Expr> {
    let mut p = Parser { toks, pos: body_start, end: (body_end + 1).min(toks.len()), no_struct: false };
    p.block()
}

/// Parses a standalone expression token range `[start, end)`; `None`
/// unless the grammar consumes the whole range.
pub fn parse_expr_range(toks: &[Token], start: usize, end: usize) -> Option<Expr> {
    let mut p = Parser { toks, pos: start, end, no_struct: false };
    let e = p.expr(0)?;
    (p.pos == end).then_some(e)
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

/// An abstract value: an interval (or top) plus the inferred integer type
/// (or unknown). Type and value are independent — `x as usize` has a known
/// type and an unknown value.
#[derive(Debug, Clone, Copy, Default)]
pub struct Value {
    /// The value interval; `None` is top.
    pub iv: Option<Interval>,
    /// The inferred integer type, when the expression pins one down.
    pub ty: Option<IntTy>,
}

impl Value {
    /// Top: nothing known.
    pub const UNKNOWN: Value = Value { iv: None, ty: None };

    /// A known interval of a known type.
    pub fn new(iv: Interval, ty: IntTy) -> Value {
        Value { iv: Some(iv), ty: Some(ty) }
    }
}

/// What a name is bound to in the per-function environment.
#[derive(Debug, Clone, Copy)]
pub enum Binding {
    /// A scalar integer value.
    Scalar(Value),
    /// A slice/Vec/iterator yielding elements of an integer type.
    Slice(IntTy),
}

/// The evaluation environment: per-function bindings, workspace constants,
/// and the quantizer-width seed.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalEnv<'a> {
    /// Local bindings (parameters, `let`s, loop/closure patterns).
    pub locals: Option<&'a BTreeMap<String, Binding>>,
    /// Workspace constants resolved to exact values.
    pub consts: Option<&'a BTreeMap<String, i128>>,
    /// When set, any identifier or field named `bits` that has no tighter
    /// binding evaluates to this interval (the workspace-wide quantizer
    /// width range, backed by `QuantSpec::validate`).
    pub bits_seed: Option<Interval>,
}

impl<'a> EvalEnv<'a> {
    fn lookup_local(&self, name: &str) -> Option<Binding> {
        self.locals.and_then(|m| m.get(name).copied())
    }

    /// Slice element type of a named binding.
    pub fn slice_elem(&self, name: &str) -> Option<IntTy> {
        match self.lookup_local(name)? {
            Binding::Slice(t) => Some(t),
            Binding::Scalar(_) => None,
        }
    }
}

/// The full range of a narrow type as a scalar value; wide types stay
/// value-unknown but keep the type.
pub fn seed_scalar(ty: IntTy) -> Value {
    if ty.narrow() {
        Value::new(ty.range(), ty)
    } else {
        Value { iv: None, ty: Some(ty) }
    }
}

fn builtin_path(segs: &[String]) -> Option<Value> {
    if segs.len() == 2 {
        if let Some(ty) = IntTy::parse(&segs[0]) {
            match segs[1].as_str() {
                "MAX" => return Some(Value::new(Interval::point(ty.max()), ty)),
                "MIN" => return Some(Value::new(Interval::point(ty.min()), ty)),
                _ => {}
            }
        }
    }
    None
}

/// The widest value `target::from(_)` can produce when the argument is
/// unknown: the hull of every lossless `From` source's range.
fn from_source_range(target: IntTy) -> Interval {
    match target {
        IntTy::I8 | IntTy::U8 => target.range(),
        IntTy::I16 => Interval::new(i8::MIN as i128, u8::MAX as i128),
        IntTy::U16 => Interval::new(0, u8::MAX as i128),
        IntTy::I32 => Interval::new(i16::MIN as i128, u16::MAX as i128),
        IntTy::U32 => Interval::new(0, u16::MAX as i128),
        IntTy::I64 | IntTy::Isize => Interval::new(i32::MIN as i128, u32::MAX as i128),
        IntTy::U64 => Interval::new(0, u32::MAX as i128),
        IntTy::I128 => Interval::new(i64::MIN as i128, u64::MAX as i128),
        IntTy::U128 => Interval::new(0, u64::MAX as i128),
        IntTy::Usize => Interval::new(0, u16::MAX as i128),
    }
}

/// Unifies two inferred types: equal or one-sided.
pub fn unify_ty(a: Option<IntTy>, b: Option<IntTy>) -> Option<IntTy> {
    match (a, b) {
        (Some(x), Some(y)) if x == y => Some(x),
        (Some(_), Some(_)) => None,
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

fn bitlen(v: i128) -> u32 {
    128 - v.max(0).leading_zeros()
}

/// Evaluates an expression to an abstract [`Value`].
pub fn eval(e: &Expr, env: &EvalEnv<'_>) -> Value {
    match &e.kind {
        ExprKind::Int(v, ty) => Value { iv: Some(Interval::point(*v)), ty: *ty },
        ExprKind::Path(segs) => {
            if let Some(v) = builtin_path(segs) {
                return v;
            }
            if segs.len() == 1 {
                let name = segs[0].as_str();
                if let Some(Binding::Scalar(v)) = env.lookup_local(name) {
                    return v;
                }
                if name == "bits" {
                    if let Some(seed) = env.bits_seed {
                        return Value { iv: Some(seed), ty: None };
                    }
                }
                if let Some(c) = env.consts.and_then(|m| m.get(name)) {
                    return Value { iv: Some(Interval::point(*c)), ty: None };
                }
            }
            // Path constants named through modules (`gemm::MAX_ACC_K`).
            if let Some(last) = segs.last() {
                if let Some(c) = env.consts.and_then(|m| m.get(last.as_str())) {
                    return Value { iv: Some(Interval::point(*c)), ty: None };
                }
            }
            Value::UNKNOWN
        }
        ExprKind::Field(_, name) => {
            if name == "bits" {
                if let Some(seed) = env.bits_seed {
                    return Value { iv: Some(seed), ty: None };
                }
            }
            Value::UNKNOWN
        }
        ExprKind::Neg(inner) => {
            let v = eval(inner, env);
            Value { iv: v.iv.and_then(|iv| iv.neg()), ty: v.ty }
        }
        ExprKind::Cast(inner, ty) => {
            let v = eval(inner, env);
            let Some(target) = *ty else { return Value::UNKNOWN };
            let iv = match v.iv {
                Some(iv) if iv.fits(target) => Some(iv),
                // Truncating casts land somewhere in the target's range;
                // keep that only when it is small enough to be useful.
                _ if target.narrow() => Some(target.range()),
                _ => None,
            };
            Value { iv, ty: Some(target) }
        }
        ExprKind::From(target, inner) => {
            let v = eval(inner, env);
            let iv = match v.iv {
                Some(iv) => Some(iv),
                None => Some(from_source_range(*target)),
            };
            Value { iv, ty: Some(*target) }
        }
        ExprKind::Bin(op, l, r) => {
            let a = eval(l, env);
            let b = eval(r, env);
            let ty = match op {
                BinOp::Shl | BinOp::Shr => a.ty,
                BinOp::Cmp | BinOp::Range => None,
                _ => unify_ty(a.ty, b.ty),
            };
            let iv = match (op, a.iv, b.iv) {
                (BinOp::Add, Some(x), Some(y)) => x.add(&y),
                (BinOp::Sub, Some(x), Some(y)) => x.sub(&y),
                (BinOp::Mul, Some(x), Some(y)) => x.mul(&y),
                (BinOp::Div, Some(x), Some(y)) => x.div(&y),
                (BinOp::Rem, x, Some(y)) => {
                    let nonneg = a.ty.is_some_and(IntTy::unsigned)
                        || x.is_some_and(|iv| iv.lo >= 0);
                    if nonneg {
                        x.unwrap_or(Interval::new(0, i128::MAX)).rem_nonneg(&y)
                    } else {
                        None
                    }
                }
                (BinOp::Shl, Some(x), Some(y)) => x.shl(&y),
                (BinOp::Shr, Some(x), Some(y)) if x.lo >= 0 && y.lo >= 0 && y.hi <= 126 => Some(
                    Interval::new(x.lo >> y.hi.min(126) as u32, x.hi >> y.lo as u32),
                ),
                (BinOp::BitAnd, Some(x), Some(y)) if x.lo >= 0 && y.lo >= 0 => {
                    Some(Interval::new(0, x.hi.min(y.hi)))
                }
                // Masking with one provably nonnegative operand bounds the
                // result to [0, mask] whatever the other side is — only the
                // mask's bits can survive the AND (true in two's complement
                // for signed values too).
                (BinOp::BitAnd, Some(m), _) | (BinOp::BitAnd, _, Some(m)) if m.lo >= 0 => {
                    Some(Interval::new(0, m.hi))
                }
                (BinOp::BitOr | BinOp::BitXor, Some(x), Some(y)) if x.lo >= 0 && y.lo >= 0 => {
                    let bl = bitlen(x.hi).max(bitlen(y.hi));
                    (bl < 127).then(|| Interval::new(0, (1i128 << bl) - 1))
                }
                (BinOp::Pow, Some(x), Some(y)) => {
                    match (x.exact(), y.exact()) {
                        (Some(base), Some(exp)) if (0..=126).contains(&exp) => base
                            .checked_pow(exp as u32)
                            .map(Interval::point),
                        _ => None,
                    }
                }
                _ => None,
            };
            Value { iv, ty }
        }
        ExprKind::Method { recv, name, turbofish, args } => {
            let r = eval(recv, env);
            match name.as_str() {
                // Arithmetic-safe methods keep the receiver's type; the
                // value is whatever the method guarantees.
                "clamp" if args.len() == 2 => {
                    let lo = eval(&args[0], env);
                    let hi = eval(&args[1], env);
                    let iv = match (lo.iv, hi.iv) {
                        (Some(a), Some(b)) => Some(Interval::new(a.lo, b.hi)),
                        _ => None,
                    };
                    Value { iv, ty: unify_ty(r.ty, unify_ty(lo.ty, hi.ty)) }
                }
                "min" if args.len() == 1 => {
                    let o = eval(&args[0], env);
                    let iv = match (r.iv, o.iv) {
                        (Some(a), Some(b)) => Some(Interval::new(a.lo.min(b.lo), a.hi.min(b.hi))),
                        _ => None,
                    };
                    Value { iv, ty: unify_ty(r.ty, o.ty) }
                }
                "max" if args.len() == 1 => {
                    let o = eval(&args[0], env);
                    let iv = match (r.iv, o.iv) {
                        (Some(a), Some(b)) => Some(Interval::new(a.lo.max(b.lo), a.hi.max(b.hi))),
                        _ => None,
                    };
                    Value { iv, ty: unify_ty(r.ty, o.ty) }
                }
                "abs" => Value {
                    iv: r.iv.map(|iv| Interval::new(0, iv.magnitude())),
                    ty: r.ty,
                },
                "unsigned_abs" => Value { iv: r.iv.map(|iv| Interval::new(0, iv.magnitude())), ty: None },
                "len" => Value { iv: None, ty: Some(IntTy::Usize) },
                "sum" | "product" => Value { iv: None, ty: *turbofish },
                n if n.starts_with("wrapping_")
                    || n.starts_with("saturating_")
                    || n.starts_with("checked_")
                    || n.starts_with("overflowing_") =>
                {
                    // Explicitly-handled arithmetic: in-range by contract.
                    Value { iv: None, ty: r.ty }
                }
                _ => Value { iv: None, ty: *turbofish },
            }
        }
        ExprKind::Index(recv, _) => {
            if let ExprKind::Path(segs) = &recv.kind {
                if segs.len() == 1 {
                    if let Some(elem) = env.slice_elem(&segs[0]) {
                        return seed_scalar(elem);
                    }
                }
            }
            Value::UNKNOWN
        }
        ExprKind::If(_, then, els) => {
            let t = eval(then, env);
            let Some(e2) = els else { return Value { iv: None, ty: t.ty } };
            let f = eval(e2, env);
            let iv = match (t.iv, f.iv) {
                (Some(a), Some(b)) => Some(Interval::new(a.lo.min(b.lo), a.hi.max(b.hi))),
                _ => None,
            };
            Value { iv, ty: unify_ty(t.ty, f.ty) }
        }
        ExprKind::Block(_, tail) => match tail {
            Some(t) => eval(t, env),
            None => Value::UNKNOWN,
        },
        ExprKind::Call(..)
        | ExprKind::Closure(..)
        | ExprKind::Loop(..)
        | ExprKind::For { .. }
        | ExprKind::Seq(..)
        | ExprKind::Unknown => Value::UNKNOWN,
    }
}

/// Walks every expression node in a tree (pre-order), handing each to
/// `visit` along with whether the node sits inside a loop body.
pub fn walk<'e>(e: &'e Expr, in_loop: bool, visit: &mut dyn FnMut(&'e Expr, bool)) {
    visit(e, in_loop);
    match &e.kind {
        ExprKind::Int(..) | ExprKind::Path(..) | ExprKind::Unknown => {}
        ExprKind::Field(r, _) => walk(r, in_loop, visit),
        ExprKind::Neg(i) => walk(i, in_loop, visit),
        ExprKind::Cast(i, _) => walk(i, in_loop, visit),
        ExprKind::From(_, i) => walk(i, in_loop, visit),
        ExprKind::Bin(_, l, r) => {
            walk(l, in_loop, visit);
            walk(r, in_loop, visit);
        }
        ExprKind::Call(c, args) => {
            walk(c, in_loop, visit);
            for a in args {
                walk(a, in_loop, visit);
            }
        }
        ExprKind::Method { recv, args, .. } => {
            walk(recv, in_loop, visit);
            for a in args {
                walk(a, in_loop, visit);
            }
        }
        ExprKind::Closure(_, body) => walk(body, in_loop, visit),
        ExprKind::Block(stmts, tail) => {
            for s in stmts {
                walk_stmt(s, in_loop, visit);
            }
            if let Some(t) = tail {
                walk(t, in_loop, visit);
            }
        }
        ExprKind::If(c, t, f) => {
            walk(c, in_loop, visit);
            walk(t, in_loop, visit);
            if let Some(f) = f {
                walk(f, in_loop, visit);
            }
        }
        ExprKind::Loop(b) => walk(b, true, visit),
        ExprKind::For { iter, body, .. } => {
            walk(iter, in_loop, visit);
            walk(body, true, visit);
        }
        ExprKind::Index(r, i) => {
            walk(r, in_loop, visit);
            walk(i, in_loop, visit);
        }
        ExprKind::Seq(elems) => {
            for el in elems {
                walk(el, in_loop, visit);
            }
        }
    }
}

/// Statement-level companion of [`walk`].
pub fn walk_stmt<'e>(s: &'e Stmt, in_loop: bool, visit: &mut dyn FnMut(&'e Expr, bool)) {
    match &s.kind {
        StmtKind::Let { init, .. } => walk(init, in_loop, visit),
        StmtKind::Assign(p, v) | StmtKind::Compound(_, p, v) => {
            walk(p, in_loop, visit);
            walk(v, in_loop, visit);
        }
        StmtKind::Expr(e) => walk(e, in_loop, visit),
    }
}

// ---------------------------------------------------------------------------
// `// bound:` proof-comment expressions
// ---------------------------------------------------------------------------

/// A parsed `// bound: LHS <op> RHS` claim.
#[derive(Debug, Clone)]
pub struct BoundClaim {
    /// Left side — must mention the free reduction-length variable `K`.
    pub lhs: Expr,
    /// `true` for `<`, `false` for `<=`/`≤`.
    pub strict: bool,
    /// Right side — a constant expression.
    pub rhs: Expr,
}

/// Parses the text after `bound:` in a proof comment. Grammar (lowest to
/// highest precedence): `cmp := shift ('<'|'<='|'≤') shift`,
/// `shift := sum ('<<' sum)*`, `sum := term (('+'|'-') term)*`,
/// `term := pow (('*'|'·'|'/') pow)*`, `pow := atom ('^' pow)?`,
/// `atom := int | ident | '(' cmp-free expr ')' | '-' atom`, with
/// identifiers allowing `::` (for `i32::MAX`) and unicode `−` as minus.
pub fn parse_bound_comment(text: &str) -> Option<BoundClaim> {
    let toks = comment_tokens(text)?;
    let mut p = CParser { toks: &toks, pos: 0 };
    let lhs = p.shift()?;
    let strict = match p.peek()? {
        CTok::Le => false,
        CTok::Lt => true,
        _ => return None,
    };
    p.pos += 1;
    let rhs = p.shift()?;
    if p.pos != p.toks.len() {
        return None;
    }
    Some(BoundClaim { lhs, strict, rhs })
}

#[derive(Debug, Clone, PartialEq)]
enum CTok {
    Int(i128),
    Ident(String),
    Mul,
    Div,
    Add,
    Sub,
    Pow,
    Shl,
    Lt,
    Le,
    LParen,
    RParen,
}

fn comment_tokens(text: &str) -> Option<Vec<CTok>> {
    let chars: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '*' | '·' | '×' => {
                out.push(CTok::Mul);
                i += 1;
            }
            '/' => {
                out.push(CTok::Div);
                i += 1;
            }
            '+' => {
                out.push(CTok::Add);
                i += 1;
            }
            '-' | '−' => {
                out.push(CTok::Sub);
                i += 1;
            }
            '^' => {
                out.push(CTok::Pow);
                i += 1;
            }
            '(' => {
                out.push(CTok::LParen);
                i += 1;
            }
            ')' => {
                out.push(CTok::RParen);
                i += 1;
            }
            '≤' => {
                out.push(CTok::Le);
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'<') {
                    out.push(CTok::Shl);
                    i += 2;
                } else if chars.get(i + 1) == Some(&'=') {
                    out.push(CTok::Le);
                    i += 2;
                } else {
                    out.push(CTok::Lt);
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let (v, _) = parse_int_lit(&text)?;
                out.push(CTok::Int(v));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == ':')
                {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                out.push(CTok::Ident(word.trim_matches(':').to_string()));
            }
            _ => return None,
        }
    }
    Some(out)
}

struct CParser<'a> {
    toks: &'a [CTok],
    pos: usize,
}

impl<'a> CParser<'a> {
    fn peek(&self) -> Option<&'a CTok> {
        self.toks.get(self.pos)
    }

    fn shift(&mut self) -> Option<Expr> {
        let mut lhs = self.sum()?;
        while self.peek() == Some(&CTok::Shl) {
            self.pos += 1;
            let rhs = self.sum()?;
            lhs = Expr { kind: ExprKind::Bin(BinOp::Shl, Box::new(lhs), Box::new(rhs)), line: 0 };
        }
        Some(lhs)
    }

    fn sum(&mut self) -> Option<Expr> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(CTok::Add) => BinOp::Add,
                Some(CTok::Sub) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.term()?;
            lhs = Expr { kind: ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)), line: 0 };
        }
        Some(lhs)
    }

    fn term(&mut self) -> Option<Expr> {
        let mut lhs = self.pow()?;
        loop {
            let op = match self.peek() {
                Some(CTok::Mul) => BinOp::Mul,
                Some(CTok::Div) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.pow()?;
            lhs = Expr { kind: ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)), line: 0 };
        }
        Some(lhs)
    }

    fn pow(&mut self) -> Option<Expr> {
        let base = self.atom()?;
        if self.peek() == Some(&CTok::Pow) {
            self.pos += 1;
            let exp = self.pow()?; // right-associative
            return Some(Expr { kind: ExprKind::Bin(BinOp::Pow, Box::new(base), Box::new(exp)), line: 0 });
        }
        Some(base)
    }

    fn atom(&mut self) -> Option<Expr> {
        match self.peek()? {
            CTok::Int(v) => {
                let v = *v;
                self.pos += 1;
                Some(Expr { kind: ExprKind::Int(v, None), line: 0 })
            }
            CTok::Ident(name) => {
                let segs: Vec<String> = name.split("::").map(str::to_string).collect();
                self.pos += 1;
                Some(Expr { kind: ExprKind::Path(segs), line: 0 })
            }
            CTok::Sub => {
                self.pos += 1;
                let inner = self.atom()?;
                Some(Expr { kind: ExprKind::Neg(Box::new(inner)), line: 0 })
            }
            CTok::LParen => {
                self.pos += 1;
                let e = self.shift()?;
                if self.peek() != Some(&CTok::RParen) {
                    return None;
                }
                self.pos += 1;
                Some(e)
            }
            _ => None,
        }
    }
}

/// Exact evaluation of a proof-comment expression against the workspace
/// constants and the `I32_MAX`-style builtins. `K` (and every other
/// unresolvable name) makes the result `None`.
pub fn eval_exact(e: &Expr, consts: &BTreeMap<String, i128>) -> Option<i128> {
    match &e.kind {
        ExprKind::Int(v, _) => Some(*v),
        ExprKind::Path(segs) => {
            if let Some(v) = builtin_path(segs) {
                return v.iv.and_then(|iv| iv.exact());
            }
            let joined = segs.join("::");
            match joined.as_str() {
                "I8_MAX" => return Some(i8::MAX as i128),
                "I16_MAX" => return Some(i16::MAX as i128),
                "I32_MAX" => return Some(i32::MAX as i128),
                "I64_MAX" => return Some(i64::MAX as i128),
                "U8_MAX" => return Some(u8::MAX as i128),
                "U16_MAX" => return Some(u16::MAX as i128),
                "U32_MAX" => return Some(u32::MAX as i128),
                _ => {}
            }
            segs.last().and_then(|last| consts.get(last.as_str()).copied())
        }
        ExprKind::Neg(i) => eval_exact(i, consts)?.checked_neg(),
        ExprKind::Bin(op, l, r) => {
            let a = eval_exact(l, consts)?;
            let b = eval_exact(r, consts)?;
            match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Div => (b != 0).then(|| a / b),
                BinOp::Shl => {
                    if !(0..=126).contains(&b) {
                        return None;
                    }
                    a.checked_shl(b as u32).filter(|_| a.checked_mul(1i128 << b).is_some())
                }
                BinOp::Pow => {
                    if !(0..=126).contains(&b) {
                        return None;
                    }
                    a.checked_pow(b as u32)
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Flattens a multiplication tree into its factors (`K * A * B` →
/// `[K, A, B]`).
pub fn product_factors(e: &Expr) -> Vec<&Expr> {
    match &e.kind {
        ExprKind::Bin(BinOp::Mul, l, r) => {
            let mut out = product_factors(l);
            out.extend(product_factors(r));
            out
        }
        _ => vec![e],
    }
}

/// Whether an expression is exactly the free variable `K`.
pub fn is_k(e: &Expr) -> bool {
    matches!(&e.kind, ExprKind::Path(segs) if segs.len() == 1 && segs[0] == "K")
}

/// Renders an expression back to compact text (diagnostics only).
pub fn render(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Int(v, _) => v.to_string(),
        ExprKind::Path(segs) => segs.join("::"),
        ExprKind::Field(r, n) => format!("{}.{}", render(r), n),
        ExprKind::Neg(i) => format!("-{}", render(i)),
        ExprKind::Cast(i, ty) => format!(
            "{} as {}",
            render(i),
            ty.map(IntTy::name).unwrap_or("_")
        ),
        ExprKind::From(ty, i) => format!("{}::from({})", ty.name(), render(i)),
        ExprKind::Bin(op, l, r) => format!("({} {} {})", render(l), op.sym(), render(r)),
        ExprKind::Method { recv, name, .. } => format!("{}.{}(..)", render(recv), name),
        ExprKind::Call(c, _) => format!("{}(..)", render(c)),
        _ => "_".to_string(),
    }
}

#[cfg(test)]
mod bound_grammar_tests {
    use super::*;

    fn consts() -> BTreeMap<String, i128> {
        [("MAX_BITS".to_string(), 8i128), ("GROUP".to_string(), 128i128)]
            .into_iter()
            .collect()
    }

    #[test]
    fn claims_parse_with_both_comparators() {
        let le = parse_bound_comment("K * 2 ^ 14 <= I32_MAX").expect("parses");
        assert!(!le.strict);
        let lt = parse_bound_comment("K * 2 ^ 14 < 2 ^ 31").expect("parses");
        assert!(lt.strict);
        let uni = parse_bound_comment("K · 2 ^ 14 ≤ I32_MAX").expect("unicode ops parse");
        assert!(!uni.strict);
    }

    #[test]
    fn k_is_found_exactly_as_a_product_factor() {
        let c = parse_bound_comment("K * 2 ^ (2 * (MAX_BITS - 1)) < 2 ^ 31").expect("parses");
        let factors = product_factors(&c.lhs);
        assert_eq!(factors.iter().filter(|f| is_k(f)).count(), 1);
        // The non-K factor evaluates exactly: 2^(2*(8-1)) = 2^14.
        let coeff: i128 = factors
            .iter()
            .filter(|f| !is_k(f))
            .map(|f| eval_exact(f, &consts()).expect("factor evaluates"))
            .product();
        assert_eq!(coeff, 1 << 14);
    }

    #[test]
    fn limits_evaluate_against_builtins_and_workspace_consts() {
        let c = parse_bound_comment("K * GROUP <= I32_MAX").expect("parses");
        assert_eq!(eval_exact(&c.rhs, &consts()), Some(i128::from(i32::MAX)));
        let c = parse_bound_comment("K * 4 <= 1 << 20").expect("parses");
        assert_eq!(eval_exact(&c.rhs, &consts()), Some(1 << 20));
        // `K` itself never evaluates — it is the free variable.
        assert_eq!(eval_exact(&c.lhs, &consts()), None);
    }

    #[test]
    fn malformed_claims_are_rejected() {
        assert!(parse_bound_comment("prose, not math").is_none());
        assert!(parse_bound_comment("K * 2 ^ 14").is_none()); // no comparator
        assert!(parse_bound_comment("K * <= 2 ^ 31").is_none()); // dangling op
        assert!(parse_bound_comment("K * 2 ^ 14 <= 2 ^ 31 junk").is_none());
        assert!(parse_bound_comment("K > 5").is_none()); // only upper bounds
    }

    #[test]
    fn exact_eval_guards_overflow_and_division() {
        let c = consts();
        let shl = parse_bound_comment("K <= 1 << 200").expect("parses");
        assert_eq!(eval_exact(&shl.rhs, &c), None, "oversized shift is not a value");
        let div = parse_bound_comment("K <= 8 / 0").expect("parses");
        assert_eq!(eval_exact(&div.rhs, &c), None, "division by zero is not a value");
    }
}
