//! The interval abstract domain for the value-range analysis.
//!
//! Values are closed integer intervals `[lo, hi]` over `i128`, wide enough
//! to hold every Rust integer type this workspace uses without overflow in
//! the transfer functions themselves (`u128` is saturated at `i128::MAX`;
//! nothing in the hot paths is `u128`). "Unknown" is represented by the
//! *absence* of an interval (`Option<Interval>` = `None`), and every
//! transfer function returns `None` when the result would be unbounded or
//! when the operation itself could overflow `i128` — going to top is always
//! sound, never precise, and that is the right bias for a lint: an unknown
//! operand can never *prove* an in-range claim, so it can never create a
//! false "proven" verdict.

/// Integer types the analysis tracks. `usize`/`isize` are assumed 64-bit
/// (every target this workspace builds for).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IntTy {
    /// `i8`
    I8,
    /// `u8`
    U8,
    /// `i16`
    I16,
    /// `u16`
    U16,
    /// `i32`
    I32,
    /// `u32`
    U32,
    /// `i64`
    I64,
    /// `u64`
    U64,
    /// `i128`
    I128,
    /// `u128` (range saturated at `i128::MAX`)
    U128,
    /// `usize` (assumed 64-bit)
    Usize,
    /// `isize` (assumed 64-bit)
    Isize,
}

impl IntTy {
    /// Parses an integer type name (`"i32"`, `"usize"`...).
    pub fn parse(s: &str) -> Option<IntTy> {
        Some(match s {
            "i8" => IntTy::I8,
            "u8" => IntTy::U8,
            "i16" => IntTy::I16,
            "u16" => IntTy::U16,
            "i32" => IntTy::I32,
            "u32" => IntTy::U32,
            "i64" => IntTy::I64,
            "u64" => IntTy::U64,
            "i128" => IntTy::I128,
            "u128" => IntTy::U128,
            "usize" => IntTy::Usize,
            "isize" => IntTy::Isize,
            _ => return None,
        })
    }

    /// The type's name as written in source.
    pub fn name(self) -> &'static str {
        match self {
            IntTy::I8 => "i8",
            IntTy::U8 => "u8",
            IntTy::I16 => "i16",
            IntTy::U16 => "u16",
            IntTy::I32 => "i32",
            IntTy::U32 => "u32",
            IntTy::I64 => "i64",
            IntTy::U64 => "u64",
            IntTy::I128 => "i128",
            IntTy::U128 => "u128",
            IntTy::Usize => "usize",
            IntTy::Isize => "isize",
        }
    }

    /// Bit width of the type (64 for `usize`/`isize`).
    pub fn bits(self) -> u32 {
        match self {
            IntTy::I8 | IntTy::U8 => 8,
            IntTy::I16 | IntTy::U16 => 16,
            IntTy::I32 | IntTy::U32 => 32,
            IntTy::I64 | IntTy::U64 | IntTy::Usize | IntTy::Isize => 64,
            IntTy::I128 | IntTy::U128 => 128,
        }
    }

    /// Whether the type is unsigned.
    pub fn unsigned(self) -> bool {
        matches!(
            self,
            IntTy::U8 | IntTy::U16 | IntTy::U32 | IntTy::U64 | IntTy::U128 | IntTy::Usize
        )
    }

    /// Minimum representable value.
    pub fn min(self) -> i128 {
        match self {
            IntTy::I8 => i8::MIN as i128,
            IntTy::I16 => i16::MIN as i128,
            IntTy::I32 => i32::MIN as i128,
            IntTy::I64 | IntTy::Isize => i64::MIN as i128,
            IntTy::I128 => i128::MIN,
            _ => 0,
        }
    }

    /// Maximum representable value (`u128` saturated at `i128::MAX`).
    pub fn max(self) -> i128 {
        match self {
            IntTy::I8 => i8::MAX as i128,
            IntTy::U8 => u8::MAX as i128,
            IntTy::I16 => i16::MAX as i128,
            IntTy::U16 => u16::MAX as i128,
            IntTy::I32 => i32::MAX as i128,
            IntTy::U32 => u32::MAX as i128,
            IntTy::I64 | IntTy::Isize => i64::MAX as i128,
            IntTy::U64 | IntTy::Usize => u64::MAX as i128,
            IntTy::I128 | IntTy::U128 => i128::MAX,
        }
    }

    /// The full range of the type as an interval.
    pub fn range(self) -> Interval {
        Interval::new(self.min(), self.max())
    }

    /// Narrow types (≤ 16 bits) are seeded to their full range when a
    /// binding's value is otherwise unknown; wider types are left unknown,
    /// because a "full `u64` range" operand would condemn every index
    /// computation in the workspace.
    pub fn narrow(self) -> bool {
        self.bits() <= 16
    }
}

/// A closed interval `[lo, hi]` with `lo <= hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i128,
    /// Inclusive upper bound.
    pub hi: i128,
}

impl Interval {
    /// `[lo, hi]`, normalizing a reversed pair.
    pub fn new(lo: i128, hi: i128) -> Interval {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// The singleton interval `[v, v]`.
    pub fn point(v: i128) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `Some(v)` iff the interval is the singleton `[v, v]`.
    pub fn exact(&self) -> Option<i128> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Largest absolute value in the interval.
    pub fn magnitude(&self) -> i128 {
        self.lo.saturating_abs().max(self.hi.saturating_abs())
    }

    /// Whether every value of the interval lies within `ty`'s range.
    pub fn fits(&self, ty: IntTy) -> bool {
        self.lo >= ty.min() && self.hi <= ty.max()
    }

    /// Intersection, `None` when disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// `-x`. `None` on `i128` overflow.
    pub fn neg(&self) -> Option<Interval> {
        Some(Interval::new(self.hi.checked_neg()?, self.lo.checked_neg()?))
    }

    /// `a + b`. `None` on `i128` overflow (top).
    pub fn add(&self, rhs: &Interval) -> Option<Interval> {
        Some(Interval {
            lo: self.lo.checked_add(rhs.lo)?,
            hi: self.hi.checked_add(rhs.hi)?,
        })
    }

    /// `a - b`.
    pub fn sub(&self, rhs: &Interval) -> Option<Interval> {
        Some(Interval {
            lo: self.lo.checked_sub(rhs.hi)?,
            hi: self.hi.checked_sub(rhs.lo)?,
        })
    }

    /// `a * b`: the hull of the four corner products.
    pub fn mul(&self, rhs: &Interval) -> Option<Interval> {
        let cs = [
            self.lo.checked_mul(rhs.lo)?,
            self.lo.checked_mul(rhs.hi)?,
            self.hi.checked_mul(rhs.lo)?,
            self.hi.checked_mul(rhs.hi)?,
        ];
        Some(Interval {
            lo: *cs.iter().min().expect("non-empty"),
            hi: *cs.iter().max().expect("non-empty"),
        })
    }

    /// `a << amt` as multiplication by `2^amt`. Negative or huge shift
    /// amounts yield top; the *rules* separately judge whether the shift
    /// amount is legal for the value's type width.
    pub fn shl(&self, amt: &Interval) -> Option<Interval> {
        if amt.lo < 0 || amt.hi > 126 {
            return None;
        }
        let p_lo = 1i128.checked_shl(amt.lo as u32)?;
        let p_hi = 1i128.checked_shl(amt.hi as u32)?;
        self.mul(&Interval::new(p_lo, p_hi))
    }

    /// `a / b` (truncating). `None` when the divisor interval contains 0.
    pub fn div(&self, rhs: &Interval) -> Option<Interval> {
        if rhs.lo <= 0 && rhs.hi >= 0 {
            return None;
        }
        let cs = [
            self.lo.checked_div(rhs.lo)?,
            self.lo.checked_div(rhs.hi)?,
            self.hi.checked_div(rhs.lo)?,
            self.hi.checked_div(rhs.hi)?,
        ];
        Some(Interval {
            lo: *cs.iter().min().expect("non-empty"),
            hi: *cs.iter().max().expect("non-empty"),
        })
    }

    /// `a % b` for a *known-positive* divisor and a non-negative dividend
    /// type: `[0, max(b) - 1]`. Exact when both are points. Anything else
    /// is top — remainder sign tracking buys nothing for this workspace.
    pub fn rem_nonneg(&self, rhs: &Interval) -> Option<Interval> {
        if rhs.lo <= 0 {
            return None;
        }
        if let (Some(a), Some(b)) = (self.exact(), rhs.exact()) {
            if a >= 0 {
                return Some(Interval::point(a % b));
            }
        }
        Some(Interval::new(0, rhs.hi - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_products_cover_sign_mixes() {
        let a = Interval::new(-128, 127);
        let p = a.mul(&a).expect("bounded");
        // (-128)·(-128) = 16384 dominates 127·127.
        assert_eq!(p, Interval::new(-16256, 16384));
        assert_eq!(p.magnitude(), 16384);
    }

    #[test]
    fn shl_is_pow2_multiplication() {
        let one = Interval::point(1);
        assert_eq!(one.shl(&Interval::new(1, 7)), Some(Interval::new(2, 128)));
        assert_eq!(
            Interval::point(1).shl(&Interval::point(31)),
            Some(Interval::point(1 << 31))
        );
        assert_eq!(one.shl(&Interval::new(-1, 3)), None);
    }

    #[test]
    fn overflow_goes_to_top() {
        let big = Interval::point(i128::MAX);
        assert_eq!(big.add(&Interval::point(1)), None);
        assert_eq!(big.mul(&Interval::point(2)), None);
    }

    #[test]
    fn fits_checks_type_ranges() {
        assert!(Interval::new(0, 255).fits(IntTy::U8));
        assert!(!Interval::new(-1, 255).fits(IntTy::U8));
        assert!(Interval::point(i32::MAX as i128).fits(IntTy::I32));
        assert!(!Interval::point(1 << 31).fits(IntTy::I32));
    }

    #[test]
    fn rem_bounds_by_divisor() {
        let any = Interval::new(0, i128::MAX >> 1);
        assert_eq!(any.rem_nonneg(&Interval::point(8)), Some(Interval::new(0, 7)));
        assert_eq!(Interval::point(13).rem_nonneg(&Interval::point(8)), Some(Interval::point(5)));
        assert_eq!(any.rem_nonneg(&Interval::new(0, 8)), None);
    }
}
