//! Rule `unordered-iteration`: iteration over `HashMap`/`HashSet` in the
//! deterministic-scope crates must not let hash order reach an output.
//!
//! Every headline gate in this repo — `scaling_threads`, `slo_gate`,
//! `prefix_gate` — asserts bit-identical token streams and reports across
//! pool widths, and PR 5 shipped exactly this bug class: a
//! `HashMap`-ordered deadline sweep reordered same-step expiries. The
//! compiler cannot see the contract, because `HashMap` iteration is
//! perfectly well-typed; it is only *unordered*. This rule flags every
//! iteration-shaped use of a hash-typed binding (`.iter()`, `.keys()`,
//! `.values()`, `.drain()`, `.retain()`, `for _ in &map`, ...) inside the
//! deterministic-scope crates, unless the surrounding statement window
//! visibly restores an order:
//!
//! * the iteration's result is sorted in the same or the immediately
//!   following statement (`.collect()` + `sort_unstable()` is the
//!   canonical shape, as in the engine's deadline sweep before it moved
//!   to `BTreeMap`), or
//! * it is keyed into a `BTreeMap`/`BTreeSet`, or
//! * it collapses through an order-insensitive reduction (`count`, `len`,
//!   `is_empty`, `min`, `max`, `any`, `all`).
//!
//! Anything else needs a justified `// lint: allow(unordered-iteration)`.
//! Note `sum`/`fold` are *not* escapes: float addition is not associative,
//! and a fold's accumulator sees hash order.
//!
//! Hash-typed bindings come from the lexer's lightweight type tracking
//! ([`crate::lexer::type_bindings`]): ascriptions and constructor
//! inference, per file, without shadowing analysis. Point lookups
//! (`get`, `insert`, `remove`, `entry`, `contains_key`) are fine — hash
//! maps stay the right structure for keyed access; only traversal order
//! is the hazard.

use crate::lexer::{in_ranges, type_bindings, Lexed, TokKind};
use crate::{FileCtx, Finding, RULE_UNORDERED_ITERATION};

/// Crates whose outputs are gated bit-identical (serving stack, kernels,
/// model, quantizer): the deterministic scope.
const SCOPED_CRATES: &[&str] = &[
    "atom-serve",
    "atom-gateway",
    "atom-prefix",
    "atom-parallel",
    "atom-kernels",
    "atom-nn",
    "atom",
];

/// The hash-ordered collection types the rule tracks.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods that traverse a collection in iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Identifiers whose presence in the statement window proves the order is
/// restored (sorting, ordered re-keying) or irrelevant (order-insensitive
/// reductions).
const ORDER_ESCAPES: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "count",
    "len",
    "is_empty",
    "min",
    "max",
    "min_by_key",
    "max_by_key",
    "any",
    "all",
];

/// `(start, end)` token window: from the start of the statement holding
/// token `i` through the end of the *next* statement, so a
/// `collect()`-then-`sort()` pair is visible as one unit. Statement
/// boundaries are `;` at the current brace depth; `{`/`}` bound the
/// enclosing block.
fn stmt_window(lexed: &Lexed, i: usize) -> (usize, usize) {
    let toks = &lexed.tokens;
    let mut start = i;
    while start > 0 {
        match toks[start - 1].text.as_str() {
            ";" | "{" | "}" => break,
            _ => start -= 1,
        }
    }
    let mut end = i;
    let mut depth = 0usize;
    let mut semis = 0usize;
    while end + 1 < toks.len() {
        end += 1;
        match toks[end].text.as_str() {
            "{" => depth += 1,
            "}" => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            ";" if depth == 0 => {
                semis += 1;
                if semis == 2 {
                    break;
                }
            }
            _ => {}
        }
    }
    (start, end)
}

fn window_has_escape(lexed: &Lexed, i: usize) -> bool {
    let (start, end) = stmt_window(lexed, i);
    lexed.tokens[start..=end]
        .iter()
        .any(|t| t.kind == TokKind::Ident && ORDER_ESCAPES.contains(&t.text.as_str()))
}

pub fn check(
    ctx: &FileCtx,
    lexed: &Lexed,
    test_ranges: &[(usize, usize)],
    findings: &mut Vec<Finding>,
) {
    if !SCOPED_CRATES.contains(&ctx.crate_name.as_str()) || !ctx.kind.is_production() {
        return;
    }
    let bindings = type_bindings(lexed, HASH_TYPES);
    if bindings.is_empty() {
        return;
    }
    let is_hash = |name: &str| bindings.iter().any(|b| b.name == name);
    let toks = &lexed.tokens;

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || in_ranges(test_ranges, t.line) {
            continue;
        }

        // Method form: `<hash_binding> . iter ( ...` — the receiver is the
        // identifier directly before the dot, however long the field chain
        // before it (`self.prefix.planned.drain()` ends in `planned`).
        if ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && toks[i - 1].text == "."
            && toks[i - 2].kind == TokKind::Ident
            && is_hash(&toks[i - 2].text)
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            if !window_has_escape(lexed, i) {
                findings.push(Finding {
                    file: ctx.path.clone(),
                    line: t.line,
                    rule: RULE_UNORDERED_ITERATION,
                    message: format!(
                        "`.{}()` on hash-typed `{}` observes nondeterministic order; \
                         sort the result, key into a BTreeMap, or justify with a \
                         lint allow",
                        t.text, toks[i - 2].text
                    ),
                });
            }
            continue;
        }

        // For-loop form: `for .. in [&][mut] <path.to.>hash_binding {`.
        // The iterable is everything between `in` and the body `{`; when
        // it is a bare (borrowed) binding with no method call, `IntoIterator`
        // hands back hash order directly.
        if t.text == "for" {
            let mut j = i + 1;
            let mut depth = 0usize;
            // Skip the pattern to the `in` keyword.
            while let Some(p) = toks.get(j) {
                match p.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    "in" if depth == 0 && p.kind == TokKind::Ident => break,
                    _ => {}
                }
                j += 1;
            }
            let in_idx = j;
            // Collect the iterable tokens up to the body brace.
            let mut k = in_idx + 1;
            let mut iterable_end = None;
            while let Some(p) = toks.get(k) {
                if p.text == "{" {
                    iterable_end = Some(k);
                    break;
                }
                k += 1;
            }
            let Some(body) = iterable_end else { continue };
            let iterable = &toks[in_idx + 1..body];
            // Strip leading borrows; accept only `ident(.ident)*`.
            let mut idx = 0;
            while iterable
                .get(idx)
                .is_some_and(|p| p.text == "&" || p.text == "mut")
            {
                idx += 1;
            }
            let rest = &iterable[idx..];
            if rest.is_empty() || rest.len().is_multiple_of(2) {
                continue;
            }
            let shape_ok = rest.iter().enumerate().all(|(n, p)| {
                if n % 2 == 0 {
                    p.kind == TokKind::Ident
                } else {
                    p.text == "."
                }
            });
            let Some(last) = rest.last() else { continue };
            if shape_ok && is_hash(&last.text) {
                findings.push(Finding {
                    file: ctx.path.clone(),
                    line: t.line,
                    rule: RULE_UNORDERED_ITERATION,
                    message: format!(
                        "`for` over hash-typed `{}` observes nondeterministic order; \
                         iterate a sorted key list or a BTreeMap instead",
                        last.text
                    ),
                });
            }
        }
    }
}
