//! Rule `telemetry-names`: recording call sites and `telemetry::names` stay
//! in exact bijection.
//!
//! PR 2's `telemetry_report` gate compares the measured kernel breakdown
//! against the roofline simulation **key-for-key**. A call site recording
//! under a literal string (instead of a declared constant) silently drops
//! out of that comparison; a declared constant nobody records makes the
//! report claim coverage it does not have. Two checks:
//!
//! * **call-site check** (this file, per file): the name argument of
//!   `counter_add(..)`, `gauge_set(..)`, `record(..)`, `timer(..)`,
//!   `span(..)` and the `span!(..)` macro must not be a string literal —
//!   it must come from `names::*`. Arguments that are neither literal nor
//!   a `names::` path (locals, helper-function calls such as
//!   `terminal_metric(..)`) are accepted; the helpers themselves reference
//!   `names::` constants, which the usage scan below picks up.
//! * **usage scan** (aggregated by the workspace pass): every `names::X`
//!   reference in production code counts as a recording use of `X`; a
//!   declared constant with zero uses is a finding. `crates/bench` is
//!   excluded from the usage scan — report binaries *read* metrics by name,
//!   and a name that is only ever read is exactly the drift this rule
//!   exists to catch.
//!
//! The telemetry crate itself is exempt: its implementation manipulates
//! names generically, and its doctests/tests use throwaway names.

use crate::lexer::{in_ranges, Lexed, TokKind};
use crate::{FileCtx, Finding, NamesTable, RULE_TELEMETRY_NAMES};

/// Methods whose first argument is a metric name.
const RECORDING_CALLS: &[&str] = &["counter_add", "gauge_set", "record", "timer", "span"];

pub fn check(
    ctx: &FileCtx,
    lexed: &Lexed,
    test_ranges: &[(usize, usize)],
    names: Option<&NamesTable>,
    used_names: &mut Vec<String>,
    findings: &mut Vec<Finding>,
) {
    if ctx.crate_name == "atom-telemetry" || ctx.crate_name == "atom-lint" {
        return;
    }
    if !ctx.kind.is_production() {
        return;
    }
    let toks = &lexed.tokens;

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || in_ranges(test_ranges, t.line) {
            continue;
        }

        // Usage scan: `names :: IDENT`.
        if t.text == "names"
            && toks.get(i + 1).is_some_and(|a| a.text == ":")
            && toks.get(i + 2).is_some_and(|b| b.text == ":")
        {
            if let Some(ident) = toks.get(i + 3) {
                if ident.kind == TokKind::Ident {
                    if ctx.crate_name != "atom-bench" {
                        used_names.push(ident.text.clone());
                    }
                    if let Some(table) = names {
                        if !table.consts.contains_key(&ident.text) {
                            findings.push(Finding {
                                file: ctx.path.clone(),
                                line: ident.line,
                                rule: RULE_TELEMETRY_NAMES,
                                message: format!(
                                    "`names::{}` is not declared in telemetry::names",
                                    ident.text
                                ),
                            });
                        }
                    }
                }
            }
            continue;
        }

        // Call-site check: recording method or the span! macro with a
        // string-literal name.
        if !RECORDING_CALLS.contains(&t.text.as_str()) {
            continue;
        }
        let arg = match (toks.get(i + 1), toks.get(i + 2)) {
            // method style: `counter_add(<arg>`
            (Some(open), Some(arg)) if open.text == "(" => arg,
            // macro style: `span!(<arg>`
            (Some(bang), Some(_open)) if bang.text == "!" && t.text == "span" => {
                match toks.get(i + 3) {
                    Some(arg) => arg,
                    None => continue,
                }
            }
            _ => continue,
        };
        if arg.kind == TokKind::StrLit {
            findings.push(Finding {
                file: ctx.path.clone(),
                line: arg.line,
                rule: RULE_TELEMETRY_NAMES,
                message: format!(
                    "metric/span name {} must be a `telemetry::names` constant so the \
                     measured-vs-roofline comparison cannot drift",
                    arg.text
                ),
            });
        }
    }
}
