//! Rule `lossy-cast`: truncating / sign-changing `as` casts are confined to
//! the audited quantizer modules.
//!
//! Atom's accuracy story depends on bit-exact integer behavior: a stray
//! `as i8` that silently truncates, or an `as f32` that rounds a count, is
//! exactly the kind of bug that shifts a perplexity table by a tenth of a
//! point with no test failing. The quantizer modules *must* perform such
//! casts — that is their job — so they are allowlisted below after audit;
//! everywhere else, code goes through the checked helpers in
//! `atom_tensor::cast`, which encode the numeric contract (saturate, clamp,
//! or debug-assert losslessness).
//!
//! Detection is textual (token `as` followed by a banned target type), so
//! float→`usize`/`i64` casts are out of reach — the banned list covers the
//! narrow targets where truncation bites in this codebase. Test code is
//! exempt in ordinary crates: fabricating fixtures with `(i % 96) as u16`
//! is fine. In `atom-kernels` the exemption is dropped — its tests encode
//! the bit-exactness contract, so a wrapping cast in a fixture generator
//! silently weakens the very property the test exists to pin down.

use crate::lexer::{in_ranges, Lexed, TokKind};
use crate::{FileCtx, Finding, RULE_LOSSY_CAST};

/// Cast targets that can truncate or change signedness.
const BANNED_TARGETS: &[&str] = &["i8", "u8", "i16", "u16", "i32", "f32"];

/// Audited quantizer modules where low-bit casts are the point. The audit
/// covers *production* ranges only: test modules in `atom-kernels` entries
/// are still linted (see module docs). Every entry here was reviewed for
/// clamp-before-cast discipline:
///
/// * `kernels/*` — pack/unpack, group/asym quantize, fused GEMM, quantized
///   KV attention: all casts sit after explicit `clamp`/`round` or inside
///   bias arithmetic bounded by the bit width.
/// * `tensor/f16.rs` — the f16 rounding shim is bit-twiddling by nature.
/// * `tensor/cast.rs` — the checked-helper module itself: each cast there
///   sits behind the contract (clamp/saturate/debug-assert) it exports.
/// * `core/*` — the quantization algorithms (GPTQ, MX, calibration,
///   baselines, the quantized linear layer) own the value-domain choices.
const ALLOWLIST: &[&str] = &[
    "crates/kernels/src/packed.rs",
    "crates/kernels/src/group.rs",
    "crates/kernels/src/asym.rs",
    "crates/kernels/src/gemm.rs",
    "crates/kernels/src/attention.rs",
    "crates/tensor/src/f16.rs",
    "crates/tensor/src/cast.rs",
    "crates/core/src/gptq.rs",
    "crates/core/src/mx.rs",
    "crates/core/src/calibrate.rs",
    "crates/core/src/baselines.rs",
    "crates/core/src/qlinear.rs",
];

pub fn check(
    ctx: &FileCtx,
    lexed: &Lexed,
    test_ranges: &[(usize, usize)],
    findings: &mut Vec<Finding>,
) {
    if !ctx.kind.is_production() {
        return;
    }
    let allowlisted = ALLOWLIST.contains(&ctx.path.as_str());
    // In the audited kernels modules the production code is exempt (the
    // audit) but test code is not; everywhere else it is the reverse.
    let audit_tests = allowlisted && ctx.crate_name == "atom-kernels";
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || t.text != "as" {
            continue;
        }
        let in_test = in_ranges(test_ranges, t.line);
        let exempt = if allowlisted { !(in_test && audit_tests) } else { in_test };
        if exempt {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        // `as i8` must be the whole target type: reject when part of a
        // path/generic (e.g. `as u8 ::MAX` never parses that way in Rust,
        // but `as f32` followed by `.` is still the cast we want).
        if target.kind == TokKind::Ident && BANNED_TARGETS.contains(&target.text.as_str()) {
            let context = if in_test {
                "in kernels test code (fixture generators pin the bit-exactness contract)"
            } else {
                "outside the audited quantizer modules"
            };
            findings.push(Finding {
                file: ctx.path.clone(),
                line: t.line,
                rule: RULE_LOSSY_CAST,
                message: format!(
                    "`as {}` can truncate or change signedness {context}; \
                     use the checked helpers in `atom_tensor::cast`",
                    target.text
                ),
            });
        }
    }
}
