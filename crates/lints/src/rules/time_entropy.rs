//! Rule `time-entropy`: wall-clock and ambient-state reads are confined
//! to the telemetry crate and the audited config entry points.
//!
//! The serving stack's tick loop is deterministic by construction:
//! deadlines are measured in engine steps, retry jitter comes from seeded
//! SplitMix64, and chaos schedules replay from a `--seed`. One stray
//! `Instant::now()` compared against a threshold, one `SystemTime`-seeded
//! RNG, or one environment variable read inside a scheduling decision
//! silently breaks the bit-identical contract that `scaling_threads`,
//! `slo_gate`, and `prefix_gate` gate on — and unlike a logic bug it
//! breaks it *rarely*, which is worse. Flagged in production code:
//!
//! * `Instant::now()` / `SystemTime::now()` / `UNIX_EPOCH` — wall-clock
//!   reads. Telemetry timing is exempt (the whole telemetry crate is out
//!   of scope); anywhere else, a wall read used purely for observability
//!   carries a justified `lint: allow(time-entropy)` so the audit records
//!   *why* it cannot feed back into scheduling.
//! * `std::env::var` / `var_os` / `vars` — ambient configuration. Only
//!   the audited entry points in `AUDITED_ENV_FILES` may read the
//!   environment; they resolve config once, at construction, into plain
//!   values the deterministic core consumes.
//! * `thread_rng` / `from_entropy` / `OsRng` — non-seeded RNG
//!   construction. Every RNG in this workspace is seeded (`--seed`,
//!   `FaultPlan`, SplitMix64 jitter); OS entropy has no business here.
//!
//! Tests, examples, and benches are exempt (`FileKind` scoping), but the
//! bench *bins* are production: their reports are gated bit-identical, so
//! their wall-clock measurement sites each carry a justification.

use crate::lexer::{in_ranges, Lexed, TokKind};
use crate::{FileCtx, Finding, RULE_TIME_ENTROPY};

/// Files allowed to read environment variables: the audited config entry
/// points. Each resolves ambient state once into explicit configuration:
///
/// * `parallel/src/lib.rs` — `ATOM_THREADS` pool sizing, read at pool
///   construction; the pool's contract makes width observable-free.
/// * `nn/src/zoo.rs` — `ATOM_MODEL_CACHE` cache directory for trained
///   model weights; affects where bytes land, never what they are.
/// * `kernels/src/path.rs` — `ATOM_KERNEL_PATH` scalar/SWAR kernel
///   selection, resolved once into a `OnceLock`; the two paths are proven
///   bit-identical, so the choice affects speed, never results.
const AUDITED_ENV_FILES: &[&str] = &[
    "crates/parallel/src/lib.rs",
    "crates/nn/src/zoo.rs",
    "crates/kernels/src/path.rs",
];

/// Identifiers that construct OS-entropy RNGs.
const ENTROPY_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng"];

/// `a :: b` adjacency in the token stream (two `:` puncts between idents).
fn path_sep(lexed: &Lexed, i: usize) -> bool {
    lexed.tokens.get(i).is_some_and(|t| t.text == ":")
        && lexed.tokens.get(i + 1).is_some_and(|t| t.text == ":")
}

pub fn check(
    ctx: &FileCtx,
    lexed: &Lexed,
    test_ranges: &[(usize, usize)],
    findings: &mut Vec<Finding>,
) {
    if ctx.crate_name == "atom-telemetry" || ctx.crate_name == "atom-lint" {
        return;
    }
    if !ctx.kind.is_production() {
        return;
    }
    let env_audited = AUDITED_ENV_FILES.contains(&ctx.path.as_str());
    let toks = &lexed.tokens;

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || in_ranges(test_ranges, t.line) {
            continue;
        }
        // Wall clock: `Instant::now` / `SystemTime::now` (the type alone
        // is fine — storing an `Instant` someone else produced is not a
        // read), plus the `UNIX_EPOCH` anchor.
        if (t.text == "Instant" || t.text == "SystemTime")
            && path_sep(lexed, i + 1)
            && toks.get(i + 3).is_some_and(|m| m.text == "now")
        {
            findings.push(Finding {
                file: ctx.path.clone(),
                line: t.line,
                rule: RULE_TIME_ENTROPY,
                message: format!(
                    "`{}::now()` reads the wall clock outside atom-telemetry; \
                     deterministic code measures in steps/ticks — justify \
                     observability-only reads with a lint allow",
                    t.text
                ),
            });
            continue;
        }
        if t.text == "UNIX_EPOCH" {
            findings.push(Finding {
                file: ctx.path.clone(),
                line: t.line,
                rule: RULE_TIME_ENTROPY,
                message: "`UNIX_EPOCH` anchors wall-clock arithmetic outside atom-telemetry"
                    .into(),
            });
            continue;
        }
        // Ambient environment: `env::var` / `var_os` / `vars`.
        if (t.text == "var" || t.text == "var_os" || t.text == "vars")
            && i >= 3
            && toks[i - 3].text == "env"
            && path_sep(lexed, i - 2)
            && !env_audited
        {
            findings.push(Finding {
                file: ctx.path.clone(),
                line: t.line,
                rule: RULE_TIME_ENTROPY,
                message: format!(
                    "`env::{}` reads ambient state outside the audited config entry \
                     points; thread explicit configuration instead",
                    t.text
                ),
            });
            continue;
        }
        // OS entropy.
        if ENTROPY_IDENTS.contains(&t.text.as_str()) {
            findings.push(Finding {
                file: ctx.path.clone(),
                line: t.line,
                rule: RULE_TIME_ENTROPY,
                message: format!(
                    "`{}` constructs a non-seeded RNG; every random stream in this \
                     workspace must be seeded and replayable",
                    t.text
                ),
            });
        }
    }
}
