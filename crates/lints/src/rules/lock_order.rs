//! Rule `lock-order`: nested lock acquisitions must follow a documented
//! global order, and the cross-file acquisition graph must be acyclic.
//!
//! The workspace keeps almost all concurrency inside the deterministic
//! thread pool, but the few shared-state locks that exist (`Mutex`,
//! `RwLock` — today in `atom-telemetry`'s registry and tracer) are exactly
//! where a future refactor can introduce a deadlock the test suite will
//! never reproduce on one machine. This rule makes the acquisition
//! structure auditable:
//!
//! * **per-file** (this pass): inside each function, a second lock
//!   acquired while another lock's guard is still live is a
//!   *multi-lock site*. Every such site must carry a `// lock order:`
//!   comment (same convention as `// SAFETY:`) documenting the global
//!   order it respects — or a justified `lint: allow(lock-order)`.
//! * **cross-file** (the workspace pass, [`crate::lock_cycle_findings`]):
//!   every nested acquisition contributes an edge
//!   `held-lock → acquired-lock` to a workspace-wide graph, with nodes
//!   named `crate::binding`. A cycle in that graph — `a → b` somewhere,
//!   `b → a` somewhere else, possibly in different files — is reported as
//!   a potential deadlock regardless of comments: a documented wrong
//!   order is still wrong.
//!
//! Guard lifetimes use a lightweight model over the lexer's function
//! spans: a guard bound by a `let` statement is held to the end of the
//! function (block-scope drops and explicit `drop(guard)` are not
//! modeled — the over-approximation may require an allow, never misses a
//! nesting); any other acquisition (method-chain temporary, `if let`
//! scrutinee) is held to the end of its statement, which matches Rust's
//! temporary-lifetime extension to the enclosing statement. Lock
//! receivers come from the lexer's type tracking, so `file.read(buf)` on
//! an untracked binding never confuses the rule.

use crate::lexer::{fn_spans, in_ranges, type_bindings, Lexed, TokKind};
use crate::{FileCtx, Finding, RULE_LOCK_ORDER};

/// Lock types whose guards the rule models.
const LOCK_TYPES: &[&str] = &["Mutex", "RwLock"];

/// Guard-producing methods on those types.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// One nested-acquisition edge in the workspace lock graph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Lock already held, as `crate::binding`.
    pub from: String,
    /// Lock acquired while `from` is held.
    pub to: String,
    /// Workspace-relative file of the acquisition site.
    pub file: String,
    /// 1-based line of the acquisition site.
    pub line: usize,
}

/// Whether the acquisition on `line` is documented by a `lock order:`
/// comment — on the line itself or in the contiguous comment block above
/// (blank lines allowed), mirroring the `// SAFETY:` convention.
fn has_order_comment(lexed: &Lexed, line: usize) -> bool {
    let marker = "lock order:";
    if lexed
        .comments
        .iter()
        .any(|c| c.line == line && c.text.contains(marker))
    {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        match lexed.comments.iter().find(|c| c.line == l) {
            Some(c) if c.text.contains(marker) => return true,
            Some(_) => {}
            None if lexed.has_code_on(l) => break,
            None => {}
        }
    }
    false
}

/// Index of the next `;` token at or after `i` (any depth — good enough
/// for the statement-temporary model), or `end` if none before it.
fn next_semi(lexed: &Lexed, i: usize, end: usize) -> usize {
    let mut j = i;
    while j < end {
        if lexed.tokens[j].text == ";" {
            return j;
        }
        j += 1;
    }
    end
}

/// Whether the statement containing token `i` starts with `let` (scanning
/// back to the previous statement boundary).
fn stmt_is_let(lexed: &Lexed, i: usize) -> bool {
    let toks = &lexed.tokens;
    let mut j = i;
    while j > 0 {
        match toks[j - 1].text.as_str() {
            ";" | "{" | "}" => break,
            _ => j -= 1,
        }
    }
    toks.get(j).is_some_and(|t| t.text == "let")
}

pub fn check(
    ctx: &FileCtx,
    lexed: &Lexed,
    test_ranges: &[(usize, usize)],
    edges: &mut Vec<LockEdge>,
    findings: &mut Vec<Finding>,
) {
    if ctx.crate_name == "atom-lint" || !ctx.kind.is_production() {
        return;
    }
    let bindings = type_bindings(lexed, LOCK_TYPES);
    if bindings.is_empty() {
        return;
    }
    let is_lock = |name: &str| bindings.iter().any(|b| b.name == name);
    let toks = &lexed.tokens;

    for span in fn_spans(lexed) {
        // Held guards as (lock node, release token index, acquire line).
        let mut held: Vec<(String, usize, usize)> = Vec::new();
        let mut i = span.body_start;
        while i + 2 <= span.body_end {
            let t = &toks[i];
            let acquisition = t.kind == TokKind::Ident
                && is_lock(&t.text)
                && toks.get(i + 1).is_some_and(|d| d.text == ".")
                && toks
                    .get(i + 2)
                    .is_some_and(|m| ACQUIRE_METHODS.contains(&m.text.as_str()))
                && toks.get(i + 3).is_some_and(|p| p.text == "(");
            if !acquisition {
                i += 1;
                continue;
            }
            let line = t.line;
            let node = format!("{}::{}", ctx.crate_name, t.text);
            held.retain(|&(_, release, _)| release > i);
            if !held.is_empty() && !in_ranges(test_ranges, line) {
                for (from, _, _) in &held {
                    edges.push(LockEdge {
                        from: from.clone(),
                        to: node.clone(),
                        file: ctx.path.clone(),
                        line,
                    });
                }
                if !has_order_comment(lexed, line) {
                    findings.push(Finding {
                        file: ctx.path.clone(),
                        line,
                        rule: RULE_LOCK_ORDER,
                        message: format!(
                            "`{}` acquired while `{}` is held: document the global \
                             acquisition order with a `// lock order:` comment at \
                             this site",
                            t.text,
                            held.iter()
                                .map(|(f, _, _)| f.rsplit(':').next().unwrap_or(f))
                                .collect::<Vec<_>>()
                                .join("`, `"),
                        ),
                    });
                }
            }
            let release = if stmt_is_let(lexed, i) {
                span.body_end
            } else {
                next_semi(lexed, i, span.body_end)
            };
            held.push((node, release, line));
            i += 3;
        }
    }
}
