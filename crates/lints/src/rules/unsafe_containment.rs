//! Rule `unsafe-containment`: `#![forbid(unsafe_code)]` on every crate
//! root, except `atom-telemetry` where any `unsafe` block must carry a
//! `// SAFETY:` comment.
//!
//! The reproduction's results are only trustworthy if the numeric code is
//! memory-safe by construction. Telemetry is the one crate allowed to earn
//! `unsafe` (e.g. a future lock-free histogram), and there every block
//! must explain its proof obligation in a `// SAFETY:` comment directly
//! above it — the convention the standard library uses.

use crate::lexer::{Lexed, TokKind};
use crate::{FileCtx, Finding, RULE_UNSAFE_CONTAINMENT};

/// The one crate permitted to contain audited `unsafe`.
const UNSAFE_CAPABLE: &str = "atom-telemetry";

fn has_forbid_unsafe(lexed: &Lexed) -> bool {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if toks[i].text != "forbid" || toks[i].kind != TokKind::Ident {
            continue;
        }
        // Must be the inner attribute `#![forbid(...)]`.
        let inner_attr = i >= 3
            && toks[i - 1].text == "["
            && toks[i - 2].text == "!"
            && toks[i - 3].text == "#";
        if !inner_attr {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).map(|t| t.text.as_str()) != Some("(") {
            continue;
        }
        j += 1;
        while j < toks.len() && toks[j].text != ")" {
            if toks[j].text == "unsafe_code" {
                return true;
            }
            j += 1;
        }
    }
    false
}

pub fn check(ctx: &FileCtx, lexed: &Lexed, findings: &mut Vec<Finding>) {
    let is_capable = ctx.crate_name == UNSAFE_CAPABLE;

    if ctx.kind.is_crate_root() && !is_capable && !has_forbid_unsafe(lexed) {
        findings.push(Finding {
            file: ctx.path.clone(),
            line: 1,
            rule: RULE_UNSAFE_CONTAINMENT,
            message: "crate root must carry `#![forbid(unsafe_code)]` \
                      (only atom-telemetry may hold audited unsafe)"
                .into(),
        });
    }

    if !ctx.kind.is_production() {
        return;
    }
    for t in &lexed.tokens {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        if !is_capable {
            findings.push(Finding {
                file: ctx.path.clone(),
                line: t.line,
                rule: RULE_UNSAFE_CONTAINMENT,
                message: "`unsafe` outside atom-telemetry; this crate forbids unsafe code".into(),
            });
            continue;
        }
        // In the capable crate: require a SAFETY comment on the same line
        // or in the contiguous comment block directly above.
        let mut documented = lexed
            .comments
            .iter()
            .any(|c| c.line == t.line && c.text.contains("SAFETY:"));
        let mut line = t.line;
        while !documented && line > 1 {
            line -= 1;
            let comment_here = lexed.comments.iter().find(|c| c.line == line);
            match comment_here {
                Some(c) if c.text.contains("SAFETY:") => documented = true,
                Some(_) => {}
                // A non-comment line above ends the contiguous block —
                // unless it holds no code either (blank lines are skipped).
                None if lexed.has_code_on(line) => break,
                None => {}
            }
        }
        if !documented {
            findings.push(Finding {
                file: ctx.path.clone(),
                line: t.line,
                rule: RULE_UNSAFE_CONTAINMENT,
                message: "`unsafe` block without a `// SAFETY:` comment explaining the \
                          proof obligation"
                    .into(),
            });
        }
    }
}
