//! Rule `unchecked-arith`: bare `+`/`*`/`<<` on *signed* integer values in
//! hot-path production code must be provably in-range by the interval
//! analysis, or be explicitly `wrapping_*`/`checked_*`/`saturating_*`, or
//! carry a justified `lint: allow(unchecked-arith)`.
//!
//! Scope, deliberately: operations whose unified operand type resolves to a
//! signed integer (`i8`/`i16`/`i32`/`i64`/`i128`/`isize`). That is exactly
//! the value domain of the quantized pipeline — packed codes, products,
//! accumulators, zero-point arithmetic — where a silent two's-complement
//! wrap corrupts a result without any test failing. Unsigned and `usize`
//! arithmetic is the index/bit-packing domain: every such value feeds a
//! slice access that is bounds-checked (and panics loudly in debug builds
//! on overflow), and the packing layer is covered by exhaustive roundtrip
//! tests. Auditing it here would bury the value-domain findings under
//! index-expression noise. Operations whose type cannot be inferred at all
//! are skipped — an under-approximation the module documents rather than
//! hides (float arithmetic falls out the same way: no integer type, no
//! finding).
//!
//! A site discharges its obligation in one of three ways:
//!
//! 1. the interval analysis *proves* the result in-range for the inferred
//!    type (both operand intervals known, result fits);
//! 2. the code says what it wants on overflow (`wrapping_add`,
//!    `checked_mul`, `saturating_sub`, ... — the eval layer already treats
//!    these as in-range by contract);
//! 3. a `lint: allow(unchecked-arith) — <reason>` directive.
//!
//! When the interval is known and provably *exceeds* the type, the message
//! says so with the computed range — that is a latent overflow, not merely
//! an unproven one.

use crate::analysis::expr::{eval, walk, BinOp, ExprKind};
use crate::analysis::{FnFlow, WorkspaceAnalysis, HOT_CRATES};
use crate::lexer::{in_ranges, Lexed};
use crate::{FileCtx, Finding, RULE_UNCHECKED_ARITH};
use std::collections::BTreeSet;

pub fn check(
    ctx: &FileCtx,
    _lexed: &Lexed,
    test_ranges: &[(usize, usize)],
    analysis: &WorkspaceAnalysis,
    flows: &[FnFlow],
    findings: &mut Vec<Finding>,
) {
    if !ctx.kind.is_production() || !HOT_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    // One finding per line: nested expressions (`a + b + c`) would
    // otherwise report every unprovable sub-node of the same tree.
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for flow in flows {
        let env = analysis.env(&flow.env);
        let reached = analysis.reached_from(&ctx.crate_name, &flow.span.name);
        walk(&flow.body, false, &mut |e, _| {
            let ExprKind::Bin(op @ (BinOp::Add | BinOp::Mul | BinOp::Shl), lhs, rhs) = &e.kind
            else {
                return;
            };
            let v = eval(e, &env);
            let Some(ty) = v.ty else { return };
            if ty.unsigned() {
                return;
            }
            if in_ranges(test_ranges, e.line) || flagged.contains(&e.line) {
                return;
            }
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Mul => "*",
                _ => "<<",
            };
            let message = match v.iv {
                Some(iv) if iv.fits(ty) => return, // proven in-range
                Some(iv) => format!(
                    "`{sym}` on `{}` can overflow: the interval analysis bounds the \
                     result to [{}, {}], which exceeds `{}`'s range — use \
                     `checked_*`/`saturating_*` or tighten the operands",
                    ty.name(),
                    iv.lo,
                    iv.hi,
                    ty.name()
                ),
                None => {
                    let (a, b) = (eval(lhs, &env), eval(rhs, &env));
                    let culprit = match (a.iv, b.iv) {
                        (None, Some(_)) => " (left operand unbounded)",
                        (Some(_), None) => " (right operand unbounded)",
                        (None, None) => " (both operands unbounded)",
                        (Some(_), Some(_)) => " (result exceeds the analysis domain)",
                    };
                    format!(
                        "`{sym}` on `{}` is not provably in-range{culprit} — make the \
                         operand ranges inferable, use `wrapping_*`/`checked_*`/\
                         `saturating_*`, or justify with `lint: allow(unchecked-arith)`",
                        ty.name()
                    )
                }
            };
            flagged.insert(e.line);
            findings.push(Finding {
                file: ctx.path.clone(),
                line: e.line,
                rule: RULE_UNCHECKED_ARITH,
                message: format!("{message}{reached}"),
            });
        });
    }
}
