//! Rule `accumulator-width`: every reduction into `i32`/`i64` over
//! quantized products in a hot-path crate must carry a machine-checkable
//! `// bound:` proof comment — and the comment must actually *prove* the
//! reduction safe against the workspace constants and the interval
//! analysis. A comment that parses but does not prove is a finding, the
//! same as a missing one: a wrong proof is worse than no proof.
//!
//! The obligation, for a reduction `acc: iN` over summands the interval
//! analysis bounds by `|summand| ≤ T`:
//!
//! * the comment `// bound: K * C <= LIMIT` (or `<`) must mention the free
//!   reduction-length variable `K` exactly once, as a product factor;
//! * every other factor and the limit must evaluate exactly against the
//!   workspace constants (`MAX_BITS`, `MAX_ACC_K`, ...) and the
//!   `I32_MAX`-style builtins — a name with conflicting definitions across
//!   files is ambiguous and proves nothing;
//! * the claimed per-element coefficient `C` must dominate the derived
//!   summand bound: `C ≥ T` (otherwise the comment understates what one
//!   term can contribute);
//! * the claimed total must fit the accumulator: `LIMIT − strict ≤ iN::MAX`;
//! * the claim must admit at least one element (`⌊(LIMIT − strict)/C⌋ ≥ 1`).
//!
//! Two site families are audited: `.sum::<i32>()` / `.sum::<i64>()`
//! reductions (including `let acc: i32 = ...sum();` ascription-typed ones)
//! and `acc += ...` compound assignments inside loop bodies where `acc` is
//! `i32`/`i64` — the loop-head widening of the accumulator's interval is
//! exactly why only an explicit reduction-length bound can discharge these.

use crate::analysis::expr::{
    eval, eval_exact, is_k, parse_bound_comment, product_factors, render, walk, BoundClaim,
    Expr, ExprKind, Stmt, StmtKind, TyAnn,
};
use crate::analysis::expr::Binding;
use crate::analysis::interval::IntTy;
use crate::analysis::{iter_scalar_seed, FnFlow, WorkspaceAnalysis, HOT_CRATES};
use crate::lexer::{in_ranges, Lexed};
use crate::{FileCtx, Finding, RULE_ACCUMULATOR_WIDTH};
use std::collections::BTreeMap;

/// One audited reduction site.
struct Site<'e> {
    /// Line of the reduction expression itself.
    line: usize,
    /// Line the enclosing statement starts on (where a leading proof
    /// comment would sit).
    stmt_line: usize,
    /// Accumulator type, when syntactically evident (`sum::<i32>()` or a
    /// `let acc: i64` ascription). `+=` sites resolve it later through the
    /// flow environment.
    acc: Option<IntTy>,
    /// The assigned place of a `+=` site, for environment typing.
    place: Option<&'e Expr>,
    /// The per-element summand expression, when the site exposes one
    /// (`map` closure body, or the right side of `+=`).
    summand: Option<&'e Expr>,
    /// The `.sum()` receiver chain, for element-seed fallback.
    chain: Option<&'e Expr>,
    /// Human label for messages.
    what: &'static str,
}

pub fn check(
    ctx: &FileCtx,
    lexed: &Lexed,
    test_ranges: &[(usize, usize)],
    analysis: &WorkspaceAnalysis,
    flows: &[FnFlow],
    findings: &mut Vec<Finding>,
) {
    if !ctx.kind.is_production() || !HOT_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let bound_comments = collect_bound_comments(lexed);
    for flow in flows {
        let mut sites = Vec::new();
        collect_sites(&flow.body, false, flow.body.line, &mut sites);
        for site in sites {
            if in_ranges(test_ranges, site.stmt_line) || in_ranges(test_ranges, site.line) {
                continue;
            }
            let reached = analysis.reached_from(&ctx.crate_name, &flow.span.name);
            let env = analysis.env(&flow.env);
            // `+=` sites: the accumulator type comes from the place's
            // binding (or the summand's evaluated type); reductions over
            // types other than `i32`/`i64` are out of scope.
            let acc = match site.acc {
                Some(a) => a,
                None => {
                    let resolved = site
                        .place
                        .and_then(|p| place_ty(p, &flow.env))
                        .or_else(|| site.summand.map(|s| eval(s, &env)).and_then(|v| v.ty));
                    match resolved {
                        Some(t @ (IntTy::I32 | IntTy::I64)) => t,
                        _ => continue,
                    }
                }
            };
            // The interval analysis's bound on one summand's magnitude.
            let term_max = match (site.summand, site.chain) {
                (Some(s), _) => eval(s, &env).iv.map(|iv| iv.magnitude()),
                (None, Some(chain)) => {
                    iter_scalar_seed(chain, &flow.env).and_then(|v| v.iv).map(|iv| iv.magnitude())
                }
                (None, None) => None,
            };
            let comment = find_bound_comment(lexed, &bound_comments, site.stmt_line, site.line);
            let verdict = match comment {
                None => Err(format!(
                    "`{}` {} without a `// bound:` proof comment — every quantized \
                     reduction must carry a machine-checkable reduction-length bound, \
                     e.g. `// bound: K * 2^14 < 2^31`",
                    acc.name(),
                    site.what,
                )),
                Some(text) => match parse_bound_comment(text) {
                    None => Err(format!(
                        "malformed `// bound:` comment on `{}` {}: expected \
                         `K * <factors> <= <limit>` (grammar: `+ - * / ^ <<`, \
                         workspace constants, `I32_MAX`-style builtins)",
                        acc.name(),
                        site.what,
                    )),
                    Some(claim) => judge(&claim, analysis, acc, term_max).map_err(|why| {
                        format!(
                            "`// bound:` comment does not prove the `{}` {} safe: {why}",
                            acc.name(),
                            site.what,
                        )
                    }),
                },
            };
            if let Err(message) = verdict {
                findings.push(Finding {
                    file: ctx.path.clone(),
                    line: site.line,
                    rule: RULE_ACCUMULATOR_WIDTH,
                    message: format!("{message}{reached}"),
                });
            }
        }
    }
}

/// `(line, text-after-"bound:")` for every proof comment in the file.
fn collect_bound_comments(lexed: &Lexed) -> BTreeMap<usize, String> {
    let mut out = BTreeMap::new();
    for c in &lexed.comments {
        if let Some(pos) = c.text.find("bound:") {
            let claim = c.text[pos + "bound:".len()..]
                .trim()
                .trim_end_matches("*/")
                .trim()
                .to_string();
            out.insert(c.line, claim);
        }
    }
    out
}

/// The proof comment governing a site: trailing on any line the statement
/// spans (`stmt_line..=site_line`), or in the contiguous comment block
/// immediately above the statement. Closest match wins.
fn find_bound_comment<'c>(
    lexed: &Lexed,
    comments: &'c BTreeMap<usize, String>,
    stmt_line: usize,
    site_line: usize,
) -> Option<&'c str> {
    let (lo, hi) = if stmt_line <= site_line { (stmt_line, site_line) } else { (site_line, stmt_line) };
    for l in lo..=hi {
        if let Some(text) = comments.get(&l) {
            return Some(text);
        }
    }
    let mut l = lo.checked_sub(1)?;
    loop {
        if lexed.has_code_on(l) {
            return None;
        }
        if let Some(text) = comments.get(&l) {
            return Some(text);
        }
        // A blank line (no comment either) ends the block.
        if !lexed.comments.iter().any(|c| c.line == l) {
            return None;
        }
        l = l.checked_sub(1)?;
    }
}

/// Evaluates the proof obligation for one claim.
fn judge(
    claim: &BoundClaim,
    analysis: &WorkspaceAnalysis,
    acc: IntTy,
    term_max: Option<i128>,
) -> Result<(), String> {
    if let Some(name) = first_ambiguous(&claim.lhs, analysis)
        .or_else(|| first_ambiguous(&claim.rhs, analysis))
    {
        return Err(format!(
            "it references `{name}`, which has conflicting definitions across the \
             workspace — an ambiguous constant proves nothing"
        ));
    }
    let factors = product_factors(&claim.lhs);
    let k_count = factors.iter().filter(|f| is_k(f)).count();
    if k_count != 1 {
        return Err(format!(
            "the left side must mention the free reduction-length variable `K` exactly \
             once as a product factor (found {k_count} in `{}`)",
            render(&claim.lhs)
        ));
    }
    let mut coeff: i128 = 1;
    for f in factors.iter().filter(|f| !is_k(f)) {
        let Some(v) = eval_exact(f, &analysis.consts) else {
            return Err(format!(
                "the per-element factor `{}` does not evaluate against the workspace \
                 constants",
                render(f)
            ));
        };
        coeff = coeff
            .checked_mul(v)
            .ok_or_else(|| "the per-element coefficient overflows i128".to_string())?;
    }
    if coeff <= 0 {
        return Err(format!(
            "the per-element coefficient evaluates to {coeff}, which cannot bound a \
             magnitude"
        ));
    }
    let Some(rhs) = eval_exact(&claim.rhs, &analysis.consts) else {
        return Err(format!(
            "the limit `{}` does not evaluate against the workspace constants",
            render(&claim.rhs)
        ));
    };
    let total = rhs - i128::from(claim.strict);
    let k_max = total / coeff;
    if k_max < 1 {
        return Err(format!(
            "the claim admits no elements at all (limit {total} / per-element {coeff} \
             < 1)"
        ));
    }
    if total > acc.max() {
        return Err(format!(
            "the claimed total {total} exceeds {}::MAX = {}",
            acc.name(),
            acc.max()
        ));
    }
    match term_max {
        None => Err(
            "the interval analysis cannot bound the summand, so the claimed \
             per-element coefficient cannot be checked — tighten the operand types \
             or justify with `lint: allow(accumulator-width)`"
                .to_string(),
        ),
        Some(t) if t > coeff => Err(format!(
            "the claimed per-element coefficient {coeff} is smaller than the \
             analysis-derived summand magnitude {t}"
        )),
        Some(_) => Ok(()),
    }
}

/// First path in the claim naming an ambiguous workspace constant.
fn first_ambiguous(e: &Expr, analysis: &WorkspaceAnalysis) -> Option<String> {
    let mut found = None;
    walk(e, false, &mut |n, _| {
        if found.is_some() {
            return;
        }
        if let ExprKind::Path(segs) = &n.kind {
            if let Some(last) = segs.last() {
                if analysis.ambiguous.contains(last.as_str()) {
                    found = Some(last.clone());
                }
            }
        }
    });
    found
}

/// Recursively collects reduction sites, tracking loop context and the
/// line the enclosing statement starts on.
fn collect_sites<'e>(e: &'e Expr, in_loop: bool, stmt_line: usize, out: &mut Vec<Site<'e>>) {
    match &e.kind {
        ExprKind::Block(stmts, tail) => {
            for s in stmts {
                collect_stmt(s, in_loop, out);
            }
            if let Some(t) = tail {
                collect_sites(t, in_loop, t.line, out);
            }
        }
        ExprKind::Method { recv, name, turbofish, args } => {
            if matches!(name.as_str(), "sum" | "product") {
                if let Some(acc @ (IntTy::I32 | IntTy::I64)) = turbofish {
                    push_sum_site(e.line, stmt_line, *acc, recv, name, out);
                }
            }
            collect_sites(recv, in_loop, stmt_line, out);
            for a in args {
                collect_sites(a, in_loop, stmt_line, out);
            }
        }
        ExprKind::Loop(b) => collect_sites(b, true, stmt_line, out),
        ExprKind::For { iter, body, .. } => {
            collect_sites(iter, in_loop, stmt_line, out);
            collect_sites(body, true, stmt_line, out);
        }
        ExprKind::If(c, t, f) => {
            collect_sites(c, in_loop, stmt_line, out);
            collect_sites(t, in_loop, stmt_line, out);
            if let Some(f) = f {
                collect_sites(f, in_loop, stmt_line, out);
            }
        }
        ExprKind::Closure(_, b) | ExprKind::Neg(b) => collect_sites(b, in_loop, stmt_line, out),
        ExprKind::Cast(i, _) | ExprKind::From(_, i) | ExprKind::Field(i, _) => {
            collect_sites(i, in_loop, stmt_line, out)
        }
        ExprKind::Bin(_, l, r) | ExprKind::Index(l, r) => {
            collect_sites(l, in_loop, stmt_line, out);
            collect_sites(r, in_loop, stmt_line, out);
        }
        ExprKind::Call(c, args) => {
            collect_sites(c, in_loop, stmt_line, out);
            for a in args {
                collect_sites(a, in_loop, stmt_line, out);
            }
        }
        ExprKind::Seq(elems) => {
            for el in elems {
                collect_sites(el, in_loop, stmt_line, out);
            }
        }
        ExprKind::Int(..) | ExprKind::Path(..) | ExprKind::Unknown => {}
    }
}

fn collect_stmt<'e>(s: &'e Stmt, in_loop: bool, out: &mut Vec<Site<'e>>) {
    match &s.kind {
        StmtKind::Let { ann, init, .. } => {
            // `let acc: i32 = ...sum();` — the ascription types an
            // un-turbofished reduction.
            if let Some(TyAnn::Int(acc @ (IntTy::I32 | IntTy::I64))) = ann {
                if let ExprKind::Method { recv, name, turbofish: None, .. } = &init.kind {
                    if matches!(name.as_str(), "sum" | "product") {
                        push_sum_site(init.line, s.line, *acc, recv, name, out);
                    }
                }
            }
            collect_sites(init, in_loop, s.line, out);
        }
        StmtKind::Compound(op, place, value) => {
            if in_loop && matches!(op, crate::analysis::expr::BinOp::Add) {
                out.push(Site {
                    line: s.line,
                    stmt_line: s.line,
                    acc: None,
                    place: Some(place),
                    summand: Some(value),
                    chain: None,
                    what: "loop accumulation (`+=`)",
                });
            }
            collect_sites(place, in_loop, s.line, out);
            collect_sites(value, in_loop, s.line, out);
        }
        StmtKind::Assign(place, value) => {
            collect_sites(place, in_loop, s.line, out);
            collect_sites(value, in_loop, s.line, out);
        }
        StmtKind::Expr(e) => collect_sites(e, in_loop, s.line, out),
    }
}

/// Type of an assigned place, through the flow environment: a scalar
/// binding's type, or the element type of an indexed slice binding.
fn place_ty(place: &Expr, env: &std::collections::BTreeMap<String, Binding>) -> Option<IntTy> {
    match &place.kind {
        ExprKind::Path(segs) if segs.len() == 1 => match env.get(&segs[0])? {
            Binding::Scalar(v) => v.ty,
            Binding::Slice(_) => None,
        },
        ExprKind::Index(recv, _) => match &recv.kind {
            ExprKind::Path(segs) if segs.len() == 1 => match env.get(&segs[0])? {
                Binding::Slice(t) => Some(*t),
                Binding::Scalar(_) => None,
            },
            _ => None,
        },
        _ => None,
    }
}

fn push_sum_site<'e>(
    line: usize,
    stmt_line: usize,
    acc: IntTy,
    recv: &'e Expr,
    name: &str,
    out: &mut Vec<Site<'e>>,
) {
    // Strip adapters between the `map` and the reduction.
    let mut chain = recv;
    loop {
        match &chain.kind {
            ExprKind::Method { recv, name, .. }
                if matches!(
                    name.as_str(),
                    "copied" | "cloned" | "inspect" | "rev" | "take" | "skip" | "filter"
                ) =>
            {
                chain = recv;
            }
            _ => break,
        }
    }
    let summand = match &chain.kind {
        ExprKind::Method { name, args, .. } if name == "map" => match args.first() {
            Some(Expr { kind: ExprKind::Closure(_, body), .. }) => Some(&**body),
            _ => None,
        },
        _ => None,
    };
    out.push(Site {
        line,
        stmt_line,
        acc: Some(acc),
        place: None,
        summand,
        chain: summand.is_none().then_some(chain),
        what: if name == "sum" { "reduction (`.sum()`)" } else { "reduction (`.product()`)" },
    });
}
