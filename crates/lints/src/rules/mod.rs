//! The individual rule passes. Each rule is a pure function over the lexed
//! token stream; scoping (which crates, which file kinds, test exemptions)
//! lives inside the rule so the orchestrator stays trivial.

pub mod accumulator_width;
pub mod lock_order;
pub mod lossy_cast;
pub mod panic_freedom;
pub mod telemetry_names;
pub mod time_entropy;
pub mod unchecked_arith;
pub mod unordered_iteration;
pub mod unsafe_containment;

/// Rust keywords that can directly precede `[` without forming an index
/// expression (`let [a, b] = ...`, `return [0; 4]`, `in [1, 2]`...).
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "static", "struct", "super", "trait", "true", "type",
    "unsafe", "use", "where", "while", "yield",
];
