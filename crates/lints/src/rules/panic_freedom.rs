//! Rule `panic-freedom`: no panicking constructs in `crates/serve`, the
//! kernel hot paths (`crates/kernels`), the thread pool
//! (`crates/parallel`), or the serving gateway (`crates/gateway`).
//!
//! PR 1 converted the serving stack to typed errors — a panic there kills
//! every in-flight request in the batch instead of failing one of them with
//! a `Terminal::Failed`-style outcome. The kernels sit under the engine's
//! forward path, so the same contract extends to them. Flagged:
//!
//! * `.unwrap()` / `.expect(...)` (but not `unwrap_or*`, which are total)
//! * `panic!`, `todo!`, `unimplemented!`
//! * unchecked slice/collection indexing `x[i]` (including range slicing
//!   `x[a..b]` and tuple-index matrices `m[(r, c)]`)
//!
//! `assert!`/`debug_assert!` are deliberately *not* flagged: documented
//! precondition checks at API boundaries are part of the typed contract,
//! and `debug_assert!` compiles out of release builds.
//!
//! Test modules, `tests/`, `examples/`, and `benches/` are exempt — tests
//! are supposed to panic on failure.

use crate::lexer::{in_ranges, Lexed, TokKind};
use crate::rules::KEYWORDS;
use crate::{FileCtx, Finding, RULE_PANIC_FREEDOM};

/// Crates covered by the panic-free contract. `atom-parallel` is included
/// because the pool's whole purpose is *containing* worker panics — a
/// panicking construct inside the pool itself would defeat that guarantee.
/// `atom-gateway` owns the request lifecycle above the engine, so a panic
/// there strands every queued and in-flight request. `atom-prefix` sits on
/// the admission hot path: every request's prompt flows through its radix
/// lookup, so it inherits the serving contract.
const SCOPED_CRATES: &[&str] = &[
    "atom-serve",
    "atom-kernels",
    "atom-parallel",
    "atom-gateway",
    "atom-prefix",
];

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

pub fn check(
    ctx: &FileCtx,
    lexed: &Lexed,
    test_ranges: &[(usize, usize)],
    findings: &mut Vec<Finding>,
) {
    if !SCOPED_CRATES.contains(&ctx.crate_name.as_str()) || !ctx.kind.is_production() {
        return;
    }
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if in_ranges(test_ranges, t.line) {
            continue;
        }
        match t.kind {
            TokKind::Ident => {
                let next = toks.get(i + 1).map(|n| n.text.as_str());
                let prev = i.checked_sub(1).and_then(|p| toks.get(p)).map(|p| p.text.as_str());
                if (t.text == "unwrap" || t.text == "expect")
                    && prev == Some(".")
                    && next == Some("(")
                {
                    findings.push(Finding {
                        file: ctx.path.clone(),
                        line: t.line,
                        rule: RULE_PANIC_FREEDOM,
                        message: format!(
                            "`.{}()` can panic at runtime; return a typed error or use a \
                             checked/total alternative",
                            t.text
                        ),
                    });
                }
                if PANIC_MACROS.contains(&t.text.as_str()) && next == Some("!") {
                    findings.push(Finding {
                        file: ctx.path.clone(),
                        line: t.line,
                        rule: RULE_PANIC_FREEDOM,
                        message: format!(
                            "`{}!` aborts the whole batch; surface a typed error instead",
                            t.text
                        ),
                    });
                }
            }
            TokKind::Punct if t.text == "[" => {
                // Indexing: `[` directly after an expression — an identifier
                // (that is not a keyword), a closing paren/bracket, or `?`.
                let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) else {
                    continue;
                };
                let is_index = match prev.kind {
                    TokKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
                    TokKind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
                    _ => false,
                };
                if is_index {
                    findings.push(Finding {
                        file: ctx.path.clone(),
                        line: t.line,
                        rule: RULE_PANIC_FREEDOM,
                        message: "unchecked indexing can panic; use `.get()`, iterators, or \
                                  `chunks`/`zip` patterns (or justify with a lint allow)"
                            .into(),
                    });
                }
            }
            _ => {}
        }
    }
}
