//! `atom-lint` — the workspace's own static-analysis pass.
//!
//! The compiler cannot see the invariants this reproduction depends on:
//!
//! 1. **panic-freedom** — `crates/serve` promised typed errors instead of
//!    panics (PR 1), and the kernel hot paths must not abort mid-batch. No
//!    `unwrap()`, `expect()`, `panic!`, `todo!`, `unimplemented!`, or
//!    unchecked slice indexing there.
//! 2. **lossy-cast** — bit-accurate integer accumulation only holds if
//!    truncating/sign-changing `as` casts stay inside the audited quantizer
//!    modules; everywhere else code must use the checked helpers in
//!    `atom_tensor::cast`.
//! 3. **telemetry-names** — the measured kernels and the roofline simulator
//!    compare breakdowns key-for-key, so `telemetry::names` and the
//!    recording call sites must stay in exact bijection.
//! 4. **unsafe-containment** — `#![forbid(unsafe_code)]` on every crate
//!    except `telemetry`, where each `unsafe` block needs a `// SAFETY:`
//!    comment.
//!
//! Escape hatch: a violating line may carry (or be preceded by)
//! `// lint: allow(<rule>) — <reason>`. The reason is mandatory and the
//! directive must actually suppress something, or it is itself a finding —
//! stale allowances are how audit layers rot.
#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use lexer::{cfg_test_ranges, lex, Lexed};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Rule identifiers, used in reports and in `lint: allow(...)` directives.
pub const RULE_PANIC_FREEDOM: &str = "panic-freedom";
pub const RULE_LOSSY_CAST: &str = "lossy-cast";
pub const RULE_TELEMETRY_NAMES: &str = "telemetry-names";
pub const RULE_UNSAFE_CONTAINMENT: &str = "unsafe-containment";
/// Meta-rule: malformed or stale `lint:` directives.
pub const RULE_DIRECTIVE: &str = "lint-directive";

/// All enforceable rule names (directives may only name these).
pub const ALL_RULES: &[&str] = &[
    RULE_PANIC_FREEDOM,
    RULE_LOSSY_CAST,
    RULE_TELEMETRY_NAMES,
    RULE_UNSAFE_CONTAINMENT,
];

/// One violation, formatted as `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// What role a file plays in its crate; rules scope themselves by this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/lib.rs` — a library crate root.
    LibRoot,
    /// `src/main.rs` or `src/bin/*.rs` — a binary crate root.
    BinRoot,
    /// Any other file under `src/`.
    Src,
    /// A file under `tests/` (integration tests).
    TestDir,
    /// A file under `examples/`.
    Example,
    /// A file under `benches/`.
    Bench,
}

impl FileKind {
    /// Whether the file is production code (compiled into the shipped
    /// library or binaries rather than into test/bench harnesses).
    pub fn is_production(self) -> bool {
        matches!(self, FileKind::LibRoot | FileKind::BinRoot | FileKind::Src)
    }

    /// Whether the file is a crate root that must carry
    /// `#![forbid(unsafe_code)]`.
    pub fn is_crate_root(self) -> bool {
        matches!(self, FileKind::LibRoot | FileKind::BinRoot)
    }
}

/// Per-file context handed to every rule.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Package name from the crate's `Cargo.toml` (e.g. `atom-serve`).
    pub crate_name: String,
    /// Workspace-relative path (e.g. `crates/serve/src/engine.rs`).
    pub path: String,
    pub kind: FileKind,
}

/// The table parsed from `telemetry::names`: constant identifier → metric
/// name string, with the declaration line.
#[derive(Debug, Default, Clone)]
pub struct NamesTable {
    /// ident → (string value, line in names.rs).
    pub consts: BTreeMap<String, (String, usize)>,
    /// Workspace-relative path of names.rs (for reporting).
    pub path: String,
}

/// A `// lint: allow(<rules>) — <reason>` directive.
#[derive(Debug)]
struct AllowDirective {
    line: usize,
    /// The line whose findings it suppresses (the directive's own line if it
    /// trails code, otherwise the next line holding code).
    target_line: usize,
    rules: Vec<String>,
    has_reason: bool,
    used: bool,
}

fn parse_directives(lexed: &Lexed) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let Some(pos) = c.text.find("lint:") else {
            continue;
        };
        let rest = c.text[pos + "lint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            continue;
        };
        let (inside, tail) = match args.split_once(')') {
            Some(pair) => pair,
            None => (args, ""),
        };
        let rules: Vec<String> = inside
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        // The reason is whatever follows a dash after the closing paren.
        let tail = tail.trim_start();
        let has_reason = ["—", "–", "--", "-"]
            .iter()
            .any(|d| tail.strip_prefix(d).is_some_and(|r| !r.trim().is_empty()));
        let target_line = if lexed.has_code_on(c.line) {
            c.line
        } else {
            lexed.next_code_line(c.line + 1).unwrap_or(c.line)
        };
        out.push(AllowDirective {
            line: c.line,
            target_line,
            rules,
            has_reason,
            used: false,
        });
    }
    out
}

/// Runs every rule on one lexed file and applies `lint: allow` directives.
/// `names` is the parsed constants table (None while collecting it, e.g. in
/// fixture tests that exercise other rules).
pub fn lint_file(
    ctx: &FileCtx,
    source: &str,
    names: Option<&NamesTable>,
    used_names: &mut Vec<String>,
) -> Vec<Finding> {
    let lexed = lex(source);
    let test_ranges = cfg_test_ranges(&lexed);
    let mut findings = Vec::new();

    rules::panic_freedom::check(ctx, &lexed, &test_ranges, &mut findings);
    rules::lossy_cast::check(ctx, &lexed, &test_ranges, &mut findings);
    rules::telemetry_names::check(ctx, &lexed, &test_ranges, names, used_names, &mut findings);
    rules::unsafe_containment::check(ctx, &lexed, &mut findings);

    // This crate's own sources quote the directive syntax in docs and
    // messages, so directives are not honored here: atom-lint must be
    // unconditionally clean.
    let mut directives = if ctx.crate_name == "atom-lint" {
        Vec::new()
    } else {
        parse_directives(&lexed)
    };

    // Malformed directives are findings in their own right.
    for d in &directives {
        if !d.has_reason {
            findings.push(Finding {
                file: ctx.path.clone(),
                line: d.line,
                rule: RULE_DIRECTIVE,
                message: "allow directive missing a reason: \
                          use `// lint: allow(<rule>) — <reason>`"
                    .into(),
            });
        }
        for r in &d.rules {
            if !ALL_RULES.contains(&r.as_str()) {
                findings.push(Finding {
                    file: ctx.path.clone(),
                    line: d.line,
                    rule: RULE_DIRECTIVE,
                    message: format!("allow directive names unknown rule `{r}`"),
                });
            }
        }
    }

    // Apply suppressions.
    findings.retain(|f| {
        if f.rule == RULE_DIRECTIVE {
            return true;
        }
        for d in &mut directives {
            if (f.line == d.target_line || f.line == d.line)
                && d.rules.iter().any(|r| r == f.rule)
            {
                d.used = true;
                return false;
            }
        }
        true
    });

    // A directive that suppressed nothing is stale and must go.
    for d in &directives {
        if !d.used && d.has_reason && d.rules.iter().all(|r| ALL_RULES.contains(&r.as_str())) {
            findings.push(Finding {
                file: ctx.path.clone(),
                line: d.line,
                rule: RULE_DIRECTIVE,
                message: format!(
                    "stale allow directive: no {} finding on line {} to suppress",
                    d.rules.join("/"),
                    d.target_line
                ),
            });
        }
    }

    findings
}

/// Parses `crates/telemetry/src/names.rs` into a [`NamesTable`].
pub fn parse_names_table(path_for_report: &str, source: &str) -> NamesTable {
    let lexed = lex(source);
    let toks = &lexed.tokens;
    let mut table = NamesTable {
        consts: BTreeMap::new(),
        path: path_for_report.to_string(),
    };
    let mut i = 0;
    while i + 1 < toks.len() {
        // pub const IDENT : ... = "value" ;
        if toks[i].text == "const" && toks[i + 1].kind == lexer::TokKind::Ident {
            let ident = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != ";" {
                if toks[j].kind == lexer::TokKind::StrLit {
                    let raw = toks[j].text.trim_matches('"').to_string();
                    table.consts.insert(ident.clone(), (raw, line));
                    break;
                }
                j += 1;
            }
        }
        i += 1;
    }
    table
}

/// Reads the `name = "..."` of the `[package]` section.
fn package_name(cargo_toml: &str) -> Option<String> {
    let mut in_package = false;
    for line in cargo_toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return Some(rest.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

fn classify(rel_in_crate: &Path) -> Option<FileKind> {
    let mut parts = rel_in_crate.components().map(|c| c.as_os_str().to_string_lossy().into_owned());
    let first = parts.next()?;
    match first.as_str() {
        "src" => {
            let rest: Vec<String> = parts.collect();
            match rest.len() {
                1 if rest == ["lib.rs"] => Some(FileKind::LibRoot),
                1 if rest == ["main.rs"] => Some(FileKind::BinRoot),
                2 if rest.first().map(String::as_str) == Some("bin") => Some(FileKind::BinRoot),
                _ => Some(FileKind::Src),
            }
        }
        "tests" => Some(FileKind::TestDir),
        "examples" => Some(FileKind::Example),
        "benches" => Some(FileKind::Bench),
        _ => None,
    }
}

fn collect_rs_files(dir: &Path, acc: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, acc)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            acc.push(path);
        }
    }
    Ok(())
}

/// Result of a whole-workspace pass.
#[derive(Debug)]
pub struct WorkspaceReport {
    pub findings: Vec<Finding>,
    pub files_checked: usize,
}

/// Lints every crate under `<root>/crates`. `root` must be the workspace
/// root (the directory holding the workspace `Cargo.toml`).
pub fn lint_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    crate_dirs.sort();

    // Pass 0: the telemetry names table (needed by every other file).
    let names_path = root.join("crates/telemetry/src/names.rs");
    let names = match fs::read_to_string(&names_path) {
        Ok(src) => Some(parse_names_table("crates/telemetry/src/names.rs", &src)),
        Err(_) => None,
    };

    let mut findings = Vec::new();
    let mut files_checked = 0usize;
    let mut used_names: Vec<String> = Vec::new();

    for crate_dir in &crate_dirs {
        let manifest = fs::read_to_string(crate_dir.join("Cargo.toml"))?;
        let crate_name = package_name(&manifest).unwrap_or_else(|| {
            crate_dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default()
        });
        let mut files = Vec::new();
        collect_rs_files(crate_dir, &mut files)?;
        files.sort();
        for file in files {
            let rel_in_crate = match file.strip_prefix(crate_dir) {
                Ok(r) => r,
                Err(_) => continue,
            };
            // The lint's own known-bad fixtures are data, not code.
            if rel_in_crate.starts_with("fixtures") {
                continue;
            }
            let Some(kind) = classify(rel_in_crate) else {
                continue;
            };
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let source = fs::read_to_string(&file)?;
            let ctx = FileCtx {
                crate_name: crate_name.clone(),
                path: rel,
                kind,
            };
            findings.extend(lint_file(&ctx, &source, names.as_ref(), &mut used_names));
            files_checked += 1;
        }
    }

    // Cross-file half of the telemetry bijection: every declared name must
    // be used by at least one production call site.
    if let Some(table) = &names {
        for (ident, (value, line)) in &table.consts {
            if !used_names.iter().any(|u| u == ident) {
                findings.push(Finding {
                    file: table.path.clone(),
                    line: *line,
                    rule: RULE_TELEMETRY_NAMES,
                    message: format!(
                        "metric name `{ident}` (\"{value}\") is declared but never \
                         recorded by any production call site"
                    ),
                });
            }
        }
        // Two constants aliasing one string would silently merge series.
        let mut by_value: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (ident, (value, _)) in &table.consts {
            by_value.entry(value).or_default().push(ident);
        }
        for (value, idents) in by_value {
            if idents.len() > 1 {
                findings.push(Finding {
                    file: table.path.clone(),
                    line: table.consts[idents[0]].1,
                    rule: RULE_TELEMETRY_NAMES,
                    message: format!(
                        "metric string \"{value}\" is declared by multiple constants: {}",
                        idents.join(", ")
                    ),
                });
            }
        }
    }

    findings.sort();
    findings.dedup();
    Ok(WorkspaceReport {
        findings,
        files_checked,
    })
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
