//! `atom-lint` — the workspace's own static-analysis pass.
//!
//! The compiler cannot see the invariants this reproduction depends on:
//!
//! 1. **panic-freedom** — `crates/serve` promised typed errors instead of
//!    panics (PR 1), and the kernel hot paths must not abort mid-batch. No
//!    `unwrap()`, `expect()`, `panic!`, `todo!`, `unimplemented!`, or
//!    unchecked slice indexing there.
//! 2. **lossy-cast** — bit-accurate integer accumulation only holds if
//!    truncating/sign-changing `as` casts stay inside the audited quantizer
//!    modules; everywhere else code must use the checked helpers in
//!    `atom_tensor::cast`.
//! 3. **telemetry-names** — the measured kernels and the roofline simulator
//!    compare breakdowns key-for-key, so `telemetry::names` and the
//!    recording call sites must stay in exact bijection.
//! 4. **unsafe-containment** — `#![forbid(unsafe_code)]` on every crate
//!    except `telemetry`, where each `unsafe` block needs a `// SAFETY:`
//!    comment.
//! 5. **unordered-iteration** — hash-ordered traversal must not reach the
//!    deterministic-scope crates' outputs: the bit-identical-at-any-width
//!    gates rest on it.
//! 6. **time-entropy** — wall-clock, environment, and OS-entropy reads
//!    stay inside telemetry and the audited config entry points.
//! 7. **lock-order** — nested lock acquisitions carry a documented global
//!    order, and the cross-file acquisition graph stays acyclic.
//! 8. **accumulator-width** — every `i32`/`i64` reduction over quantized
//!    products in a hot-path crate carries a machine-checkable `// bound:`
//!    proof comment, and the comment's inequality is *evaluated* against
//!    the workspace constants and the interval analysis (see [`analysis`]).
//!    A comment that does not prove is a finding, same as a missing one.
//! 9. **unchecked-arith** — bare `+`/`*`/`<<` on signed integers in hot
//!    paths must be provably in-range by the interval analysis, use an
//!    explicit `wrapping_*`/`checked_*`/`saturating_*` method, or carry a
//!    justified allow.
//!
//! Escape hatch: a violating line may carry (or be preceded by)
//! `// lint: allow(<rule>) — <reason>`. The reason is mandatory and the
//! directive must actually suppress something, or it is itself a finding —
//! stale allowances are how audit layers rot. The whole-workspace pass
//! also emits a machine-readable report (`results/lint_report.json`,
//! schema `atom-lint-report/v2`) with per-rule counts, every finding, and
//! the full allow-directive inventory, plus the same findings as SARIF
//! 2.1.0 (`results/lint_report.sarif`) for code-scanning upload. A
//! [`ratchet`] baseline (`results/lint_baseline.json`) lets CI fail on any
//! *new* finding or allow-suppression while counts may only decrease.
#![forbid(unsafe_code)]

pub mod analysis;
pub mod lexer;
pub mod ratchet;
pub mod rules;

use analysis::WorkspaceAnalysis;
use lexer::{cfg_test_ranges, lex, Lexed};
use rules::lock_order::LockEdge;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Rule identifiers, used in reports and in `lint: allow(...)` directives.
pub const RULE_PANIC_FREEDOM: &str = "panic-freedom";
pub const RULE_LOSSY_CAST: &str = "lossy-cast";
pub const RULE_TELEMETRY_NAMES: &str = "telemetry-names";
pub const RULE_UNSAFE_CONTAINMENT: &str = "unsafe-containment";
pub const RULE_UNORDERED_ITERATION: &str = "unordered-iteration";
pub const RULE_TIME_ENTROPY: &str = "time-entropy";
pub const RULE_LOCK_ORDER: &str = "lock-order";
pub const RULE_ACCUMULATOR_WIDTH: &str = "accumulator-width";
pub const RULE_UNCHECKED_ARITH: &str = "unchecked-arith";
/// Meta-rule: malformed or stale `lint:` directives.
pub const RULE_DIRECTIVE: &str = "lint-directive";

/// All enforceable rule names (directives may only name these).
pub const ALL_RULES: &[&str] = &[
    RULE_PANIC_FREEDOM,
    RULE_LOSSY_CAST,
    RULE_TELEMETRY_NAMES,
    RULE_UNSAFE_CONTAINMENT,
    RULE_UNORDERED_ITERATION,
    RULE_TIME_ENTROPY,
    RULE_LOCK_ORDER,
    RULE_ACCUMULATOR_WIDTH,
    RULE_UNCHECKED_ARITH,
];

/// Every rule name that can appear in a report: [`ALL_RULES`] plus the
/// directive meta-rule (which cannot be allowed away).
pub const REPORTABLE_RULES: &[&str] = &[
    RULE_PANIC_FREEDOM,
    RULE_LOSSY_CAST,
    RULE_TELEMETRY_NAMES,
    RULE_UNSAFE_CONTAINMENT,
    RULE_UNORDERED_ITERATION,
    RULE_TIME_ENTROPY,
    RULE_LOCK_ORDER,
    RULE_ACCUMULATOR_WIDTH,
    RULE_UNCHECKED_ARITH,
    RULE_DIRECTIVE,
];

/// One-line description per reportable rule (used by the SARIF driver's
/// rule metadata).
pub fn rule_description(rule: &str) -> &'static str {
    match rule {
        RULE_PANIC_FREEDOM => "no unwrap/expect/panic or unchecked indexing on hot paths",
        RULE_LOSSY_CAST => "truncating/sign-changing `as` casts stay inside audited modules",
        RULE_TELEMETRY_NAMES => "telemetry name constants and recording sites stay in bijection",
        RULE_UNSAFE_CONTAINMENT => "unsafe code is forbidden outside telemetry and documented there",
        RULE_UNORDERED_ITERATION => "hash-ordered traversal stays out of deterministic outputs",
        RULE_TIME_ENTROPY => "wall-clock/env/entropy reads stay inside audited entry points",
        RULE_LOCK_ORDER => "nested lock acquisitions follow a documented acyclic global order",
        RULE_ACCUMULATOR_WIDTH => {
            "quantized reductions carry a machine-checked `// bound:` width proof"
        }
        RULE_UNCHECKED_ARITH => {
            "signed hot-path arithmetic is provably in-range or explicitly checked"
        }
        RULE_DIRECTIVE => "lint: allow directives are well-formed, justified, and not stale",
        _ => "unknown rule",
    }
}

/// One violation, formatted as `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// What role a file plays in its crate; rules scope themselves by this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/lib.rs` — a library crate root.
    LibRoot,
    /// `src/main.rs` or `src/bin/*.rs` — a binary crate root.
    BinRoot,
    /// Any other file under `src/`.
    Src,
    /// A file under `tests/` (integration tests).
    TestDir,
    /// A file under `examples/`.
    Example,
    /// A file under `benches/`.
    Bench,
}

impl FileKind {
    /// Whether the file is production code (compiled into the shipped
    /// library or binaries rather than into test/bench harnesses).
    pub fn is_production(self) -> bool {
        matches!(self, FileKind::LibRoot | FileKind::BinRoot | FileKind::Src)
    }

    /// Whether the file is a crate root that must carry
    /// `#![forbid(unsafe_code)]`.
    pub fn is_crate_root(self) -> bool {
        matches!(self, FileKind::LibRoot | FileKind::BinRoot)
    }
}

/// Per-file context handed to every rule.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Package name from the crate's `Cargo.toml` (e.g. `atom-serve`).
    pub crate_name: String,
    /// Workspace-relative path (e.g. `crates/serve/src/engine.rs`).
    pub path: String,
    pub kind: FileKind,
}

/// The table parsed from `telemetry::names`: constant identifier → metric
/// name string, with the declaration line.
#[derive(Debug, Default, Clone)]
pub struct NamesTable {
    /// ident → (string value, line in names.rs).
    pub consts: BTreeMap<String, (String, usize)>,
    /// Workspace-relative path of names.rs (for reporting).
    pub path: String,
}

/// A `// lint: allow(<rules>) — <reason>` directive.
#[derive(Debug)]
struct AllowDirective {
    line: usize,
    /// The line whose findings it suppresses (the directive's own line if it
    /// trails code, otherwise the next line holding code).
    target_line: usize,
    rules: Vec<String>,
    reason: String,
    suppressed: usize,
}

/// One allow directive as recorded in the machine-readable report: where
/// it sits, what it names, why, and how many findings it suppressed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowRecord {
    /// Workspace-relative path of the directive.
    pub file: String,
    /// 1-based line of the directive comment.
    pub line: usize,
    /// Rule names the directive suppresses.
    pub rules: Vec<String>,
    /// The mandatory justification (empty when missing — itself a finding).
    pub reason: String,
    /// Findings actually suppressed (zero means the directive is stale —
    /// itself a finding).
    pub suppressed: usize,
}

/// Per-workspace state threaded through every [`lint_file`] call: the
/// telemetry usage scan, the lock acquisition graph, and the allow
/// inventory — the three pieces whose judgments span files.
#[derive(Debug, Default)]
pub struct CrossFileState {
    /// `names::X` references seen in production code.
    pub used_names: Vec<String>,
    /// Nested lock-acquisition edges for workspace cycle detection.
    pub lock_edges: Vec<LockEdge>,
    /// Every parsed allow directive, for the report inventory.
    pub allows: Vec<AllowRecord>,
}

fn parse_directives(lexed: &Lexed) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let Some(pos) = c.text.find("lint:") else {
            continue;
        };
        let rest = c.text[pos + "lint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            continue;
        };
        let (inside, tail) = match args.split_once(')') {
            Some(pair) => pair,
            None => (args, ""),
        };
        let rules: Vec<String> = inside
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        // The reason is whatever follows a dash after the closing paren.
        let tail = tail.trim_start();
        let reason = ["—", "–", "--", "-"]
            .iter()
            .find_map(|d| tail.strip_prefix(d))
            .map(|r| r.trim().trim_end_matches("*/").trim().to_string())
            .unwrap_or_default();
        let target_line = if lexed.has_code_on(c.line) {
            c.line
        } else {
            lexed.next_code_line(c.line + 1).unwrap_or(c.line)
        };
        out.push(AllowDirective {
            line: c.line,
            target_line,
            rules,
            reason,
            suppressed: 0,
        });
    }
    out
}

/// Runs every rule on one lexed file and applies `lint: allow` directives.
/// `names` is the parsed constants table (None while collecting it, e.g. in
/// fixture tests that exercise other rules); `analysis` is the workspace
/// pre-pass the arithmetic rules evaluate against; `state` accumulates the
/// cross-file evidence (telemetry usage, lock edges, allow inventory).
pub fn lint_file(
    ctx: &FileCtx,
    source: &str,
    names: Option<&NamesTable>,
    analysis: &WorkspaceAnalysis,
    state: &mut CrossFileState,
) -> Vec<Finding> {
    let lexed = lex(source);
    let test_ranges = cfg_test_ranges(&lexed);
    let mut findings = Vec::new();

    rules::panic_freedom::check(ctx, &lexed, &test_ranges, &mut findings);
    rules::lossy_cast::check(ctx, &lexed, &test_ranges, &mut findings);
    rules::telemetry_names::check(
        ctx,
        &lexed,
        &test_ranges,
        names,
        &mut state.used_names,
        &mut findings,
    );
    rules::unsafe_containment::check(ctx, &lexed, &mut findings);
    rules::unordered_iteration::check(ctx, &lexed, &test_ranges, &mut findings);
    rules::time_entropy::check(ctx, &lexed, &test_ranges, &mut findings);
    rules::lock_order::check(ctx, &lexed, &test_ranges, &mut state.lock_edges, &mut findings);

    // The arithmetic rules share the per-function flow analysis; both scope
    // themselves to hot-crate production code, so only compute it there.
    if ctx.kind.is_production() && analysis::HOT_CRATES.contains(&ctx.crate_name.as_str()) {
        let flows = analysis::analyze_fns(&lexed, analysis);
        rules::accumulator_width::check(
            ctx,
            &lexed,
            &test_ranges,
            analysis,
            &flows,
            &mut findings,
        );
        rules::unchecked_arith::check(ctx, &lexed, &test_ranges, analysis, &flows, &mut findings);
    }

    // This crate's own sources quote the directive syntax in docs and
    // messages, so directives are not honored here: atom-lint must be
    // unconditionally clean.
    let mut directives = if ctx.crate_name == "atom-lint" {
        Vec::new()
    } else {
        parse_directives(&lexed)
    };

    // Malformed directives are findings in their own right.
    for d in &directives {
        if d.reason.is_empty() {
            findings.push(Finding {
                file: ctx.path.clone(),
                line: d.line,
                rule: RULE_DIRECTIVE,
                message: "allow directive missing a reason: \
                          use `// lint: allow(<rule>) — <reason>`"
                    .into(),
            });
        }
        for r in &d.rules {
            if !ALL_RULES.contains(&r.as_str()) {
                findings.push(Finding {
                    file: ctx.path.clone(),
                    line: d.line,
                    rule: RULE_DIRECTIVE,
                    message: format!("allow directive names unknown rule `{r}`"),
                });
            }
        }
    }

    // Apply suppressions.
    findings.retain(|f| {
        if f.rule == RULE_DIRECTIVE {
            return true;
        }
        for d in &mut directives {
            if (f.line == d.target_line || f.line == d.line)
                && d.rules.iter().any(|r| r == f.rule)
            {
                d.suppressed += 1;
                return false;
            }
        }
        true
    });

    // A directive that suppressed nothing is stale and must go.
    for d in &directives {
        if d.suppressed == 0
            && !d.reason.is_empty()
            && d.rules.iter().all(|r| ALL_RULES.contains(&r.as_str()))
        {
            findings.push(Finding {
                file: ctx.path.clone(),
                line: d.line,
                rule: RULE_DIRECTIVE,
                message: format!(
                    "stale allow directive: no {} finding on line {} to suppress",
                    d.rules.join("/"),
                    d.target_line
                ),
            });
        }
    }

    state.allows.extend(directives.into_iter().map(|d| AllowRecord {
        file: ctx.path.clone(),
        line: d.line,
        rules: d.rules,
        reason: d.reason,
        suppressed: d.suppressed,
    }));

    findings
}

/// Detects cycles in the workspace lock-acquisition graph and reports each
/// one once, deterministically. A self-edge (re-acquiring a lock already
/// held) is the degenerate cycle and reported directly.
pub fn lock_cycle_findings(edges: &[LockEdge]) -> Vec<Finding> {
    // First acquisition site per distinct (from, to) pair, in sorted order.
    let mut distinct: Vec<&LockEdge> = edges.iter().collect();
    distinct.sort();
    distinct.dedup_by(|a, b| a.from == b.from && a.to == b.to);

    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in &distinct {
        adj.entry(e.from.as_str()).or_default().push(e);
    }

    let mut findings = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for e in &distinct {
        if e.from == e.to {
            findings.push(Finding {
                file: e.file.clone(),
                line: e.line,
                rule: RULE_LOCK_ORDER,
                message: format!(
                    "`{}` re-acquired while already held: self-deadlock (or writer \
                     starvation on an RwLock)",
                    e.from
                ),
            });
            continue;
        }
        // BFS from e.to back to e.from closes a cycle through this edge.
        let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue = VecDeque::from([e.to.as_str()]);
        let mut seen = BTreeSet::from([e.to.as_str()]);
        while let Some(node) = queue.pop_front() {
            if node == e.from.as_str() {
                break;
            }
            for next in adj.get(node).into_iter().flatten() {
                if seen.insert(next.to.as_str()) {
                    parent.insert(next.to.as_str(), node);
                    queue.push_back(next.to.as_str());
                }
            }
        }
        if !parent.contains_key(e.from.as_str()) {
            continue;
        }
        // Walk parents e.from → ... → e.to, then flip into cycle order
        // `e.from → e.to → ... → e.from`.
        let mut chain: Vec<&str> = vec![e.from.as_str()];
        while let Some(&p) = parent.get(chain[chain.len() - 1]) {
            chain.push(p);
            if p == e.to.as_str() {
                break;
            }
        }
        chain.reverse();
        let mut path: Vec<String> = vec![e.from.clone()];
        path.extend(chain.into_iter().map(str::to_string));
        let mut canonical: Vec<String> = path.clone();
        canonical.sort();
        canonical.dedup();
        if reported.insert(canonical) {
            findings.push(Finding {
                file: e.file.clone(),
                line: e.line,
                rule: RULE_LOCK_ORDER,
                message: format!(
                    "lock-order cycle: {} → back to `{}` — a consistent global \
                     acquisition order is required to rule out deadlock",
                    path.iter()
                        .map(|n| format!("`{n}`"))
                        .collect::<Vec<_>>()
                        .join(" → "),
                    e.from
                ),
            });
        }
    }
    findings
}

/// Parses `crates/telemetry/src/names.rs` into a [`NamesTable`].
pub fn parse_names_table(path_for_report: &str, source: &str) -> NamesTable {
    let lexed = lex(source);
    let toks = &lexed.tokens;
    let mut table = NamesTable {
        consts: BTreeMap::new(),
        path: path_for_report.to_string(),
    };
    let mut i = 0;
    while i + 1 < toks.len() {
        // pub const IDENT : ... = "value" ;
        if toks[i].text == "const" && toks[i + 1].kind == lexer::TokKind::Ident {
            let ident = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            let mut j = i + 2;
            while j < toks.len() && toks[j].text != ";" {
                if toks[j].kind == lexer::TokKind::StrLit {
                    let raw = toks[j].text.trim_matches('"').to_string();
                    table.consts.insert(ident.clone(), (raw, line));
                    break;
                }
                j += 1;
            }
        }
        i += 1;
    }
    table
}

/// Reads the `name = "..."` of the `[package]` section.
fn package_name(cargo_toml: &str) -> Option<String> {
    let mut in_package = false;
    for line in cargo_toml.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return Some(rest.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

fn classify(rel_in_crate: &Path) -> Option<FileKind> {
    let mut parts = rel_in_crate.components().map(|c| c.as_os_str().to_string_lossy().into_owned());
    let first = parts.next()?;
    match first.as_str() {
        "src" => {
            let rest: Vec<String> = parts.collect();
            match rest.len() {
                1 if rest == ["lib.rs"] => Some(FileKind::LibRoot),
                1 if rest == ["main.rs"] => Some(FileKind::BinRoot),
                2 if rest.first().map(String::as_str) == Some("bin") => Some(FileKind::BinRoot),
                _ => Some(FileKind::Src),
            }
        }
        "tests" => Some(FileKind::TestDir),
        "examples" => Some(FileKind::Example),
        "benches" => Some(FileKind::Bench),
        _ => None,
    }
}

fn collect_rs_files(dir: &Path, acc: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, acc)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            acc.push(path);
        }
    }
    Ok(())
}

/// Result of a whole-workspace pass.
#[derive(Debug)]
pub struct WorkspaceReport {
    pub findings: Vec<Finding>,
    pub files_checked: usize,
    /// Every allow directive in the workspace (the audit's escape-hatch
    /// inventory), sorted by file then line.
    pub allows: Vec<AllowRecord>,
}

impl WorkspaceReport {
    /// Findings per rule, over every reportable rule (zeros included so a
    /// report diff shows a rule going quiet).
    pub fn rule_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> =
            REPORTABLE_RULES.iter().map(|r| (*r, 0)).collect();
        for f in &self.findings {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        counts
    }

    /// Drops every finding not produced by `rule` (for `--rule` runs).
    pub fn filter_rule(&mut self, rule: &str) {
        self.findings.retain(|f| f.rule == rule);
    }

    /// Serializes the report as the `atom-lint-report/v2` JSON document:
    /// schema tag, file count, per-rule counts, findings, and the allow
    /// inventory. Hand-rolled (this crate is zero-dependency), with full
    /// string escaping. v2 over v1: the two arithmetic rules
    /// (`accumulator-width`, `unchecked-arith`) appear in the per-rule
    /// counts.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"atom-lint-report/v2\",\n");
        out.push_str(&format!("  \"files_checked\": {},\n", self.files_checked));
        out.push_str(&format!(
            "  \"total_findings\": {},\n",
            self.findings.len()
        ));
        out.push_str("  \"rules\": {\n");
        let counts = self.rule_counts();
        let last = counts.len().saturating_sub(1);
        for (i, (rule, n)) in counts.iter().enumerate() {
            out.push_str(&format!(
                "    {}: {}{}\n",
                json_str(rule),
                n,
                if i == last { "" } else { "," }
            ));
        }
        out.push_str("  },\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}{}\n",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(&f.message),
                if i + 1 == self.findings.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n  \"allow_directives\": [\n");
        for (i, a) in self.allows.iter().enumerate() {
            let rules = a
                .rules
                .iter()
                .map(|r| json_str(r))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"file\": {}, \"line\": {}, \"rules\": [{}], \"reason\": {}, \
                 \"suppressed\": {}}}{}\n",
                json_str(&a.file),
                a.line,
                rules,
                json_str(&a.reason),
                a.suppressed,
                if i + 1 == self.allows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serializes the findings as a SARIF 2.1.0 document
    /// (`results/lint_report.sarif`), suitable for code-scanning upload.
    /// Minimal but schema-shaped: one run, the driver's rule metadata for
    /// every reportable rule, and one `result` per finding with a physical
    /// location. Hand-rolled like [`WorkspaceReport::to_json`] — this crate
    /// is zero-dependency.
    pub fn to_sarif(&self) -> String {
        let mut out = String::with_capacity(8192);
        out.push_str("{\n");
        out.push_str(
            "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/\
             master/Schemata/sarif-schema-2.1.0.json\",\n",
        );
        out.push_str("  \"version\": \"2.1.0\",\n");
        out.push_str("  \"runs\": [\n    {\n");
        out.push_str("      \"tool\": {\n        \"driver\": {\n");
        out.push_str("          \"name\": \"atom-lint\",\n");
        out.push_str("          \"informationUri\": \"https://example.invalid/atom-lint\",\n");
        out.push_str("          \"rules\": [\n");
        let last_rule = REPORTABLE_RULES.len().saturating_sub(1);
        for (i, rule) in REPORTABLE_RULES.iter().enumerate() {
            out.push_str(&format!(
                "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{}\n",
                json_str(rule),
                json_str(rule_description(rule)),
                if i == last_rule { "" } else { "," }
            ));
        }
        out.push_str("          ]\n        }\n      },\n");
        out.push_str("      \"results\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"ruleId\": {}, \"level\": \"error\", \
                 \"message\": {{\"text\": {}}}, \"locations\": [{{\
                 \"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
                 \"region\": {{\"startLine\": {}}}}}}}]}}{}\n",
                json_str(f.rule),
                json_str(&f.message),
                json_str(&f.file),
                f.line,
                if i + 1 == self.findings.len() { "" } else { "," }
            ));
        }
        out.push_str("      ]\n    }\n  ]\n}\n");
        out
    }
}

/// JSON string literal with escaping for quotes, backslashes, and control
/// characters.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lints every crate under `<root>/crates`. `root` must be the workspace
/// root (the directory holding the workspace `Cargo.toml`).
pub fn lint_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    crate_dirs.sort();

    // Pass 0: the telemetry names table (needed by every other file).
    let names_path = root.join("crates/telemetry/src/names.rs");
    let names = match fs::read_to_string(&names_path) {
        Ok(src) => Some(parse_names_table("crates/telemetry/src/names.rs", &src)),
        Err(_) => None,
    };

    // Pass 1: collect every file, so the workspace analysis (constants to
    // fixpoint, per-crate call graphs) sees the whole tree before any rule
    // runs.
    let mut sources: Vec<(FileCtx, String)> = Vec::new();
    for crate_dir in &crate_dirs {
        let manifest = fs::read_to_string(crate_dir.join("Cargo.toml"))?;
        let crate_name = package_name(&manifest).unwrap_or_else(|| {
            crate_dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default()
        });
        let mut files = Vec::new();
        collect_rs_files(crate_dir, &mut files)?;
        files.sort();
        for file in files {
            let rel_in_crate = match file.strip_prefix(crate_dir) {
                Ok(r) => r,
                Err(_) => continue,
            };
            // The lint's own known-bad fixtures are data, not code.
            if rel_in_crate.starts_with("fixtures") {
                continue;
            }
            let Some(kind) = classify(rel_in_crate) else {
                continue;
            };
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let source = fs::read_to_string(&file)?;
            sources.push((
                FileCtx {
                    crate_name: crate_name.clone(),
                    path: rel,
                    kind,
                },
                source,
            ));
        }
    }

    let analysis = WorkspaceAnalysis::build(&sources);

    // Pass 2: the rules.
    let mut findings = Vec::new();
    let mut files_checked = 0usize;
    let mut state = CrossFileState::default();
    for (ctx, source) in &sources {
        findings.extend(lint_file(ctx, source, names.as_ref(), &analysis, &mut state));
        files_checked += 1;
    }

    // Cross-file half of the telemetry bijection: every declared name must
    // be used by at least one production call site.
    if let Some(table) = &names {
        for (ident, (value, line)) in &table.consts {
            if !state.used_names.iter().any(|u| u == ident) {
                findings.push(Finding {
                    file: table.path.clone(),
                    line: *line,
                    rule: RULE_TELEMETRY_NAMES,
                    message: format!(
                        "metric name `{ident}` (\"{value}\") is declared but never \
                         recorded by any production call site"
                    ),
                });
            }
        }
        // Two constants aliasing one string would silently merge series.
        let mut by_value: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (ident, (value, _)) in &table.consts {
            by_value.entry(value).or_default().push(ident);
        }
        for (value, idents) in by_value {
            if idents.len() > 1 {
                findings.push(Finding {
                    file: table.path.clone(),
                    line: table.consts[idents[0]].1,
                    rule: RULE_TELEMETRY_NAMES,
                    message: format!(
                        "metric string \"{value}\" is declared by multiple constants: {}",
                        idents.join(", ")
                    ),
                });
            }
        }
    }

    // Cross-file half of the lock-order rule: cycles in the acquisition
    // graph assembled from every nested-lock site.
    findings.extend(lock_cycle_findings(&state.lock_edges));

    findings.sort();
    findings.dedup();
    let mut allows = state.allows;
    allows.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(WorkspaceReport {
        findings,
        files_checked,
        allows,
    })
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
