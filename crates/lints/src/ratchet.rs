//! The finding ratchet: a committed baseline (`results/lint_baseline.json`)
//! of per-rule finding counts *and* per-rule allow-suppression counts that
//! may only go down.
//!
//! On a clean tree the finding counts are all zero (the normal gate already
//! fails on any finding), so the ratchet's teeth are the suppression
//! counts: a PR that quiets a rule with a new `lint: allow(...)` passes the
//! normal gate but regresses the baseline, forcing the escape hatch to be
//! visible in review (`--write-baseline` regenerates it deliberately).
//! Counts that *decrease* auto-shrink the baseline on the next full run,
//! so the ratchet never blocks an improvement.

use crate::{WorkspaceReport, REPORTABLE_RULES};
use std::collections::BTreeMap;

/// Per-rule counts as committed to `results/lint_baseline.json`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Baseline {
    /// rule → open finding count.
    pub findings: BTreeMap<String, usize>,
    /// rule → findings suppressed by `lint: allow` directives. A directive
    /// naming several rules attributes each suppression to every rule it
    /// names — an over-count that only makes the ratchet stricter.
    pub suppressed: BTreeMap<String, usize>,
}

/// One count that went up relative to the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    pub rule: String,
    /// `"findings"` or `"suppressed"`.
    pub kind: &'static str,
    pub baseline: usize,
    pub current: usize,
}

/// Outcome of [`Baseline::check`].
#[derive(Debug, Default)]
pub struct RatchetOutcome {
    /// Counts above the baseline — each one fails the gate.
    pub regressions: Vec<Regression>,
    /// Whether any count dropped (the baseline should be rewritten).
    pub improved: bool,
}

impl Baseline {
    /// The baseline a report would ratchet to.
    pub fn from_report(report: &WorkspaceReport) -> Baseline {
        let mut findings: BTreeMap<String, usize> =
            REPORTABLE_RULES.iter().map(|r| (r.to_string(), 0)).collect();
        for f in &report.findings {
            *findings.entry(f.rule.to_string()).or_insert(0) += 1;
        }
        let mut suppressed: BTreeMap<String, usize> =
            REPORTABLE_RULES.iter().map(|r| (r.to_string(), 0)).collect();
        for a in &report.allows {
            if a.suppressed == 0 {
                continue;
            }
            for rule in &a.rules {
                *suppressed.entry(rule.clone()).or_insert(0) += a.suppressed;
            }
        }
        Baseline { findings, suppressed }
    }

    /// Compares `current` against `self` (the committed baseline). A rule
    /// absent from the baseline (added after the baseline was written)
    /// ratchets from zero.
    pub fn check(&self, current: &Baseline) -> RatchetOutcome {
        let mut out = RatchetOutcome::default();
        let mut diff = |kind: &'static str,
                        base: &BTreeMap<String, usize>,
                        cur: &BTreeMap<String, usize>| {
            let mut rules: Vec<&String> = base.keys().chain(cur.keys()).collect();
            rules.sort();
            rules.dedup();
            for rule in rules {
                let b = base.get(rule).copied().unwrap_or(0);
                let c = cur.get(rule).copied().unwrap_or(0);
                if c > b {
                    out.regressions.push(Regression {
                        rule: rule.clone(),
                        kind,
                        baseline: b,
                        current: c,
                    });
                } else if c < b {
                    out.improved = true;
                }
            }
        };
        diff("findings", &self.findings, &current.findings);
        diff("suppressed", &self.suppressed, &current.suppressed);
        out
    }

    /// Serializes as the `atom-lint-baseline/v1` JSON document.
    pub fn to_json(&self) -> String {
        fn section(out: &mut String, map: &BTreeMap<String, usize>) {
            let last = map.len().saturating_sub(1);
            for (i, (rule, n)) in map.iter().enumerate() {
                out.push_str(&format!(
                    "    {}: {}{}\n",
                    crate::json_str(rule),
                    n,
                    if i == last { "" } else { "," }
                ));
            }
        }
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": \"atom-lint-baseline/v1\",\n");
        out.push_str("  \"findings\": {\n");
        section(&mut out, &self.findings);
        out.push_str("  },\n  \"suppressed_allows\": {\n");
        section(&mut out, &self.suppressed);
        out.push_str("  }\n}\n");
        out
    }

    /// Parses the document [`Baseline::to_json`] writes. Tolerant of
    /// whitespace but not a general JSON parser: it scans for the two
    /// section keys and reads `"rule": count` pairs until the closing
    /// brace. Returns `None` when either section is missing or malformed —
    /// a corrupt baseline must fail loudly, not ratchet from garbage.
    pub fn parse(text: &str) -> Option<Baseline> {
        let findings = parse_section(text, "\"findings\"")?;
        let suppressed = parse_section(text, "\"suppressed_allows\"")?;
        Some(Baseline { findings, suppressed })
    }
}

fn parse_section(text: &str, key: &str) -> Option<BTreeMap<String, usize>> {
    let start = text.find(key)? + key.len();
    let rest = &text[start..];
    let open = rest.find('{')?;
    let body = &rest[open + 1..];
    let close = body.find('}')?;
    let body = &body[..close];
    let mut map = BTreeMap::new();
    for entry in body.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (rule, count) = entry.split_once(':')?;
        let rule = rule.trim().trim_matches('"').to_string();
        let count: usize = count.trim().parse().ok()?;
        map.insert(rule, count);
    }
    Some(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AllowRecord, Finding, WorkspaceReport, RULE_LOSSY_CAST, RULE_PANIC_FREEDOM};

    fn report(findings: Vec<Finding>, allows: Vec<AllowRecord>) -> WorkspaceReport {
        WorkspaceReport { findings, files_checked: 1, allows }
    }

    fn finding(rule: &'static str) -> Finding {
        Finding { file: "crates/x/src/lib.rs".into(), line: 1, rule, message: "m".into() }
    }

    fn allow(rule: &str, suppressed: usize) -> AllowRecord {
        AllowRecord {
            file: "crates/x/src/lib.rs".into(),
            line: 2,
            rules: vec![rule.to_string()],
            reason: "because".into(),
            suppressed,
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let b = Baseline::from_report(&report(
            vec![finding(RULE_PANIC_FREEDOM)],
            vec![allow(RULE_LOSSY_CAST, 3), allow(RULE_LOSSY_CAST, 0)],
        ));
        assert_eq!(b.findings.get(RULE_PANIC_FREEDOM), Some(&1));
        // Stale (zero-suppression) directives do not count.
        assert_eq!(b.suppressed.get(RULE_LOSSY_CAST), Some(&3));
        let parsed = Baseline::parse(&b.to_json()).expect("parses");
        assert_eq!(parsed, b);
    }

    #[test]
    fn new_finding_regresses_and_removed_finding_improves() {
        let base = Baseline::from_report(&report(vec![finding(RULE_PANIC_FREEDOM)], vec![]));
        let worse = Baseline::from_report(&report(
            vec![finding(RULE_PANIC_FREEDOM), finding(RULE_LOSSY_CAST)],
            vec![],
        ));
        let out = base.check(&worse);
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].rule, RULE_LOSSY_CAST);
        assert_eq!(out.regressions[0].kind, "findings");
        assert!(!out.improved);

        let better = Baseline::from_report(&report(vec![], vec![]));
        let out = base.check(&better);
        assert!(out.regressions.is_empty());
        assert!(out.improved);
    }

    #[test]
    fn new_suppression_regresses() {
        let base = Baseline::from_report(&report(vec![], vec![]));
        let cur = Baseline::from_report(&report(vec![], vec![allow(RULE_LOSSY_CAST, 1)]));
        let out = base.check(&cur);
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].kind, "suppressed");
    }

    #[test]
    fn corrupt_baseline_is_rejected() {
        assert!(Baseline::parse("{}").is_none());
        assert!(Baseline::parse("{\"findings\": {\"a\": x}}").is_none());
    }
}
