//! A minimal Rust lexer: just enough token structure for line-oriented
//! static checks.
//!
//! The lexer's one job is to make the rule passes immune to the classic
//! text-scan failure modes: patterns inside string literals, inside
//! comments, or split across lines. It produces a flat token stream (with
//! line numbers) plus the comment list, and deliberately does **not** build
//! a syntax tree — every rule in this crate is expressible over tokens,
//! and a real parser would be a maintenance liability in a zero-dependency
//! crate.

/// Token classes the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `as`, `let`, ...).
    Ident,
    /// String literal of any flavor (`"..."`, `r#"..."#`, `b"..."`),
    /// including the quotes.
    StrLit,
    /// Character or byte literal (`'a'`, `b'\n'`).
    CharLit,
    /// Numeric literal.
    NumLit,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// Single punctuation character (`[`, `!`, `:`...). Multi-character
    /// operators arrive as consecutive tokens.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

/// One comment (line or block, doc or plain) with the 1-based line it
/// starts on and whether any code token shares that line.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: usize,
    pub text: String,
}

/// A lexed source file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Whether any code token sits on `line`.
    pub fn has_code_on(&self, line: usize) -> bool {
        // Tokens are in line order; a binary search would work, but files
        // are small enough that the scan never shows up in profiles.
        self.tokens.iter().any(|t| t.line == line)
    }

    /// The first line at or after `line` that holds a code token.
    pub fn next_code_line(&self, line: usize) -> Option<usize> {
        self.tokens.iter().map(|t| t.line).find(|&l| l >= line)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens and comments. Unterminated constructs are
/// tolerated (the remainder of the file is consumed) — the lint must never
/// crash on the code it is judging.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = chars.len();

    let bump_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count();

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers /// and //! doc comments).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }
        // Block comment, possibly nested (Rust nests them).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            line += bump_lines(&chars[start..i.min(n)]);
            out.comments.push(Comment {
                line: start_line,
                text: chars[start..i.min(n)].iter().collect(),
            });
            continue;
        }
        // Raw / byte string prefixes: r"..", r#".."#, br"..", b"..".
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (prefix_len, is_raw) = match (c, chars[i + 1]) {
                ('r', '"') | ('r', '#') => (1, true),
                ('b', '"') => (1, false),
                ('b', 'r') if i + 2 < n && (chars[i + 2] == '"' || chars[i + 2] == '#') => {
                    (2, true)
                }
                ('b', '\'') => {
                    // Byte char literal b'x'.
                    let start = i;
                    i += 2;
                    while i < n && chars[i] != '\'' {
                        if chars[i] == '\\' {
                            i += 1;
                        }
                        i += 1;
                    }
                    i = (i + 1).min(n);
                    out.tokens.push(Token {
                        kind: TokKind::CharLit,
                        text: chars[start..i.min(n)].iter().collect(),
                        line,
                    });
                    continue;
                }
                _ => (0, false),
            };
            if prefix_len > 0 {
                let start = i;
                let start_line = line;
                i += prefix_len;
                if is_raw {
                    let mut hashes = 0;
                    while i < n && chars[i] == '#' {
                        hashes += 1;
                        i += 1;
                    }
                    if i < n && chars[i] == '"' {
                        i += 1;
                        'raw: while i < n {
                            if chars[i] == '"' {
                                let mut j = i + 1;
                                let mut seen = 0;
                                while j < n && chars[j] == '#' && seen < hashes {
                                    seen += 1;
                                    j += 1;
                                }
                                if seen == hashes {
                                    i = j;
                                    break 'raw;
                                }
                            }
                            i += 1;
                        }
                        line += bump_lines(&chars[start..i.min(n)]);
                        out.tokens.push(Token {
                            kind: TokKind::StrLit,
                            text: chars[start..i.min(n)].iter().collect(),
                            line: start_line,
                        });
                        continue;
                    }
                    // `r#ident` raw identifier or lone r/b: rewind and fall
                    // through to the identifier path.
                    i = start;
                } else {
                    // b"..." cooked byte string.
                    i += 1; // opening quote
                    while i < n && chars[i] != '"' {
                        if chars[i] == '\\' {
                            i += 1;
                        }
                        i += 1;
                    }
                    i = (i + 1).min(n);
                    line += bump_lines(&chars[start..i.min(n)]);
                    out.tokens.push(Token {
                        kind: TokKind::StrLit,
                        text: chars[start..i.min(n)].iter().collect(),
                        line: start_line,
                    });
                    continue;
                }
            }
        }
        // Plain string literal.
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n && chars[i] != '"' {
                if chars[i] == '\\' {
                    i += 1;
                }
                i += 1;
            }
            i = (i + 1).min(n);
            line += bump_lines(&chars[start..i.min(n)]);
            out.tokens.push(Token {
                kind: TokKind::StrLit,
                text: chars[start..i.min(n)].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Lifetime, loop label, or char literal.
        if c == '\'' {
            // 'a' is a char literal; 'a (no closing quote) is a lifetime.
            let is_char = if i + 1 < n && chars[i + 1] == '\\' {
                true
            } else {
                i + 2 < n && is_ident_continue(chars[i + 1]) && {
                    // Scan the identifier; a closing quote right after makes
                    // it a char literal ('x'), otherwise it is a lifetime.
                    let mut j = i + 1;
                    while j < n && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    j < n && chars[j] == '\''
                }
            };
            let start = i;
            if is_char {
                i += 1;
                while i < n && chars[i] != '\'' {
                    if chars[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i = (i + 1).min(n);
                out.tokens.push(Token {
                    kind: TokKind::CharLit,
                    text: chars[start..i.min(n)].iter().collect(),
                    line,
                });
            } else {
                i += 1;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            continue;
        }
        // Identifier or keyword.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Number. A `.` joins only when followed by a digit, so `0..n`
        // lexes as `0`, `.`, `.`, `n`.
        if c.is_ascii_digit() {
            let start = i;
            while i < n
                && (is_ident_continue(chars[i])
                    || (chars[i] == '.' && i + 1 < n && chars[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::NumLit,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Everything else: one punctuation character per token.
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Line ranges (inclusive) covered by `#[cfg(test)]` items — test modules
/// and test-only items the rules must skip.
pub fn cfg_test_ranges(lexed: &Lexed) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut ranges = Vec::new();
    for i in 0..toks.len() {
        if toks[i].text != "cfg" || toks[i].kind != TokKind::Ident {
            continue;
        }
        let prev_ok = i >= 2 && toks[i - 1].text == "[" && toks[i - 2].text == "#";
        let next_ok = i + 3 < toks.len()
            && toks[i + 1].text == "("
            && toks[i + 2].text == "test"
            && toks[i + 3].text == ")";
        if !prev_ok || !next_ok {
            continue;
        }
        let start_line = toks[i].line;
        // Scan past the attribute's `]`, then to the item's first `{` or a
        // terminating `;` (for brace-less items like `use`).
        let mut j = i + 4;
        while j < toks.len() && toks[j].text != "]" {
            j += 1;
        }
        let mut end_line = start_line;
        let mut depth = 0usize;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => {
                    depth += 1;
                }
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end_line = toks[j].line;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end_line = toks[j].line;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() {
            end_line = toks.last().map(|t| t.line).unwrap_or(start_line);
        }
        ranges.push((start_line, end_line));
    }
    ranges
}

/// Whether `line` falls inside any of `ranges`.
pub fn in_ranges(ranges: &[(usize, usize)], line: usize) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let lexed = lex(r#"let x = "unwrap() [0] // not code"; // real.unwrap()"#);
        assert!(!lexed.tokens.iter().any(|t| t.text == "unwrap"));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("real.unwrap()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::CharLit));
    }

    #[test]
    fn ranges_lex_as_separate_numbers() {
        let lexed = lex("for i in 0..10 {}");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::NumLit)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0", "10"]);
    }

    #[test]
    fn cfg_test_module_span_detected() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let lexed = lex(src);
        let ranges = cfg_test_ranges(&lexed);
        assert_eq!(ranges, vec![(2, 5)]);
        assert!(in_ranges(&ranges, 4));
        assert!(!in_ranges(&ranges, 6));
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let lexed = lex(r##"let s = r#"a "quoted" [x.unwrap()]"#;"##);
        assert!(!lexed.tokens.iter().any(|t| t.text == "unwrap"));
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::StrLit)
                .count(),
            1
        );
    }

    #[test]
    fn block_comments_nest() {
        let lexed = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert!(lexed.tokens.iter().any(|t| t.text == "fn"));
        assert!(!lexed.tokens.iter().any(|t| t.text == "inner"));
    }
}
