//! A minimal Rust lexer: just enough token structure for line-oriented
//! static checks.
//!
//! The lexer's one job is to make the rule passes immune to the classic
//! text-scan failure modes: patterns inside string literals, inside
//! comments, or split across lines. It produces a flat token stream (with
//! line numbers) plus the comment list, and deliberately does **not** build
//! a syntax tree — every rule in this crate is expressible over tokens,
//! and a real parser would be a maintenance liability in a zero-dependency
//! crate.

/// Token classes the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `as`, `let`, ...).
    Ident,
    /// String literal of any flavor (`"..."`, `r#"..."#`, `b"..."`),
    /// including the quotes.
    StrLit,
    /// Character or byte literal (`'a'`, `b'\n'`).
    CharLit,
    /// Numeric literal.
    NumLit,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// Single punctuation character (`[`, `!`, `:`...). Multi-character
    /// operators arrive as consecutive tokens.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

/// One comment (line or block, doc or plain) with the 1-based line it
/// starts on and whether any code token shares that line.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: usize,
    pub text: String,
}

/// A lexed source file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Whether any code token sits on `line`.
    pub fn has_code_on(&self, line: usize) -> bool {
        // Tokens are in line order; a binary search would work, but files
        // are small enough that the scan never shows up in profiles.
        self.tokens.iter().any(|t| t.line == line)
    }

    /// The first line at or after `line` that holds a code token.
    pub fn next_code_line(&self, line: usize) -> Option<usize> {
        self.tokens.iter().map(|t| t.line).find(|&l| l >= line)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens and comments. Unterminated constructs are
/// tolerated (the remainder of the file is consumed) — the lint must never
/// crash on the code it is judging.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = chars.len();

    let bump_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count();

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers /// and //! doc comments).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }
        // Block comment, possibly nested (Rust nests them).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            line += bump_lines(&chars[start..i.min(n)]);
            out.comments.push(Comment {
                line: start_line,
                text: chars[start..i.min(n)].iter().collect(),
            });
            continue;
        }
        // Raw / byte string prefixes: r"..", r#".."#, br"..", b"..".
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (prefix_len, is_raw) = match (c, chars[i + 1]) {
                ('r', '"') | ('r', '#') => (1, true),
                ('b', '"') => (1, false),
                ('b', 'r') if i + 2 < n && (chars[i + 2] == '"' || chars[i + 2] == '#') => {
                    (2, true)
                }
                ('b', '\'') => {
                    // Byte char literal b'x'.
                    let start = i;
                    i += 2;
                    while i < n && chars[i] != '\'' {
                        if chars[i] == '\\' {
                            i += 1;
                        }
                        i += 1;
                    }
                    i = (i + 1).min(n);
                    out.tokens.push(Token {
                        kind: TokKind::CharLit,
                        text: chars[start..i.min(n)].iter().collect(),
                        line,
                    });
                    continue;
                }
                _ => (0, false),
            };
            if prefix_len > 0 {
                let start = i;
                let start_line = line;
                i += prefix_len;
                if is_raw {
                    let mut hashes = 0;
                    while i < n && chars[i] == '#' {
                        hashes += 1;
                        i += 1;
                    }
                    if i < n && chars[i] == '"' {
                        i += 1;
                        'raw: while i < n {
                            if chars[i] == '"' {
                                let mut j = i + 1;
                                let mut seen = 0;
                                while j < n && chars[j] == '#' && seen < hashes {
                                    seen += 1;
                                    j += 1;
                                }
                                if seen == hashes {
                                    i = j;
                                    break 'raw;
                                }
                            }
                            i += 1;
                        }
                        line += bump_lines(&chars[start..i.min(n)]);
                        out.tokens.push(Token {
                            kind: TokKind::StrLit,
                            text: chars[start..i.min(n)].iter().collect(),
                            line: start_line,
                        });
                        continue;
                    }
                    // `r#ident` raw identifier or lone r/b: rewind and fall
                    // through to the identifier path.
                    i = start;
                } else {
                    // b"..." cooked byte string.
                    i += 1; // opening quote
                    while i < n && chars[i] != '"' {
                        if chars[i] == '\\' {
                            i += 1;
                        }
                        i += 1;
                    }
                    i = (i + 1).min(n);
                    line += bump_lines(&chars[start..i.min(n)]);
                    out.tokens.push(Token {
                        kind: TokKind::StrLit,
                        text: chars[start..i.min(n)].iter().collect(),
                        line: start_line,
                    });
                    continue;
                }
            }
        }
        // Plain string literal.
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n && chars[i] != '"' {
                if chars[i] == '\\' {
                    i += 1;
                }
                i += 1;
            }
            i = (i + 1).min(n);
            line += bump_lines(&chars[start..i.min(n)]);
            out.tokens.push(Token {
                kind: TokKind::StrLit,
                text: chars[start..i.min(n)].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Lifetime, loop label, or char literal.
        if c == '\'' {
            // 'a' is a char literal; 'a (no closing quote) is a lifetime.
            let is_char = if i + 1 < n && chars[i + 1] == '\\' {
                true
            } else {
                i + 2 < n && is_ident_continue(chars[i + 1]) && {
                    // Scan the identifier; a closing quote right after makes
                    // it a char literal ('x'), otherwise it is a lifetime.
                    let mut j = i + 1;
                    while j < n && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    j < n && chars[j] == '\''
                }
            };
            let start = i;
            if is_char {
                i += 1;
                while i < n && chars[i] != '\'' {
                    if chars[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i = (i + 1).min(n);
                out.tokens.push(Token {
                    kind: TokKind::CharLit,
                    text: chars[start..i.min(n)].iter().collect(),
                    line,
                });
            } else {
                i += 1;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            continue;
        }
        // Identifier or keyword.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Number. A `.` joins only when followed by a digit, so `0..n`
        // lexes as `0`, `.`, `.`, `n`.
        if c.is_ascii_digit() {
            let start = i;
            while i < n
                && (is_ident_continue(chars[i])
                    || (chars[i] == '.' && i + 1 < n && chars[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::NumLit,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Everything else: one punctuation character per token.
        out.tokens.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Line ranges (inclusive) covered by `#[cfg(test)]` items — test modules
/// and test-only items the rules must skip.
pub fn cfg_test_ranges(lexed: &Lexed) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut ranges = Vec::new();
    for i in 0..toks.len() {
        if toks[i].text != "cfg" || toks[i].kind != TokKind::Ident {
            continue;
        }
        let prev_ok = i >= 2 && toks[i - 1].text == "[" && toks[i - 2].text == "#";
        let next_ok = i + 3 < toks.len()
            && toks[i + 1].text == "("
            && toks[i + 2].text == "test"
            && toks[i + 3].text == ")";
        if !prev_ok || !next_ok {
            continue;
        }
        let start_line = toks[i].line;
        // Scan past the attribute's `]`, then to the item's first `{` or a
        // terminating `;` (for brace-less items like `use`).
        let mut j = i + 4;
        while j < toks.len() && toks[j].text != "]" {
            j += 1;
        }
        let mut end_line = start_line;
        let mut depth = 0usize;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => {
                    depth += 1;
                }
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end_line = toks[j].line;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end_line = toks[j].line;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() {
            end_line = toks.last().map(|t| t.line).unwrap_or(start_line);
        }
        ranges.push((start_line, end_line));
    }
    ranges
}

/// Whether `line` falls inside any of `ranges`.
pub fn in_ranges(ranges: &[(usize, usize)], line: usize) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

/// A name bound to a type the rules track (`requests: HashMap<..>`,
/// `let seen = HashSet::new()`, `events: Mutex<Vec<..>>`...).
///
/// Scope tracking is deliberately lightweight: bindings are collected
/// per file without shadowing analysis, so a rule treats any later use of
/// the name as having the bound type. That over-approximation is the
/// right bias for an audit layer — a false positive costs one justified
/// `lint: allow`, a false negative costs a nondeterminism bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeBinding {
    /// The bound identifier (field, parameter, or `let` name).
    pub name: String,
    /// The tracked type it was bound with (last path segment, e.g.
    /// `HashMap` for `std::collections::HashMap<K, V>`).
    pub ty: String,
    /// 1-based line of the binding.
    pub line: usize,
}

/// Skips a `path :: to :: Type` chain starting at an identifier token and
/// returns `(last_segment_index, next_index)` — or `None` if `j` is not an
/// identifier.
fn skip_type_path(toks: &[Token], mut j: usize) -> Option<(usize, usize)> {
    if toks.get(j).map(|t| t.kind) != Some(TokKind::Ident) {
        return None;
    }
    let mut last = j;
    while toks.get(j + 1).is_some_and(|a| a.text == ":")
        && toks.get(j + 2).is_some_and(|b| b.text == ":")
        && toks.get(j + 3).map(|t| t.kind) == Some(TokKind::Ident)
    {
        j += 3;
        last = j;
    }
    Some((last, j + 1))
}

/// Collects bindings of the `tracked` type names from three declaration
/// shapes:
///
/// 1. ascription — `name: [&] [mut] [path::]Ty<...>` (struct fields, fn
///    parameters, typed `let`s);
/// 2. constructor inference — `let [mut] name = [path::]Ty::new(..)`
///    (also `with_capacity`, `default`, `from`);
/// 3. statics — covered by shape 1 (`static NAME: Mutex<..>`).
///
/// Types nested inside generic arguments (`Vec<HashMap<..>>`) are not
/// tracked; neither is shadowing — see [`TypeBinding`].
pub fn type_bindings(lexed: &Lexed, tracked: &[&str]) -> Vec<TypeBinding> {
    let toks = &lexed.tokens;
    let mut out: Vec<TypeBinding> = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // Shape 2: `let [mut] name = Path::Ty::ctor(`.
        if t.text == "let" {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.text == "mut") {
                j += 1;
            }
            let Some(name_tok) = toks.get(j) else { continue };
            if name_tok.kind != TokKind::Ident {
                continue;
            }
            if toks.get(j + 1).map(|t| t.text.as_str()) != Some("=") {
                continue;
            }
            // Walk the constructor path: every segment before the final
            // method call is a candidate type name.
            if let Some((_, next)) = skip_type_path(toks, j + 2) {
                let ctor_ok = toks.get(next).is_some_and(|t| t.text == "(")
                    || toks.get(next).is_some_and(|t| t.text == "<");
                if ctor_ok {
                    let segs: Vec<&str> = toks[j + 2..next]
                        .iter()
                        .filter(|t| t.kind == TokKind::Ident)
                        .map(|t| t.text.as_str())
                        .collect();
                    let is_ctor = segs
                        .last()
                        .is_some_and(|m| ["new", "with_capacity", "default", "from"].contains(m));
                    if is_ctor {
                        if let Some(ty) = segs.iter().rev().find(|s| tracked.contains(*s)) {
                            out.push(TypeBinding {
                                name: name_tok.text.clone(),
                                ty: (*ty).to_string(),
                                line: name_tok.line,
                            });
                        }
                    }
                }
            }
            continue;
        }
        // Shape 1: `name : Ty` where the `:` is not a path separator.
        if KEYWORD_NAMES.contains(&t.text.as_str()) {
            continue;
        }
        if toks.get(i + 1).map(|t| t.text.as_str()) != Some(":") {
            continue;
        }
        if toks.get(i + 2).is_some_and(|t| t.text == ":") {
            continue; // `name::...` path, not an ascription
        }
        // Also reject `path::name: Ty` receivers? A preceding `::` means
        // `name` is a path segment, not a binding.
        if i >= 2 && toks[i - 1].text == ":" && toks[i - 2].text == ":" {
            continue;
        }
        let mut j = i + 2;
        while toks.get(j).is_some_and(|t| {
            t.text == "&" || t.text == "mut" || t.kind == TokKind::Lifetime
        }) {
            j += 1;
        }
        let Some((last, _)) = skip_type_path(toks, j) else {
            continue;
        };
        if tracked.contains(&toks[last].text.as_str()) {
            out.push(TypeBinding {
                name: t.text.clone(),
                ty: toks[last].text.clone(),
                line: t.line,
            });
        }
    }
    out
}

/// Keywords that can precede `:` without being a binding name (`if x == y
/// { .. }` has none; mostly defensive).
const KEYWORD_NAMES: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "true", "type", "unsafe", "use", "where",
    "while",
];

/// One function body as a token span, for rules that reason about
/// acquisition order within a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// 1-based line the `fn` keyword sits on.
    pub line: usize,
    /// Token index of the body's opening `{`.
    pub body_start: usize,
    /// Token index of the matching `}` (or last token if unterminated).
    pub body_end: usize,
}

/// Finds every `fn name .. { .. }` and returns the body token spans.
/// Nested functions produce nested (overlapping) spans; rules that walk a
/// span should prefer the innermost match or tolerate the overlap.
pub fn fn_spans(lexed: &Lexed) -> Vec<FnSpan> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text != "fn" {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { continue };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        // Scan to the body's `{`, skipping the parameter list and any
        // return type. A `;` first means a trait/extern declaration with
        // no body.
        let mut j = i + 2;
        let mut paren = 0usize;
        let mut angle = 0usize;
        let mut body_start = None;
        while let Some(t) = toks.get(j) {
            match t.text.as_str() {
                "(" | "[" => paren += 1,
                ")" | "]" => paren = paren.saturating_sub(1),
                "<" if paren == 0 => angle += 1,
                ">" if paren == 0 => angle = angle.saturating_sub(1),
                ";" if paren == 0 => break,
                "{" if paren == 0 && angle == 0 => {
                    body_start = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(start) = body_start else { continue };
        let mut depth = 0usize;
        let mut end = toks.len().saturating_sub(1);
        for (k, t) in toks.iter().enumerate().skip(start) {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        out.push(FnSpan {
            name: name_tok.text.clone(),
            line: toks[i].line,
            body_start: start,
            body_end: end,
        });
    }
    out
}

/// One `const NAME: Ty = <expr>;` item, with the initializer kept as a
/// token index range so the analysis layer can parse and evaluate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstDef {
    /// The constant's identifier.
    pub name: String,
    /// 1-based line of the identifier.
    pub line: usize,
    /// The ascribed type's tokens, joined with single spaces (`"usize"`,
    /// `"& str"`).
    pub ty: String,
    /// Token index range `[start, end)` of the initializer expression.
    pub expr: (usize, usize),
}

/// Finds every `const NAME: Ty = expr;` item (associated consts included)
/// and returns the name, type text, and the initializer's token span.
/// `const fn` and generic `const N: usize` parameters are not matched —
/// the pattern requires the `name : ty = expr ;` shape after `const`.
pub fn const_defs(lexed: &Lexed) -> Vec<ConstDef> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text != "const" {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { continue };
        if name_tok.kind != TokKind::Ident || name_tok.text == "fn" {
            continue;
        }
        if toks.get(i + 2).map(|t| t.text.as_str()) != Some(":") {
            continue;
        }
        // Type tokens run to the `=` at angle/paren depth 0; a `;`, `>`
        // underflow, or `,` first means this is a const generic parameter
        // or a declaration without an initializer.
        let mut j = i + 3;
        let mut depth = 0usize;
        let mut eq = None;
        while let Some(t) = toks.get(j) {
            match t.text.as_str() {
                "<" | "(" | "[" => depth += 1,
                ">" | ")" | "]" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                "," if depth == 0 => break,
                ";" if depth == 0 => break,
                "=" if depth == 0 => {
                    eq = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(eq) = eq else { continue };
        let ty = toks[i + 3..eq]
            .iter()
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        // Initializer runs to the `;` at group depth 0.
        let mut k = eq + 1;
        let mut depth = 0usize;
        let mut semi = None;
        while let Some(t) = toks.get(k) {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => {
                    semi = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let Some(semi) = semi else { continue };
        out.push(ConstDef {
            name: name_tok.text.clone(),
            line: name_tok.line,
            ty,
            expr: (eq + 1, semi),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let lexed = lex(r#"let x = "unwrap() [0] // not code"; // real.unwrap()"#);
        assert!(!lexed.tokens.iter().any(|t| t.text == "unwrap"));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("real.unwrap()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::CharLit));
    }

    #[test]
    fn ranges_lex_as_separate_numbers() {
        let lexed = lex("for i in 0..10 {}");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::NumLit)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0", "10"]);
    }

    #[test]
    fn cfg_test_module_span_detected() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let lexed = lex(src);
        let ranges = cfg_test_ranges(&lexed);
        assert_eq!(ranges, vec![(2, 5)]);
        assert!(in_ranges(&ranges, 4));
        assert!(!in_ranges(&ranges, 6));
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let lexed = lex(r##"let s = r#"a "quoted" [x.unwrap()]"#;"##);
        assert!(!lexed.tokens.iter().any(|t| t.text == "unwrap"));
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::StrLit)
                .count(),
            1
        );
    }

    #[test]
    fn block_comments_nest() {
        let lexed = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert!(lexed.tokens.iter().any(|t| t.text == "fn"));
        assert!(!lexed.tokens.iter().any(|t| t.text == "inner"));
    }

    const TRACKED: &[&str] = &["HashMap", "HashSet", "Mutex", "RwLock"];

    #[test]
    fn type_bindings_from_ascriptions() {
        let src = "struct S {\n    requests: HashMap<usize, R>,\n    names: Vec<String>,\n}\nfn f(seen: &mut HashSet<u32>, n: usize) {}\nstatic LOCK: std::sync::Mutex<()> = todo();\n";
        let lexed = lex(src);
        let got = type_bindings(&lexed, TRACKED);
        assert_eq!(
            got,
            vec![
                TypeBinding { name: "requests".into(), ty: "HashMap".into(), line: 2 },
                TypeBinding { name: "seen".into(), ty: "HashSet".into(), line: 5 },
                TypeBinding { name: "LOCK".into(), ty: "Mutex".into(), line: 6 },
            ]
        );
    }

    #[test]
    fn type_bindings_from_constructors() {
        let src = "fn f() {\n    let mut live = HashMap::new();\n    let lock = std::sync::RwLock::new(0);\n    let v = Vec::new();\n    let cap = HashSet::with_capacity(8);\n}\n";
        let lexed = lex(src);
        let got = type_bindings(&lexed, TRACKED);
        let names: Vec<(&str, &str)> =
            got.iter().map(|b| (b.name.as_str(), b.ty.as_str())).collect();
        assert_eq!(
            names,
            vec![("live", "HashMap"), ("lock", "RwLock"), ("cap", "HashSet")]
        );
    }

    #[test]
    fn type_bindings_ignore_paths_and_use_items() {
        // `use std::collections::HashMap;` and `collections::HashMap` in
        // expression position must not create bindings.
        let src = "use std::collections::HashMap;\nfn f() { let x = other::HashMap; }\n";
        let lexed = lex(src);
        assert!(type_bindings(&lexed, TRACKED).is_empty());
    }

    #[test]
    fn fn_spans_cover_bodies_and_skip_signatures() {
        let src = "fn alpha(x: u32) -> Vec<u8> {\n    x;\n}\ntrait T { fn decl(&self); }\nfn beta() { fn inner() {} }\n";
        let lexed = lex(src);
        let spans = fn_spans(&lexed);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta", "inner"]);
        let alpha = &spans[0];
        assert_eq!(lexed.tokens[alpha.body_start].text, "{");
        assert_eq!(lexed.tokens[alpha.body_end].text, "}");
        assert!(alpha.body_end > alpha.body_start);
    }

    #[test]
    fn nested_cfg_test_modules_produce_overlapping_ranges() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod outer {\n    #[cfg(test)]\n    mod inner {\n        fn t() {}\n    }\n    fn u() {}\n}\nfn prod2() {}\n";
        let lexed = lex(src);
        let ranges = cfg_test_ranges(&lexed);
        assert_eq!(ranges, vec![(2, 9), (4, 7)]);
        // Every line of both modules is covered; production code is not.
        for line in 2..=9 {
            assert!(in_ranges(&ranges, line), "line {line} should be test");
        }
        assert!(!in_ranges(&ranges, 1));
        assert!(!in_ranges(&ranges, 10));
    }

    #[test]
    fn cfg_test_on_braceless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn prod() {}\n";
        let lexed = lex(src);
        let ranges = cfg_test_ranges(&lexed);
        assert_eq!(ranges, vec![(1, 2)]);
        assert!(!in_ranges(&ranges, 3));
    }

    #[test]
    fn const_defs_capture_name_type_and_expr_span() {
        let src = "pub const GROUP_SIZE: usize = 128;\n\
                   pub const QMAX: i32 = (1 << (BITS - 1)) - 1;\n\
                   pub const LABEL: &str = \"x\";\n";
        let lexed = lex(src);
        let defs = const_defs(&lexed);
        assert_eq!(defs.len(), 3);
        assert_eq!(defs[0].name, "GROUP_SIZE");
        assert_eq!(defs[0].ty, "usize");
        assert_eq!(defs[0].line, 1);
        let (s, e) = defs[0].expr;
        let texts: Vec<&str> = lexed.tokens[s..e].iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["128"]);
        // The second initializer's span covers the whole parenthesized
        // expression, stopping at the `;`.
        let (s, e) = defs[1].expr;
        let texts: Vec<String> =
            lexed.tokens[s..e].iter().map(|t| t.text.clone()).collect();
        assert_eq!(texts.join(""), "(1<<(BITS-1))-1");
        assert_eq!(defs[2].ty, "& str");
    }

    #[test]
    fn const_defs_skip_generics_and_bodiless_decls() {
        // `const N: usize` as a const-generic parameter and a trait's
        // associated-const declaration have no `= expr ;` to capture.
        let src = "fn take<const N: usize>(x: [u8; N]) {}\n\
                   trait T { const BITS: u8; }\n\
                   impl T for S { const BITS: u8 = 4; }\n";
        let lexed = lex(src);
        let defs = const_defs(&lexed);
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0].name, "BITS");
        assert_eq!(defs[0].line, 3);
    }
}
