//! `cargo run -p atom-lint` — walk the workspace, enforce the repo
//! invariants, print findings as `file:line: rule: message`, and exit
//! non-zero if anything is wrong.
//!
//! Usage: `atom-lint [--root <workspace-root>]` (the root is auto-detected
//! from the current directory otherwise).
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("atom-lint [--root <workspace-root>]");
                println!("rules: {}", atom_lint::ALL_RULES.join(", "));
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("atom-lint: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| atom_lint::find_workspace_root(&d))
    });
    let Some(root) = root else {
        eprintln!("atom-lint: could not locate the workspace root (no Cargo.toml with [workspace])");
        return ExitCode::FAILURE;
    };

    match atom_lint::lint_workspace(&root) {
        Ok(report) => {
            for f in &report.findings {
                println!("{f}");
            }
            if report.findings.is_empty() {
                eprintln!(
                    "atom-lint: workspace clean ({} files checked)",
                    report.files_checked
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "atom-lint: {} finding(s) across {} files",
                    report.findings.len(),
                    report.files_checked
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("atom-lint: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}
