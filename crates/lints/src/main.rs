//! `cargo run -p atom-lint` — walk the workspace, enforce the repo
//! invariants, print findings as `file:line: rule: message`, and exit
//! non-zero if anything is wrong.
//!
//! Usage: `atom-lint [--root <workspace-root>] [--rule <name>] [--write-baseline]`.
//!
//! * `--root` — workspace root (auto-detected from the current directory
//!   otherwise).
//! * `--rule <name>` — run the full pass but report (and gate on) a single
//!   rule, so CI and developers can bisect one rule family in isolation.
//!   Reports, SARIF, and the ratchet only run on unfiltered passes.
//! * `--write-baseline` — regenerate `results/lint_baseline.json` from this
//!   run instead of checking against it (the deliberate way to accept a new
//!   allow directive into the ratchet).
//!
//! Full runs write `results/lint_report.json` (schema `atom-lint-report/v2`)
//! and the same findings as SARIF 2.1.0 in `results/lint_report.sarif`,
//! then ratchet against `results/lint_baseline.json`: any per-rule finding
//! or allow-suppression count above the committed baseline fails the run;
//! counts that dropped shrink the baseline in place.
#![forbid(unsafe_code)]

use atom_lint::ratchet::Baseline;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut rule: Option<String> = None;
    let mut write_baseline = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--rule" => rule = args.next(),
            "--write-baseline" => write_baseline = true,
            "--help" | "-h" => {
                println!(
                    "atom-lint [--root <workspace-root>] [--rule <name>] [--write-baseline]"
                );
                println!("rules: {}", atom_lint::REPORTABLE_RULES.join(", "));
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("atom-lint: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(r) = &rule {
        if !atom_lint::REPORTABLE_RULES.contains(&r.as_str()) {
            eprintln!(
                "atom-lint: unknown rule `{r}` (rules: {})",
                atom_lint::REPORTABLE_RULES.join(", ")
            );
            return ExitCode::FAILURE;
        }
    }
    let root = root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| atom_lint::find_workspace_root(&d))
    });
    let Some(root) = root else {
        eprintln!("atom-lint: could not locate the workspace root (no Cargo.toml with [workspace])");
        return ExitCode::FAILURE;
    };

    let mut report = match atom_lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("atom-lint: I/O error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut ratchet_failed = false;
    match &rule {
        Some(r) => report.filter_rule(r),
        None => {
            // Machine-readable reports for CI artifacts and diffing.
            let results = root.join("results");
            if let Err(e) = std::fs::create_dir_all(&results) {
                eprintln!("atom-lint: cannot create {}: {e}", results.display());
                return ExitCode::FAILURE;
            }
            for (name, body) in
                [("lint_report.json", report.to_json()), ("lint_report.sarif", report.to_sarif())]
            {
                let path = results.join(name);
                if let Err(e) = std::fs::write(&path, body) {
                    eprintln!("atom-lint: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!("atom-lint: wrote {}", path.display());
            }

            // The ratchet.
            let current = Baseline::from_report(&report);
            let baseline_path = results.join("lint_baseline.json");
            let committed = if write_baseline {
                None
            } else {
                match std::fs::read_to_string(&baseline_path) {
                    Ok(text) => match Baseline::parse(&text) {
                        Some(b) => Some(b),
                        None => {
                            eprintln!(
                                "atom-lint: {} is corrupt — regenerate it with \
                                 --write-baseline",
                                baseline_path.display()
                            );
                            return ExitCode::FAILURE;
                        }
                    },
                    Err(_) => None,
                }
            };
            match committed {
                None => {
                    // Bootstrap or deliberate regeneration.
                    if let Err(e) = std::fs::write(&baseline_path, current.to_json()) {
                        eprintln!("atom-lint: cannot write {}: {e}", baseline_path.display());
                        return ExitCode::FAILURE;
                    }
                    eprintln!("atom-lint: wrote {}", baseline_path.display());
                }
                Some(base) => {
                    let outcome = base.check(&current);
                    for r in &outcome.regressions {
                        println!(
                            "ratchet: {} {} count rose {} -> {} (regenerate with \
                             --write-baseline only if this is a deliberate trade)",
                            r.rule, r.kind, r.baseline, r.current
                        );
                    }
                    ratchet_failed = !outcome.regressions.is_empty();
                    if outcome.improved && !ratchet_failed {
                        // Counts only go down: shrink the committed baseline.
                        if let Err(e) = std::fs::write(&baseline_path, current.to_json()) {
                            eprintln!(
                                "atom-lint: cannot write {}: {e}",
                                baseline_path.display()
                            );
                            return ExitCode::FAILURE;
                        }
                        eprintln!(
                            "atom-lint: counts dropped, shrank {}",
                            baseline_path.display()
                        );
                    }
                }
            }
        }
    }

    for f in &report.findings {
        println!("{f}");
    }
    let scope = rule.map(|r| format!(" [rule {r}]")).unwrap_or_default();
    if report.findings.is_empty() && !ratchet_failed {
        eprintln!(
            "atom-lint: workspace clean{scope} ({} files checked, {} allow directives)",
            report.files_checked,
            report.allows.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "atom-lint: {} finding(s){scope}{} across {} files",
            report.findings.len(),
            if ratchet_failed { " + ratchet regression" } else { "" },
            report.files_checked
        );
        ExitCode::FAILURE
    }
}
