//! `cargo run -p atom-lint` — walk the workspace, enforce the repo
//! invariants, print findings as `file:line: rule: message`, and exit
//! non-zero if anything is wrong.
//!
//! Usage: `atom-lint [--root <workspace-root>] [--rule <name>]`.
//!
//! * `--root` — workspace root (auto-detected from the current directory
//!   otherwise).
//! * `--rule <name>` — run the full pass but report (and gate on) a single
//!   rule, so CI and developers can bisect one rule family in isolation.
//!   The machine-readable report is only written on unfiltered runs.
//!
//! Full runs also write `results/lint_report.json` (schema
//! `atom-lint-report/v1`): per-rule counts, every finding, and the
//! allow-directive inventory with reasons and suppression counts.
#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut rule: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--rule" => rule = args.next(),
            "--help" | "-h" => {
                println!("atom-lint [--root <workspace-root>] [--rule <name>]");
                println!("rules: {}", atom_lint::REPORTABLE_RULES.join(", "));
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("atom-lint: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(r) = &rule {
        if !atom_lint::REPORTABLE_RULES.contains(&r.as_str()) {
            eprintln!(
                "atom-lint: unknown rule `{r}` (rules: {})",
                atom_lint::REPORTABLE_RULES.join(", ")
            );
            return ExitCode::FAILURE;
        }
    }
    let root = root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| atom_lint::find_workspace_root(&d))
    });
    let Some(root) = root else {
        eprintln!("atom-lint: could not locate the workspace root (no Cargo.toml with [workspace])");
        return ExitCode::FAILURE;
    };

    match atom_lint::lint_workspace(&root) {
        Ok(mut report) => {
            match &rule {
                Some(r) => report.filter_rule(r),
                None => {
                    // Machine-readable report for CI artifacts and diffing.
                    let results = root.join("results");
                    let path = results.join("lint_report.json");
                    let write = std::fs::create_dir_all(&results)
                        .and_then(|()| std::fs::write(&path, report.to_json()));
                    if let Err(e) = write {
                        eprintln!("atom-lint: cannot write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                    eprintln!("atom-lint: wrote {}", path.display());
                }
            }
            for f in &report.findings {
                println!("{f}");
            }
            let scope = rule.map(|r| format!(" [rule {r}]")).unwrap_or_default();
            if report.findings.is_empty() {
                eprintln!(
                    "atom-lint: workspace clean{scope} ({} files checked, {} allow directives)",
                    report.files_checked,
                    report.allows.len()
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "atom-lint: {} finding(s){scope} across {} files",
                    report.findings.len(),
                    report.files_checked
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("atom-lint: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}
