//! Known-bad fixture for the `unsafe-containment` rule: a crate root with
//! no `#![forbid(unsafe_code)]` and an `unsafe` block outside the one
//! crate allowed to hold audited unsafe. Expected findings are asserted in
//! `tests/golden.rs` — keep line numbers stable.

pub fn transmute_abuse(x: u32) -> f32 {
    unsafe { std::mem::transmute(x) }
}
