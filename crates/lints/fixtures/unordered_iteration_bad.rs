//! Known-bad fixture for the `unordered-iteration` rule: hash-ordered
//! traversals in a deterministic-scope crate, with the escape shapes
//! (sort in the statement window, BTreeMap re-keying, order-insensitive
//! reductions) and a justified allow shown clean alongside.

use std::collections::{BTreeMap, HashMap, HashSet};

pub fn bad_for_loop(m: HashMap<u32, u32>) -> u32 {
    let mut acc = 0;
    for (_, v) in &m {
        acc ^= v;
    }
    acc
}

pub fn bad_values(m: &HashMap<String, u64>) -> Vec<u64> {
    m.values().copied().collect()
}

pub fn bad_drain(s: &mut HashSet<u64>) -> Vec<u64> {
    s.drain().collect()
}

pub fn bad_retain(m: &mut HashMap<String, u64>) {
    m.retain(|_, v| *v > 0);
}

pub fn ok_collect_then_sort(m: &HashMap<String, u64>) -> Vec<String> {
    let mut out: Vec<String> = m.keys().cloned().collect();
    out.sort_unstable();
    out
}

pub fn ok_rekeyed_btree(m: &HashMap<String, u64>) -> BTreeMap<String, u64> {
    m.iter().map(|(k, v)| (k.clone(), *v)).collect::<BTreeMap<_, _>>()
}

pub fn ok_order_insensitive(m: &HashMap<String, u64>) -> usize {
    m.keys().count()
}

pub fn ok_point_lookup(m: &HashMap<String, u64>, k: &str) -> Option<u64> {
    m.get(k).copied()
}

pub fn justified(m: &HashMap<String, u64>) -> u64 {
    // lint: allow(unordered-iteration) — xor reduction is order-insensitive
    m.values().fold(0, |a, b| a ^ b)
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    pub fn exempt_in_tests(m: &HashMap<u32, u32>) -> Vec<u32> {
        m.values().copied().collect()
    }
}
