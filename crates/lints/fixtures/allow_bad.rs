//! Known-bad fixture for the `lint-directive` meta-rule: directives that
//! are malformed, name unknown rules, or suppress nothing. Expected
//! findings are asserted line-by-line in `tests/golden.rs`.

pub fn missing_reason(v: &[u32]) -> u32 {
    // lint: allow(panic-freedom)
    v[0]
}

pub fn unknown_rule(v: &[u32]) -> u32 {
    // lint: allow(no-such-rule) — the rule name is wrong
    v.get(0).copied().unwrap_or(0)
}

pub fn stale_directive(v: &[u32]) -> u32 {
    // lint: allow(panic-freedom) — this access is checked, so the directive is stale
    v.get(0).copied().unwrap_or(0)
}
