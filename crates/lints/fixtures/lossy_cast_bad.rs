//! Known-bad fixture for the `lossy-cast` rule. Expected findings are
//! asserted line-by-line in `tests/golden.rs` — keep line numbers stable.

pub fn truncating(x: i64) -> i8 {
    x as i8
}

pub fn rounding(n: usize) -> f32 {
    n as f32
}

pub fn widening_is_fine(x: i8) -> i64 {
    x as i64
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixture_casts_are_exempt() {
        assert_eq!(300i64 as u16, 300u16);
    }
}
