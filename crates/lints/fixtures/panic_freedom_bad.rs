//! Known-bad fixture for the `panic-freedom` rule. Expected findings are
//! asserted line-by-line in `tests/golden.rs` — keep line numbers stable.

pub fn unwrap_site(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn expect_site(x: Option<u32>) -> u32 {
    x.expect("present")
}

pub fn panic_site() {
    panic!("boom");
}

pub fn todo_site() {
    todo!()
}

pub fn index_site(v: &[u32], i: usize) -> u32 {
    v[i]
}

pub fn checked_ok(v: &[u32], i: usize) -> u32 {
    // Checked access and matches are fine.
    v.get(i).copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), v[0]);
    }
}
