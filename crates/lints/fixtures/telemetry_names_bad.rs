//! Known-bad fixture for the `telemetry-names` rule. Expected findings are
//! asserted line-by-line in `tests/golden.rs` — keep line numbers stable.
//! The test supplies a names table declaring only `GOOD`.

pub fn literal_metric(t: &atom_telemetry::Telemetry) {
    t.counter_add("requests.total", 1);
}

pub fn literal_span() {
    let _s = span!("decode_step", step = 1);
}

pub fn undeclared_const(t: &atom_telemetry::Telemetry) {
    t.counter_add(names::NOT_DECLARED, 1);
}

pub fn proper_const(t: &atom_telemetry::Telemetry) {
    t.counter_add(names::GOOD, 1);
}

pub fn pool_worker_span(t: &atom_telemetry::Telemetry, w: usize, n: u64) {
    let _s = t.span(names::SPAN_POOL_WORKER, &[("worker", w as u64)]);
    t.record(names::POOL_UTILIZATION_PERMILLE, n);
}
