//! Fixture: quantized reductions with proving, missing, understated,
//! K-less, and over-wide `// bound:` proof comments.

pub const FIX_MAX_BITS: u8 = 8;

/// Proven: each product is at most `2^14` in magnitude and the claim
/// dominates it within `i32`.
pub fn proven(a: &[i8], b: &[i8]) -> i32 {
    // bound: K * 2 ^ (2 * (FIX_MAX_BITS - 1)) < 2 ^ 31
    let dot: i32 = a.iter().zip(b).map(|(&x, &w)| i32::from(x) * i32::from(w)).sum();
    dot
}

pub fn missing(a: &[i8], b: &[i8]) -> i32 {
    let dot: i32 = a.iter().zip(b).map(|(&x, &w)| i32::from(x) * i32::from(w)).sum();
    dot
}

/// The claim parses but understates the per-element magnitude (`2^7`
/// against the derived `2^14`).
pub fn understated(a: &[i8], b: &[i8]) -> i32 {
    // bound: K * 2 ^ 7 < 2 ^ 31
    let dot: i32 = a.iter().zip(b).map(|(&x, &w)| i32::from(x) * i32::from(w)).sum();
    dot
}

/// The claim never mentions the free reduction-length variable `K`.
pub fn no_k(a: &[i8], b: &[i8]) -> i32 {
    // bound: 2 ^ 14 <= 2 ^ 31
    let dot: i32 = a.iter().zip(b).map(|(&x, &w)| i32::from(x) * i32::from(w)).sum();
    dot
}

/// The claimed total does not fit the `i32` accumulator.
pub fn too_wide(a: &[i8], b: &[i8]) -> i32 {
    // bound: K * 2 ^ 14 <= 2 ^ 40
    let dot: i32 = a.iter().zip(b).map(|(&x, &w)| i32::from(x) * i32::from(w)).sum();
    dot
}

/// Loop accumulation without a proof comment.
pub fn loop_acc(a: &[i8]) -> i32 {
    let mut acc: i32 = 0;
    for &x in a {
        acc += i32::from(x);
    }
    acc
}

/// Loop accumulation discharged by a trailing proof comment.
pub fn loop_acc_proven(a: &[i8]) -> i32 {
    let mut acc: i32 = 0;
    for &x in a {
        acc += i32::from(x); // bound: K * 2 ^ 7 < 2 ^ 31
    }
    acc
}

/// A turbofish reduction over widened elements, proven.
pub fn turbofish(a: &[i8]) -> i64 {
    // bound: K * 2 ^ 7 < 2 ^ 31
    a.iter().map(|&x| i64::from(x)).sum::<i64>()
}
