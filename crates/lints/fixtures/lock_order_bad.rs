//! Known-bad fixture for the `lock-order` rule: an undocumented nested
//! acquisition, a documented one (clean), and sequential statement-scoped
//! temporaries (clean — the first guard dies at its `;`). The nested
//! sites also contribute `a → b` edges to the cross-file lock graph,
//! asserted in `tests/golden.rs`.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn undocumented(&self) -> u32 {
        let ga = self.a.lock().expect("a");
        let gb = self.b.lock().expect("b");
        *ga + *gb
    }

    pub fn documented(&self) -> u32 {
        let ga = self.a.lock().expect("a");
        // lock order: a → b (matches every other multi-lock site)
        let gb = self.b.lock().expect("b");
        *ga + *gb
    }

    pub fn sequential_temporaries(&self) {
        *self.a.lock().expect("a") += 1;
        *self.b.lock().expect("b") += 1;
    }
}

#[cfg(test)]
mod tests {
    pub fn exempt_in_tests(p: &super::Pair) -> u32 {
        p.undocumented()
    }
}
