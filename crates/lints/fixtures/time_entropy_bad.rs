//! Known-bad fixture for the `time-entropy` rule: wall-clock reads,
//! ambient environment reads, and OS-entropy RNG construction in
//! production code, plus the exempt shapes (storing an `Instant` someone
//! else produced, a justified allow, `#[cfg(test)]` code).

use std::time::{Instant, SystemTime};

pub fn bad_instant() -> Instant {
    Instant::now()
}

pub fn bad_system_time() -> SystemTime {
    SystemTime::now()
}

pub fn bad_epoch() -> SystemTime {
    std::time::UNIX_EPOCH
}

pub fn bad_env() -> Option<String> {
    std::env::var("ATOM_FIXTURE").ok()
}

pub fn bad_entropy_rng() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

pub fn ok_stored_instant(t: Instant) -> Instant {
    t
}

pub fn justified_wall_clock() -> Instant {
    // lint: allow(time-entropy) — observability-only timing for the report
    Instant::now()
}

#[cfg(test)]
mod tests {
    pub fn exempt_in_tests() -> std::time::Instant {
        std::time::Instant::now()
    }
}
