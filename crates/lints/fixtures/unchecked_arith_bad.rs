//! Fixture: bare signed arithmetic the interval analysis cannot prove
//! in-range, next to provable, explicitly-wrapping, and justified shapes.

pub const FIX_LIMIT: i32 = 1 << 14;

/// Proven: a widened `u8` plus a workspace constant stays far inside
/// `i32`.
pub fn fine(x: u8) -> i32 {
    i32::from(x) + FIX_LIMIT
}

/// Two full-range `i32` operands can overflow on multiply.
pub fn bad_mul(x: i32, y: i32) -> i32 {
    x * y
}

/// Addition at the top of the `i32` range can overflow.
pub fn bad_add(x: i32) -> i32 {
    x + 1
}

/// A shift whose amount the analysis cannot bound.
pub fn bad_shl(x: i32) -> i32 {
    1i32 << x
}

/// Explicit wrapping is a statement of intent, not a finding.
pub fn wrapping(x: i32, y: i32) -> i32 {
    x.wrapping_mul(y)
}

/// Unsigned arithmetic is index/bit-packing domain, out of scope.
pub fn unsigned(x: u32, y: u32) -> u32 {
    x * y
}

/// A justified allow suppresses the finding.
pub fn allowed(x: i32, y: i32) -> i32 {
    // lint: allow(unchecked-arith) — fixture: caller guarantees |x*y| small
    x * y
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let x = i32::MAX;
        let _ = x + 1;
    }
}
