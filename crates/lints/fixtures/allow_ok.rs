//! Fixture exercising well-formed `lint: allow` directives: every
//! violation below carries a justification, so the file must lint clean.

pub fn justified_trailing(v: &[u32]) -> u32 {
    v[0] // lint: allow(panic-freedom) — callers guarantee non-empty input by construction
}

pub fn justified_preceding(x: Option<u32>) -> u32 {
    // lint: allow(panic-freedom) — invariant: x is Some by the state machine above
    x.expect("state machine invariant")
}

pub fn justified_cast(n: usize) -> f32 {
    // lint: allow(lossy-cast) — n is a bounded loop counter under 1000
    n as f32
}
