//! Golden tests: each known-bad fixture under `fixtures/` must produce
//! exactly the expected `(rule, line)` findings, the allow-directive
//! fixture must lint clean, and the live workspace itself must be clean
//! (which also proves the telemetry-names bijection holds on the real
//! tree). The binary's exit-code contract is checked end to end against a
//! synthesized bad workspace.

use atom_lint::{
    lint_file, lint_workspace, FileCtx, FileKind, NamesTable, RULE_DIRECTIVE, RULE_LOSSY_CAST,
    RULE_PANIC_FREEDOM, RULE_TELEMETRY_NAMES, RULE_UNSAFE_CONTAINMENT,
};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn ctx(crate_name: &str, path: &str, kind: FileKind) -> FileCtx {
    FileCtx {
        crate_name: crate_name.into(),
        path: path.into(),
        kind,
    }
}

/// Runs the linter on a fixture and returns `(rule, line)` pairs.
fn run(source: &str, ctx: &FileCtx, names: Option<&NamesTable>) -> Vec<(&'static str, usize)> {
    let mut used = Vec::new();
    lint_file(ctx, source, names, &mut used)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

#[test]
fn panic_freedom_fixture() {
    let src = fixture("panic_freedom_bad.rs");
    let ctx = ctx("atom-serve", "crates/serve/src/fixture.rs", FileKind::Src);
    let got = run(&src, &ctx, None);
    let want = vec![
        (RULE_PANIC_FREEDOM, 5),  // x.unwrap()
        (RULE_PANIC_FREEDOM, 9),  // x.expect("present")
        (RULE_PANIC_FREEDOM, 13), // panic!
        (RULE_PANIC_FREEDOM, 17), // todo!
        (RULE_PANIC_FREEDOM, 21), // v[i]
    ];
    assert_eq!(got, want, "findings: {got:?}");
}

#[test]
fn panic_freedom_is_scoped_to_hot_crates() {
    // The same source in a crate outside the panic-freedom scope (e.g.
    // atom-nn) must produce no panic-freedom findings.
    let src = fixture("panic_freedom_bad.rs");
    let ctx = ctx("atom-nn", "crates/nn/src/fixture.rs", FileKind::Src);
    let got = run(&src, &ctx, None);
    assert!(
        got.iter().all(|(r, _)| *r != RULE_PANIC_FREEDOM),
        "out-of-scope crate flagged: {got:?}"
    );
}

#[test]
fn lossy_cast_fixture() {
    let src = fixture("lossy_cast_bad.rs");
    let ctx = ctx("atom-nn", "crates/nn/src/fixture.rs", FileKind::Src);
    let got = run(&src, &ctx, None);
    let want = vec![
        (RULE_LOSSY_CAST, 5), // x as i8
        (RULE_LOSSY_CAST, 9), // n as f32
    ];
    assert_eq!(got, want, "findings: {got:?}");
}

#[test]
fn telemetry_names_fixture() {
    let src = fixture("telemetry_names_bad.rs");
    let ctx = ctx("atom-serve", "crates/serve/src/fixture.rs", FileKind::Src);
    let mut names = NamesTable {
        path: "crates/telemetry/src/names.rs".into(),
        ..NamesTable::default()
    };
    names
        .consts
        .insert("GOOD".into(), ("good.metric".into(), 1));
    // Pool instrumentation names from the atom-parallel crate: declared
    // here so their fixture usages lint clean and register as recorded.
    names
        .consts
        .insert("SPAN_POOL_WORKER".into(), ("pool_worker".into(), 2));
    names.consts.insert(
        "POOL_UTILIZATION_PERMILLE".into(),
        ("pool.utilization_permille".into(), 3),
    );
    let mut used = Vec::new();
    let got: Vec<(&'static str, usize)> = lint_file(&ctx, &src, Some(&names), &mut used)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect();
    let want = vec![
        (RULE_TELEMETRY_NAMES, 6),  // literal metric name
        (RULE_TELEMETRY_NAMES, 10), // literal span name
        (RULE_TELEMETRY_NAMES, 14), // names::NOT_DECLARED
    ];
    assert_eq!(got, want, "findings: {got:?}");
    // The usage scan must register both referenced constants.
    assert!(used.contains(&"GOOD".to_string()));
    assert!(used.contains(&"NOT_DECLARED".to_string()));
    // The pool span/histogram usages lint clean AND count as recorded, so
    // the workspace bijection check knows atom-parallel covers its names.
    assert!(used.contains(&"SPAN_POOL_WORKER".to_string()));
    assert!(used.contains(&"POOL_UTILIZATION_PERMILLE".to_string()));
}

#[test]
fn pool_telemetry_names_are_recorded_by_parallel_crate() {
    // Guards the tentpole's observability contract: every `pool.*` metric
    // and the worker span declared in `telemetry::names` must be recorded
    // by production code in `crates/parallel` (the workspace-clean check
    // would fail with an unused-name finding otherwise; this test pins the
    // expectation explicitly so a rename in either place is caught here).
    let report = lint_workspace(&workspace_root()).expect("workspace lints");
    assert!(report.findings.is_empty(), "workspace must be clean");
    let names_src = std::fs::read_to_string(workspace_root().join("crates/telemetry/src/names.rs"))
        .expect("names table readable");
    let pool_src = std::fs::read_to_string(workspace_root().join("crates/parallel/src/lib.rs"))
        .expect("pool source readable");
    for name in [
        "POOL_TASKS",
        "POOL_QUEUE_DEPTH",
        "POOL_UTILIZATION_PERMILLE",
        "POOL_REGION_WALL_NS",
        "SPAN_POOL_WORKER",
    ] {
        assert!(names_src.contains(name), "{name} missing from names table");
        assert!(pool_src.contains(name), "{name} not recorded by the pool");
    }
}

#[test]
fn unsafe_containment_fixture() {
    let src = fixture("unsafe_containment_bad.rs");
    let ctx = ctx("atom-badlib", "crates/bad/src/lib.rs", FileKind::LibRoot);
    let got = run(&src, &ctx, None);
    let want = vec![
        (RULE_UNSAFE_CONTAINMENT, 1), // missing #![forbid(unsafe_code)]
        (RULE_UNSAFE_CONTAINMENT, 7), // unsafe block outside telemetry
    ];
    assert_eq!(got, want, "findings: {got:?}");
}

#[test]
fn well_formed_allows_suppress_cleanly() {
    let src = fixture("allow_ok.rs");
    let ctx = ctx("atom-serve", "crates/serve/src/fixture.rs", FileKind::Src);
    let got = run(&src, &ctx, None);
    assert!(got.is_empty(), "expected clean, got: {got:?}");
}

#[test]
fn malformed_and_stale_allows_are_findings() {
    let src = fixture("allow_bad.rs");
    let ctx = ctx("atom-serve", "crates/serve/src/fixture.rs", FileKind::Src);
    let got = run(&src, &ctx, None);
    let want = vec![
        (RULE_DIRECTIVE, 6),  // missing reason
        (RULE_DIRECTIVE, 11), // unknown rule
        (RULE_DIRECTIVE, 16), // stale: suppresses nothing
    ];
    assert_eq!(got, want, "findings: {got:?}");
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn live_workspace_is_clean() {
    let report = lint_workspace(&workspace_root()).expect("workspace lints");
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_checked > 50,
        "suspiciously few files checked: {}",
        report.files_checked
    );
}

/// Builds a throwaway workspace with one bad crate and a names table with
/// an unused constant, and checks both the library report and the binary's
/// exit-code contract against it.
#[test]
fn binary_exit_codes() {
    let dir = std::env::temp_dir().join(format!("atom-lint-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("crates/bad/src")).expect("mkdir bad");
    std::fs::create_dir_all(dir.join("crates/telemetry/src")).expect("mkdir telemetry");
    std::fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/bad\"]\n",
    )
    .expect("write root manifest");
    std::fs::write(
        dir.join("crates/bad/Cargo.toml"),
        "[package]\nname = \"atom-badlib\"\nversion = \"0.0.0\"\n",
    )
    .expect("write bad manifest");
    std::fs::write(
        dir.join("crates/bad/src/lib.rs"),
        "pub fn f(x: u32) -> f32 {\n    unsafe { std::mem::transmute(x) }\n}\n",
    )
    .expect("write bad lib");
    std::fs::write(
        dir.join("crates/telemetry/src/names.rs"),
        "pub const NEVER_RECORDED: &str = \"never.recorded\";\n",
    )
    .expect("write names table");

    let report = lint_workspace(&dir).expect("lint synthesized workspace");
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert!(
        rules.contains(&RULE_UNSAFE_CONTAINMENT),
        "missing unsafe finding: {rules:?}"
    );
    assert!(
        rules.contains(&RULE_TELEMETRY_NAMES),
        "missing unused-name finding: {rules:?}"
    );

    let bin = env!("CARGO_BIN_EXE_atom-lint");
    let bad = std::process::Command::new(bin)
        .args(["--root", dir.to_str().expect("utf8 temp path")])
        .output()
        .expect("run atom-lint on bad tree");
    assert!(
        !bad.status.success(),
        "expected non-zero exit on violations"
    );
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(
        stdout.contains("unsafe-containment"),
        "stdout should name the rule: {stdout}"
    );

    let good = std::process::Command::new(bin)
        .args(["--root", workspace_root().to_str().expect("utf8 root")])
        .output()
        .expect("run atom-lint on real tree");
    assert!(
        good.status.success(),
        "real workspace must be clean; stdout:\n{}",
        String::from_utf8_lossy(&good.stdout)
    );

    let _ = std::fs::remove_dir_all(&dir);
}
