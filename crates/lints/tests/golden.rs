//! Golden tests: each known-bad fixture under `fixtures/` must produce
//! exactly the expected `(rule, line)` findings, the allow-directive
//! fixture must lint clean, and the live workspace itself must be clean
//! (which also proves the telemetry-names bijection holds on the real
//! tree). The binary's exit-code contract is checked end to end against a
//! synthesized bad workspace.

use atom_lint::analysis::WorkspaceAnalysis;
use atom_lint::ratchet::Baseline;
use atom_lint::rules::lock_order::LockEdge;
use atom_lint::{
    lint_file, lint_workspace, lock_cycle_findings, CrossFileState, FileCtx, FileKind, NamesTable,
    RULE_ACCUMULATOR_WIDTH, RULE_DIRECTIVE, RULE_LOCK_ORDER, RULE_LOSSY_CAST, RULE_PANIC_FREEDOM,
    RULE_TELEMETRY_NAMES, RULE_TIME_ENTROPY, RULE_UNCHECKED_ARITH, RULE_UNORDERED_ITERATION,
    RULE_UNSAFE_CONTAINMENT,
};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn ctx(crate_name: &str, path: &str, kind: FileKind) -> FileCtx {
    FileCtx {
        crate_name: crate_name.into(),
        path: path.into(),
        kind,
    }
}

/// Runs the linter on a fixture and returns `(rule, line)` pairs.
fn run(source: &str, ctx: &FileCtx, names: Option<&NamesTable>) -> Vec<(&'static str, usize)> {
    run_state(source, ctx, names).0
}

/// Like [`run`], but also returns the cross-file state (used names, lock
/// edges, allow inventory) the file contributed.
fn run_state(
    source: &str,
    ctx: &FileCtx,
    names: Option<&NamesTable>,
) -> (Vec<(&'static str, usize)>, CrossFileState) {
    // The workspace analysis the arithmetic rules evaluate against is
    // built from the fixture alone — its own `const` declarations are the
    // whole constant universe, which is exactly what the fixtures assume.
    let analysis = WorkspaceAnalysis::build(&[(ctx.clone(), source.to_string())]);
    let mut state = CrossFileState::default();
    let findings = lint_file(ctx, source, names, &analysis, &mut state)
        .into_iter()
        .map(|f| (f.rule, f.line))
        .collect();
    (findings, state)
}

#[test]
fn panic_freedom_fixture() {
    let src = fixture("panic_freedom_bad.rs");
    let ctx = ctx("atom-serve", "crates/serve/src/fixture.rs", FileKind::Src);
    let got = run(&src, &ctx, None);
    let want = vec![
        (RULE_PANIC_FREEDOM, 5),  // x.unwrap()
        (RULE_PANIC_FREEDOM, 9),  // x.expect("present")
        (RULE_PANIC_FREEDOM, 13), // panic!
        (RULE_PANIC_FREEDOM, 17), // todo!
        (RULE_PANIC_FREEDOM, 21), // v[i]
    ];
    assert_eq!(got, want, "findings: {got:?}");
}

#[test]
fn panic_freedom_is_scoped_to_hot_crates() {
    // The same source in a crate outside the panic-freedom scope (e.g.
    // atom-nn) must produce no panic-freedom findings.
    let src = fixture("panic_freedom_bad.rs");
    let ctx = ctx("atom-nn", "crates/nn/src/fixture.rs", FileKind::Src);
    let got = run(&src, &ctx, None);
    assert!(
        got.iter().all(|(r, _)| *r != RULE_PANIC_FREEDOM),
        "out-of-scope crate flagged: {got:?}"
    );
}

#[test]
fn lossy_cast_fixture() {
    let src = fixture("lossy_cast_bad.rs");
    let ctx = ctx("atom-nn", "crates/nn/src/fixture.rs", FileKind::Src);
    let got = run(&src, &ctx, None);
    let want = vec![
        (RULE_LOSSY_CAST, 5), // x as i8
        (RULE_LOSSY_CAST, 9), // n as f32
    ];
    assert_eq!(got, want, "findings: {got:?}");
}

#[test]
fn telemetry_names_fixture() {
    let src = fixture("telemetry_names_bad.rs");
    let ctx = ctx("atom-serve", "crates/serve/src/fixture.rs", FileKind::Src);
    let mut names = NamesTable {
        path: "crates/telemetry/src/names.rs".into(),
        ..NamesTable::default()
    };
    names
        .consts
        .insert("GOOD".into(), ("good.metric".into(), 1));
    // Pool instrumentation names from the atom-parallel crate: declared
    // here so their fixture usages lint clean and register as recorded.
    names
        .consts
        .insert("SPAN_POOL_WORKER".into(), ("pool_worker".into(), 2));
    names.consts.insert(
        "POOL_UTILIZATION_PERMILLE".into(),
        ("pool.utilization_permille".into(), 3),
    );
    let (got, state) = run_state(&src, &ctx, Some(&names));
    let want = vec![
        (RULE_TELEMETRY_NAMES, 6),  // literal metric name
        (RULE_TELEMETRY_NAMES, 10), // literal span name
        (RULE_TELEMETRY_NAMES, 14), // names::NOT_DECLARED
    ];
    assert_eq!(got, want, "findings: {got:?}");
    // The usage scan must register both referenced constants.
    let used = &state.used_names;
    assert!(used.contains(&"GOOD".to_string()));
    assert!(used.contains(&"NOT_DECLARED".to_string()));
    // The pool span/histogram usages lint clean AND count as recorded, so
    // the workspace bijection check knows atom-parallel covers its names.
    assert!(used.contains(&"SPAN_POOL_WORKER".to_string()));
    assert!(used.contains(&"POOL_UTILIZATION_PERMILLE".to_string()));
}

#[test]
fn pool_telemetry_names_are_recorded_by_parallel_crate() {
    // Guards the tentpole's observability contract: every `pool.*` metric
    // and the worker span declared in `telemetry::names` must be recorded
    // by production code in `crates/parallel` (the workspace-clean check
    // would fail with an unused-name finding otherwise; this test pins the
    // expectation explicitly so a rename in either place is caught here).
    let report = lint_workspace(&workspace_root()).expect("workspace lints");
    assert!(report.findings.is_empty(), "workspace must be clean");
    let names_src = std::fs::read_to_string(workspace_root().join("crates/telemetry/src/names.rs"))
        .expect("names table readable");
    let pool_src = std::fs::read_to_string(workspace_root().join("crates/parallel/src/lib.rs"))
        .expect("pool source readable");
    for name in [
        "POOL_TASKS",
        "POOL_QUEUE_DEPTH",
        "POOL_UTILIZATION_PERMILLE",
        "POOL_REGION_WALL_NS",
        "SPAN_POOL_WORKER",
    ] {
        assert!(names_src.contains(name), "{name} missing from names table");
        assert!(pool_src.contains(name), "{name} not recorded by the pool");
    }
}

#[test]
fn unsafe_containment_fixture() {
    let src = fixture("unsafe_containment_bad.rs");
    let ctx = ctx("atom-badlib", "crates/bad/src/lib.rs", FileKind::LibRoot);
    let got = run(&src, &ctx, None);
    let want = vec![
        (RULE_UNSAFE_CONTAINMENT, 1), // missing #![forbid(unsafe_code)]
        (RULE_UNSAFE_CONTAINMENT, 7), // unsafe block outside telemetry
    ];
    assert_eq!(got, want, "findings: {got:?}");
}

#[test]
fn well_formed_allows_suppress_cleanly() {
    let src = fixture("allow_ok.rs");
    let ctx = ctx("atom-serve", "crates/serve/src/fixture.rs", FileKind::Src);
    let got = run(&src, &ctx, None);
    assert!(got.is_empty(), "expected clean, got: {got:?}");
}

#[test]
fn malformed_and_stale_allows_are_findings() {
    let src = fixture("allow_bad.rs");
    let ctx = ctx("atom-serve", "crates/serve/src/fixture.rs", FileKind::Src);
    let got = run(&src, &ctx, None);
    let want = vec![
        (RULE_DIRECTIVE, 6),  // missing reason
        (RULE_DIRECTIVE, 11), // unknown rule
        (RULE_DIRECTIVE, 16), // stale: suppresses nothing
    ];
    assert_eq!(got, want, "findings: {got:?}");
}

#[test]
fn unordered_iteration_fixture() {
    let src = fixture("unordered_iteration_bad.rs");
    let ctx = ctx("atom-serve", "crates/serve/src/fixture.rs", FileKind::Src);
    let got = run(&src, &ctx, None);
    let want = vec![
        (RULE_UNORDERED_ITERATION, 10), // for (_, v) in &m
        (RULE_UNORDERED_ITERATION, 17), // m.values() with no escape
        (RULE_UNORDERED_ITERATION, 21), // s.drain()
        (RULE_UNORDERED_ITERATION, 25), // m.retain(..)
    ];
    // The sorted-collect, BTreeMap-rekey, reduction, point-lookup, allow,
    // and #[cfg(test)] shapes must all stay clean.
    assert_eq!(got, want, "findings: {got:?}");
}

#[test]
fn unordered_iteration_is_scoped_to_deterministic_crates() {
    // Same source in a crate outside the deterministic scope (telemetry's
    // registries are keyed stores, not gated outputs) must not be flagged.
    let src = fixture("unordered_iteration_bad.rs");
    let ctx = ctx(
        "atom-telemetry",
        "crates/telemetry/src/fixture.rs",
        FileKind::Src,
    );
    let got = run(&src, &ctx, None);
    assert!(
        got.iter().all(|(r, _)| *r != RULE_UNORDERED_ITERATION),
        "out-of-scope crate flagged: {got:?}"
    );
}

#[test]
fn time_entropy_fixture() {
    let src = fixture("time_entropy_bad.rs");
    let ctx = ctx("atom-serve", "crates/serve/src/fixture.rs", FileKind::Src);
    let got = run(&src, &ctx, None);
    let want = vec![
        (RULE_TIME_ENTROPY, 9),  // Instant::now()
        (RULE_TIME_ENTROPY, 13), // SystemTime::now()
        (RULE_TIME_ENTROPY, 17), // UNIX_EPOCH
        (RULE_TIME_ENTROPY, 21), // std::env::var
        (RULE_TIME_ENTROPY, 25), // thread_rng()
    ];
    // Storing an Instant, the justified allow, and the #[cfg(test)] read
    // must all stay clean.
    assert_eq!(got, want, "findings: {got:?}");
}

#[test]
fn time_entropy_exempts_telemetry_crate() {
    let src = fixture("time_entropy_bad.rs");
    let ctx = ctx(
        "atom-telemetry",
        "crates/telemetry/src/fixture.rs",
        FileKind::Src,
    );
    let got = run(&src, &ctx, None);
    assert!(
        got.iter().all(|(r, _)| *r != RULE_TIME_ENTROPY),
        "telemetry crate flagged: {got:?}"
    );
}

#[test]
fn time_entropy_env_allowlist_is_per_file() {
    // The audited config entry point may read env vars, but its wall-clock
    // reads are still findings — the allowlist covers `env::var` only.
    let src = fixture("time_entropy_bad.rs");
    let ctx = ctx("atom-parallel", "crates/parallel/src/lib.rs", FileKind::Src);
    let got = run(&src, &ctx, None);
    assert!(
        got.iter().all(|&(r, l)| r != RULE_TIME_ENTROPY || l != 21),
        "audited file's env read flagged: {got:?}"
    );
    assert!(
        got.contains(&(RULE_TIME_ENTROPY, 9)),
        "audited file's wall-clock read must still be flagged: {got:?}"
    );
}

#[test]
fn lock_order_fixture() {
    let src = fixture("lock_order_bad.rs");
    let ctx = ctx("atom-badlock", "crates/bad/src/fixture.rs", FileKind::Src);
    let (got, state) = run_state(&src, &ctx, None);
    // Only the undocumented nested acquisition is a finding; the
    // documented site and the sequential statement-scoped temporaries are
    // clean.
    let want = vec![(RULE_LOCK_ORDER, 17)];
    assert_eq!(got, want, "findings: {got:?}");
    // Both nested sites (documented or not) contribute a→b graph edges.
    let edges: Vec<(&str, &str, usize)> = state
        .lock_edges
        .iter()
        .map(|e| (e.from.as_str(), e.to.as_str(), e.line))
        .collect();
    assert_eq!(
        edges,
        vec![
            ("atom-badlock::a", "atom-badlock::b", 17),
            ("atom-badlock::a", "atom-badlock::b", 24),
        ],
        "edges: {edges:?}"
    );
}

#[test]
fn lock_cycle_detection() {
    let edge = |from: &str, to: &str, file: &str, line: usize| LockEdge {
        from: from.into(),
        to: to.into(),
        file: file.into(),
        line,
    };
    // Acyclic graph: no findings, however many edges agree on the order.
    let acyclic = [
        edge("t::counters", "t::gauges", "a.rs", 10),
        edge("t::counters", "t::gauges", "b.rs", 20),
        edge("t::gauges", "t::histograms", "a.rs", 11),
    ];
    assert!(lock_cycle_findings(&acyclic).is_empty());

    // Two files disagreeing on the order is a cycle, reported once.
    let cyclic = [
        edge("t::a", "t::b", "first.rs", 5),
        edge("t::b", "t::a", "second.rs", 9),
    ];
    let got = lock_cycle_findings(&cyclic);
    assert_eq!(got.len(), 1, "cycle findings: {got:?}");
    assert_eq!(got[0].rule, RULE_LOCK_ORDER);
    assert!(
        got[0].message.contains("t::a") && got[0].message.contains("t::b"),
        "cycle message should name both locks: {}",
        got[0].message
    );

    // Re-acquiring the same lock while it is held is a self-deadlock.
    let reentrant = [edge("t::m", "t::m", "r.rs", 3)];
    let got = lock_cycle_findings(&reentrant);
    assert_eq!(got.len(), 1, "self-deadlock findings: {got:?}");
}

#[test]
fn allow_inventory_records_reason_and_suppression_count() {
    let src = fixture("unordered_iteration_bad.rs");
    let ctx = ctx("atom-serve", "crates/serve/src/fixture.rs", FileKind::Src);
    let (_, state) = run_state(&src, &ctx, None);
    assert_eq!(state.allows.len(), 1, "allows: {:?}", state.allows);
    let a = &state.allows[0];
    assert_eq!(a.rules, vec!["unordered-iteration".to_string()]);
    assert!(
        a.reason.contains("order-insensitive"),
        "reason captured: {:?}",
        a.reason
    );
    assert_eq!(a.suppressed, 1, "directive must suppress exactly one finding");
}

#[test]
fn accumulator_width_fixture() {
    // Proving comments (the `proven`, `loop_acc_proven`, and `turbofish`
    // functions) must discharge their sites; every other reduction is a
    // finding with its own failure mode — missing comment, understated
    // coefficient, no `K` factor, claimed total wider than the
    // accumulator, and a bare loop accumulation.
    let src = fixture("accumulator_width_bad.rs");
    let ctx = ctx("atom-kernels", "crates/kernels/src/fixture.rs", FileKind::Src);
    let got = run(&src, &ctx, None);
    let want = vec![
        (RULE_ACCUMULATOR_WIDTH, 15), // missing: no bound comment
        (RULE_ACCUMULATOR_WIDTH, 23), // understated: 2^7 < derived 2^14
        (RULE_ACCUMULATOR_WIDTH, 30), // no_k: claim lacks the K factor
        (RULE_ACCUMULATOR_WIDTH, 37), // too_wide: 2^40 exceeds i32::MAX
        (RULE_ACCUMULATOR_WIDTH, 45), // loop accumulation, no comment
    ];
    assert_eq!(got, want, "findings: {got:?}");
}

#[test]
fn accumulator_width_is_scoped_to_hot_crates() {
    let src = fixture("accumulator_width_bad.rs");
    let ctx = ctx("atom-serve", "crates/serve/src/fixture.rs", FileKind::Src);
    let got = run(&src, &ctx, None);
    assert!(
        got.iter().all(|(r, _)| *r != RULE_ACCUMULATOR_WIDTH),
        "out-of-scope crate flagged: {got:?}"
    );
}

#[test]
fn unchecked_arith_fixture() {
    // The provable sum, the wrapping call, the unsigned multiply, the
    // justified allow, and the #[cfg(test)] body must all stay clean;
    // the three bare signed sites are findings.
    let src = fixture("unchecked_arith_bad.rs");
    let ctx = ctx("atom-kernels", "crates/kernels/src/fixture.rs", FileKind::Src);
    let got = run(&src, &ctx, None);
    let want = vec![
        (RULE_UNCHECKED_ARITH, 14), // x * y with full-range operands
        (RULE_UNCHECKED_ARITH, 19), // x + 1 at the top of the range
        (RULE_UNCHECKED_ARITH, 24), // shift amount unbounded
    ];
    assert_eq!(got, want, "findings: {got:?}");
}

#[test]
fn unchecked_arith_cross_file_consts_resolve() {
    // The per-file fixture defines `FIX_LIMIT` itself; here the constant
    // lives in a *different* file of the analysis universe, and the site
    // file still proves against it — the workspace constant table is
    // global, not per-file.
    let consts = "pub const ELSEWHERE: i32 = 1 << 10;\n";
    let site = "pub fn f(x: u8) -> i32 {\n    i32::from(x) + ELSEWHERE\n}\n";
    let const_ctx = ctx("atom-kernels", "crates/kernels/src/consts.rs", FileKind::Src);
    let site_ctx = ctx("atom-kernels", "crates/kernels/src/site.rs", FileKind::Src);
    let analysis = WorkspaceAnalysis::build(&[
        (const_ctx, consts.to_string()),
        (site_ctx.clone(), site.to_string()),
    ]);
    let mut state = CrossFileState::default();
    let findings = lint_file(&site_ctx, site, None, &analysis, &mut state);
    assert!(
        findings.is_empty(),
        "cross-file constant should prove the sum: {findings:?}"
    );
}

#[test]
fn sarif_export_has_schema_rules_and_results() {
    let report = lint_workspace(&workspace_root()).expect("workspace lints");
    let sarif = report.to_sarif();
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("sarif-schema-2.1.0.json"));
    assert!(sarif.contains("\"name\": \"atom-lint\""));
    // Every reportable rule is declared in the driver with a description.
    for rule in atom_lint::REPORTABLE_RULES {
        assert!(
            sarif.contains(&format!("\"id\": \"{rule}\"")),
            "missing SARIF rule {rule}"
        );
    }
    assert!(sarif.contains("\"shortDescription\""));
    // Clean tree: the results array is present and empty.
    assert!(sarif.contains("\"results\": ["));
    assert!(!sarif.contains("\"ruleId\""));
}

#[test]
fn sarif_results_carry_location_and_level() {
    // A synthetic one-finding report must serialize the full result shape
    // GitHub code scanning needs: ruleId, level, message, and a physical
    // location with uri + startLine.
    let report = atom_lint::WorkspaceReport {
        findings: vec![atom_lint::Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: RULE_UNCHECKED_ARITH,
            message: "demo \"quoted\" message".into(),
        }],
        files_checked: 1,
        allows: vec![],
    };
    let sarif = report.to_sarif();
    assert!(sarif.contains(&format!("\"ruleId\": \"{RULE_UNCHECKED_ARITH}\"")));
    assert!(sarif.contains("\"level\": \"error\""));
    assert!(sarif.contains("\"uri\": \"crates/x/src/lib.rs\""));
    assert!(sarif.contains("\"startLine\": 7"));
    // Quotes in messages must be escaped, not break the document.
    assert!(sarif.contains("demo \\\"quoted\\\" message"));
}

#[test]
fn ratchet_baseline_matches_live_tree_and_detects_drift() {
    // The committed baseline must describe the current tree exactly: a
    // stale baseline would either block the build (regression) or silently
    // under-ratchet (improvement never shrunk).
    let report = lint_workspace(&workspace_root()).expect("workspace lints");
    let current = Baseline::from_report(&report);
    let committed = std::fs::read_to_string(workspace_root().join("results/lint_baseline.json"))
        .expect("committed baseline readable");
    let committed = Baseline::parse(&committed).expect("committed baseline parses");
    let out = committed.check(&current);
    assert!(
        out.regressions.is_empty() && !out.improved,
        "committed baseline out of date: regressions {:?}, improved {}",
        out.regressions,
        out.improved
    );

    // A new finding anywhere regresses against that same baseline.
    let mut worse = report;
    worse.findings.push(atom_lint::Finding {
        file: "crates/x/src/lib.rs".into(),
        line: 1,
        rule: RULE_ACCUMULATOR_WIDTH,
        message: "synthetic".into(),
    });
    let out = committed.check(&Baseline::from_report(&worse));
    assert_eq!(out.regressions.len(), 1, "regressions: {:?}", out.regressions);
    assert_eq!(out.regressions[0].rule, RULE_ACCUMULATOR_WIDTH);
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn report_json_has_schema_rule_counts_and_allow_inventory() {
    let report = lint_workspace(&workspace_root()).expect("workspace lints");
    let json = report.to_json();
    assert!(json.contains("\"schema\": \"atom-lint-report/v2\""));
    // Every reportable rule appears in the counts object even at zero.
    for rule in atom_lint::REPORTABLE_RULES {
        assert!(json.contains(&format!("\"{rule}\":")), "missing count for {rule}");
    }
    // The allow inventory is present with reasons and suppression counts.
    assert!(!report.allows.is_empty(), "live tree has allow directives");
    assert!(json.contains("\"allow_directives\""));
    assert!(json.contains("\"suppressed\""));
    assert!(
        report.allows.iter().all(|a| !a.reason.is_empty()),
        "every live allow carries a reason"
    );
    // Counts reconcile with the findings list (clean tree: all zeros).
    let total: usize = report.rule_counts().values().sum();
    assert_eq!(total, report.findings.len());
}

#[test]
fn live_workspace_is_clean() {
    let report = lint_workspace(&workspace_root()).expect("workspace lints");
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_checked > 50,
        "suspiciously few files checked: {}",
        report.files_checked
    );
}

/// Builds a throwaway workspace with one bad crate and a names table with
/// an unused constant, and checks both the library report and the binary's
/// exit-code contract against it.
#[test]
fn binary_exit_codes() {
    let dir = std::env::temp_dir().join(format!("atom-lint-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("crates/bad/src")).expect("mkdir bad");
    std::fs::create_dir_all(dir.join("crates/telemetry/src")).expect("mkdir telemetry");
    std::fs::write(
        dir.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/bad\"]\n",
    )
    .expect("write root manifest");
    std::fs::write(
        dir.join("crates/bad/Cargo.toml"),
        "[package]\nname = \"atom-badlib\"\nversion = \"0.0.0\"\n",
    )
    .expect("write bad manifest");
    std::fs::write(
        dir.join("crates/bad/src/lib.rs"),
        "pub fn f(x: u32) -> f32 {\n    unsafe { std::mem::transmute(x) }\n}\n",
    )
    .expect("write bad lib");
    std::fs::write(
        dir.join("crates/telemetry/src/names.rs"),
        "pub const NEVER_RECORDED: &str = \"never.recorded\";\n",
    )
    .expect("write names table");

    let report = lint_workspace(&dir).expect("lint synthesized workspace");
    let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    assert!(
        rules.contains(&RULE_UNSAFE_CONTAINMENT),
        "missing unsafe finding: {rules:?}"
    );
    assert!(
        rules.contains(&RULE_TELEMETRY_NAMES),
        "missing unused-name finding: {rules:?}"
    );

    let bin = env!("CARGO_BIN_EXE_atom-lint");
    let bad = std::process::Command::new(bin)
        .args(["--root", dir.to_str().expect("utf8 temp path")])
        .output()
        .expect("run atom-lint on bad tree");
    assert!(
        !bad.status.success(),
        "expected non-zero exit on violations"
    );
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(
        stdout.contains("unsafe-containment"),
        "stdout should name the rule: {stdout}"
    );

    let good = std::process::Command::new(bin)
        .args(["--root", workspace_root().to_str().expect("utf8 root")])
        .output()
        .expect("run atom-lint on real tree");
    assert!(
        good.status.success(),
        "real workspace must be clean; stdout:\n{}",
        String::from_utf8_lossy(&good.stdout)
    );

    let _ = std::fs::remove_dir_all(&dir);
}
