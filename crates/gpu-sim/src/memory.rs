//! GPU memory accounting: weights + paged KV-cache.
//!
//! Quantization shrinks both the resident weights and the per-token KV
//! footprint, which is what lets Atom run much larger batches under the
//! same memory budget — the mechanism behind Fig. 10c's 2.5x-over-W8A8
//! claim.

use crate::graph::{LlamaGpuConfig, SimScheme};
use serde::{Deserialize, Serialize};

/// Memory model of one model + scheme on one device budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Architecture.
    pub config: LlamaGpuConfig,
    /// Serving scheme.
    pub scheme: SimScheme,
    /// Total device memory budget in bytes.
    pub budget_bytes: u64,
    /// Bytes reserved for activations/workspace (fraction of budget).
    pub workspace_frac: f64,
}

impl MemoryModel {
    /// Creates a model with the default 10% workspace reservation.
    pub fn new(config: LlamaGpuConfig, scheme: SimScheme, budget_bytes: u64) -> Self {
        MemoryModel {
            config,
            scheme,
            budget_bytes,
            workspace_frac: 0.10,
        }
    }

    /// Resident weight bytes (blocks + FP16 embeddings/head).
    pub fn weight_bytes(&self) -> f64 {
        let block = self.config.block_params() * self.scheme.weight_bits() / 8.0;
        let embed = 2.0 * (self.config.vocab * self.config.dim) as f64 * 2.0;
        block + embed
    }

    /// KV-cache bytes per cached token (all layers, both K and V).
    pub fn kv_bytes_per_token(&self) -> f64 {
        let per_layer = 2.0 * self.config.dim as f64 * self.scheme.kv_bits() / 8.0;
        per_layer * self.config.layers as f64
    }

    /// Bytes available for the paged KV pool.
    pub fn kv_pool_bytes(&self) -> f64 {
        let usable = self.budget_bytes as f64 * (1.0 - self.workspace_frac);
        (usable - self.weight_bytes()).max(0.0)
    }

    /// Maximum concurrent batch, given an average context length per
    /// sequence.
    pub fn max_batch(&self, avg_context: usize) -> usize {
        let per_seq = self.kv_bytes_per_token() * avg_context as f64;
        if per_seq <= 0.0 {
            return 0;
        }
        (self.kv_pool_bytes() / per_seq) as usize
    }

    /// Whether `batch` sequences of `avg_context` tokens fit.
    pub fn fits(&self, batch: usize, avg_context: usize) -> bool {
        batch <= self.max_batch(avg_context)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::HardwareProfile;

    fn model(scheme: SimScheme) -> MemoryModel {
        MemoryModel::new(
            LlamaGpuConfig::llama7b(),
            scheme,
            HardwareProfile::rtx4090().mem_bytes,
        )
    }

    #[test]
    fn weight_bytes_match_llama7b() {
        // Llama-7B FP16 weights ~ 13 GB.
        let fp16 = model(SimScheme::Fp16).weight_bytes();
        assert!((12e9..15e9).contains(&fp16), "fp16 weights {fp16}");
        // Atom's 4.25-effective-bit weights ~ 3.6 GB.
        let atom = model(SimScheme::AtomW4A4).weight_bytes();
        assert!(atom < fp16 / 3.0, "atom weights {atom}");
    }

    #[test]
    fn kv_bytes_per_token() {
        // FP16: 2 * 4096 * 2B * 32 layers = 512 KiB per token.
        let fp16 = model(SimScheme::Fp16).kv_bytes_per_token();
        assert!((fp16 - 524_288.0).abs() < 1.0);
        let atom = model(SimScheme::AtomW4A4).kv_bytes_per_token();
        assert!((atom - 131_072.0).abs() < 1.0);
    }

    #[test]
    fn atom_fits_much_larger_batches() {
        // Fig. 10c: under fixed memory Atom reaches far larger batches than
        // W8A8 and FP16.
        let ctx = 1024;
        let b_fp16 = model(SimScheme::Fp16).max_batch(ctx);
        let b_w8 = model(SimScheme::W8A8).max_batch(ctx);
        let b_atom = model(SimScheme::AtomW4A4).max_batch(ctx);
        assert!(b_atom > 2 * b_w8, "atom {b_atom} vs w8a8 {b_w8}");
        assert!(b_atom > 4 * b_fp16, "atom {b_atom} vs fp16 {b_fp16}");
        // FP16 Llama-7B on a 24GB card barely fits a dozen 1k-contexts.
        assert!(b_fp16 < 20, "fp16 batch {b_fp16}");
        assert!(b_atom >= 128, "atom batch {b_atom}");
        // At the ShareGPT-median ~512-token context Atom reaches the
        // paper's 256-batch regime on 24 GB.
        assert!(
            model(SimScheme::AtomW4A4).max_batch(512) >= 256,
            "atom batch at ctx 512"
        );
    }

    #[test]
    fn fits_is_consistent_with_max_batch() {
        let m = model(SimScheme::W8A8);
        let b = m.max_batch(512);
        assert!(m.fits(b, 512));
        assert!(!m.fits(b + 1, 512));
    }

    #[test]
    fn zero_context_edge() {
        let m = model(SimScheme::Fp16);
        assert_eq!(m.max_batch(0), 0);
    }
}
