//! Tags cost-model outputs with the serving stack's telemetry names.
//!
//! The measured CPU path (`atom-kernels`, `atom-nn`, `atom-serve`) and this
//! simulated path record under **identical** metric names from
//! `atom_telemetry::names`, so `telemetry_report` can print the measured
//! Fig. 3-style breakdown next to the roofline prediction key-for-key. The
//! only differences: simulated "wall time" is the roofline latency converted
//! to nanoseconds, and the quantization epilogue — fused into the norm
//! elementwise ops in the graph — is split back out into `op.quant.*` by its
//! share of the elementwise streams.

use crate::cost::{op_time, Op};
use crate::graph::{iteration_ops, LlamaGpuConfig, OpClass, Phase, SimScheme};
use crate::hardware::HardwareProfile;
use atom_telemetry::{names, Telemetry};

/// Records one simulated serving iteration into `telemetry` under the same
/// names the measured path uses, and returns the predicted iteration
/// latency in seconds.
///
/// Pass an enabled instance ([`Telemetry::enabled`]); a disabled one
/// records nothing (and the return value is still correct).
pub fn record_iteration(
    telemetry: &Telemetry,
    config: &LlamaGpuConfig,
    scheme: SimScheme,
    batch: usize,
    kv_len: usize,
    phase: Phase,
    hw: &HardwareProfile,
) -> f64 {
    let ep = scheme.epilogue_streams();
    let mut total_s = 0.0;
    for (class, op) in iteration_ops(config, scheme, batch, kv_len, phase) {
        let t = op_time(&op, hw);
        let secs = t.seconds();
        total_s += secs;
        let ns = (secs * 1e9).round() as u64;
        match (class, &op) {
            (OpClass::Dense, Op::Gemm { m, .. }) => {
                telemetry.record(names::OP_GEMM_WALL_NS, ns);
                telemetry.counter_add(names::OP_GEMM_BYTES, t.bytes as u64);
                telemetry.counter_add(names::OP_GEMM_ROWS, *m as u64);
                telemetry.counter_add(names::OP_GEMM_CALLS, 1);
            }
            (OpClass::Attention, _) => {
                telemetry.record(names::OP_ATTENTION_WALL_NS, ns);
                telemetry.counter_add(names::OP_ATTENTION_BYTES, t.bytes as u64);
                telemetry.counter_add(names::OP_ATTENTION_CALLS, 1);
            }
            (_, Op::Elementwise { streams, .. }) if ep > 0.0 && *streams > 2.0 => {
                // Roofline time is linear in streams on both the compute
                // and memory axes, so the fused quantization epilogue's
                // share of this op is exactly its share of the streams.
                let quant_frac = ep / streams;
                let quant_ns = (secs * quant_frac * 1e9).round() as u64;
                telemetry.record(names::OP_QUANT_WALL_NS, quant_ns);
                telemetry.counter_add(names::OP_QUANT_CALLS, 1);
                telemetry.record(names::OP_OTHER_WALL_NS, ns.saturating_sub(quant_ns));
            }
            _ => {
                telemetry.record(names::OP_OTHER_WALL_NS, ns);
            }
        }
    }
    telemetry.record(names::MODEL_FORWARD_WALL_NS, (total_s * 1e9).round() as u64);
    total_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::iteration_breakdown;

    #[test]
    fn simulated_metrics_use_measured_names_and_sum_to_breakdown() {
        let hw = HardwareProfile::rtx4090();
        let cfg = LlamaGpuConfig::llama7b();
        let t = Telemetry::enabled();
        let total =
            record_iteration(&t, &cfg, SimScheme::AtomW4A4, 64, 1024, Phase::Decode, &hw);
        let b = iteration_breakdown(&cfg, SimScheme::AtomW4A4, 64, 1024, Phase::Decode, &hw);
        assert!((total - b.total_s()).abs() < 1e-12);

        let snap = t.metrics().snapshot();
        let gemm_s = snap.histograms[names::OP_GEMM_WALL_NS].sum as f64 / 1e9;
        let attn_s = snap.histograms[names::OP_ATTENTION_WALL_NS].sum as f64 / 1e9;
        let quant_s = snap.histograms[names::OP_QUANT_WALL_NS].sum as f64 / 1e9;
        let other_s = snap.histograms[names::OP_OTHER_WALL_NS].sum as f64 / 1e9;
        // Class sums line up with the Breakdown aggregation (ns rounding).
        assert!((gemm_s - b.dense_s).abs() < 1e-6, "{gemm_s} vs {}", b.dense_s);
        assert!((attn_s - b.attention_s).abs() < 1e-6);
        assert!((quant_s + other_s - b.other_s).abs() < 1e-6);
        assert!(quant_s > 0.0, "Atom scheme has a quant epilogue");
        // Components cover the forward total.
        let fwd_s = snap.histograms[names::MODEL_FORWARD_WALL_NS].sum as f64 / 1e9;
        let parts = gemm_s + attn_s + quant_s + other_s;
        assert!((parts - fwd_s).abs() / fwd_s < 1e-3);
        // Call counts: 4 dense GEMMs and 1 attention per layer.
        assert_eq!(snap.counter(names::OP_GEMM_CALLS), 4 * cfg.layers as u64);
        assert_eq!(snap.counter(names::OP_ATTENTION_CALLS), cfg.layers as u64);
    }

    #[test]
    fn fp16_scheme_records_no_quant_time() {
        let hw = HardwareProfile::rtx4090();
        let cfg = LlamaGpuConfig::llama7b();
        let t = Telemetry::enabled();
        record_iteration(&t, &cfg, SimScheme::Fp16, 8, 256, Phase::Decode, &hw);
        let snap = t.metrics().snapshot();
        assert!(!snap.histograms.contains_key(names::OP_QUANT_WALL_NS));
    }
}
