//! Tensor-parallel serving model (paper footnote 2).
//!
//! The paper notes that "with quantization, pipelining, and tensor
//! parallelism to amortize weights, it is practical to deploy a 180B model
//! with a 256 batch size in the serving scenario". This module extends the
//! roofline model with Megatron-style tensor parallelism so that claim is
//! checkable: QKV/gate/up shard column-parallel, O/down shard row-parallel,
//! attention heads shard across GPUs, and each transformer block pays two
//! ring all-reduces of the `tokens x dim` activation over the interconnect.

use crate::cost::{op_time, Op};
use crate::graph::{iteration_ops, Breakdown, LlamaGpuConfig, OpClass, Phase, SimScheme};
use crate::hardware::HardwareProfile;
use serde::{Deserialize, Serialize};

/// Tensor-parallel execution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TpConfig {
    /// Number of GPUs the model shards across (1 = no TP).
    pub degree: usize,
    /// Per-GPU interconnect bandwidth for collectives, GB/s (NVLink on
    /// A100: ~600 GB/s; PCIe-class: ~32 GB/s).
    pub interconnect_gbps: f64,
}

impl TpConfig {
    /// Single-GPU (no parallelism).
    pub fn single() -> Self {
        TpConfig {
            degree: 1,
            interconnect_gbps: f64::INFINITY,
        }
    }

    /// NVLink-connected A100 pod of `degree` GPUs.
    pub fn nvlink(degree: usize) -> Self {
        TpConfig {
            degree,
            interconnect_gbps: 600.0,
        }
    }

    /// Ring all-reduce time for `bytes` of payload: each GPU moves
    /// `2 (N-1)/N * bytes` over its link.
    pub fn allreduce_seconds(&self, bytes: f64) -> f64 {
        if self.degree <= 1 {
            return 0.0;
        }
        let n = self.degree as f64;
        2.0 * (n - 1.0) / n * bytes / (self.interconnect_gbps * 1e9)
    }
}

/// Larger-model configs the single-GPU experiments cannot hold.
impl LlamaGpuConfig {
    /// Llama-2-70B-like dense shapes.
    pub fn llama70b() -> Self {
        LlamaGpuConfig {
            dim: 8192,
            layers: 80,
            heads: 64,
            ffn_dim: 28672,
            vocab: 32000,
        }
    }

    /// A 180B-class dense model (the footnote's deployment target;
    /// Falcon-180B-like shapes).
    pub fn llama180b() -> Self {
        LlamaGpuConfig {
            dim: 14848,
            layers: 80,
            heads: 64,
            ffn_dim: 59392,
            vocab: 65024,
        }
    }
}

/// One decode/prefill iteration under tensor parallelism: per-GPU latency
/// of the sharded operator graph plus the per-layer all-reduces.
///
/// # Panics
///
/// Panics if `tp.degree` is zero or does not divide the head count.
pub fn iteration_breakdown_tp(
    config: &LlamaGpuConfig,
    scheme: SimScheme,
    batch: usize,
    kv_len: usize,
    phase: Phase,
    hw: &HardwareProfile,
    tp: &TpConfig,
) -> Breakdown {
    assert!(tp.degree > 0, "TP degree must be positive");
    assert!(
        config.heads.is_multiple_of(tp.degree),
        "heads {} not divisible by TP degree {}",
        config.heads,
        tp.degree
    );
    let n = tp.degree;
    let mut b = Breakdown {
        dense_s: 0.0,
        attention_s: 0.0,
        other_s: 0.0,
    };
    for (class, op) in iteration_ops(config, scheme, batch, kv_len, phase) {
        let sharded = shard_op(&op, class, n);
        let t = op_time(&sharded, hw).seconds();
        match class {
            OpClass::Dense => b.dense_s += t,
            OpClass::Attention => b.attention_s += t,
            OpClass::Other => b.other_s += t,
        }
    }
    // Two ring all-reduces per layer (after attention's row-parallel O and
    // after the MLP's row-parallel down), each over the token activations.
    let q = match phase {
        Phase::Decode => 1,
        Phase::Prefill { q_len } => q_len,
    };
    let m = batch * q;
    let payload = m as f64 * config.dim as f64 * 2.0; // fp16 activations
    b.other_s += 2.0 * config.layers as f64 * tp.allreduce_seconds(payload);
    b
}

/// Shards one operator across `n` GPUs.
fn shard_op(op: &Op, class: OpClass, n: usize) -> Op {
    match *op {
        // Dense GEMMs shard their weight matrix (column- or row-parallel;
        // either way each GPU holds 1/n of the weights and does 1/n of the
        // FLOPs — the larger of n/n' and k/n' split is what matters for the
        // roofline, and both divide evenly).
        Op::Gemm {
            m,
            n: out,
            k,
            weight_bits,
            act_bits,
            compute,
        } if class == OpClass::Dense => Op::Gemm {
            m,
            n: (out / n).max(1),
            k,
            weight_bits,
            act_bits,
            compute,
        },
        // Attention shards heads (each GPU holds its heads' KV).
        Op::Attention {
            batch,
            heads,
            head_dim,
            kv_len,
            q_len,
            kv_bits,
        } => Op::Attention {
            batch,
            heads: (heads / n).max(1),
            head_dim,
            kv_len,
            q_len,
            kv_bits,
        },
        // LM head and elementwise work stays replicated (the LM head is a
        // small fraction; norms are memory-trivial).
        other => other,
    }
}

/// Maximum batch of a TP deployment: each GPU holds `weights/n` plus its
/// head-sharded slice of the KV pool.
pub fn max_batch_tp(
    config: &LlamaGpuConfig,
    scheme: SimScheme,
    hw: &HardwareProfile,
    tp: &TpConfig,
    avg_context: usize,
) -> usize {
    let mem = crate::memory::MemoryModel::new(*config, scheme, hw.mem_bytes);
    let usable = hw.mem_bytes as f64 * (1.0 - mem.workspace_frac);
    let weights_per_gpu = mem.weight_bytes() / tp.degree as f64;
    let kv_per_token_per_gpu = mem.kv_bytes_per_token() / tp.degree as f64;
    let pool = (usable - weights_per_gpu).max(0.0);
    let per_seq = kv_per_token_per_gpu * avg_context as f64;
    if per_seq <= 0.0 {
        return 0;
    }
    (pool / per_seq) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_math() {
        let tp = TpConfig::nvlink(4);
        // 2 * 3/4 * bytes / bw.
        let t = tp.allreduce_seconds(600e9);
        assert!((t - 1.5).abs() < 1e-9);
        assert_eq!(TpConfig::single().allreduce_seconds(1e9), 0.0);
    }

    #[test]
    fn tp_speeds_up_memory_bound_decode() {
        // At small batch the dense layers are weight-streaming bound, so
        // sharding weights across 4 GPUs cuts iteration latency several-fold.
        let hw = HardwareProfile::a100();
        let cfg = LlamaGpuConfig::llama70b();
        let single = iteration_breakdown_tp(
            &cfg, SimScheme::Fp16, 8, 512, Phase::Decode, &hw, &TpConfig::single(),
        );
        let tp4 = iteration_breakdown_tp(
            &cfg, SimScheme::Fp16, 8, 512, Phase::Decode, &hw, &TpConfig::nvlink(4),
        );
        assert!(
            tp4.total_s() < single.total_s() / 2.0,
            "{} vs {}",
            tp4.total_s(),
            single.total_s()
        );
    }

    #[test]
    fn allreduce_overhead_grows_with_slow_interconnect() {
        let hw = HardwareProfile::a100();
        let cfg = LlamaGpuConfig::llama70b();
        let fast = iteration_breakdown_tp(
            &cfg, SimScheme::AtomW4A4, 64, 1024, Phase::Decode, &hw, &TpConfig::nvlink(8),
        );
        let slow = iteration_breakdown_tp(
            &cfg,
            SimScheme::AtomW4A4,
            64,
            1024,
            Phase::Decode,
            &hw,
            &TpConfig {
                degree: 8,
                interconnect_gbps: 32.0, // PCIe-class
            },
        );
        assert!(slow.other_s > fast.other_s * 5.0);
        assert!(slow.total_s() > fast.total_s());
    }

    #[test]
    fn footnote2_claim_180b_at_batch_256() {
        // Paper footnote 2: with quantization + TP it is practical to
        // deploy a 180B model with a 256 batch. On 8xA100-80GB:
        let hw = HardwareProfile::a100_80gb();
        let cfg = LlamaGpuConfig::llama180b();
        let tp = TpConfig::nvlink(8);
        let ctx = 700;
        let atom = max_batch_tp(&cfg, SimScheme::AtomW4A4, &hw, &tp, ctx);
        let fp16 = max_batch_tp(&cfg, SimScheme::Fp16, &hw, &tp, ctx);
        assert!(atom >= 256, "Atom 180B max batch {atom}");
        assert!(fp16 < atom / 4, "FP16 180B max batch {fp16} vs Atom {atom}");
        // And the decode latency at 256 stays reasonable on the simulator.
        let b = iteration_breakdown_tp(
            &cfg, SimScheme::AtomW4A4, 256, ctx, Phase::Decode, &hw, &tp,
        );
        assert!(b.total_s() < 0.2, "180B@256 decode {}s", b.total_s());
    }

    #[test]
    fn degree_must_divide_heads() {
        let hw = HardwareProfile::a100();
        let cfg = LlamaGpuConfig::llama7b();
        let r = std::panic::catch_unwind(|| {
            iteration_breakdown_tp(
                &cfg,
                SimScheme::Fp16,
                1,
                64,
                Phase::Decode,
                &hw,
                &TpConfig {
                    degree: 7,
                    interconnect_gbps: 600.0,
                },
            )
        });
        assert!(r.is_err());
    }
}
