//! Efficiency ablations of §5.4.2.
//!
//! Two studies:
//!
//! 1. **Fused-GEMM throughput ladder** — pure INT4 GEMM, + fused mixed
//!    precision, + fused group dequantization, compared against the INT8
//!    theoretical limit (980 → 900 → 770 TOPS in the paper, profiled at the
//!    Llama-7B config with batch 4096).
//! 2. **Reorder fusion vs. matrix decomposition** — Atom fuses reorder +
//!    quantize into the preceding layer norm; the LLM.int8()-style baseline
//!    decomposes the matrix at run time with separate passes. The paper
//!    reports Atom 25–35% faster on layernorm+GEMM across batch 16–256.

use crate::cost::{op_time, ComputeKind, Op};
use crate::hardware::HardwareProfile;
use serde::{Deserialize, Serialize};

/// One row of the fused-GEMM throughput ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelAblationRow {
    /// Technique label.
    pub label: &'static str,
    /// Sustained TOPS at the profiling shape.
    pub tops: f64,
}

/// The §5.4.2 fused-GEMM ladder at the paper's profiling shape
/// (Llama-7B dense GEMM, batch 4096).
pub fn fused_gemm_ladder(hw: &HardwareProfile) -> Vec<KernelAblationRow> {
    let shape = |compute| Op::Gemm {
        m: 4096,
        n: 4096,
        k: 4096,
        weight_bits: 4.0,
        act_bits: 4.0,
        compute,
    };
    let tops = |compute| op_time(&shape(compute), hw).achieved_tops();
    vec![
        KernelAblationRow {
            label: "Pure INT4 GEMM (no quantization ops)",
            tops: tops(ComputeKind::Int4Pure),
        },
        KernelAblationRow {
            label: "+ Fused mixed-precision (INT8 outliers)",
            tops: tops(ComputeKind::Int4Mixed),
        },
        KernelAblationRow {
            label: "+ Fused group dequantization",
            tops: tops(ComputeKind::Int4Atom),
        },
        KernelAblationRow {
            label: "INT8 theoretical limit",
            tops: hw.int8_tops,
        },
    ]
}

/// Latency of layernorm + GEMM with Atom's fused reorder+quantize versus
/// the decomposition baseline (LLM.int8()-style), at one batch size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReorderAblationRow {
    /// Batch size.
    pub batch: usize,
    /// Fused pipeline seconds.
    pub fused_s: f64,
    /// Decomposed pipeline seconds.
    pub decomposed_s: f64,
}

impl ReorderAblationRow {
    /// Relative advantage of fusion (e.g. `0.30` = 30% faster).
    pub fn speedup(&self) -> f64 {
        self.decomposed_s / self.fused_s - 1.0
    }
}

/// Kernel launch + sync overhead per kernel, seconds. A small fixed cost
/// every real CUDA pipeline pays; the decomposition baseline pays it more
/// times per layer.
const LAUNCH_S: f64 = 0.6e-6;

/// Compares fused vs. decomposed mixed-precision handling over a batch
/// sweep (paper: batch 16–256, layer norm + one GEMM; Atom wins 25–35%,
/// this model lands 25–45%).
pub fn reorder_ablation(hw: &HardwareProfile, dim: usize, batches: &[usize]) -> Vec<ReorderAblationRow> {
    batches
        .iter()
        .map(|&batch| {
            let gemm = Op::Gemm {
                m: batch,
                n: dim,
                k: dim,
                weight_bits: 4.0,
                act_bits: 4.0,
                compute: ComputeKind::Int4Atom,
            };
            // Fused (Atom): one norm kernel with reorder+quantize riding
            // along (one extra stream), then the mixed-precision GEMM —
            // two launches total.
            let norm_fused = Op::Elementwise {
                tokens: batch,
                dim,
                streams: 3.0,
            };
            let fused_s =
                2.0 * LAUNCH_S + op_time(&norm_fused, hw).seconds() + op_time(&gemm, hw).seconds();

            // Decomposed (LLM.int8()-style): norm+quantize, a run-time
            // index-gather splitting outlier columns out of the matrix, the
            // low-bit GEMM on the normal part, and a separate FP16 GEMM on
            // the extracted outlier columns — four launches.
            let gather = Op::Elementwise {
                tokens: batch,
                dim,
                streams: 2.0,
            };
            let outlier_gemm = Op::Gemm {
                m: batch,
                n: dim,
                k: 128,
                weight_bits: 16.0,
                act_bits: 16.0,
                compute: ComputeKind::Fp16Tensor,
            };
            let decomposed_s = 4.0 * LAUNCH_S
                + op_time(&norm_fused, hw).seconds()
                + op_time(&gather, hw).seconds()
                + op_time(&gemm, hw).seconds()
                + op_time(&outlier_gemm, hw).seconds();
            ReorderAblationRow {
                batch,
                fused_s,
                decomposed_s,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_matches_paper_numbers() {
        let hw = HardwareProfile::rtx4090();
        let rows = fused_gemm_ladder(&hw);
        assert_eq!(rows.len(), 4);
        assert!((rows[0].tops - 980.0).abs() < 20.0, "pure {}", rows[0].tops);
        assert!((rows[1].tops - 900.0).abs() < 20.0, "mixed {}", rows[1].tops);
        assert!((rows[2].tops - 770.0).abs() < 20.0, "atom {}", rows[2].tops);
        // "still outperforms the theoretical limit of INT8 throughput by
        // nearly 18%".
        let margin = rows[2].tops / rows[3].tops - 1.0;
        assert!((0.10..0.25).contains(&margin), "margin {margin}");
    }

    #[test]
    fn ladder_is_monotone() {
        let hw = HardwareProfile::rtx4090();
        let rows = fused_gemm_ladder(&hw);
        assert!(rows[0].tops > rows[1].tops);
        assert!(rows[1].tops > rows[2].tops);
    }

    #[test]
    fn reorder_fusion_wins_25_to_35_percent() {
        // Paper: "Atom consistently outperforms the baseline from 25% to
        // 35%" over batch 16-256.
        let hw = HardwareProfile::rtx4090();
        let rows = reorder_ablation(&hw, 4096, &[16, 32, 64, 128, 256]);
        for row in rows {
            let s = row.speedup();
            assert!(
                (0.20..0.50).contains(&s),
                "batch {}: speedup {s}",
                row.batch
            );
        }
    }
}
