//! Roofline analysis (paper Fig. 4).
//!
//! For each serving scheme, place the dense layer and the self-attention
//! layer on the roofline: x = arithmetic intensity (ops/element in the
//! paper's variant; ops/byte here, equivalent up to the element width),
//! y = attainable throughput `min(peak, intensity * bandwidth)`.

use crate::cost::{op_time, Op, OpTime};
use crate::graph::{LlamaGpuConfig, SimScheme};
use crate::hardware::HardwareProfile;
use serde::{Deserialize, Serialize};

/// One point on the roofline plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Scheme label.
    pub scheme: &'static str,
    /// Operator label (`dense` / `attention`).
    pub operator: &'static str,
    /// Batch size the point was computed at.
    pub batch: usize,
    /// Arithmetic intensity, ops per byte.
    pub intensity: f64,
    /// Attainable throughput under the roofline, TOPS.
    pub attainable_tops: f64,
    /// Effective compute peak of the operator's pipeline, TOPS.
    pub peak_tops: f64,
    /// Whether the operator lands compute bound.
    pub compute_bound: bool,
}

/// Computes the roofline points of the dense QKV GEMM and the decode
/// self-attention for one scheme and batch.
pub fn roofline_points(
    config: &LlamaGpuConfig,
    scheme: SimScheme,
    batch: usize,
    kv_len: usize,
    hw: &HardwareProfile,
) -> Vec<RooflinePoint> {
    let dense = Op::Gemm {
        m: batch,
        n: config.dim,
        k: config.dim,
        weight_bits: scheme.weight_bits(),
        act_bits: scheme.act_bits(),
        compute: scheme.compute(),
    };
    let attention = Op::Attention {
        batch,
        heads: config.heads,
        head_dim: config.head_dim(),
        kv_len,
        q_len: 1,
        kv_bits: scheme.kv_bits(),
    };
    let peak_dense = scheme.compute().effective_tops(hw);
    let peak_attn = crate::cost::ComputeKind::Fp16Tensor.effective_tops(hw);
    vec![
        point(scheme.label(), "dense", batch, &op_time(&dense, hw), peak_dense, hw),
        point(
            scheme.label(),
            "attention",
            batch,
            &op_time(&attention, hw),
            peak_attn,
            hw,
        ),
    ]
}

fn point(
    scheme: &'static str,
    operator: &'static str,
    batch: usize,
    t: &OpTime,
    peak_tops: f64,
    hw: &HardwareProfile,
) -> RooflinePoint {
    let intensity = t.intensity();
    let bw_tops = intensity * hw.hbm_gbps * 1e9 / 1e12;
    RooflinePoint {
        scheme,
        operator,
        batch,
        intensity,
        attainable_tops: bw_tops.min(peak_tops),
        peak_tops,
        compute_bound: t.compute_bound(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_crosses_ridge_with_batch() {
        // Fig. 4a: at large batch the dense layer is compute bound; at
        // batch 1 it is memory bound.
        let hw = HardwareProfile::a100();
        let cfg = LlamaGpuConfig::llama7b();
        let at = |batch| {
            roofline_points(&cfg, SimScheme::Fp16, batch, 1024, &hw)
                .into_iter()
                .find(|p| p.operator == "dense")
                .unwrap()
        };
        assert!(!at(1).compute_bound);
        assert!(at(512).compute_bound);
        assert!(at(512).intensity > at(1).intensity);
    }

    #[test]
    fn attention_never_compute_bound() {
        // Fig. 4: self-attention consistently exhibits low arithmetic
        // intensity regardless of batch (no cross-request reuse, §3).
        let hw = HardwareProfile::a100();
        let cfg = LlamaGpuConfig::llama7b();
        for batch in [1, 64, 256] {
            for p in roofline_points(&cfg, SimScheme::Fp16, batch, 1024, &hw) {
                if p.operator == "attention" {
                    assert!(!p.compute_bound, "batch {batch}");
                    assert!(p.intensity < 20.0, "batch {batch}: {}", p.intensity);
                }
            }
        }
    }

    #[test]
    fn quantization_raises_attention_attainable() {
        // Fig. 4a: weight-activation quantization lifts the attention
        // throughput by shrinking KV bytes.
        let hw = HardwareProfile::a100();
        let cfg = LlamaGpuConfig::llama7b();
        let attn = |scheme| {
            roofline_points(&cfg, scheme, 128, 1024, &hw)
                .into_iter()
                .find(|p| p.operator == "attention")
                .unwrap()
                .attainable_tops
        };
        assert!(attn(SimScheme::AtomW4A4) > 3.0 * attn(SimScheme::Fp16));
        // Fig. 4b: weight-only quantization does NOT lift attention.
        assert!((attn(SimScheme::W4A16) - attn(SimScheme::Fp16)).abs() < 1e-9);
    }

    #[test]
    fn dense_peak_rises_with_lower_bits() {
        let hw = HardwareProfile::a100();
        let cfg = LlamaGpuConfig::llama7b();
        let peak = |scheme| {
            roofline_points(&cfg, scheme, 512, 1024, &hw)
                .into_iter()
                .find(|p| p.operator == "dense")
                .unwrap()
                .peak_tops
        };
        assert!(peak(SimScheme::AtomW4A4) > peak(SimScheme::W8A8));
        assert!(peak(SimScheme::W8A8) > peak(SimScheme::Fp16));
        // Fig. 4b: W4A16 keeps the FP16 compute roof.
        assert!((peak(SimScheme::W4A16) - peak(SimScheme::Fp16)).abs() < 1e-9);
    }
}
