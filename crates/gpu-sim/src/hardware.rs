//! GPU hardware profiles.
//!
//! Peak numbers are the published device constants the paper itself cites:
//! the A100 appears in §2 ("1248 TOPS of INT4 and 624 TOPS of INT8 as
//! opposed to only 312 TFLOPS for FP16"), and the RTX 4090 is the
//! evaluation device (§5.3).

use serde::{Deserialize, Serialize};

/// Peak capabilities of one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareProfile {
    /// Device name.
    pub name: &'static str,
    /// Dense FP16 tensor-core throughput, TFLOPS.
    pub fp16_tflops: f64,
    /// Dense INT8 tensor-core throughput, TOPS.
    pub int8_tops: f64,
    /// Dense INT4 tensor-core throughput, TOPS.
    pub int4_tops: f64,
    /// FP32 CUDA-core throughput (dequantization epilogues), TFLOPS.
    pub fp32_tflops: f64,
    /// Memory bandwidth, GB/s.
    pub hbm_gbps: f64,
    /// Device memory, bytes.
    pub mem_bytes: u64,
}

impl HardwareProfile {
    /// NVIDIA A100 (40 GB, SXM): the §2 reference device.
    pub fn a100() -> Self {
        HardwareProfile {
            name: "A100-40GB",
            fp16_tflops: 312.0,
            int8_tops: 624.0,
            int4_tops: 1248.0,
            fp32_tflops: 19.5,
            hbm_gbps: 1555.0,
            mem_bytes: 40 * (1 << 30),
        }
    }

    /// NVIDIA A100 (80 GB, SXM): the variant large-model TP deployments
    /// use (same compute, more/faster HBM).
    pub fn a100_80gb() -> Self {
        HardwareProfile {
            name: "A100-80GB",
            hbm_gbps: 2039.0,
            mem_bytes: 80 * (1 << 30),
            ..Self::a100()
        }
    }

    /// NVIDIA RTX 4090 (24 GB): the paper's evaluation device (§5.3).
    pub fn rtx4090() -> Self {
        HardwareProfile {
            name: "RTX4090-24GB",
            fp16_tflops: 330.3,
            int8_tops: 660.6,
            int4_tops: 1321.2,
            fp32_tflops: 82.6,
            hbm_gbps: 1008.0,
            mem_bytes: 24 * (1 << 30),
        }
    }

    /// Seconds to move `bytes` through HBM at peak bandwidth.
    pub fn mem_seconds(&self, bytes: f64) -> f64 {
        bytes / (self.hbm_gbps * 1e9)
    }

    /// The roofline ridge point (ops per byte) for a given peak in
    /// T(FL)OPS.
    pub fn ridge(&self, peak_tops: f64) -> f64 {
        peak_tops * 1e12 / (self.hbm_gbps * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cited_ratios_hold() {
        // §2: INT4 is 4x FP16 and 2x INT8 on the A100.
        let a = HardwareProfile::a100();
        assert_eq!(a.int4_tops, 4.0 * a.fp16_tflops);
        assert_eq!(a.int4_tops, 2.0 * a.int8_tops);
        let r = HardwareProfile::rtx4090();
        assert!((r.int4_tops / r.int8_tops - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mem_seconds_sane() {
        let hw = HardwareProfile::rtx4090();
        // 1 GB at 1008 GB/s ~ 1 ms.
        let t = hw.mem_seconds(1e9);
        assert!((t - 1.0 / 1008.0).abs() < 1e-9);
    }

    #[test]
    fn ridge_point() {
        let hw = HardwareProfile::a100();
        // 312e12 / 1555e9 ~ 200 ops/byte.
        let r = hw.ridge(hw.fp16_tflops);
        assert!((r - 200.0).abs() < 2.0);
    }
}
