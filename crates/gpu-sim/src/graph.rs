//! Llama operator graph per serving iteration.
//!
//! Builds the list of GPU operators one decode (or prefill) iteration
//! executes for a batch, under each serving scheme, and aggregates the
//! Fig. 3 breakdown (dense / self-attention / other).

use crate::cost::{op_time, ComputeKind, Op, OpTime};
use crate::hardware::HardwareProfile;
use serde::{Deserialize, Serialize};

/// GPU-scale Llama architecture description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlamaGpuConfig {
    /// Hidden dimension.
    pub dim: usize,
    /// Transformer layers.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// MLP hidden dimension.
    pub ffn_dim: usize,
    /// Vocabulary size.
    pub vocab: usize,
}

impl LlamaGpuConfig {
    /// Llama-7B (the paper's kernel/e2e evaluation model).
    pub fn llama7b() -> Self {
        LlamaGpuConfig {
            dim: 4096,
            layers: 32,
            heads: 32,
            ffn_dim: 11008,
            vocab: 32000,
        }
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.dim / self.heads
    }

    /// Total weight parameters (ignoring embeddings, like the serving
    /// memory model which streams them once).
    pub fn block_params(&self) -> f64 {
        let attn = 4.0 * (self.dim * self.dim) as f64;
        let mlp = 3.0 * (self.dim * self.ffn_dim) as f64;
        self.layers as f64 * (attn + mlp)
    }
}

/// Serving schemes of the end-to-end comparison (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimScheme {
    /// FP16 weights, activations, and KV.
    Fp16,
    /// 4-bit weights, FP16 compute and KV (AWQ-style).
    W4A16,
    /// 8-bit weights and activations, INT8 KV (SmoothQuant-style).
    W8A8,
    /// Atom: 4-bit weights/activations with mixed precision + group fusion,
    /// INT4 KV.
    AtomW4A4,
}

impl SimScheme {
    /// All schemes in Fig. 10 legend order.
    pub fn all() -> [SimScheme; 4] {
        [
            SimScheme::Fp16,
            SimScheme::W4A16,
            SimScheme::W8A8,
            SimScheme::AtomW4A4,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SimScheme::Fp16 => "FP16",
            SimScheme::W4A16 => "W4A16",
            SimScheme::W8A8 => "W8A8",
            SimScheme::AtomW4A4 => "Atom W4A4",
        }
    }

    /// Stored weight precision in bits.
    pub fn weight_bits(self) -> f64 {
        match self {
            SimScheme::Fp16 => 16.0,
            SimScheme::W4A16 => 4.25, // group scales included (§4.2)
            SimScheme::W8A8 => 8.0,
            SimScheme::AtomW4A4 => 4.25,
        }
    }

    /// Activation precision crossing memory into the dense GEMMs.
    pub fn act_bits(self) -> f64 {
        match self {
            SimScheme::Fp16 | SimScheme::W4A16 => 16.0,
            SimScheme::W8A8 => 8.0,
            SimScheme::AtomW4A4 => 4.25,
        }
    }

    /// KV-cache storage precision.
    pub fn kv_bits(self) -> f64 {
        match self {
            SimScheme::Fp16 | SimScheme::W4A16 => 16.0,
            SimScheme::W8A8 => 8.0,
            SimScheme::AtomW4A4 => 4.0,
        }
    }

    /// Compute pipeline of the dense layers.
    pub fn compute(self) -> ComputeKind {
        match self {
            // W4A16 dequantizes to FP16 before the MMA (§3): FP16 compute.
            SimScheme::Fp16 | SimScheme::W4A16 => ComputeKind::Fp16Tensor,
            SimScheme::W8A8 => ComputeKind::Int8Fused,
            SimScheme::AtomW4A4 => ComputeKind::Int4Atom,
        }
    }

    /// Extra elementwise streams for quantization epilogues (reorder +
    /// dynamic quantization, fused into prior operators; §4.1 reports
    /// <0.5% of runtime — one extra streamed pass models it).
    pub fn epilogue_streams(self) -> f64 {
        match self {
            SimScheme::Fp16 | SimScheme::W4A16 => 0.0,
            SimScheme::W8A8 => 1.0,
            SimScheme::AtomW4A4 => 1.0,
        }
    }
}

/// Which phase of an iteration is being costed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// One token per sequence.
    Decode,
    /// `q_len` prompt tokens per sequence.
    Prefill {
        /// Prompt tokens processed this iteration.
        q_len: usize,
    },
}

impl Phase {
    fn q_len(self) -> usize {
        match self {
            Phase::Decode => 1,
            Phase::Prefill { q_len } => q_len,
        }
    }
}

/// The operator list of one iteration over a batch of `batch` sequences
/// whose KV caches average `kv_len` tokens.
pub fn iteration_ops(
    config: &LlamaGpuConfig,
    scheme: SimScheme,
    batch: usize,
    kv_len: usize,
    phase: Phase,
) -> Vec<(OpClass, Op)> {
    let q = phase.q_len();
    let m = batch * q; // batched tokens entering dense layers (§3)
    let d = config.dim;
    let f = config.ffn_dim;
    let compute = scheme.compute();
    let wb = scheme.weight_bits();
    let ab = scheme.act_bits();
    let mut ops = Vec::new();
    let gemm = |n: usize, k: usize| Op::Gemm {
        m,
        n,
        k,
        weight_bits: wb,
        act_bits: ab,
        compute,
    };
    for _ in 0..config.layers {
        // Pre-attention norm (+ fused reorder/quant epilogue).
        ops.push((
            OpClass::Other,
            Op::Elementwise {
                tokens: m,
                dim: d,
                streams: 2.0 + scheme.epilogue_streams(),
            },
        ));
        // QKV generation and O projection (dense).
        ops.push((OpClass::Dense, gemm(3 * d, d)));
        ops.push((OpClass::Dense, gemm(d, d)));
        // Self-attention over the KV cache.
        ops.push((
            OpClass::Attention,
            Op::Attention {
                batch,
                heads: config.heads,
                head_dim: config.head_dim(),
                kv_len: kv_len + q,
                q_len: q,
                kv_bits: scheme.kv_bits(),
            },
        ));
        // Pre-MLP norm (+ epilogue).
        ops.push((
            OpClass::Other,
            Op::Elementwise {
                tokens: m,
                dim: d,
                streams: 2.0 + scheme.epilogue_streams(),
            },
        ));
        // SwiGLU MLP: gate+up then down.
        ops.push((OpClass::Dense, gemm(2 * f, d)));
        ops.push((OpClass::Dense, gemm(d, f)));
    }
    // Final norm + LM head (always FP16 in the paper's serving stack).
    ops.push((
        OpClass::Other,
        Op::Elementwise {
            tokens: m,
            dim: d,
            streams: 2.0,
        },
    ));
    ops.push((
        OpClass::Other,
        Op::Gemm {
            m,
            n: config.vocab,
            k: d,
            weight_bits: 16.0,
            act_bits: 16.0,
            compute: ComputeKind::Fp16Tensor,
        },
    ));
    ops
}

/// Operator classes of the Fig. 3 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Batched dense GEMMs (QKV, O, MLP).
    Dense,
    /// Self-attention over the KV cache.
    Attention,
    /// Norms, residuals, sampling, quantization epilogues, LM head.
    Other,
}

/// Aggregated iteration timing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Dense-layer seconds.
    pub dense_s: f64,
    /// Self-attention seconds.
    pub attention_s: f64,
    /// Everything else.
    pub other_s: f64,
}

impl Breakdown {
    /// Total iteration latency.
    pub fn total_s(&self) -> f64 {
        self.dense_s + self.attention_s + self.other_s
    }

    /// Fraction of time in dense + attention (the >90% claim of Fig. 3).
    pub fn bottleneck_fraction(&self) -> f64 {
        (self.dense_s + self.attention_s) / self.total_s()
    }
}

/// Costs one iteration and aggregates by class.
pub fn iteration_breakdown(
    config: &LlamaGpuConfig,
    scheme: SimScheme,
    batch: usize,
    kv_len: usize,
    phase: Phase,
    hw: &HardwareProfile,
) -> Breakdown {
    let mut b = Breakdown {
        dense_s: 0.0,
        attention_s: 0.0,
        other_s: 0.0,
    };
    for (class, op) in iteration_ops(config, scheme, batch, kv_len, phase) {
        let t = op_time(&op, hw).seconds();
        match class {
            OpClass::Dense => b.dense_s += t,
            OpClass::Attention => b.attention_s += t,
            OpClass::Other => b.other_s += t,
        }
    }
    b
}

/// Convenience: the per-operator time of one iteration (used by the figure
/// binaries for detailed dumps).
pub fn iteration_times(
    config: &LlamaGpuConfig,
    scheme: SimScheme,
    batch: usize,
    kv_len: usize,
    phase: Phase,
    hw: &HardwareProfile,
) -> Vec<(OpClass, OpTime)> {
    iteration_ops(config, scheme, batch, kv_len, phase)
        .into_iter()
        .map(|(c, op)| (c, op_time(&op, hw)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_dense_and_attention_dominate() {
        // Fig. 3: dense + self-attention account for over 90% of the time
        // across batch sizes.
        let hw = HardwareProfile::rtx4090();
        let cfg = LlamaGpuConfig::llama7b();
        for batch in [8, 32, 128, 256] {
            let b = iteration_breakdown(&cfg, SimScheme::Fp16, batch, 1024, Phase::Decode, &hw);
            assert!(
                b.bottleneck_fraction() > 0.9,
                "batch {batch}: bottleneck fraction {}",
                b.bottleneck_fraction()
            );
        }
    }

    #[test]
    fn attention_share_grows_with_batch() {
        // Fig. 3's visible trend: self-attention (KV traffic) takes an
        // increasing share as batch grows.
        let hw = HardwareProfile::rtx4090();
        let cfg = LlamaGpuConfig::llama7b();
        let share = |batch| {
            let b = iteration_breakdown(&cfg, SimScheme::Fp16, batch, 1024, Phase::Decode, &hw);
            b.attention_s / b.total_s()
        };
        assert!(share(256) > share(8));
    }

    #[test]
    fn atom_iteration_faster_than_all_baselines() {
        let hw = HardwareProfile::rtx4090();
        let cfg = LlamaGpuConfig::llama7b();
        let total = |s| {
            iteration_breakdown(&cfg, s, 64, 1024, Phase::Decode, &hw).total_s()
        };
        let fp16 = total(SimScheme::Fp16);
        let w4a16 = total(SimScheme::W4A16);
        let w8a8 = total(SimScheme::W8A8);
        let atom = total(SimScheme::AtomW4A4);
        assert!(atom < w8a8 && w8a8 < fp16, "{atom} {w8a8} {fp16}");
        assert!(atom < w4a16, "{atom} vs {w4a16}");
    }

    #[test]
    fn w4a16_good_at_small_batch_bad_at_large() {
        // The crossover the paper's Fig. 11a shows.
        let hw = HardwareProfile::rtx4090();
        let cfg = LlamaGpuConfig::llama7b();
        let ratio = |batch| {
            let f = iteration_breakdown(&cfg, SimScheme::Fp16, batch, 512, Phase::Decode, &hw);
            let w = iteration_breakdown(&cfg, SimScheme::W4A16, batch, 512, Phase::Decode, &hw);
            f.dense_s / w.dense_s
        };
        assert!(ratio(1) > 2.0, "weight-only should win at batch 1");
        assert!(ratio(512) < 1.1, "weight-only gains vanish at batch 512");
    }

    #[test]
    fn prefill_is_compute_heavy() {
        let hw = HardwareProfile::rtx4090();
        let cfg = LlamaGpuConfig::llama7b();
        let decode = iteration_breakdown(&cfg, SimScheme::Fp16, 8, 512, Phase::Decode, &hw);
        let prefill = iteration_breakdown(
            &cfg,
            SimScheme::Fp16,
            8,
            0,
            Phase::Prefill { q_len: 512 },
            &hw,
        );
        // Prefill does 512x the dense FLOPs of a decode step; the decode
        // step is memory bound on weights, so the latency gap is smaller
        // but still large.
        assert!(prefill.dense_s > decode.dense_s * 10.0);
    }

    #[test]
    fn op_list_shape() {
        let cfg = LlamaGpuConfig::llama7b();
        let ops = iteration_ops(&cfg, SimScheme::AtomW4A4, 4, 128, Phase::Decode);
        // 7 ops per layer (2 norms, 4 GEMMs, attention) + 2 tail ops.
        assert_eq!(ops.len(), cfg.layers * 7 + 2);
    }
}
