//! Roofline GPU cost model for the Atom reproduction.
//!
//! The paper's efficiency claims (Figs. 3, 4, 10, 11 and the §5.4.2 kernel
//! ablation) were measured on an RTX 4090 with INT4 tensor cores — hardware
//! this reproduction does not have. The paper itself argues its design with
//! a roofline model (Fig. 4), so that is exactly what this crate builds:
//!
//! - [`hardware`] — device profiles (published A100 / RTX 4090 constants).
//! - [`cost`] — per-operator latency under `max(compute, memory)` with
//!   kernel-efficiency factors calibrated once against the paper's §5.4.2
//!   numbers (pure INT4 ≈ 980 TOPS, +mixed-precision ≈ 900, +group fusion ≈
//!   770 on the 4090).
//! - [`graph`] — the Llama-7B decode/prefill operator graph per iteration,
//!   under each serving scheme (FP16, W4A16, W8A8, Atom W4A4).
//! - [`memory`] — weight + paged-KV memory accounting, giving the maximum
//!   batch size under a fixed memory budget (Fig. 10c).
//! - [`roofline`] — arithmetic-intensity / attainable-throughput points
//!   (Fig. 4).
//! - [`ablation`] — the §5.4.2 fused-kernel and reorder ablations.
//!
//! Everything is deterministic arithmetic; no randomness, no wall clocks.

#![forbid(unsafe_code)]
pub mod ablation;
pub mod cost;
pub mod graph;
pub mod hardware;
pub mod memory;
pub mod record;
pub mod roofline;
pub mod tp;

pub use cost::{op_time, Op, OpTime};
pub use graph::{iteration_breakdown, iteration_ops, Breakdown, LlamaGpuConfig, OpClass, Phase, SimScheme};
pub use hardware::HardwareProfile;
pub use memory::MemoryModel;
pub use record::record_iteration;
pub use tp::TpConfig;
