//! Per-operator roofline cost model.
//!
//! Every operator's latency is `max(compute_time, memory_time)` — the
//! roofline the paper uses in Fig. 4 — with per-kernel efficiency factors.
//! The efficiencies are calibrated once against the paper's own kernel
//! measurements (§5.4.2: pure INT4 GEMM ≈ 980 TOPS on the 4090, fused
//! mixed-precision ≈ 900, fused group dequantization ≈ 770; FP16 cuBLAS at
//! ~75% of peak) and then *never touched per experiment* — all figure
//! shapes emerge from the model.

use crate::hardware::HardwareProfile;
use serde::{Deserialize, Serialize};

/// Compute pipelines an operator can run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComputeKind {
    /// FP16 tensor cores (cuBLAS-style GEMM).
    Fp16Tensor,
    /// INT8 tensor cores with fused dequantization.
    Int8Fused,
    /// INT4 tensor cores, no quantization machinery (the §5.4.2 "pure"
    /// baseline).
    Int4Pure,
    /// INT4 with fused mixed-precision (INT8 outlier block).
    Int4Mixed,
    /// Full Atom pipeline: INT4 + mixed precision + fused group
    /// dequantization.
    Int4Atom,
    /// FP32 CUDA cores (elementwise epilogues).
    Fp32Cuda,
}

impl ComputeKind {
    /// Effective sustained throughput in T(FL)OPS on `hw`.
    pub fn effective_tops(self, hw: &HardwareProfile) -> f64 {
        match self {
            // cuBLAS FP16 GEMM sustains ~75% of tensor peak.
            ComputeKind::Fp16Tensor => 0.75 * hw.fp16_tflops,
            // The paper's own W8A8 fused kernel (~62% — calibrated so the
            // batch-512 Atom/INT8 speedup lands at the reported 1.9x).
            ComputeKind::Int8Fused => 0.62 * hw.int8_tops,
            // §5.4.2: 980 / 1321 TOPS on the 4090.
            ComputeKind::Int4Pure => 0.742 * hw.int4_tops,
            // §5.4.2: 900 TOPS — 8% overhead from the INT8 outlier block.
            ComputeKind::Int4Mixed => 0.681 * hw.int4_tops,
            // §5.4.2: 770 TOPS with fused group dequantization.
            ComputeKind::Int4Atom => 0.583 * hw.int4_tops,
            ComputeKind::Fp32Cuda => 0.85 * hw.fp32_tflops,
        }
    }
}

/// One GPU operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Dense GEMM `m x k  @  k x n` with weights of `weight_bits` and the
    /// given compute pipeline. Activation operands are 16-bit for
    /// `Fp16Tensor`, else `act_bits`.
    Gemm {
        /// Rows (batched tokens).
        m: usize,
        /// Output features.
        n: usize,
        /// Input features.
        k: usize,
        /// Stored weight precision (memory side).
        weight_bits: f64,
        /// Activation precision crossing memory (memory side).
        act_bits: f64,
        /// Compute pipeline.
        compute: ComputeKind,
    },
    /// Batched decode self-attention: per sequence, `q_len` queries against
    /// a `kv_len`-token cache. Cannot batch across requests (§3) — memory
    /// bound on KV bytes.
    Attention {
        /// Number of sequences.
        batch: usize,
        /// Attention heads.
        heads: usize,
        /// Head dimension.
        head_dim: usize,
        /// Cached tokens per sequence.
        kv_len: usize,
        /// Query tokens per sequence (1 for decode).
        q_len: usize,
        /// KV-cache storage precision.
        kv_bits: f64,
    },
    /// Elementwise pass over `tokens x dim` values (norms, residuals,
    /// quantize/reorder epilogues): `reads + writes` 16-bit streams.
    Elementwise {
        /// Number of token rows.
        tokens: usize,
        /// Hidden width.
        dim: usize,
        /// Total streamed copies of the tensor (e.g. 2.0 = one read + one
        /// write).
        streams: f64,
    },
}

/// Cost breakdown of one operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpTime {
    /// Compute-limited time, seconds.
    pub compute_s: f64,
    /// Memory-limited time, seconds.
    pub memory_s: f64,
    /// Total operations (FLOPs or int ops).
    pub ops: f64,
    /// Total bytes moved.
    pub bytes: f64,
}

impl OpTime {
    /// Roofline latency: the binding constraint.
    pub fn seconds(&self) -> f64 {
        self.compute_s.max(self.memory_s)
    }

    /// Whether the operator is compute bound.
    pub fn compute_bound(&self) -> bool {
        self.compute_s >= self.memory_s
    }

    /// Arithmetic intensity in ops per byte.
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            return f64::INFINITY;
        }
        self.ops / self.bytes
    }

    /// Achieved throughput in T(FL)OPS at the roofline latency.
    pub fn achieved_tops(&self) -> f64 {
        self.ops / self.seconds() / 1e12
    }
}

/// Costs one operator on `hw`.
pub fn op_time(op: &Op, hw: &HardwareProfile) -> OpTime {
    match *op {
        Op::Gemm {
            m,
            n,
            k,
            weight_bits,
            act_bits,
            compute,
        } => {
            let ops = 2.0 * m as f64 * n as f64 * k as f64;
            let weight_bytes = n as f64 * k as f64 * weight_bits / 8.0;
            let act_in = m as f64 * k as f64 * act_bits / 8.0;
            // Output accumulates in FP16.
            let act_out = m as f64 * n as f64 * 2.0;
            let bytes = weight_bytes + act_in + act_out;
            OpTime {
                compute_s: ops / (compute.effective_tops(hw) * 1e12),
                memory_s: hw.mem_seconds(bytes),
                ops,
                bytes,
            }
        }
        Op::Attention {
            batch,
            heads,
            head_dim,
            kv_len,
            q_len,
            kv_bits,
        } => {
            let b = batch as f64;
            let h = heads as f64;
            let d = head_dim as f64;
            let s = kv_len as f64;
            let q = q_len as f64;
            // QK^T and PV: 2 GEMVs of s*d per head per query.
            let ops = b * h * q * (2.0 * s * d * 2.0);
            // KV bytes dominate; Q and O are q*d.
            let kv_bytes = b * h * s * d * 2.0 * kv_bits / 8.0;
            let qo_bytes = b * h * q * d * 2.0 * 2.0;
            let bytes = kv_bytes + qo_bytes;
            // Attention arithmetic runs on FP16 units after dequantize-on-
            // load (§4.4).
            OpTime {
                compute_s: ops / (ComputeKind::Fp16Tensor.effective_tops(hw) * 1e12),
                memory_s: hw.mem_seconds(bytes),
                ops,
                bytes,
            }
        }
        Op::Elementwise { tokens, dim, streams } => {
            let values = tokens as f64 * dim as f64;
            let bytes = values * 2.0 * streams;
            let ops = values * streams;
            OpTime {
                compute_s: ops / (ComputeKind::Fp32Cuda.effective_tops(hw) * 1e12),
                memory_s: hw.mem_seconds(bytes),
                ops,
                bytes,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llama7b_gemm(m: usize, compute: ComputeKind, wbits: f64, abits: f64) -> Op {
        Op::Gemm {
            m,
            n: 4096,
            k: 4096,
            weight_bits: wbits,
            act_bits: abits,
            compute,
        }
    }

    #[test]
    fn small_batch_gemm_is_memory_bound() {
        let hw = HardwareProfile::rtx4090();
        let t = op_time(&llama7b_gemm(1, ComputeKind::Fp16Tensor, 16.0, 16.0), &hw);
        assert!(!t.compute_bound(), "GEMV must be memory bound");
        let t512 = op_time(&llama7b_gemm(512, ComputeKind::Fp16Tensor, 16.0, 16.0), &hw);
        assert!(t512.compute_bound(), "batch-512 GEMM must be compute bound");
    }

    #[test]
    fn weight_only_helps_only_when_memory_bound() {
        // The Fig. 4b / Fig. 11a story: W4A16 wins at batch 1, loses at
        // batch 512 because compute stays FP16.
        let hw = HardwareProfile::rtx4090();
        let fp16_small = op_time(&llama7b_gemm(1, ComputeKind::Fp16Tensor, 16.0, 16.0), &hw);
        let w4a16_small = op_time(&llama7b_gemm(1, ComputeKind::Fp16Tensor, 4.0, 16.0), &hw);
        assert!(w4a16_small.seconds() < fp16_small.seconds() / 2.5);

        let fp16_big = op_time(&llama7b_gemm(512, ComputeKind::Fp16Tensor, 16.0, 16.0), &hw);
        let w4a16_big = op_time(&llama7b_gemm(512, ComputeKind::Fp16Tensor, 4.0, 16.0), &hw);
        assert!(w4a16_big.seconds() > fp16_big.seconds() * 0.95);
    }

    #[test]
    fn atom_gemm_speedups_match_paper_fig11a() {
        // Fig. 11a at batch 512: Atom 3.4x over FP16, 1.9x over INT8.
        let hw = HardwareProfile::rtx4090();
        let fp16 = op_time(&llama7b_gemm(512, ComputeKind::Fp16Tensor, 16.0, 16.0), &hw).seconds();
        let int8 = op_time(&llama7b_gemm(512, ComputeKind::Int8Fused, 8.0, 8.0), &hw).seconds();
        let atom = op_time(&llama7b_gemm(512, ComputeKind::Int4Atom, 4.0, 4.0), &hw).seconds();
        let vs_fp16 = fp16 / atom;
        let vs_int8 = int8 / atom;
        assert!((2.8..4.0).contains(&vs_fp16), "Atom vs FP16: {vs_fp16}");
        assert!((1.6..2.2).contains(&vs_int8), "Atom vs INT8: {vs_int8}");
    }

    #[test]
    fn attention_scales_with_kv_bits() {
        // Fig. 11b: KV bits reduce attention time proportionally in the
        // memory-bound regime (3.5x FP16->INT4 at large batch).
        let hw = HardwareProfile::rtx4090();
        let att = |bits: f64| {
            op_time(
                &Op::Attention {
                    batch: 128,
                    heads: 32,
                    head_dim: 128,
                    kv_len: 1024,
                    q_len: 1,
                    kv_bits: bits,
                },
                &hw,
            )
            .seconds()
        };
        let r16_4 = att(16.0) / att(4.0);
        let r8_4 = att(8.0) / att(4.0);
        assert!((3.0..4.0).contains(&r16_4), "16->4 ratio {r16_4}");
        assert!((1.7..2.1).contains(&r8_4), "8->4 ratio {r8_4}");
    }

    #[test]
    fn attention_is_memory_bound() {
        let hw = HardwareProfile::rtx4090();
        let t = op_time(
            &Op::Attention {
                batch: 64,
                heads: 32,
                head_dim: 128,
                kv_len: 1024,
                q_len: 1,
                kv_bits: 16.0,
            },
            &hw,
        );
        assert!(!t.compute_bound());
    }

    #[test]
    fn intensity_and_throughput_consistent() {
        let hw = HardwareProfile::a100();
        let t = op_time(&llama7b_gemm(256, ComputeKind::Fp16Tensor, 16.0, 16.0), &hw);
        assert!(t.intensity() > 0.0);
        assert!(t.achieved_tops() <= ComputeKind::Fp16Tensor.effective_tops(&hw) + 1e-9);
    }

    #[test]
    fn section_542_tops_ladder() {
        // The calibration targets themselves: 980 / 900 / 770 TOPS and the
        // "fused kernel still outperforms the theoretical limit of INT8
        // throughput by nearly 18%" claim.
        let hw = HardwareProfile::rtx4090();
        let pure = ComputeKind::Int4Pure.effective_tops(&hw);
        let mixed = ComputeKind::Int4Mixed.effective_tops(&hw);
        let atom = ComputeKind::Int4Atom.effective_tops(&hw);
        assert!((pure - 980.0).abs() < 15.0, "pure {pure}");
        assert!((mixed - 900.0).abs() < 15.0, "mixed {mixed}");
        assert!((atom - 770.0).abs() < 15.0, "atom {atom}");
        let vs_int8_limit = atom / hw.int8_tops;
        assert!((1.10..1.25).contains(&vs_int8_limit), "{vs_int8_limit}");
    }
}
