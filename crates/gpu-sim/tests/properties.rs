//! Property-based tests of the roofline cost model: latencies must be
//! positive, monotone in work, and consistent between compute and memory
//! accounting.

use atom_gpu_sim::cost::ComputeKind;
use atom_gpu_sim::graph::iteration_breakdown;
use atom_gpu_sim::{op_time, HardwareProfile, LlamaGpuConfig, MemoryModel, Op, Phase, SimScheme};
use proptest::prelude::*;

fn schemes() -> [SimScheme; 4] {
    SimScheme::all()
}

proptest! {
    #[test]
    fn gemm_time_positive_and_monotone_in_m(
        m in 1usize..512,
        n in 64usize..4096,
        k in 64usize..4096,
    ) {
        let hw = HardwareProfile::rtx4090();
        let t = |m| {
            op_time(
                &Op::Gemm {
                    m,
                    n,
                    k,
                    weight_bits: 16.0,
                    act_bits: 16.0,
                    compute: ComputeKind::Fp16Tensor,
                },
                &hw,
            )
            .seconds()
        };
        prop_assert!(t(m) > 0.0);
        prop_assert!(t(2 * m) >= t(m));
    }

    #[test]
    fn attention_monotone_in_kv_len_and_bits(
        batch in 1usize..256,
        kv_len in 16usize..4096,
    ) {
        let hw = HardwareProfile::a100();
        let t = |kv_len, bits: f64| {
            op_time(
                &Op::Attention {
                    batch,
                    heads: 32,
                    head_dim: 128,
                    kv_len,
                    q_len: 1,
                    kv_bits: bits,
                },
                &hw,
            )
            .seconds()
        };
        prop_assert!(t(kv_len, 16.0) >= t(kv_len, 4.0));
        prop_assert!(t(2 * kv_len, 8.0) >= t(kv_len, 8.0));
    }

    #[test]
    fn iteration_time_monotone_in_batch(batch in 1usize..128, scheme_idx in 0usize..4) {
        let hw = HardwareProfile::rtx4090();
        let cfg = LlamaGpuConfig::llama7b();
        let scheme = schemes()[scheme_idx];
        let t = |b| iteration_breakdown(&cfg, scheme, b, 512, Phase::Decode, &hw).total_s();
        prop_assert!(t(batch) > 0.0);
        prop_assert!(t(batch * 2) >= t(batch) * 0.999);
        // Throughput (batch/latency) must not shrink with batch (the
        // batching effect of §3).
        prop_assert!((2.0 * batch as f64) / t(batch * 2) >= batch as f64 / t(batch) * 0.999);
    }

    #[test]
    fn atom_never_slower_than_fp16(batch in 1usize..256, kv_len in 64usize..2048) {
        let hw = HardwareProfile::rtx4090();
        let cfg = LlamaGpuConfig::llama7b();
        let fp16 = iteration_breakdown(&cfg, SimScheme::Fp16, batch, kv_len, Phase::Decode, &hw);
        let atom = iteration_breakdown(&cfg, SimScheme::AtomW4A4, batch, kv_len, Phase::Decode, &hw);
        prop_assert!(atom.total_s() <= fp16.total_s());
        prop_assert!(atom.attention_s <= fp16.attention_s);
        prop_assert!(atom.dense_s <= fp16.dense_s);
    }

    #[test]
    fn max_batch_monotone_in_memory_and_scheme(ctx in 64usize..4096) {
        let cfg = LlamaGpuConfig::llama7b();
        let small = MemoryModel::new(cfg, SimScheme::AtomW4A4, 16 << 30);
        let large = MemoryModel::new(cfg, SimScheme::AtomW4A4, 24 << 30);
        prop_assert!(large.max_batch(ctx) >= small.max_batch(ctx));
        let fp16 = MemoryModel::new(cfg, SimScheme::Fp16, 24 << 30);
        prop_assert!(large.max_batch(ctx) >= fp16.max_batch(ctx));
    }

    #[test]
    fn op_time_roofline_consistency(m in 1usize..600) {
        // seconds() is exactly max(compute, memory), and achieved TOPS never
        // exceeds the effective peak.
        let hw = HardwareProfile::a100();
        let op = Op::Gemm {
            m,
            n: 4096,
            k: 4096,
            weight_bits: 4.0,
            act_bits: 4.0,
            compute: ComputeKind::Int4Atom,
        };
        let t = op_time(&op, &hw);
        prop_assert!((t.seconds() - t.compute_s.max(t.memory_s)).abs() < 1e-15);
        prop_assert!(t.achieved_tops() <= ComputeKind::Int4Atom.effective_tops(&hw) * (1.0 + 1e-9));
    }
}
