//! Metric primitives: counters, gauges, log-bucketed histograms, and the
//! registry that names them.
//!
//! All primitives are updated with relaxed atomics so concurrent recording
//! never blocks; the registry itself uses a read-write lock only for the
//! name → metric lookup (creation takes the write lock once per name).
//! Snapshots are plain owned data and merge associatively, so per-thread or
//! per-process snapshots can be combined in any order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of identity buckets covering values `0..SUB_BUCKETS`.
const SUB_BUCKETS: u64 = 8;
/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 3;
/// Total bucket count: 8 identity buckets + 61 octaves × 8 sub-buckets.
pub const HISTOGRAM_BUCKETS: usize = 8 + 61 * 8;

/// Monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `v` to the counter.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by a signed delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Maps a value to its bucket index.
///
/// Values below 8 get identity buckets; larger values get 8 sub-buckets per
/// power of two, bounding the relative width of every bucket by 1/8
/// (12.5%), which in turn bounds quantile estimation error.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let octave = msb - SUB_BITS;
        let sub = ((v >> octave) & (SUB_BUCKETS - 1)) as usize;
        (octave as usize) * 8 + sub + SUB_BUCKETS as usize
    }
}

/// Inclusive `[lower, upper]` value range covered by bucket `idx`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB_BUCKETS as usize {
        (idx as u64, idx as u64)
    } else {
        let octave = ((idx - SUB_BUCKETS as usize) / 8) as u32;
        let sub = ((idx - SUB_BUCKETS as usize) % 8) as u64;
        let lower = (SUB_BUCKETS + sub) << octave;
        let width = 1u64 << octave;
        // `width - 1` first: the top bucket's upper bound is exactly
        // `u64::MAX`, so `lower + width` would overflow.
        (lower, lower + (width - 1))
    }
}

/// Lock-free log-bucketed histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        let buckets: Vec<AtomicU64> = (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Consistent-enough copy of the current state (individual fields are
    /// read relaxed; under concurrent writes the snapshot may straddle a
    /// recording, which quantile estimation tolerates).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Owned, mergeable copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (length [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merges another snapshot into this one. Merging is associative and
    /// commutative, so per-thread snapshots combine in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`).
    ///
    /// Returns the upper bound of the bucket holding the quantile sample,
    /// clamped to the observed `[min, max]`, so the estimate is exact for
    /// values below 8 and within 12.5% of the true sample otherwise.
    /// Returns `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the quantile sample, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, upper) = bucket_bounds(idx);
                return Some(upper.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th percentile estimate.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Mean of all samples (exact, from `sum`/`count`).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Estimates the fraction of samples `<= v` — the empirical CDF at
    /// `v`, used for SLO-attainment reporting ("what share of requests met
    /// the TTFT target?").
    ///
    /// Buckets entirely at or below `v` count fully; the bucket straddling
    /// `v` contributes the linearly interpolated share of its width that
    /// lies at or below `v` (exact for identity buckets, within the 12.5%
    /// bucket-width bound otherwise). Returns `None` for an empty
    /// histogram.
    pub fn fraction_at_or_below(&self, v: u64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if v >= self.max {
            return Some(1.0);
        }
        let mut below = 0.0f64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lower, upper) = bucket_bounds(idx);
            if upper <= v {
                below += c as f64;
            } else if lower <= v {
                // Straddling bucket: interpolate within its inclusive
                // [lower, upper] value range.
                let width = (upper - lower + 1) as f64;
                let covered = (v - lower + 1) as f64;
                below += c as f64 * (covered / width);
            } else {
                break; // buckets are ordered by value
            }
        }
        Some((below / self.count as f64).clamp(0.0, 1.0))
    }
}

/// Named metric store. Cloning is cheap (shared handles).
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
}

fn get_or_create<M: Default>(map: &RwLock<BTreeMap<&'static str, Arc<M>>>, name: &'static str) -> Arc<M> {
    if let Some(m) = map.read().expect("registry lock").get(name) {
        return Arc::clone(m);
    }
    let mut w = map.write().expect("registry lock");
    Arc::clone(w.entry(name).or_default())
}

impl MetricsRegistry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Named counter, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        get_or_create(&self.inner.counters, name)
    }

    /// Named gauge, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        get_or_create(&self.inner.gauges, name)
    }

    /// Named histogram, created on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        get_or_create(&self.inner.histograms, name)
    }

    /// Owned copy of every metric, keyed by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .inner
                .counters
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: self
                .inner
                .gauges // lock order: counters → gauges → histograms (snapshot is the only multi-lock site; writers take exactly one map lock)
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            histograms: self
                .inner
                .histograms // lock order: counters → gauges → histograms
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }
}

/// Owned copy of a [`MetricsRegistry`] at one point in time.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Sum of one histogram's samples, 0 when absent.
    pub fn hist_sum(&self, name: &str) -> u64 {
        self.histograms.get(name).map_or(0, |h| h.sum)
    }

    /// A counter's value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_roundtrips_bounds() {
        for v in [0u64, 1, 7, 8, 9, 15, 16, 100, 1_000, 123_456, u64::MAX / 2, u64::MAX] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} idx={idx} lo={lo} hi={hi}");
        }
        // Bucket ranges tile the u64 line in order.
        let mut expected_next = 0u64;
        for idx in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expected_next, "gap before bucket {idx}");
            expected_next = hi.wrapping_add(1);
        }
        assert_eq!(expected_next, 0, "buckets must cover all of u64");
    }

    #[test]
    fn bucket_relative_resolution() {
        for idx in 8..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            let width = (hi - lo) as f64;
            assert!(width / lo as f64 <= 0.125 + 1e-12, "bucket {idx} too wide");
        }
    }

    #[test]
    fn fraction_at_or_below_is_an_empirical_cdf() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        // Identity buckets (< 8) are exact.
        assert_eq!(s.fraction_at_or_below(0), Some(0.0));
        assert_eq!(s.fraction_at_or_below(4), Some(0.5));
        assert_eq!(s.fraction_at_or_below(7), Some(7.0 / 8.0));
        // At or beyond the observed max: everything attained.
        assert_eq!(s.fraction_at_or_below(100), Some(1.0));
        assert_eq!(s.fraction_at_or_below(u64::MAX), Some(1.0));
        // Between 7 and the 100-bucket, the interpolated value stays
        // monotone and inside (7/8, 1).
        let mid = s.fraction_at_or_below(50).expect("non-empty");
        assert!((7.0 / 8.0..1.0).contains(&mid), "mid={mid}");
        // Empty histogram has no CDF.
        assert_eq!(HistogramSnapshot::default().fraction_at_or_below(5), None);
    }

    #[test]
    fn fraction_at_or_below_is_monotone() {
        let h = Histogram::default();
        let mut x = 1u64;
        for _ in 0..64 {
            h.record(x % 10_000);
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        }
        let s = h.snapshot();
        let mut prev = 0.0;
        for v in (0..12_000).step_by(37) {
            let f = s.fraction_at_or_below(v).expect("non-empty");
            assert!(f >= prev - 1e-12, "CDF decreased at {v}: {f} < {prev}");
            prev = f;
        }
        assert_eq!(s.fraction_at_or_below(10_000), Some(1.0));
    }

    #[test]
    fn histogram_quantiles_small_values_exact() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 4, 5, 6, 7] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), Some(1));
        assert_eq!(s.p50(), Some(4));
        assert_eq!(s.quantile(1.0), Some(7));
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 28);
    }

    #[test]
    fn histogram_merge_matches_combined() {
        let a = Histogram::default();
        let b = Histogram::default();
        let all = Histogram::default();
        for v in 0..500u64 {
            let target = if v % 2 == 0 { &a } else { &b };
            target.record(v * v);
            all.record(v * v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn registry_reuses_metrics() {
        let r = MetricsRegistry::new();
        r.counter("x").add(2);
        r.counter("x").add(3);
        r.gauge("g").set(-7);
        r.histogram("h").record(42);
        let s = r.snapshot();
        assert_eq!(s.counter("x"), 5);
        assert_eq!(s.gauges["g"], -7);
        assert_eq!(s.histograms["h"].count, 1);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        assert_eq!(HistogramSnapshot::default().quantile(0.5), None);
    }
}
