//! Exporters: Prometheus text exposition, JSON, and Chrome `trace_event`.
//!
//! All three are string builders over snapshot data — no I/O here; callers
//! decide where the bytes go. JSON is emitted by a minimal escaper rather
//! than a serde format crate so the telemetry crate stays dependency-free.

use crate::metrics::MetricsSnapshot;
use crate::span::SpanEvent;
use std::fmt::Write as _;

/// Replaces characters Prometheus forbids in metric names (`.`, `-`) with
/// underscores.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

/// Renders a snapshot in the Prometheus text exposition format. Histograms
/// are rendered as summaries (quantile-labelled series plus `_sum` and
/// `_count`).
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, hist) in &snapshot.histograms {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} summary");
        for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
            if let Some(v) = hist.quantile(q) {
                let _ = writeln!(out, "{n}{{quantile=\"{label}\"}} {v}");
            }
        }
        let _ = writeln!(out, "{n}_sum {}", hist.sum);
        let _ = writeln!(out, "{n}_count {}", hist.count);
    }
    out
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Writes an f64 as JSON (finite values only; non-finite become null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders a snapshot as a JSON object:
/// `{"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
/// mean, min, p50, p90, p99, max}}}`. Bucket arrays are omitted — the JSON
/// export is for reports, not for re-merging.
pub fn json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    let mut first = true;
    for (name, value) in &snapshot.counters {
        let sep = if first { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {value}", json_escape(name));
        first = false;
    }
    out.push_str("\n  },\n  \"gauges\": {");
    let mut first = true;
    for (name, value) in &snapshot.gauges {
        let sep = if first { "" } else { "," };
        let _ = write!(out, "{sep}\n    \"{}\": {value}", json_escape(name));
        first = false;
    }
    out.push_str("\n  },\n  \"histograms\": {");
    let mut first = true;
    for (name, hist) in &snapshot.histograms {
        let sep = if first { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"min\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
            json_escape(name),
            hist.count,
            hist.sum,
            json_f64(hist.mean().unwrap_or(0.0)),
            if hist.count == 0 { 0 } else { hist.min },
            hist.p50().unwrap_or(0),
            hist.p90().unwrap_or(0),
            hist.p99().unwrap_or(0),
            hist.max,
        );
        first = false;
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Renders span events as a Chrome `trace_event` JSON document that loads
/// directly in `chrome://tracing` or <https://ui.perfetto.dev>. Timestamps
/// are microseconds relative to the tracer epoch; every event is a complete
/// ("ph":"X") duration event.
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}",
            json_escape(e.name),
            e.tid,
            json_f64(e.start_ns as f64 / 1_000.0),
            json_f64(e.dur_ns as f64 / 1_000.0),
        );
        let args: Vec<(&str, f64)> = e.args.iter().flatten().copied().collect();
        if !args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in args.iter().enumerate() {
                let sep = if j > 0 { "," } else { "" };
                let _ = write!(out, "{sep}\"{}\":{}", json_escape(k), json_f64(*v));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::span::{SpanGuard, Tracer};

    fn sample_snapshot() -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.counter("op.gemm.bytes").add(4096);
        r.gauge("engine.kv.used_blocks").set(17);
        let h = r.histogram("op.gemm.wall_ns");
        for v in [100u64, 200, 300, 400] {
            h.record(v);
        }
        r.snapshot()
    }

    #[test]
    fn prometheus_text_has_all_series() {
        let text = prometheus_text(&sample_snapshot());
        assert!(text.contains("# TYPE op_gemm_bytes counter"));
        assert!(text.contains("op_gemm_bytes 4096"));
        assert!(text.contains("engine_kv_used_blocks 17"));
        assert!(text.contains("op_gemm_wall_ns{quantile=\"0.5\"}"));
        assert!(text.contains("op_gemm_wall_ns_count 4"));
        assert!(text.contains("op_gemm_wall_ns_sum 1000"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let doc = json(&sample_snapshot());
        assert!(doc.contains("\"op.gemm.bytes\": 4096"));
        assert!(doc.contains("\"count\": 4"));
        // Balanced braces as a cheap structural check.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn chrome_trace_loads_fields() {
        let tracer = Tracer::default();
        drop(SpanGuard::start(&tracer, "gemm_w4a4", &[("bytes", 64.0)]));
        let doc = chrome_trace(&tracer.drain());
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"name\":\"gemm_w4a4\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"args\":{\"bytes\":64}"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(prom_name("op.gemm.wall_ns"), "op_gemm_wall_ns");
    }
}
