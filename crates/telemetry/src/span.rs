//! Scoped span tracing with thread-local buffering and a Chrome
//! `trace_event` exporter.
//!
//! A [`SpanGuard`] measures the wall time between its creation and drop and
//! records a complete ("ph":"X") event. Events are staged in a
//! thread-local buffer and flushed into the owning tracer's shared store in
//! batches, so the per-span cost on the hot path is an `Instant` read and a
//! `Vec::push`. The shared store is bounded: beyond the cap, events are
//! counted as dropped rather than accumulated.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Maximum key/value pairs attached to one span.
pub const MAX_SPAN_ARGS: usize = 2;

/// Thread-local events staged per tracer before a batched flush.
const FLUSH_BATCH: usize = 64;

/// One completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name (the Chrome trace "name" field).
    pub name: &'static str,
    /// Start offset from the tracer's epoch, ns.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
    /// Small per-process thread id (the Chrome trace "tid" field).
    pub tid: u64,
    /// Up to [`MAX_SPAN_ARGS`] numeric arguments.
    pub args: [Option<(&'static str, f64)>; MAX_SPAN_ARGS],
}

static NEXT_TRACER_ID: AtomicUsize = AtomicUsize::new(0);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    // Staged events per tracer instance id. Events for a tracer are only
    // flushed by the thread that staged them (on batch overflow or when
    // that thread calls `flush_thread`), so single-threaded workloads pay
    // one mutex lock per FLUSH_BATCH spans.
    static STAGED: RefCell<HashMap<usize, Vec<SpanEvent>>> = RefCell::new(HashMap::new());
}

/// Collects [`SpanEvent`]s for one telemetry instance.
#[derive(Debug)]
pub struct Tracer {
    id: usize,
    epoch: Instant,
    events: Mutex<Vec<SpanEvent>>,
    dropped: AtomicU64,
    cap: usize,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::with_capacity(1 << 20)
    }
}

impl Tracer {
    /// Tracer retaining at most `cap` events; later events count as
    /// dropped.
    pub fn with_capacity(cap: usize) -> Self {
        Tracer {
            id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            cap,
        }
    }

    /// Nanoseconds elapsed since this tracer's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records a completed span (hot path: staged thread-locally).
    pub fn record(&self, event: SpanEvent) {
        STAGED.with(|staged| {
            let mut staged = staged.borrow_mut();
            let buf = staged.entry(self.id).or_default();
            buf.push(event);
            if buf.len() >= FLUSH_BATCH {
                let batch = std::mem::take(buf);
                self.sink(batch);
            }
        });
    }

    /// Moves this thread's staged events for this tracer into the shared
    /// store. Exporters call this on their own thread; other threads'
    /// staged events flush when those threads hit a batch boundary.
    pub fn flush_thread(&self) {
        let batch = STAGED.with(|staged| staged.borrow_mut().remove(&self.id));
        if let Some(batch) = batch {
            self.sink(batch);
        }
    }

    fn sink(&self, batch: Vec<SpanEvent>) {
        let mut events = self.events.lock().expect("tracer lock");
        let room = self.cap.saturating_sub(events.len());
        if batch.len() > room {
            self.dropped.fetch_add((batch.len() - room) as u64, Ordering::Relaxed);
        }
        events.extend(batch.into_iter().take(room));
    }

    /// Flushes the calling thread and returns all retained events, clearing
    /// the store.
    pub fn drain(&self) -> Vec<SpanEvent> {
        self.flush_thread();
        std::mem::take(&mut *self.events.lock().expect("tracer lock"))
    }

    /// Events dropped because the store was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The calling thread's stable small id.
    pub fn current_thread_id() -> u64 {
        THREAD_ID.with(|t| *t)
    }
}

/// Live span; records a [`SpanEvent`] into its tracer on drop.
///
/// Obtained from `Telemetry::span` (usually via the `span!` macro). A guard
/// from a disabled telemetry instance holds no tracer and does nothing.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    state: Option<SpanState<'a>>,
}

#[derive(Debug)]
struct SpanState<'a> {
    tracer: &'a Tracer,
    name: &'static str,
    start: Instant,
    start_ns: u64,
    args: [Option<(&'static str, f64)>; MAX_SPAN_ARGS],
}

impl<'a> SpanGuard<'a> {
    /// A guard that records nothing (disabled telemetry).
    pub fn noop() -> Self {
        SpanGuard { state: None }
    }

    /// Starts a span on `tracer` with up to [`MAX_SPAN_ARGS`] arguments
    /// (extras are ignored).
    pub fn start(tracer: &'a Tracer, name: &'static str, args: &[(&'static str, f64)]) -> Self {
        let mut fixed = [None; MAX_SPAN_ARGS];
        for (slot, &arg) in fixed.iter_mut().zip(args) {
            *slot = Some(arg);
        }
        SpanGuard {
            state: Some(SpanState {
                tracer,
                name,
                start: Instant::now(),
                start_ns: tracer.now_ns(),
                args: fixed,
            }),
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            state.tracer.record(SpanEvent {
                name: state.name,
                start_ns: state.start_ns,
                dur_ns: state.start.elapsed().as_nanos() as u64,
                tid: Tracer::current_thread_id(),
                args: state.args,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop() {
        let tracer = Tracer::default();
        {
            let _g = SpanGuard::start(&tracer, "outer", &[("bytes", 128.0)]);
            let _inner = SpanGuard::start(&tracer, "inner", &[]);
        }
        let events = tracer.drain();
        assert_eq!(events.len(), 2);
        // Inner drops first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[1].args[0], Some(("bytes", 128.0)));
        assert!(events[1].dur_ns >= events[0].dur_ns);
    }

    #[test]
    fn noop_guard_records_nothing() {
        let tracer = Tracer::default();
        drop(SpanGuard::noop());
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn cap_bounds_memory() {
        let tracer = Tracer::with_capacity(10);
        for _ in 0..FLUSH_BATCH * 3 {
            drop(SpanGuard::start(&tracer, "s", &[]));
        }
        let events = tracer.drain();
        assert!(events.len() <= 10);
        assert!(tracer.dropped() > 0);
    }

    #[test]
    fn batches_flush_across_threads() {
        let tracer = std::sync::Arc::new(Tracer::default());
        let t2 = std::sync::Arc::clone(&tracer);
        std::thread::spawn(move || {
            for _ in 0..FLUSH_BATCH {
                drop(SpanGuard::start(&t2, "worker", &[]));
            }
        })
        .join()
        .expect("worker thread");
        let events = tracer.drain();
        assert_eq!(events.len(), FLUSH_BATCH);
        assert!(events.iter().all(|e| e.name == "worker"));
    }
}
