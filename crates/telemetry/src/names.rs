//! Canonical metric names.
//!
//! The measured path (CPU kernels + serve engine) and the simulated path
//! (gpu-sim cost model) record into **the same names** so their breakdowns
//! are directly comparable; the only difference is which registry instance
//! holds them. Naming scheme: `<subsystem>.<entity>.<unit>`, with `_ns`
//! histograms for wall time, `.bytes`/`.rows`/`.calls` counters for volume,
//! and `_steps` histograms for scheduler-clock latencies.

/// Wall time per GEMM call (histogram, ns). Covers the fused group-dequant
/// INT4/INT8 GEMM and the dense FP32 reference path.
pub const OP_GEMM_WALL_NS: &str = "op.gemm.wall_ns";
/// Bytes of operand data moved per GEMM call (counter).
pub const OP_GEMM_BYTES: &str = "op.gemm.bytes";
/// Activation rows processed by GEMM (counter).
pub const OP_GEMM_ROWS: &str = "op.gemm.rows";
/// GEMM invocations (counter).
pub const OP_GEMM_CALLS: &str = "op.gemm.calls";
/// GEMM calls served by the scalar reference kernel path (counter). Splits
/// `op.gemm.calls` by `KernelPath` so a report can show which
/// implementation actually ran.
pub const OP_GEMM_SCALAR_CALLS: &str = "op.gemm.path_scalar.calls";
/// GEMM calls served by the SWAR kernel path (counter).
pub const OP_GEMM_SWAR_CALLS: &str = "op.gemm.path_swar.calls";

/// Wall time per attention call (histogram, ns), including KV
/// dequantize-on-load.
pub const OP_ATTENTION_WALL_NS: &str = "op.attention.wall_ns";
/// Bytes of KV-cache data read per attention call (counter).
pub const OP_ATTENTION_BYTES: &str = "op.attention.bytes";
/// Attention invocations (counter).
pub const OP_ATTENTION_CALLS: &str = "op.attention.calls";
/// Attention calls served by the scalar reference kernel path (counter).
pub const OP_ATTENTION_SCALAR_CALLS: &str = "op.attention.path_scalar.calls";
/// Attention calls served by the SWAR kernel path (counter).
pub const OP_ATTENTION_SWAR_CALLS: &str = "op.attention.path_swar.calls";

/// Wall time spent in runtime (de)quantization epilogues — Atom §4.3's
/// dynamic per-group activation quantization plus channel reordering
/// (histogram, ns).
pub const OP_QUANT_WALL_NS: &str = "op.quant.wall_ns";
/// Quantization epilogue invocations (counter).
pub const OP_QUANT_CALLS: &str = "op.quant.calls";

/// Wall time of everything in an iteration that is neither GEMM, attention,
/// nor quantization — norms, activations, embeddings (histogram, ns). Only
/// the simulated path records this directly; the measured path derives it
/// as `model.forward − (gemm + attention + quant)`.
pub const OP_OTHER_WALL_NS: &str = "op.other.wall_ns";

/// Wall time per full model forward (histogram, ns).
pub const MODEL_FORWARD_WALL_NS: &str = "model.forward.wall_ns";

/// Wall time per engine scheduling step, inclusive of forwards (histogram,
/// ns).
pub const ENGINE_STEP_WALL_NS: &str = "engine.step.wall_ns";
/// Waiting-queue depth sampled once per step (histogram).
pub const ENGINE_QUEUE_DEPTH: &str = "engine.queue.depth";
/// KV pool blocks in use right now (gauge).
pub const ENGINE_KV_USED_BLOCKS: &str = "engine.kv.used_blocks";
/// KV pool capacity in blocks (gauge).
pub const ENGINE_KV_TOTAL_BLOCKS: &str = "engine.kv.total_blocks";
/// KV pool occupancy per step, in tenths of a percent 0..=1000
/// (histogram).
pub const ENGINE_KV_OCCUPANCY_PERMILLE: &str = "engine.kv.occupancy_permille";

/// Time to first token per finished request, in scheduler steps
/// (histogram).
pub const ENGINE_TTFT_STEPS: &str = "engine.request.ttft_steps";
/// Time per output token per finished request, in milli-steps (histogram;
/// 1000 = one step per token).
pub const ENGINE_TPOT_MILLISTEPS: &str = "engine.request.tpot_millisteps";

/// Preemption events (counter).
pub const ENGINE_PREEMPTIONS: &str = "engine.preemptions";
/// Admissions downgraded to quantized KV under pressure (counter).
pub const ENGINE_DEGRADED_ADMISSIONS: &str = "engine.degraded_admissions";
/// Faults injected into the engine that were observed by a request
/// (counter).
pub const ENGINE_FAULTS: &str = "engine.faults";
/// Terminal events by outcome (counters).
pub const ENGINE_TERMINAL_COMPLETED: &str = "engine.terminal.completed";
/// Requests that exceeded their deadline.
pub const ENGINE_TERMINAL_DEADLINE: &str = "engine.terminal.deadline_exceeded";
/// Requests cancelled by the client.
pub const ENGINE_TERMINAL_CANCELLED: &str = "engine.terminal.cancelled";
/// Requests that failed on an exhausted fault-retry budget.
pub const ENGINE_TERMINAL_FAILED: &str = "engine.terminal.failed";
/// Requests rejected at admission.
pub const ENGINE_TERMINAL_REJECTED: &str = "engine.terminal.rejected";

/// Admissions that attached a cached prefix run (counter).
pub const PREFIX_HITS: &str = "prefix.cache.hits";
/// Admissions that found no cached prefix for their prompt (counter).
pub const PREFIX_MISSES: &str = "prefix.cache.misses";
/// Cached prefix runs evicted — LRU pressure, cap enforcement, or flush
/// (counter).
pub const PREFIX_EVICTIONS: &str = "prefix.cache.evictions";
/// Copy-on-write forks of shared KV blocks (counter).
pub const PREFIX_COW_FORKS: &str = "prefix.kv.cow_forks";
/// Physical KV blocks currently referenced by more than one owner (gauge).
pub const PREFIX_SHARED_BLOCKS: &str = "prefix.kv.shared_blocks";
/// Time to first token for requests admitted with a cached prefix, in
/// scheduler steps (histogram) — compare against
/// [`ENGINE_TTFT_STEPS`] to see the cache-hit TTFT collapse.
pub const PREFIX_HIT_TTFT_STEPS: &str = "prefix.request.hit_ttft_steps";

/// Requests offered to the serving gateway, accepted or not (counter).
pub const GATEWAY_OFFERED: &str = "gateway.offered";
/// Offers accepted into a tenant queue (counter).
pub const GATEWAY_ACCEPTED: &str = "gateway.accepted";
/// Offers refused by a tenant's token bucket (counter).
pub const GATEWAY_REJECT_RATE_LIMITED: &str = "gateway.reject.rate_limited";
/// Offers refused because the tenant's bounded queue was full (counter).
pub const GATEWAY_REJECT_QUEUE_FULL: &str = "gateway.reject.queue_full";
/// Offers refused by a brownout tier (shed or reject-all) (counter).
pub const GATEWAY_REJECT_BROWNOUT: &str = "gateway.reject.brownout";
/// Offers refused because the gateway was draining (counter).
pub const GATEWAY_REJECT_DRAINING: &str = "gateway.reject.draining";
/// Offers refused by admission validation (degenerate or unservable)
/// (counter).
pub const GATEWAY_REJECT_INVALID: &str = "gateway.reject.invalid";
/// Engine attempts re-dispatched after a retryable terminal (counter).
pub const GATEWAY_RETRIES: &str = "gateway.retries";
/// Backoff delay assigned per retry, in ticks (histogram).
pub const GATEWAY_BACKOFF_TICKS: &str = "gateway.retry.backoff_ticks";
/// Accepted requests force-failed when the drain grace budget elapsed
/// (counter).
pub const GATEWAY_DRAIN_FORCED: &str = "gateway.drain.forced";
/// Gateway-level terminal events by outcome (counters; retries collapse
/// into one terminal per accepted request).
pub const GATEWAY_TERMINAL_COMPLETED: &str = "gateway.terminal.completed";
/// Accepted requests whose end-to-end deadline elapsed.
pub const GATEWAY_TERMINAL_DEADLINE: &str = "gateway.terminal.deadline_exceeded";
/// Accepted requests cancelled by the client.
pub const GATEWAY_TERMINAL_CANCELLED: &str = "gateway.terminal.cancelled";
/// Accepted requests that exhausted their retry budget or were drained.
pub const GATEWAY_TERMINAL_FAILED: &str = "gateway.terminal.failed";
/// Requests waiting in gateway tenant queues, sampled once per tick
/// (histogram).
pub const GATEWAY_QUEUE_DEPTH: &str = "gateway.queue.depth";
/// Circuit-breaker brownout tier: 0 normal, 1 degraded-KV, 2 shed
/// low-priority, 3 reject-all (gauge).
pub const GATEWAY_BREAKER_TIER: &str = "gateway.breaker.tier";
/// End-to-end time to first token per completed request, in gateway ticks
/// — includes gateway queueing, backoff, and every retried attempt
/// (histogram).
pub const GATEWAY_TTFT_TICKS: &str = "gateway.request.ttft_ticks";
/// End-to-end time per output token per completed request, in milli-ticks
/// (histogram; 1000 = one tick per token).
pub const GATEWAY_TPOT_MILLITICKS: &str = "gateway.request.tpot_milliticks";

/// Chunks dispatched into thread-pool parallel regions (counter).
pub const POOL_TASKS: &str = "pool.tasks";
/// Chunks waiting to execute when a parallel region dispatches (gauge;
/// returns to 0 when the region joins).
pub const POOL_QUEUE_DEPTH: &str = "pool.queue.depth";
/// Worker busy time over `threads x region wall`, in permille 0..=1000
/// (histogram) — 1000 means every worker was busy for the whole region.
pub const POOL_UTILIZATION_PERMILLE: &str = "pool.utilization_permille";
/// Wall time of one parallel region, dispatch to join (histogram, ns).
pub const POOL_REGION_WALL_NS: &str = "pool.region.wall_ns";

/// Span covering one full model forward pass.
pub const SPAN_MODEL_FORWARD: &str = "model_forward";
/// Span covering one attention layer inside a forward pass.
pub const SPAN_ATTENTION: &str = "attention";
/// Span covering one engine scheduling step.
pub const SPAN_ENGINE_STEP: &str = "engine_step";
/// Span covering the fused W4A4 GEMM kernel.
pub const SPAN_GEMM_W4A4: &str = "gemm_w4a4";
/// Span covering quantized-KV attention.
pub const SPAN_ATTENTION_QUANT_KV: &str = "attention_quant_kv";
/// Span covering the dequantize/requantize epilogue of a quantized linear.
pub const SPAN_QUANT_EPILOGUE: &str = "quant_epilogue";
/// Span covering one worker's share of a thread-pool parallel region.
pub const SPAN_POOL_WORKER: &str = "pool_worker";
