//! Zero-dependency observability for the Atom serving stack.
//!
//! Three pieces, one handle:
//!
//! * **Metrics** — counters, gauges, and log-bucketed mergeable histograms
//!   in a [`MetricsRegistry`] ([`metrics`]).
//! * **Spans** — scoped wall-time tracing via the [`span!`] macro, exported
//!   as Chrome `trace_event` JSON for `chrome://tracing`/Perfetto
//!   ([`mod@span`], [`export::chrome_trace`]).
//! * **Exporters** — Prometheus text and JSON renderings of a metrics
//!   snapshot ([`export`]).
//!
//! Instrumented code records through a [`Telemetry`] handle. The process
//! global ([`Telemetry::global`]) starts **disabled**: every hook first
//! checks one relaxed atomic and returns before touching clocks or locks,
//! so instrumentation costs nothing until [`Telemetry::enable_global`] is
//! called (typically by a bench binary). Tests that need isolation build
//! their own enabled instance with [`Telemetry::enabled`] instead of
//! sharing the global.
//!
//! Metric names are centralized in [`names`] and deliberately shared
//! between the measured CPU path and the gpu-sim cost model so the two
//! breakdowns line up key-for-key.
//!
//! ```
//! use atom_telemetry::{names, Telemetry};
//!
//! let t = Telemetry::enabled();
//! {
//!     let _timer = t.timer(names::OP_GEMM_WALL_NS);
//!     t.counter_add(names::OP_GEMM_BYTES, 4096);
//! } // timer records on drop
//! let snap = t.metrics().snapshot();
//! assert_eq!(snap.counter(names::OP_GEMM_BYTES), 4096);
//! assert_eq!(snap.histograms[names::OP_GEMM_WALL_NS].count, 1);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod names;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use span::{SpanEvent, SpanGuard, Tracer};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// One observability domain: an enabled/disabled switch, a metrics
/// registry, and a span tracer.
#[derive(Debug)]
pub struct Telemetry {
    enabled: AtomicBool,
    registry: MetricsRegistry,
    tracer: Tracer,
}

impl Telemetry {
    /// A disabled instance: every hook is a no-op until [`enable`] is
    /// called.
    ///
    /// [`enable`]: Telemetry::enable
    pub fn disabled() -> Self {
        Telemetry {
            enabled: AtomicBool::new(false),
            registry: MetricsRegistry::new(),
            tracer: Tracer::default(),
        }
    }

    /// An instance that records immediately.
    pub fn enabled() -> Self {
        let t = Telemetry::disabled();
        t.enable();
        t
    }

    /// The process-wide instance used by kernel and model instrumentation.
    /// Starts disabled.
    pub fn global() -> &'static Telemetry {
        static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
        GLOBAL.get_or_init(Telemetry::disabled)
    }

    /// Turns the global instance on (idempotent).
    pub fn enable_global() {
        Telemetry::global().enable();
    }

    /// Turns the global instance off (idempotent). In-flight guards from
    /// before the flip still record.
    pub fn disable_global() {
        Telemetry::global().disable();
    }

    /// Turns this instance on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns this instance off.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether hooks currently record. One relaxed load — this is the
    /// entire fast-path cost when disabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The metrics registry (recording through it bypasses the
    /// enabled check; prefer the hook methods below in instrumented code).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The span tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Adds to a named counter.
    #[inline]
    pub fn counter_add(&self, name: &'static str, v: u64) {
        if self.is_enabled() {
            self.registry.counter(name).add(v);
        }
    }

    /// Sets a named gauge.
    #[inline]
    pub fn gauge_set(&self, name: &'static str, v: i64) {
        if self.is_enabled() {
            self.registry.gauge(name).set(v);
        }
    }

    /// Records a sample into a named histogram.
    #[inline]
    pub fn record(&self, name: &'static str, v: u64) {
        if self.is_enabled() {
            self.registry.histogram(name).record(v);
        }
    }

    /// Starts a wall-time histogram timer; the elapsed nanoseconds record
    /// into `name` when the guard drops. No clock is read when disabled.
    #[inline]
    pub fn timer(&self, name: &'static str) -> TimerGuard<'_> {
        TimerGuard {
            start: self.is_enabled().then(|| (self, Instant::now())),
            name,
        }
    }

    /// Starts a trace span with numeric arguments (see [`span!`]). Returns
    /// a guard that records a [`SpanEvent`] on drop; a no-op guard when
    /// disabled.
    #[inline]
    pub fn span(&self, name: &'static str, args: &[(&'static str, f64)]) -> SpanGuard<'_> {
        if self.is_enabled() {
            SpanGuard::start(&self.tracer, name, args)
        } else {
            SpanGuard::noop()
        }
    }
}

/// Live timer from [`Telemetry::timer`]; records elapsed ns on drop.
#[derive(Debug)]
pub struct TimerGuard<'a> {
    start: Option<(&'a Telemetry, Instant)>,
    name: &'static str,
}

impl TimerGuard<'_> {
    /// Stops the timer and records now instead of at scope end.
    pub fn stop(self) {}
}

impl Drop for TimerGuard<'_> {
    fn drop(&mut self) {
        if let Some((t, start)) = self.start.take() {
            t.registry
                .histogram(self.name)
                .record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Opens a scoped trace span on the **global** telemetry instance; the span
/// closes when the returned guard drops.
///
/// ```
/// # fn quantize(_: &[f32]) {}
/// # let activations = [0.0f32; 8];
/// let n = activations.len();
/// {
///     let _span = atom_telemetry::span!("gemm_w4a4", bytes = n);
///     quantize(&activations);
/// }
/// ```
///
/// Arguments (at most [`span::MAX_SPAN_ARGS`]) are numeric and appear in
/// the Chrome trace's `args` pane; values are converted with `as f64`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Telemetry::global().span($name, &[])
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::Telemetry::global().span($name, &[$((stringify!($key), $value as f64)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hooks_record_nothing() {
        let t = Telemetry::disabled();
        t.counter_add(names::OP_GEMM_BYTES, 10);
        t.record(names::OP_GEMM_WALL_NS, 10);
        t.gauge_set(names::ENGINE_KV_USED_BLOCKS, 3);
        drop(t.timer(names::OP_GEMM_WALL_NS));
        drop(t.span("s", &[]));
        let snap = t.metrics().snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(t.tracer().drain().is_empty());
    }

    #[test]
    fn enabled_hooks_record() {
        let t = Telemetry::enabled();
        t.counter_add("c", 2);
        {
            let _timer = t.timer("h");
        }
        drop(t.span("s", &[("rows", 4.0)]));
        let snap = t.metrics().snapshot();
        assert_eq!(snap.counter("c"), 2);
        assert_eq!(snap.histograms["h"].count, 1);
        let events = t.tracer().drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].args[0], Some(("rows", 4.0)));
    }

    #[test]
    fn toggling_is_dynamic() {
        let t = Telemetry::disabled();
        t.counter_add("c", 1);
        t.enable();
        t.counter_add("c", 1);
        t.disable();
        t.counter_add("c", 1);
        assert_eq!(t.metrics().snapshot().counter("c"), 1);
    }
}
