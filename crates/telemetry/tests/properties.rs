//! Property tests of the histogram: the merge algebra (associative,
//! commutative, equivalent to recording into one histogram) and the
//! quantile estimator's error bound (exact below 8, within one bucket —
//! ≤ 12.5% relative — above).

use atom_telemetry::metrics::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Samples spread across many octaves: a small mantissa shifted into an
/// arbitrary octave, so identity buckets and mid/high octaves all get
/// exercised. Magnitudes stay below 2^52 so debug-mode `sum`/`merge`
/// arithmetic cannot overflow over a whole vector.
fn samples(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        (0u64..1 << 12, 0u32..40).prop_map(|(m, shift)| m << shift),
        1..max_len,
    )
}

fn hist_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::default();
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    #[test]
    fn bucket_index_within_bounds(v in (0u64..1 << 20, 0u32..44).prop_map(|(m, s)| m << s)) {
        let idx = bucket_index(v);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= v && v <= hi, "v={v} idx={idx} lo={lo} hi={hi}");
        // Relative bucket width bounds the quantile error.
        if v >= 8 {
            prop_assert!(hi - lo <= lo / 8, "bucket {idx} wider than 12.5%");
        } else {
            prop_assert_eq!(lo, hi);
        }
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in samples(40),
        b in samples(40),
        c in samples(40),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        prop_assert_eq!(merged(&merged(&ha, &hb), &hc), merged(&ha, &merged(&hb, &hc)));
        prop_assert_eq!(merged(&ha, &hb), merged(&hb, &ha));
    }

    #[test]
    fn merge_equals_recording_into_one(
        all in samples(120),
        split in 0usize..1 << 16,
    ) {
        // Partition by an arbitrary bitmask-driven rule, then merge back.
        let (mut left, mut right) = (Vec::new(), Vec::new());
        for (i, &v) in all.iter().enumerate() {
            if (split >> (i % 16)) & 1 == 0 {
                left.push(v);
            } else {
                right.push(v);
            }
        }
        prop_assert_eq!(merged(&hist_of(&left), &hist_of(&right)), hist_of(&all));
    }

    #[test]
    fn quantile_within_bucket_resolution(
        all in samples(120),
        q in 0.0f64..1.0,
    ) {
        let snap = hist_of(&all);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        // The estimator targets the 1-based rank ceil(q·n); compare against
        // the true sample at that rank.
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        let truth = sorted[rank - 1];
        let est = snap.quantile(q).expect("non-empty");
        prop_assert!(est >= truth, "estimate {est} below true sample {truth}");
        if truth < 8 {
            prop_assert_eq!(est, truth, "identity buckets must be exact");
        } else {
            prop_assert!(
                est - truth <= truth / 8,
                "estimate {est} off true sample {truth} by more than 12.5%"
            );
        }
        // And always inside the observed range.
        prop_assert!(est >= snap.min && est <= snap.max);
    }

    #[test]
    fn summary_stats_are_exact(all in samples(120)) {
        let snap = hist_of(&all);
        prop_assert_eq!(snap.count, all.len() as u64);
        prop_assert_eq!(snap.sum, all.iter().sum::<u64>());
        prop_assert_eq!(snap.min, *all.iter().min().expect("non-empty"));
        prop_assert_eq!(snap.max, *all.iter().max().expect("non-empty"));
    }
}
