//! Deterministic scope-based data parallelism for the Atom workspace.
//!
//! The paper's speedups come from saturating the hardware — fused low-bit
//! GEMM and quantized-KV attention keep every SM busy (Fig. 8 / Fig. 11) —
//! and this crate is the CPU analogue of that execution layer: it spreads
//! the bit-exact kernels over cores **without changing a single output
//! bit**. The workspace's hot paths (packed GEMM row-blocks, per-head
//! quantized-KV attention, batched prefill/decode in the serving engine)
//! all parallelize through the one [`Pool`] type defined here.
//!
//! # Determinism contract
//!
//! Identical inputs produce byte-identical outputs for **any** thread
//! count. The contract is enforced structurally, not by testing alone:
//!
//! * **chunked static partitioning** — work splits into fixed-size chunks
//!   assigned to workers by index arithmetic, never by racing a queue;
//! * **disjoint writes** — every chunk owns an exclusive `&mut` span of
//!   the output ([`Pool::par_chunks_mut`] hands out non-overlapping
//!   sub-slices via `split_at_mut`), so there is nothing to race on;
//! * **no reduction atomics** — cross-chunk combining happens on the
//!   caller thread after the join, in chunk-index order.
//!
//! A chunk's result therefore depends only on the sequential code that
//! computed it, and the (1-thread vs N-thread) proptests in
//! `crates/kernels/tests` and `crates/serve/tests` hold bit-for-bit.
//!
//! # Pool size
//!
//! [`Pool::global`] reads the `ATOM_THREADS` environment variable once per
//! process (falling back to the machine's available parallelism). At
//! `ATOM_THREADS=1` every API runs inline on the caller thread — no worker
//! is ever spawned, which is the reproducibility-first default for chaos
//! and fault-injection runs. Explicit pools ([`Pool::new`]) serve tests
//! and benches that sweep thread counts.
//!
//! # Worker lifecycle and panics
//!
//! Workers are scoped to one parallel region via [`std::thread::scope`] —
//! the only way in safe Rust to run borrowed closures on other threads
//! (persistent workers would need `'static` jobs or `unsafe` lifetime
//! erasure, and this workspace forbids `unsafe` outside `telemetry`). A
//! panicking chunk does not abort the process: each chunk runs under
//! `catch_unwind`, failed chunk indices are collected, and the region
//! returns a typed [`PoolError::WorkerPanic`] after every other chunk has
//! completed. The serving engine maps that error onto per-request
//! `Terminal::Failed` outcomes instead of poisoning the batch.
//!
//! # Example
//!
//! ```
//! use atom_parallel::Pool;
//!
//! // Square 10 numbers in chunks of 4, on up to 2 threads.
//! let pool = Pool::new(2);
//! let mut data: Vec<u64> = (0..10).collect();
//! pool.par_chunks_mut(&mut data, 4, |_chunk_index, chunk| {
//!     for v in chunk.iter_mut() {
//!         *v *= *v;
//!     }
//! })
//! .expect("no chunk panicked");
//! assert_eq!(data[3], 9);
//! // Bit-identical to the sequential pool, by construction.
//! let mut seq: Vec<u64> = (0..10).collect();
//! Pool::new(1)
//!     .par_chunks_mut(&mut seq, 4, |_, c| c.iter_mut().for_each(|v| *v *= *v))
//!     .expect("sequential path cannot panic here");
//! assert_eq!(data, seq);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use atom_telemetry::{names, Telemetry};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;
use std::time::Instant;

/// Error surfaced by a parallel region whose closure panicked.
///
/// The region still runs every other chunk to completion before returning
/// (no chunk is silently skipped), so callers know exactly which units of
/// work are poisoned and which outputs are valid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// One or more chunks panicked inside a parallel region.
    WorkerPanic {
        /// Indices of the chunks whose closure panicked, ascending.
        failed_chunks: Vec<usize>,
        /// The first panic's payload, when it was a string.
        message: String,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanic {
                failed_chunks,
                message,
            } => write!(
                f,
                "worker panic in {} chunk(s) {:?}: {}",
                failed_chunks.len(),
                failed_chunks,
                message
            ),
        }
    }
}

impl std::error::Error for PoolError {}

thread_local! {
    /// Set while the current thread executes inside a parallel region;
    /// nested pool calls then run inline instead of spawning a second
    /// generation of workers (unbounded fan-out would oversubscribe the
    /// machine without changing any result).
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// RAII flag marking the current thread as inside a parallel region.
struct RegionGuard {
    prev: bool,
}

impl RegionGuard {
    fn enter() -> Self {
        let prev = IN_PARALLEL_REGION.with(|f| f.replace(true));
        RegionGuard { prev }
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_PARALLEL_REGION.with(|f| f.set(prev));
    }
}

/// Weight rows per chunk when a kernel partitions row-blocked work over
/// [`Pool::par_chunks_mut`]. The SWAR GEMM hands each worker chunk
/// [`KERNEL_ROW_BLOCK`] weight rows of a transposed accumulator: big enough
/// that one chunk amortizes its unpack-buffer setup, small enough that a
/// 2048-row projection still splits into 256 chunks — plenty of slack for
/// any realistic thread width. Because `par_chunks_mut` assigns chunk `i`
/// the same span at every width, this constant also fixes the
/// decomposition, keeping results bit-identical across thread counts.
pub const KERNEL_ROW_BLOCK: usize = 8;

/// What one worker reports back to the region join: busy wall time (0 when
/// telemetry is disabled) and the chunks whose closure panicked.
type WorkerReport = (u64, Vec<(usize, String)>);

/// A deterministic data-parallel executor of fixed width.
///
/// Cheap to create and to clone — the pool carries configuration, not
/// threads; workers are scoped per region (see the crate docs for why).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool running work on up to `threads` threads (the caller thread
    /// counts as one of them). `0` is clamped to `1`.
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A single-threaded pool: every API runs inline on the caller.
    pub fn sequential() -> Self {
        Pool::new(1)
    }

    /// The pool described by the environment: `ATOM_THREADS` when set and
    /// parseable, otherwise the machine's available parallelism.
    pub fn from_env() -> Self {
        let configured = std::env::var("ATOM_THREADS").ok();
        Pool::new(Self::resolve_threads(configured.as_deref()))
    }

    /// The process-wide pool, built from the environment once on first use
    /// (see [`Pool::from_env`]). Kernel entry points default to this.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(Pool::from_env)
    }

    /// Resolves a thread count from an `ATOM_THREADS`-style setting:
    /// a positive integer is taken as-is, anything else (unset, malformed,
    /// `0`) falls back to the machine's available parallelism.
    pub fn resolve_threads(configured: Option<&str>) -> usize {
        match configured.and_then(|v| v.trim().parse::<usize>().ok()) {
            Some(n) if n > 0 => n,
            _ => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// The configured width (including the caller thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether a region started now would run inline on the caller: the
    /// pool is width 1, or the caller is already inside a parallel region
    /// (nested regions never spawn — see the crate docs).
    pub fn is_sequential(&self) -> bool {
        self.threads == 1 || IN_PARALLEL_REGION.with(Cell::get)
    }

    /// Runs `f` over `data` split into chunks of `chunk` elements (the
    /// final chunk may be shorter), distributing contiguous runs of chunks
    /// across the pool. `f` receives the chunk index and the chunk's
    /// exclusive sub-slice; chunk `i` always covers
    /// `data[i * chunk .. ((i + 1) * chunk).min(len)]` regardless of the
    /// thread count, which is what makes the output bit-stable.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::WorkerPanic`] listing every chunk whose
    /// closure panicked; all other chunks still ran to completion.
    ///
    /// # Example
    ///
    /// ```
    /// use atom_parallel::Pool;
    ///
    /// let mut rows = vec![0u32; 6];
    /// Pool::new(4)
    ///     .par_chunks_mut(&mut rows, 2, |i, chunk| {
    ///         for v in chunk.iter_mut() {
    ///             *v = i as u32;
    ///         }
    ///     })
    ///     .expect("no panics");
    /// assert_eq!(rows, [0, 0, 1, 1, 2, 2]);
    /// ```
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk: usize, f: F) -> Result<(), PoolError>
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let chunk = chunk.max(1);
        let n_chunks = data.len().div_ceil(chunk);
        if n_chunks == 0 {
            return Ok(());
        }
        let workers = self.effective_workers(n_chunks);
        let region = Region::open(n_chunks, workers);

        let mut failures: Vec<(usize, String)> = Vec::new();
        let mut busy_total = 0u64;
        if workers <= 1 {
            let (busy, mut fails) = run_chunk_span(&f, data, chunk, 0, n_chunks, 0, region.timed);
            busy_total = busy;
            failures.append(&mut fails);
        } else {
            // Contiguous static partition: the first `n_chunks % workers`
            // workers take one extra chunk. Worker 0 is the caller thread.
            let base = n_chunks / workers;
            let extra = n_chunks % workers;
            let timed = region.timed;
            let reports = std::thread::scope(|scope| {
                let f = &f;
                let mut handles = Vec::with_capacity(workers - 1);
                let mut rest = data;
                let mut first_chunk = 0usize;
                let mut caller_share: Option<(&mut [T], usize, usize)> = None;
                for w in 0..workers {
                    let count = base + usize::from(w < extra);
                    let take = (count * chunk).min(rest.len());
                    let (head, tail) = rest.split_at_mut(take);
                    rest = tail;
                    if w == 0 {
                        caller_share = Some((head, first_chunk, count));
                    } else {
                        let start = first_chunk;
                        handles.push(scope.spawn(move || {
                            let _guard = RegionGuard::enter();
                            let report = run_chunk_span(f, head, chunk, start, count, w, timed);
                            if timed {
                                Telemetry::global().tracer().flush_thread();
                            }
                            report
                        }));
                    }
                    first_chunk += count;
                }
                let caller_report = match caller_share {
                    Some((head, start, count)) => {
                        let _guard = RegionGuard::enter();
                        run_chunk_span(f, head, chunk, start, count, 0, timed)
                    }
                    None => (0, Vec::new()),
                };
                let mut reports = vec![caller_report];
                for h in handles {
                    // A scoped worker can only fail to join if its closure
                    // panicked outside `catch_unwind` (e.g. inside the
                    // telemetry flush); treat that as a panic of its first
                    // chunk rather than unwinding through the scope.
                    reports.push(h.join().unwrap_or_else(|payload| {
                        (0, vec![(usize::MAX, panic_message(payload.as_ref()))])
                    }));
                }
                reports
            });
            for (busy, mut fails) in reports {
                busy_total = busy_total.saturating_add(busy);
                failures.append(&mut fails);
            }
        }
        region.close(busy_total);

        if failures.is_empty() {
            return Ok(());
        }
        failures.sort();
        let message = failures
            .first()
            .map(|(_, m)| m.clone())
            .unwrap_or_default();
        Err(PoolError::WorkerPanic {
            failed_chunks: failures.into_iter().map(|(i, _)| i).collect(),
            message,
        })
    }

    /// Maps `f` over `items`, returning the results in input order. Each
    /// item is one chunk, so on error the failed-chunk indices of
    /// [`PoolError::WorkerPanic`] are exactly the failed *item* indices —
    /// the serving engine relies on this to fail only the poisoned
    /// requests of a batch.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::WorkerPanic`] listing every item whose closure
    /// panicked; all other items still produced their result (discarded on
    /// the error path).
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, PoolError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let mut slots: Vec<Option<R>> = items.iter().map(|_| None).collect();
        self.par_chunks_mut(&mut slots, 1, |i, slot| {
            if let (Some(out), Some(item)) = (slot.first_mut(), items.get(i)) {
                *out = Some(f(i, item));
            }
        })?;
        let results: Vec<R> = slots.into_iter().flatten().collect();
        if results.len() == items.len() {
            Ok(results)
        } else {
            // Unreachable under the par_chunks_mut contract (every chunk
            // either filled its slot or reported a panic), kept as a typed
            // backstop instead of an unwrap.
            Err(PoolError::WorkerPanic {
                failed_chunks: Vec::new(),
                message: "parallel map lost results without a reported panic".to_string(),
            })
        }
    }

    /// Runs `a` and `b`, potentially in parallel, returning both results.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::WorkerPanic`] if either closure panicked
    /// (chunk 0 = `a`, chunk 1 = `b`); the surviving closure still ran to
    /// completion.
    pub fn par_join<RA, RB, A, B>(&self, a: A, b: B) -> Result<(RA, RB), PoolError>
    where
        RA: Send,
        A: FnOnce() -> RA + Send,
        RB: Send,
        B: FnOnce() -> RB + Send,
    {
        let region = Region::open(2, self.effective_workers(2));
        let (ra, rb) = if self.is_sequential() {
            let _guard = RegionGuard::enter();
            let ra = catch_unwind(AssertUnwindSafe(a));
            let rb = catch_unwind(AssertUnwindSafe(b));
            (ra, rb)
        } else {
            std::thread::scope(|scope| {
                let hb = scope.spawn(move || {
                    let _guard = RegionGuard::enter();
                    catch_unwind(AssertUnwindSafe(b))
                });
                let ra = {
                    let _guard = RegionGuard::enter();
                    catch_unwind(AssertUnwindSafe(a))
                };
                let rb = hb
                    .join()
                    .unwrap_or_else(|payload| Err(Box::new(panic_message(payload.as_ref()))));
                (ra, rb)
            })
        };
        region.close(0);
        match (ra, rb) {
            (Ok(ra), Ok(rb)) => Ok((ra, rb)),
            (ra, rb) => {
                let mut failed_chunks = Vec::new();
                let mut message = String::new();
                for (i, err) in [ra.err(), rb.err()].into_iter().enumerate() {
                    if let Some(payload) = err {
                        failed_chunks.push(i);
                        if message.is_empty() {
                            message = panic_message(payload.as_ref());
                        }
                    }
                }
                Err(PoolError::WorkerPanic {
                    failed_chunks,
                    message,
                })
            }
        }
    }

    /// Workers a region over `n_chunks` chunks would actually use.
    fn effective_workers(&self, n_chunks: usize) -> usize {
        if self.is_sequential() {
            1
        } else {
            self.threads.min(n_chunks).max(1)
        }
    }
}

impl Default for Pool {
    /// The environment-configured pool (same resolution as
    /// [`Pool::from_env`]).
    fn default() -> Self {
        Pool::from_env()
    }
}

/// Telemetry bracket around one parallel region: queue-depth gauge up on
/// dispatch, region wall + utilization histograms on join. All of it is
/// skipped (down to one atomic load) while telemetry is disabled.
struct Region {
    timed: bool,
    start: Option<Instant>,
    workers: usize,
}

impl Region {
    fn open(n_chunks: usize, workers: usize) -> Region {
        let t = Telemetry::global();
        let timed = t.is_enabled();
        if timed {
            t.counter_add(names::POOL_TASKS, n_chunks as u64);
            t.gauge_set(names::POOL_QUEUE_DEPTH, n_chunks as i64);
        }
        Region {
            timed,
            // lint: allow(time-entropy) — region wall time is pool telemetry only; chunk assignment and results never read the clock
            start: timed.then(Instant::now),
            workers,
        }
    }

    fn close(self, busy_total_ns: u64) {
        if !self.timed {
            return;
        }
        let t = Telemetry::global();
        t.gauge_set(names::POOL_QUEUE_DEPTH, 0);
        if let Some(start) = self.start {
            let wall = start.elapsed().as_nanos() as u64;
            t.record(names::POOL_REGION_WALL_NS, wall);
            let denom = (self.workers as u64).saturating_mul(wall).max(1);
            let util = busy_total_ns.saturating_mul(1000) / denom;
            t.record(names::POOL_UTILIZATION_PERMILLE, util.min(1000));
        }
    }
}

/// Executes `count` chunks starting at global chunk index `start` over
/// `data` (already narrowed to exactly those chunks), each under
/// `catch_unwind`, inside one `pool_worker` telemetry span. Returns the
/// worker's busy nanoseconds (0 when untimed) and its failed chunks.
fn run_chunk_span<T, F>(
    f: &F,
    data: &mut [T],
    chunk: usize,
    start: usize,
    count: usize,
    worker: usize,
    timed: bool,
) -> WorkerReport
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let span = timed.then(|| {
        Telemetry::global().span(
            names::SPAN_POOL_WORKER,
            &[("chunks", count as f64), ("worker", worker as f64)],
        )
    });
    // lint: allow(time-entropy) — worker busy time feeds the utilization histogram only; never scheduling
    let busy_start = timed.then(Instant::now);
    let mut failures = Vec::new();
    for (j, piece) in data.chunks_mut(chunk).enumerate().take(count) {
        let index = start + j;
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(index, piece))) {
            failures.push((index, panic_message(payload.as_ref())));
        }
    }
    drop(span);
    let busy = busy_start.map_or(0, |s| s.elapsed().as_nanos() as u64);
    (busy, failures)
}

/// Renders a panic payload: the `&str` / `String` message when there is
/// one, a placeholder otherwise.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_indices_cover_input_in_order() {
        let pool = Pool::new(3);
        let mut data = vec![0usize; 10];
        pool.par_chunks_mut(&mut data, 3, |i, c| c.iter_mut().for_each(|v| *v = i))
            .expect("no panics");
        assert_eq!(data, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn nested_regions_run_inline() {
        let pool = Pool::new(4);
        let mut outer = vec![0u32; 4];
        pool.par_chunks_mut(&mut outer, 1, |_, c| {
            assert!(pool.is_sequential(), "nested call must be sequential");
            let mut inner = vec![0u32; 4];
            pool.par_chunks_mut(&mut inner, 1, |i, ic| {
                ic.iter_mut().for_each(|v| *v = i as u32)
            })
            .expect("inner region");
            c.iter_mut().for_each(|v| *v = inner.iter().sum());
        })
        .expect("outer region");
        assert_eq!(outer, [6, 6, 6, 6]);
    }

    #[test]
    fn par_join_returns_both() {
        let (a, b) = Pool::new(2).par_join(|| 40, || 2).expect("no panics");
        assert_eq!(a + b, 42);
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let pool = Pool::new(4);
        let mut data: Vec<u8> = Vec::new();
        pool.par_chunks_mut(&mut data, 8, |_, _| unreachable!("no chunks"))
            .expect("empty region");
        let out: Vec<u8> = pool.par_map(&data, |_, &v| v).expect("empty map");
        assert!(out.is_empty());
    }

    #[test]
    fn chunk_larger_than_input_yields_one_chunk() {
        let pool = Pool::new(4);
        let mut data = vec![1u32; 3];
        pool.par_chunks_mut(&mut data, 100, |i, c| {
            assert_eq!(i, 0);
            assert_eq!(c.len(), 3);
            c.iter_mut().for_each(|v| *v += 1);
        })
        .expect("single chunk");
        assert_eq!(data, [2, 2, 2]);
    }

    #[test]
    fn worker_panic_reports_failed_chunks_not_abort() {
        let pool = Pool::new(3);
        let mut data = vec![0i32; 6];
        let err = pool
            .par_chunks_mut(&mut data, 1, |i, c| {
                if i == 1 || i == 4 {
                    panic!("chunk {i} poisoned");
                }
                c.iter_mut().for_each(|v| *v = 7);
            })
            .expect_err("two chunks panic");
        let PoolError::WorkerPanic {
            failed_chunks,
            message,
        } = err;
        assert_eq!(failed_chunks, [1, 4], "sorted failed chunk indices");
        assert!(message.contains("poisoned"), "payload preserved: {message}");
        // Surviving chunks still ran to completion.
        assert_eq!(data, [7, 0, 7, 7, 0, 7]);
    }

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<usize> = (0..23).collect();
        let out = Pool::new(4)
            .par_map(&items, |i, &v| {
                assert_eq!(i, v, "index argument matches item position");
                v * v
            })
            .expect("no panics");
        let expect: Vec<usize> = (0..23).map(|v| v * v).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn resolve_threads_parses_atom_threads_contract() {
        // Explicit counts win; 0, garbage, and empty fall back to one
        // thread per the documented ATOM_THREADS contract.
        assert_eq!(Pool::resolve_threads(Some("4")), 4);
        assert_eq!(Pool::resolve_threads(Some("1")), 1);
        assert_eq!(Pool::resolve_threads(Some("0")), 1);
        assert_eq!(Pool::resolve_threads(Some("not-a-number")), 1);
        assert_eq!(Pool::resolve_threads(Some("")), 1);
        assert!(Pool::resolve_threads(None) >= 1);
    }

    #[test]
    fn single_thread_pool_takes_sequential_path() {
        // Regression: ATOM_THREADS=1 must never spawn a worker thread —
        // every chunk runs on the caller thread itself.
        let pool = Pool::new(1);
        assert!(pool.is_sequential());
        let caller = std::thread::current().id();
        let mut data = vec![0u8; 8];
        pool.par_chunks_mut(&mut data, 2, |_, c| {
            assert_eq!(std::thread::current().id(), caller);
            c.iter_mut().for_each(|v| *v = 1);
        })
        .expect("sequential region");
        assert_eq!(data, [1; 8]);
    }
}
