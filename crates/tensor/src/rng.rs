//! Seeded random generation helpers.
//!
//! Every stochastic component of the reproduction (weight init, corpora,
//! workload traces) goes through [`SeededRng`] so experiments are exactly
//! reproducible from a `u64` seed.

use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rand_distr::{Distribution, LogNormal, Normal};

/// Deterministic random generator wrapping [`StdRng`].
///
/// # Example
///
/// ```
/// use atom_tensor::SeededRng;
///
/// let mut a = SeededRng::new(42);
/// let mut b = SeededRng::new(42);
/// assert_eq!(a.normal_f32(0.0, 1.0), b.normal_f32(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: StdRng,
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; `stream` distinguishes
    /// multiple children of one parent.
    pub fn fork(&mut self, stream: u64) -> SeededRng {
        let s = self.inner.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SeededRng::new(s)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn uniform_f32(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or non-finite.
    pub fn normal_f32(&mut self, mean: f32, std: f32) -> f32 {
        let dist = Normal::new(mean, std).expect("invalid normal parameters");
        dist.sample(&mut self.inner)
    }

    /// Log-normal sample with the given parameters of the underlying normal.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    pub fn lognormal_f64(&mut self, mu: f64, sigma: f64) -> f64 {
        let dist = LogNormal::new(mu, sigma).expect("invalid lognormal parameters");
        dist.sample(&mut self.inner)
    }

    /// Exponential inter-arrival sample with the given rate (events per unit
    /// time).
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn exponential_f64(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -u.ln() / rate
    }

    /// Samples an index from unnormalized non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index of empty weights");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut t = self.inner.gen_range(0.0..total);
        for (i, &w) in weights.iter().enumerate() {
            if t < w {
                return i;
            }
            t -= w;
        }
        weights.len() - 1
    }

    /// Matrix with i.i.d. normal entries.
    pub fn normal_matrix(&mut self, rows: usize, cols: usize, mean: f32, std: f32) -> Matrix {
        let dist = Normal::new(mean, std).expect("invalid normal parameters");
        let data = (0..rows * cols).map(|_| dist.sample(&mut self.inner)).collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Matrix with i.i.d. uniform entries in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_matrix(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
        assert!(lo < hi, "uniform range must be non-empty");
        let data = (0..rows * cols).map(|_| self.inner.gen_range(lo..hi)).collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Kaiming-style initialization for a linear layer weight of shape
    /// `out x in`: normal with `std = gain / sqrt(in)`.
    pub fn kaiming_matrix(&mut self, out_features: usize, in_features: usize, gain: f32) -> Matrix {
        let std = gain / crate::cast::usize_to_f32(in_features.max(1)).sqrt();
        self.normal_matrix(out_features, in_features, 0.0, std)
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (in random order).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k);
        idx
    }

    /// Raw access to the wrapped generator for `rand` ecosystem interop.
    pub fn as_rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform_f32(), b.uniform_f32());
        }
    }

    #[test]
    fn forks_are_independent_but_deterministic() {
        let mut parent1 = SeededRng::new(9);
        let mut parent2 = SeededRng::new(9);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.uniform_f32(), c2.uniform_f32());
        let mut d = parent1.fork(2);
        // Extremely unlikely to collide.
        assert_ne!(c1.uniform_f32(), d.uniform_f32());
    }

    #[test]
    fn normal_matrix_statistics() {
        let mut rng = SeededRng::new(3);
        let m = rng.normal_matrix(100, 100, 2.0, 0.5);
        let mean: f64 = m.as_slice().iter().map(|&v| v as f64).sum::<f64>() / 10_000.0;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SeededRng::new(11);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[rng.weighted_index(&[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0]);
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = SeededRng::new(5);
        let mut idx = rng.sample_indices(10, 10);
        idx.sort_unstable();
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn exponential_positive() {
        let mut rng = SeededRng::new(1);
        for _ in 0..100 {
            assert!(rng.exponential_f64(2.0) > 0.0);
        }
    }
}
