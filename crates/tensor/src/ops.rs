//! Neural-network primitives used by Llama-family models.
//!
//! Everything a decoder-only transformer forward pass needs: numerically
//! stable softmax, RMSNorm, SiLU/GeLU activations, rotary position embeddings
//! (RoPE), causal masking, and sampling helpers.

use crate::Matrix;

/// Numerically stable softmax over one slice, in place.
///
/// An empty slice is left untouched.
pub fn softmax_in_place(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Softmax applied independently to each row of `m`.
pub fn softmax_rows(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..out.rows() {
        softmax_in_place(out.row_mut(r));
    }
    out
}

/// Log-softmax of one row, returned as a new vector.
///
/// Used by perplexity and zero-shot likelihood scoring.
pub fn log_softmax(row: &[f32]) -> Vec<f32> {
    let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    let log_sum: f32 = row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln() + max;
    row.iter().map(|&v| v - log_sum).collect()
}

/// RMSNorm over each row: `x / rms(x) * gain`, with `rms(x) =
/// sqrt(mean(x^2) + eps)`.
///
/// This is the normalization used throughout the Llama family.
///
/// # Panics
///
/// Panics if `gain.len() != m.cols()`.
pub fn rmsnorm_rows(m: &Matrix, gain: &[f32], eps: f32) -> Matrix {
    assert_eq!(gain.len(), m.cols(), "rmsnorm gain length mismatch");
    let mut out = m.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / crate::cast::usize_to_f32(row.len());
        let inv = 1.0 / (ms + eps).sqrt();
        for (v, &g) in row.iter_mut().zip(gain.iter()) {
            *v *= inv * g;
        }
    }
    out
}

/// SiLU (swish) activation `x * sigmoid(x)`.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Tanh-approximation GeLU, as used by GPT-style MLPs.
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + ((2.0 / std::f32::consts::PI).sqrt() * (x + 0.044_715 * x * x * x)).tanh())
}

/// Applies rotary position embeddings to each row of `m` in place.
///
/// Row `r` is treated as the hidden vector of the token at absolute position
/// `positions[r]`. Pairs `(2i, 2i+1)` of each `head_dim` segment are rotated
/// by angle `pos * theta^(-2i/head_dim)`.
///
/// # Panics
///
/// Panics if `positions.len() != m.rows()`, `head_dim` is zero or odd, or
/// `m.cols()` is not a multiple of `head_dim`.
#[allow(clippy::needless_range_loop)] // positions and rows advance together
pub fn rope_in_place(m: &mut Matrix, positions: &[usize], head_dim: usize, theta: f32) {
    assert_eq!(positions.len(), m.rows(), "rope positions length mismatch");
    assert!(head_dim > 0 && head_dim.is_multiple_of(2), "head_dim must be even");
    assert_eq!(m.cols() % head_dim, 0, "cols must be a multiple of head_dim");
    let heads = m.cols() / head_dim;
    for r in 0..m.rows() {
        let pos = crate::cast::usize_to_f32(positions[r]);
        let row = m.row_mut(r);
        for h in 0..heads {
            let seg = &mut row[h * head_dim..(h + 1) * head_dim];
            for i in 0..head_dim / 2 {
                let freq = theta.powf(-2.0 * crate::cast::usize_to_f32(i) / crate::cast::usize_to_f32(head_dim));
                let angle = pos * freq;
                let (sin, cos) = angle.sin_cos();
                let a = seg[2 * i];
                let b = seg[2 * i + 1];
                seg[2 * i] = a * cos - b * sin;
                seg[2 * i + 1] = a * sin + b * cos;
            }
        }
    }
}

/// Inverse rotation of [`rope_in_place`] (used by the autograd backward pass).
#[allow(clippy::needless_range_loop)] // positions and rows advance together
pub fn rope_inverse_in_place(m: &mut Matrix, positions: &[usize], head_dim: usize, theta: f32) {
    assert_eq!(positions.len(), m.rows(), "rope positions length mismatch");
    assert!(head_dim > 0 && head_dim.is_multiple_of(2), "head_dim must be even");
    assert_eq!(m.cols() % head_dim, 0, "cols must be a multiple of head_dim");
    let heads = m.cols() / head_dim;
    for r in 0..m.rows() {
        let pos = crate::cast::usize_to_f32(positions[r]);
        let row = m.row_mut(r);
        for h in 0..heads {
            let seg = &mut row[h * head_dim..(h + 1) * head_dim];
            for i in 0..head_dim / 2 {
                let freq = theta.powf(-2.0 * crate::cast::usize_to_f32(i) / crate::cast::usize_to_f32(head_dim));
                let angle = pos * freq;
                let (sin, cos) = angle.sin_cos();
                let a = seg[2 * i];
                let b = seg[2 * i + 1];
                // Rotate by -angle.
                seg[2 * i] = a * cos + b * sin;
                seg[2 * i + 1] = -a * sin + b * cos;
            }
        }
    }
}

/// Adds a causal mask to a `q_len x kv_len` score matrix in place: position
/// `q` may attend to kv positions `0..=q + offset`, everything later is set
/// to negative infinity.
///
/// `offset` is `kv_len - q_len` during incremental decoding (the queries are
/// the *last* `q_len` positions of the kv sequence).
///
/// # Panics
///
/// Panics if `scores.cols() < scores.rows() + offset` would make the mask
/// meaningless (i.e. `offset + scores.rows() > scores.cols()` is allowed only
/// when it never masks in-range entries; we simply require
/// `offset + 1 <= scores.cols()` for non-empty matrices).
pub fn causal_mask_in_place(scores: &mut Matrix, offset: usize) {
    let (q_len, kv_len) = scores.shape();
    for q in 0..q_len {
        let last_visible = q + offset;
        let row = scores.row_mut(q);
        for (k, item) in row.iter_mut().enumerate().take(kv_len) {
            if k > last_visible {
                *item = f32::NEG_INFINITY;
            }
        }
    }
}

/// Index of the maximum element (first one on ties).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn argmax(row: &[f32]) -> usize {
    assert!(!row.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

/// Indices of the `k` largest elements, in descending value order.
pub fn topk(row: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..row.len()).collect();
    idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap_or(std::cmp::Ordering::Equal));
    idx.truncate(k);
    idx
}

/// Cross-entropy (nats) of the target index under the logits row.
///
/// # Panics
///
/// Panics if `target >= logits.len()`.
pub fn cross_entropy(logits: &[f32], target: usize) -> f32 {
    assert!(target < logits.len(), "target out of vocabulary");
    -log_softmax(logits)[target]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let mut row = vec![1.0, 2.0, 3.0, 4.0];
        softmax_in_place(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(row.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn softmax_handles_extremes() {
        let mut row = vec![1000.0, 1000.0];
        softmax_in_place(&mut row);
        assert!((row[0] - 0.5).abs() < 1e-6);
        let mut neg = vec![-1000.0, -999.0];
        softmax_in_place(&mut neg);
        assert!(neg.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let row = vec![0.3, -1.2, 2.5];
        let ls = log_softmax(&row);
        let mut sm = row.clone();
        softmax_in_place(&mut sm);
        for (l, s) in ls.iter().zip(sm.iter()) {
            assert!((l.exp() - s).abs() < 1e-6);
        }
    }

    #[test]
    fn rmsnorm_unit_rows() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        let gain = vec![1.0, 1.0];
        let n = rmsnorm_rows(&m, &gain, 0.0);
        let ms: f32 = n.row(0).iter().map(|v| v * v).sum::<f32>() / 2.0;
        assert!((ms - 1.0).abs() < 1e-5);
    }

    #[test]
    fn rope_preserves_norm_and_inverts() {
        let mut m = Matrix::from_fn(3, 8, |r, c| (r + c) as f32 * 0.3 - 1.0);
        let orig = m.clone();
        let norms: Vec<f32> = (0..3).map(|r| m.row(r).iter().map(|v| v * v).sum()).collect();
        rope_in_place(&mut m, &[0, 5, 11], 4, 10000.0);
        for (r, &n0) in norms.iter().enumerate() {
            let n1: f32 = m.row(r).iter().map(|v| v * v).sum();
            assert!((n0 - n1).abs() < 1e-3, "rope should preserve norms");
        }
        rope_inverse_in_place(&mut m, &[0, 5, 11], 4, 10000.0);
        for (a, b) in m.as_slice().iter().zip(orig.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn rope_position_zero_is_identity() {
        let mut m = Matrix::from_fn(1, 8, |_, c| c as f32);
        let orig = m.clone();
        rope_in_place(&mut m, &[0], 8, 10000.0);
        assert_eq!(m, orig);
    }

    #[test]
    fn causal_mask_blocks_future() {
        let mut s = Matrix::full(2, 4, 1.0);
        causal_mask_in_place(&mut s, 2);
        // Query 0 sees kv 0..=2, query 1 sees all 4.
        assert_eq!(s.row(0)[3], f32::NEG_INFINITY);
        assert!(s.row(0)[2].is_finite());
        assert!(s.row(1).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn argmax_topk_cross_entropy() {
        let row = vec![0.1, 5.0, -2.0, 3.0];
        assert_eq!(argmax(&row), 1);
        assert_eq!(topk(&row, 2), vec![1, 3]);
        let ce_good = cross_entropy(&row, 1);
        let ce_bad = cross_entropy(&row, 2);
        assert!(ce_good < ce_bad);
    }

    #[test]
    fn silu_gelu_shapes() {
        assert!(silu(0.0).abs() < 1e-7);
        assert!(silu(10.0) > 9.9);
        assert!(gelu(0.0).abs() < 1e-7);
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }
}
