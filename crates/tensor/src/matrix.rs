//! Row-major dense `f32` matrix.
//!
//! [`Matrix`] is the workhorse type of the workspace. It stores data
//! contiguously in row-major order, which matches the "token-major" layout
//! used throughout the paper: a batch of activations is a `tokens x channels`
//! matrix whose *channels* are the last (contiguous) dimension, exactly the
//! convention Atom's group quantization assumes (§2 of the paper denotes the
//! channel as the last dimension of the input matrix).

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// A dense, row-major `f32` matrix.
///
/// Rows typically index tokens (activations) or output features (weights);
/// columns index channels.
///
/// # Example
///
/// ```
/// use atom_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 6.0);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Matrix({}x{}", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, ", {:?}", self.data)?;
        } else {
            let head: Vec<f32> = self.data.iter().take(8).copied().collect();
            write!(f, ", head={head:?}…")?;
        }
        write!(f, ")")
    }
}

impl Matrix {
    /// Creates a matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols).expect("matrix size overflow");
        Matrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from an owned buffer in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a `1 x n` row vector matrix.
    pub fn from_row(row: &[f32]) -> Self {
        Matrix {
            rows: 1,
            cols: row.len(),
            data: row.to_vec(),
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (channels).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col {c} out of bounds for {} cols", self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness on large matrices.
        const B: usize = 32;
        for rb in (0..self.rows).step_by(B) {
            for cb in (0..self.cols).step_by(B) {
                for r in rb..(rb + B).min(self.rows) {
                    for c in cb..(cb + B).min(self.cols) {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Dense matrix multiplication `self * rhs`.
    ///
    /// Uses an i-k-j loop order so the inner loop streams both operand rows,
    /// which lets LLVM auto-vectorize it.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`. Use [`Matrix::try_matmul`] for a
    /// fallible variant.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.try_matmul(rhs).expect("matmul shape mismatch")
    }

    /// Fallible dense matrix multiplication `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn try_matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let n = rhs.cols;
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix multiplication with the second operand pre-transposed:
    /// computes `self * rhs_t.transpose()` without materializing the
    /// transpose. This is the natural layout for `x @ W^T` linear layers.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs_t.cols()`.
    pub fn matmul_nt(&self, rhs_t: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs_t.cols,
            "matmul_nt inner dimension mismatch: {} vs {}",
            self.cols, rhs_t.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs_t.rows);
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..rhs_t.rows {
                let b_row = &rhs_t.data[j * rhs_t.cols..(j + 1) * rhs_t.cols];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out.data[i * rhs_t.rows + j] = acc;
            }
        }
        out
    }

    /// Element-wise sum. Both operands must share a shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_in_place(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a copy scaled by `s`.
    pub fn scaled(&self, s: f32) -> Matrix {
        let mut out = self.clone();
        out.scale_in_place(s);
        out
    }

    /// Adds `rhs` scaled by `alpha` into `self` (axpy).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled_in_place(&mut self, rhs: &Matrix, alpha: f32) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Scales each column `c` by `scales[c]` in place (per-channel scaling).
    ///
    /// # Panics
    ///
    /// Panics if `scales.len() != self.cols()`.
    pub fn scale_cols_in_place(&mut self, scales: &[f32]) {
        assert_eq!(scales.len(), self.cols, "scale_cols length mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, &s) in row.iter_mut().zip(scales.iter()) {
                *v *= s;
            }
        }
    }

    /// Scales each row `r` by `scales[r]` in place (per-token scaling).
    ///
    /// # Panics
    ///
    /// Panics if `scales.len() != self.rows()`.
    pub fn scale_rows_in_place(&mut self, scales: &[f32]) {
        assert_eq!(scales.len(), self.rows, "scale_rows length mismatch");
        for (r, &s) in scales.iter().enumerate() {
            for v in &mut self.data[r * self.cols..(r + 1) * self.cols] {
                *v *= s;
            }
        }
    }

    /// Gathers columns in the order given by `perm`, producing a new matrix
    /// whose column `i` is `self`'s column `perm[i]`.
    ///
    /// This implements the *channel reordering* of §4.1: activations are
    /// permuted so that outlier channels land at the end of the matrix, which
    /// keeps mixed-precision memory accesses regular.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != self.cols()` or an index is out of bounds.
    pub fn permute_cols(&self, perm: &[usize]) -> Matrix {
        assert_eq!(perm.len(), self.cols, "permutation length mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let src = &self.data[r * self.cols..(r + 1) * self.cols];
            let dst = &mut out.data[r * self.cols..(r + 1) * self.cols];
            for (i, &p) in perm.iter().enumerate() {
                dst[i] = src[p];
            }
        }
        out
    }

    /// Gathers rows in the order given by `perm` (used to reorder the
    /// `in-features` dimension of weight matrices stored `out x in`).
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != self.rows()` or an index is out of bounds.
    pub fn permute_rows(&self, perm: &[usize]) -> Matrix {
        assert_eq!(perm.len(), self.rows, "permutation length mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (i, &p) in perm.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(p));
        }
        out
    }

    /// Returns a new matrix containing rows `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.rows()`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "row slice out of bounds");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Returns a new matrix containing columns `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.cols()`.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols, "col slice out of bounds");
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r)
                .copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Horizontally concatenates `self` with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Maximum absolute element, or `0.0` for an empty matrix.
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f32 {
        crate::cast::f64_to_f32(self.data.iter().map(|v| (*v as f64) * (*v as f64)).sum::<f64>().sqrt())
    }

    /// Mean squared error against `other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or an empty matrix.
    pub fn mse(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "mse shape mismatch");
        assert!(!self.is_empty(), "mse of empty matrix");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| {
                let d = (*a as f64) - (*b as f64);
                d * d
            })
            .sum::<f64>()
            / self.data.len() as f64
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let f = Matrix::full(2, 2, 7.5);
        assert!(f.as_slice().iter().all(|&v| v == 7.5));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::eye(2)), a);
        assert_eq!(Matrix::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn try_matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.try_matmul(&b),
            Err(TensorError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.5 - 2.0);
        let w = Matrix::from_fn(5, 4, |r, c| ((r + c) % 7) as f32 - 3.0);
        let fast = a.matmul_nt(&w);
        let slow = a.matmul(&w.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(5, 7, |r, c| (r * 31 + c * 17) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn permute_cols_roundtrip() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let perm = vec![2, 0, 3, 1];
        let p = a.permute_cols(&perm);
        // Invert the permutation.
        let mut inv = vec![0usize; 4];
        for (i, &p_i) in perm.iter().enumerate() {
            inv[p_i] = i;
        }
        assert_eq!(p.permute_cols(&inv), a);
    }

    #[test]
    fn permute_rows_moves_rows() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let p = a.permute_rows(&[2, 0, 1]);
        assert_eq!(p.row(0), &[3.0, 3.0]);
        assert_eq!(p.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn slices_and_stacks() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let top = a.slice_rows(0, 2);
        let bottom = a.slice_rows(2, 4);
        assert_eq!(top.vstack(&bottom), a);
        let left = a.slice_cols(0, 2);
        let right = a.slice_cols(2, 4);
        assert_eq!(left.hstack(&right), a);
    }

    #[test]
    fn scale_cols_and_rows() {
        let mut a = Matrix::full(2, 3, 1.0);
        a.scale_cols_in_place(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        let mut b = Matrix::full(2, 2, 1.0);
        b.scale_rows_in_place(&[2.0, 5.0]);
        assert_eq!(b.row(1), &[5.0, 5.0]);
    }

    #[test]
    fn mse_and_norms() {
        let a = Matrix::from_row(&[3.0, 4.0]);
        assert!((a.frob_norm() - 5.0).abs() < 1e-6);
        assert_eq!(a.abs_max(), 4.0);
        let b = Matrix::from_row(&[3.0, 2.0]);
        assert!((a.mse(&b) - 2.0).abs() < 1e-9);
    }
}
