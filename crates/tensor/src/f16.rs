//! IEEE 754 binary16 (half precision) codec.
//!
//! The paper's FP16 baseline and the KV-cache's 16-bit storage path need a
//! faithful half-precision round trip. This is a self-contained software
//! implementation (round-to-nearest-even) — no `half` crate dependency.

/// Encodes an `f32` as IEEE 754 binary16 bits, rounding to nearest-even.
///
/// Values beyond the f16 range become signed infinity; NaN maps to a quiet
/// NaN.
pub fn f32_to_f16_bits(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf or NaN.
        return if frac != 0 {
            sign | 0x7E00 // quiet NaN
        } else {
            sign | 0x7C00
        };
    }

    // Re-bias exponent: f32 bias 127, f16 bias 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7C00; // overflow to infinity
    }
    if unbiased >= -14 {
        // Normal f16. Keep 10 fraction bits, round to nearest even.
        let mut half_exp = (unbiased + 15) as u32;
        let mut half_frac = frac >> 13;
        let round_bits = frac & 0x1FFF;
        if round_bits > 0x1000 || (round_bits == 0x1000 && (half_frac & 1) == 1) {
            half_frac += 1;
            if half_frac == 0x400 {
                half_frac = 0;
                half_exp += 1;
                if half_exp >= 31 {
                    return sign | 0x7C00;
                }
            }
        }
        return sign | ((half_exp as u16) << 10) | (half_frac as u16);
    }

    // Subnormal f16 (or underflow to zero).
    if unbiased < -25 {
        return sign; // too small: signed zero
    }
    // Add the implicit leading 1 and shift into subnormal position.
    let full_frac = frac | 0x0080_0000;
    let shift = (-14 - unbiased) as u32 + 13;
    let mut half_frac = full_frac >> shift;
    let rem = full_frac & ((1u32 << shift) - 1);
    let halfway = 1u32 << (shift - 1);
    if rem > halfway || (rem == halfway && (half_frac & 1) == 1) {
        half_frac += 1; // may carry into the exponent, which is correct
    }
    sign | (half_frac as u16)
}

/// Decodes IEEE 754 binary16 bits to `f32`.
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1F) as u32;
    let frac = (bits & 0x03FF) as u32;

    let out = if exp == 0 {
        if frac == 0 {
            sign // signed zero
        } else {
            // Subnormal: value = frac * 2^-24. Normalize into f32: after k
            // left shifts the implicit leading 1 sits at bit 10 and the
            // value is 1.f x 2^(-14 - k).
            let mut e = -14i32;
            let mut f = frac;
            while f & 0x0400 == 0 {
                f <<= 1;
                e -= 1;
            }
            f &= 0x03FF;
            // lint: allow(unchecked-arith) — e is in [-24, -14]: frac is a
            // nonzero 10-bit value, so the normalization loop shifts at most
            // 10 times; loop-carried state is outside the interval domain.
            let f32_exp = ((e + 127) as u32) << 23;
            sign | f32_exp | (f << 13)
        }
    } else if exp == 31 {
        if frac == 0 {
            sign | 0x7F80_0000 // infinity
        } else {
            sign | 0x7FC0_0000 // NaN
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (frac << 13)
    };
    f32::from_bits(out)
}

/// Rounds an `f32` through f16 precision (encode + decode).
///
/// This is how the reproduction models "FP16" tensors: values are stored and
/// computed in f32 but snapped to the f16 grid wherever the paper keeps FP16
/// data (e.g. group scales, outlier channels before the INT8 refinement).
pub fn round_f16(v: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(v))
}

/// Rounds every element of a slice through f16 precision in place.
pub fn round_f16_slice(values: &mut [f32]) {
    for v in values {
        *v = round_f16(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for i in -2048..=2048 {
            let v = i as f32;
            assert_eq!(round_f16(v), v, "integer {i} should be exact in f16");
        }
    }

    #[test]
    fn known_encodings() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF); // f16 max
        assert_eq!(f32_to_f16_bits(65536.0), 0x7C00); // overflow -> inf
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7C00);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn subnormals() {
        // Smallest positive f16 subnormal is 2^-24.
        let tiny = 2.0_f32.powi(-24);
        assert_eq!(f16_bits_to_f32(0x0001), tiny);
        assert_eq!(f32_to_f16_bits(tiny), 0x0001);
        // Halfway below the smallest subnormal underflows to zero (ties-to-even).
        assert_eq!(f32_to_f16_bits(tiny / 2.0), 0x0000);
        // Largest subnormal.
        let max_sub = f16_bits_to_f32(0x03FF);
        assert_eq!(f32_to_f16_bits(max_sub), 0x03FF);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16 (1 + 2^-10);
        // ties go to even (1.0).
        let halfway = 1.0 + 2.0_f32.powi(-11);
        assert_eq!(round_f16(halfway), 1.0);
        // Slightly above the halfway point rounds up.
        let above = 1.0 + 2.0_f32.powi(-11) + 2.0_f32.powi(-20);
        assert_eq!(round_f16(above), 1.0 + 2.0_f32.powi(-10));
    }

    #[test]
    fn roundtrip_error_bounded() {
        // Relative error of f16 rounding is at most 2^-11 for normal values.
        let mut v = 1e-3f32;
        while v < 1e4 {
            let r = round_f16(v);
            let rel = ((r - v) / v).abs();
            assert!(rel <= 2.0_f32.powi(-11) + 1e-9, "v={v} r={r} rel={rel}");
            v *= 1.37;
        }
    }

    #[test]
    fn all_f16_bit_patterns_roundtrip() {
        // Every finite f16 value must encode back to the same bits.
        for bits in 0..=0xFFFFu16 {
            let exp = (bits >> 10) & 0x1F;
            if exp == 31 {
                continue; // inf/NaN handled elsewhere
            }
            let v = f16_bits_to_f32(bits);
            let back = f32_to_f16_bits(v);
            // -0.0 and 0.0 keep their signs, so exact bit equality is expected.
            assert_eq!(back, bits, "bits {bits:#06x} -> {v} -> {back:#06x}");
        }
    }
}
