//! Per-channel statistics for calibration.
//!
//! Atom identifies outlier channels offline by ranking channels of sampled
//! activation matrices by their square sums (§5.1). This module provides the
//! accumulators and summaries that calibration, the figures (Fig. 5 / Fig. 9),
//! and the clipping grid search rely on.

use crate::Matrix;
use serde::{Deserialize, Serialize};

/// Streaming per-channel accumulator over a sequence of activation matrices.
///
/// Channels are matrix columns. Feed every calibration batch through
/// [`ChannelStats::update`] and read the summaries afterwards.
///
/// # Example
///
/// ```
/// use atom_tensor::{Matrix, stats::ChannelStats};
///
/// let mut stats = ChannelStats::new(3);
/// stats.update(&Matrix::from_rows(&[&[1.0, 100.0, -1.0]]));
/// stats.update(&Matrix::from_rows(&[&[2.0, -90.0, 0.5]]));
/// // Channel 1 dominates the square sums.
/// assert_eq!(stats.top_square_sum_channels(1), vec![1]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChannelStats {
    channels: usize,
    count: u64,
    sum: Vec<f64>,
    square_sum: Vec<f64>,
    abs_max: Vec<f32>,
    min: Vec<f32>,
    max: Vec<f32>,
}

impl ChannelStats {
    /// Creates an accumulator for matrices with `channels` columns.
    pub fn new(channels: usize) -> Self {
        ChannelStats {
            channels,
            count: 0,
            sum: vec![0.0; channels],
            square_sum: vec![0.0; channels],
            abs_max: vec![0.0; channels],
            min: vec![f32::INFINITY; channels],
            max: vec![f32::NEG_INFINITY; channels],
        }
    }

    /// Number of channels this accumulator tracks.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of rows (tokens) accumulated so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Accumulates every row of `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m.cols() != self.channels()`.
    pub fn update(&mut self, m: &Matrix) {
        assert_eq!(m.cols(), self.channels, "channel count mismatch");
        for row in m.iter_rows() {
            for (c, &v) in row.iter().enumerate() {
                self.sum[c] += v as f64;
                self.square_sum[c] += (v as f64) * (v as f64);
                if v.abs() > self.abs_max[c] {
                    self.abs_max[c] = v.abs();
                }
                if v < self.min[c] {
                    self.min[c] = v;
                }
                if v > self.max[c] {
                    self.max[c] = v;
                }
            }
        }
        self.count += m.rows() as u64;
    }

    /// Per-channel square sums (Atom's outlier ranking criterion).
    pub fn square_sums(&self) -> &[f64] {
        &self.square_sum
    }

    /// Per-channel maximum absolute values.
    pub fn abs_maxes(&self) -> &[f32] {
        &self.abs_max
    }

    /// Per-channel means; zero when nothing was accumulated.
    pub fn means(&self) -> Vec<f64> {
        if self.count == 0 {
            return vec![0.0; self.channels];
        }
        self.sum.iter().map(|s| s / self.count as f64).collect()
    }

    /// Per-channel root-mean-square values.
    pub fn rms(&self) -> Vec<f64> {
        if self.count == 0 {
            return vec![0.0; self.channels];
        }
        self.square_sum
            .iter()
            .map(|s| (s / self.count as f64).sqrt())
            .collect()
    }

    /// Indices of the `k` channels with the largest square sums, in
    /// descending order — exactly the paper's outlier-channel selection rule.
    pub fn top_square_sum_channels(&self, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.channels).collect();
        idx.sort_by(|&a, &b| {
            self.square_sum[b]
                .partial_cmp(&self.square_sum[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx.truncate(k);
        idx
    }

    /// Ratio of the largest channel RMS to the median channel RMS — a scalar
    /// "outlier-ness" measure used by Fig. 5 / Fig. 9 style analyses.
    pub fn outlier_ratio(&self) -> f64 {
        let mut rms = self.rms();
        if rms.is_empty() {
            return 1.0;
        }
        rms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let max = *rms.last().unwrap();
        let median = rms[rms.len() / 2].max(1e-12);
        max / median
    }
}

/// Summary statistics of one flat slice of values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Smallest value.
    pub min: f32,
    /// Largest value.
    pub max: f32,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Largest absolute value.
    pub abs_max: f32,
}

impl Summary {
    /// Computes summary statistics of `values`.
    ///
    /// Returns an all-zero summary for an empty slice.
    pub fn of(values: &[f32]) -> Summary {
        if values.is_empty() {
            return Summary {
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                std: 0.0,
                abs_max: 0.0,
            };
        }
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        let mut sum = 0.0f64;
        let mut abs_max = 0.0f32;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
            sum += v as f64;
            abs_max = abs_max.max(v.abs());
        }
        let mean = sum / values.len() as f64;
        let var = values
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / values.len() as f64;
        Summary {
            min,
            max,
            mean,
            std: var.sqrt(),
            abs_max,
        }
    }
}

/// Fixed-width histogram over `[lo, hi]` used to render value-distribution
/// figures as text.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f32,
    hi: f32,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` buckets spanning `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f32, hi: f32, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: f32) {
        if v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let t = (v - self.lo) / (self.hi - self.lo);
            let bin = ((t * crate::cast::usize_to_f32(self.counts.len())) as usize).min(self.counts.len() - 1);
            self.counts[bin] += 1;
        }
    }

    /// Records every value of a slice.
    pub fn record_all(&mut self, values: &[f32]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Bucket counts (excluding under/overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of values below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of values at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded values including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

/// Exact quantile of a slice (linear interpolation between order statistics).
///
/// `q` is clamped to `[0, 1]`. Returns `None` on an empty slice.
pub fn quantile(values: &[f32], q: f64) -> Option<f32> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = crate::cast::f64_to_f32(pos - lo as f64);
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_stats_tracks_square_sums() {
        let mut s = ChannelStats::new(2);
        s.update(&Matrix::from_rows(&[&[1.0, 10.0], &[-2.0, -10.0]]));
        assert_eq!(s.count(), 2);
        assert!((s.square_sums()[0] - 5.0).abs() < 1e-9);
        assert!((s.square_sums()[1] - 200.0).abs() < 1e-9);
        assert_eq!(s.top_square_sum_channels(1), vec![1]);
        assert_eq!(s.abs_maxes(), &[2.0, 10.0]);
    }

    #[test]
    fn outlier_ratio_detects_outliers() {
        let mut uniform = ChannelStats::new(8);
        uniform.update(&Matrix::full(4, 8, 1.0));
        assert!((uniform.outlier_ratio() - 1.0).abs() < 1e-9);

        let mut spiky = ChannelStats::new(8);
        let mut m = Matrix::full(4, 8, 1.0);
        for r in 0..4 {
            m.row_mut(r)[3] = 100.0;
        }
        spiky.update(&m);
        assert!(spiky.outlier_ratio() > 50.0);
    }

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[-1.0, 1.0, 3.0]);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean - 1.0).abs() < 1e-12);
        assert_eq!(s.abs_max, 3.0);
        assert!((s.std - (8.0f64 / 3.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn summary_of_empty_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.abs_max, 0.0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record_all(&[-1.0, 0.5, 5.5, 9.99, 10.0, 42.0]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn quantiles() {
        let v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }
}
