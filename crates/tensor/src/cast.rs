//! Checked numeric conversions for the non-quantizer code paths.
//!
//! The quantizer modules (`atom-kernels`, `atom::gptq`, …) perform lossy
//! `as` casts deliberately — rounding to a low-bit grid is their job, and
//! those modules are audited as a unit. Everywhere else, a bare `as` cast
//! is a latent precision or truncation bug waiting for a larger model
//! config, so `atom-lint`'s `lossy-cast` rule bans them and steers callers
//! here. Each helper states its contract and enforces it with a
//! `debug_assert!` (tier-1 tests run in both profiles) while staying total
//! in release builds.

/// Convert a count or dimension to `f32`.
///
/// Exact for all values up to `2^24` (16 777 216), far beyond any tensor
/// dimension, sequence length, or step count this workspace uses. Above
/// that, `f32` can no longer represent every integer and the conversion
/// rounds; the debug assertion makes such a regression loud in tests.
#[inline]
pub fn usize_to_f32(n: usize) -> f32 {
    debug_assert!(
        n <= (1 << 24),
        "usize_to_f32: {n} exceeds f32's exact integer range (2^24)"
    );
    n as f32
}

/// Narrow `f64` to `f32`, clamping overflow to the finite `f32` range.
///
/// Rounding to the nearest representable `f32` is inherent to narrowing
/// and acceptable; silently producing `inf` from a finite `f64` is not.
/// NaN propagates unchanged.
#[inline]
pub fn f64_to_f32(x: f64) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    x.clamp(f64::from(f32::MIN), f64::from(f32::MAX)) as f32
}

/// Convert an index (e.g. an argmax over vocab logits) to a `u16` token id.
///
/// The model configs in this workspace keep vocabularies well under
/// `u16::MAX`; the debug assertion guards that invariant and release
/// builds saturate instead of wrapping.
#[inline]
pub fn usize_to_u16_saturating(n: usize) -> u16 {
    debug_assert!(
        n <= usize::from(u16::MAX),
        "usize_to_u16_saturating: {n} does not fit a u16 token id"
    );
    u16::try_from(n).unwrap_or(u16::MAX)
}

/// Convert a step counter to `i32` (e.g. for `powi` exponents),
/// saturating instead of wrapping on overflow.
#[inline]
pub fn usize_to_i32_saturating(n: usize) -> i32 {
    i32::try_from(n).unwrap_or(i32::MAX)
}

/// Narrow an `i32` to `i8`, saturating at the `i8` range.
///
/// For values the caller has already bounded (e.g. a quantized code
/// computed modulo the grid span) the conversion is exact; the debug
/// assertion flags any call site whose bound reasoning broke, while
/// release builds clamp instead of wrapping.
#[inline]
pub fn i32_to_i8_saturating(v: i32) -> i8 {
    debug_assert!(
        (i32::from(i8::MIN)..=i32::from(i8::MAX)).contains(&v),
        "i32_to_i8_saturating: {v} does not fit an i8"
    );
    i8::try_from(v).unwrap_or(if v < 0 { i8::MIN } else { i8::MAX })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usize_to_f32_is_exact_in_range() {
        assert_eq!(usize_to_f32(0), 0.0);
        assert_eq!(usize_to_f32(4096), 4096.0);
        assert_eq!(usize_to_f32(1 << 24), 16_777_216.0);
    }

    #[test]
    fn f64_to_f32_clamps_and_propagates_nan() {
        assert_eq!(f64_to_f32(1.5), 1.5);
        assert_eq!(f64_to_f32(1e300), f32::MAX);
        assert_eq!(f64_to_f32(-1e300), f32::MIN);
        assert!(f64_to_f32(f64::NAN).is_nan());
    }

    #[test]
    fn u16_and_i32_saturate() {
        assert_eq!(usize_to_u16_saturating(42), 42);
        assert_eq!(usize_to_u16_saturating(usize::from(u16::MAX)), u16::MAX);
        assert_eq!(usize_to_i32_saturating(7), 7);
        assert_eq!(usize_to_i32_saturating(usize::MAX), i32::MAX);
    }

    #[test]
    fn i8_narrowing_is_exact_in_range() {
        assert_eq!(i32_to_i8_saturating(-128), i8::MIN);
        assert_eq!(i32_to_i8_saturating(0), 0);
        assert_eq!(i32_to_i8_saturating(127), i8::MAX);
    }
}
