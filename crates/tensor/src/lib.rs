//! Dense `f32` tensor substrate for the Atom quantization reproduction.
//!
//! This crate provides the numeric foundation every other crate in the
//! workspace builds on: a row-major [`Matrix`] type with blocked matrix
//! multiplication, the neural-network activation/normalization primitives used
//! by Llama-family models ([`ops`]), per-channel statistics used by
//! calibration ([`stats`]), seeded random generators ([`rng`]), and an IEEE
//! 754 half-precision codec ([`mod@f16`]) used by the KV-cache and
//! effective-bit accounting.
//!
//! The crate is deliberately dependency-light and CPU-only: the paper's GPU
//! kernels are reproduced bit-exactly on top of these primitives in
//! `atom-kernels`, while GPU *performance* is modeled in `atom-gpu-sim`.
//!
//! # Example
//!
//! ```
//! use atom_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod cast;
pub mod f16;
pub mod matrix;
pub mod ops;
pub mod rng;
pub mod stats;

pub use matrix::Matrix;
pub use rng::SeededRng;

/// Error type for shape mismatches and invalid arguments in tensor routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable operation name, e.g. `"matmul"`.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// An argument was out of its valid domain.
    InvalidArgument {
        /// Human-readable operation name.
        op: &'static str,
        /// Description of the violated constraint.
        what: String,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{} vs rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::InvalidArgument { op, what } => {
                write!(f, "invalid argument in {op}: {what}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience alias for results returned by fallible tensor routines.
pub type Result<T> = std::result::Result<T, TensorError>;
