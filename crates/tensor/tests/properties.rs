//! Property-based tests for the tensor substrate.

use atom_tensor::f16::{f16_bits_to_f32, f32_to_f16_bits, round_f16};
use atom_tensor::ops::{log_softmax, softmax_in_place};
use atom_tensor::stats::{quantile, Summary};
use atom_tensor::Matrix;
use proptest::prelude::*;

fn small_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #[test]
    fn matmul_associates_with_identity(m in small_matrix()) {
        let i_left = Matrix::eye(m.rows());
        let i_right = Matrix::eye(m.cols());
        prop_assert_eq!(i_left.matmul(&m), m.clone());
        prop_assert_eq!(m.matmul(&i_right), m);
    }

    #[test]
    fn transpose_involution(m in small_matrix()) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_nt_equals_naive(
        a in small_matrix(),
        seed in 0u64..1000,
    ) {
        let mut rng = atom_tensor::SeededRng::new(seed);
        let w = rng.normal_matrix(3, a.cols(), 0.0, 1.0);
        let fast = a.matmul_nt(&w);
        let slow = a.matmul(&w.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_distributes_over_add(
        seed in 0u64..1000,
    ) {
        let mut rng = atom_tensor::SeededRng::new(seed);
        let a = rng.normal_matrix(4, 5, 0.0, 1.0);
        let b = rng.normal_matrix(4, 5, 0.0, 1.0);
        let w = rng.normal_matrix(5, 3, 0.0, 1.0);
        let lhs = a.add(&b).matmul(&w);
        let rhs = a.matmul(&w).add(&b.matmul(&w));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn permute_cols_preserves_multiset(m in small_matrix(), seed in 0u64..100) {
        let mut rng = atom_tensor::SeededRng::new(seed);
        let mut perm: Vec<usize> = (0..m.cols()).collect();
        rng.shuffle(&mut perm);
        let p = m.permute_cols(&perm);
        let mut a: Vec<_> = m.as_slice().iter().map(|v| v.to_bits()).collect();
        let mut b: Vec<_> = p.as_slice().iter().map(|v| v.to_bits()).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn softmax_is_distribution(vals in proptest::collection::vec(-50.0f32..50.0, 1..32)) {
        let mut row = vals;
        softmax_in_place(&mut row);
        let sum: f32 = row.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn softmax_shift_invariant(vals in proptest::collection::vec(-20.0f32..20.0, 2..16), shift in -10.0f32..10.0) {
        let mut a = vals.clone();
        let mut b: Vec<f32> = vals.iter().map(|v| v + shift).collect();
        softmax_in_place(&mut a);
        softmax_in_place(&mut b);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn log_softmax_exp_sums_to_one(vals in proptest::collection::vec(-30.0f32..30.0, 1..16)) {
        let ls = log_softmax(&vals);
        let sum: f32 = ls.iter().map(|v| v.exp()).sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn f16_roundtrip_is_idempotent(v in -65000.0f32..65000.0) {
        let once = round_f16(v);
        let twice = round_f16(once);
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    #[test]
    fn f16_monotone(a in -60000.0f32..60000.0, b in -60000.0f32..60000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(round_f16(lo) <= round_f16(hi));
    }

    #[test]
    fn f16_relative_error_bound(v in 1e-2f32..6e4) {
        let r = round_f16(v);
        prop_assert!(((r - v) / v).abs() <= 2.0f32.powi(-11) + 1e-9);
    }

    #[test]
    fn f16_bits_decode_encode(bits in 0u16..0x7C00) {
        // All positive finite f16 values.
        let v = f16_bits_to_f32(bits);
        prop_assert_eq!(f32_to_f16_bits(v), bits);
    }

    #[test]
    fn summary_bounds(vals in proptest::collection::vec(-1e3f32..1e3, 1..64)) {
        let s = Summary::of(&vals);
        prop_assert!(s.min <= s.max);
        prop_assert!(s.mean >= s.min as f64 - 1e-6 && s.mean <= s.max as f64 + 1e-6);
        prop_assert!(s.abs_max >= s.max.abs() - 1e-6);
        prop_assert!(s.std >= 0.0);
    }

    #[test]
    fn quantile_monotone(vals in proptest::collection::vec(-1e3f32..1e3, 1..64)) {
        let q1 = quantile(&vals, 0.25).unwrap();
        let q2 = quantile(&vals, 0.75).unwrap();
        prop_assert!(q1 <= q2);
    }
}
