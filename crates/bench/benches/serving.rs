//! Criterion benches of the serving substrate: paged-allocator operations,
//! scheduler steps, and full end-to-end serving simulations.

use atom_data::WorkloadSpec;
use atom_gpu_sim::{HardwareProfile, LlamaGpuConfig, SimScheme};
use atom_serve::{ContinuousBatcher, PagedAllocator, ServingSimulator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("paged_allocator");
    group.bench_function("grow_release_cycle", |b| {
        b.iter(|| {
            let mut a = PagedAllocator::new(1024, 16);
            for seq in 0..64 {
                a.register(seq);
                a.grow(seq, 200).expect("fits");
            }
            for seq in 0..64 {
                a.release(seq);
            }
            a.free_blocks()
        })
    });
    group.finish();

    let trace = WorkloadSpec::default().generate(64, 7);

    let mut group = c.benchmark_group("scheduler");
    group.bench_function("full_trace_scheduling", |b| {
        b.iter(|| {
            let mut batcher = ContinuousBatcher::new(16, PagedAllocator::new(100_000, 16))
                .expect("positive max_batch");
            for &r in &trace {
                batcher.submit(r).expect("fits the pool");
            }
            let mut steps = 0usize;
            while !batcher.is_idle() {
                batcher.admit();
                batcher.complete_prefill();
                batcher.step_decode();
                steps += 1;
                assert!(steps < 1_000_000);
            }
            steps
        })
    });
    group.finish();

    let mut group = c.benchmark_group("end_to_end_sim");
    group.sample_size(10);
    for scheme in SimScheme::all() {
        group.bench_with_input(
            BenchmarkId::new("trace_64_reqs", scheme.label()),
            &scheme,
            |b, &scheme| {
                let sim = ServingSimulator::with_device_memory(
                    LlamaGpuConfig::llama7b(),
                    HardwareProfile::rtx4090(),
                    scheme,
                    32,
                );
                b.iter(|| sim.run(&trace).expect("non-empty trace"))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_serving
}
criterion_main!(benches);
