//! Criterion benches of the quantized-KV attention kernel (Fig. 11b's
//! measured counterpart at CPU scale): FP32 reference vs dequantize-on-load
//! INT8 and INT4 KV.

use atom_kernels::attention::{attention_quant_kv, attention_reference, QuantizedKvHead};
use atom_tensor::SeededRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_attention(c: &mut Criterion) {
    let mut rng = SeededRng::new(2);
    let head_dim = 32usize;

    // Report the memory-traffic reduction driving the GPU-side speedup.
    {
        let k = rng.normal_matrix(1024, head_dim, 0.0, 1.0);
        let v = rng.normal_matrix(1024, head_dim, 0.0, 1.0);
        for bits in [8u8, 4] {
            let mut kv = QuantizedKvHead::new(head_dim, bits);
            kv.append(&k, &v);
            println!(
                "kv bytes at 1024 tokens: int{bits} = {} (fp32 = {})",
                kv.packed_bytes(),
                2 * 1024 * head_dim * 4
            );
        }
    }

    let mut group = c.benchmark_group("attention");
    for kv_len in [128usize, 512, 1024] {
        let k = rng.normal_matrix(kv_len, head_dim, 0.0, 1.0);
        let v = rng.normal_matrix(kv_len, head_dim, 0.0, 1.0);
        let q = rng.normal_matrix(1, head_dim, 0.0, 1.0);
        let scale = 1.0 / (head_dim as f32).sqrt();

        group.bench_with_input(BenchmarkId::new("fp32_reference", kv_len), &kv_len, |b, _| {
            b.iter(|| attention_reference(&q, &k, &v, scale))
        });
        for bits in [8u8, 4] {
            let mut kv = QuantizedKvHead::new(head_dim, bits);
            kv.append(&k, &v);
            group.bench_with_input(
                BenchmarkId::new(format!("quant_kv_int{bits}"), kv_len),
                &kv_len,
                |b, _| b.iter(|| attention_quant_kv(&q, &kv, scale)),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_attention
}
criterion_main!(benches);
