//! Criterion benches of the real CPU GEMM kernels (Fig. 11a's measured
//! counterpart at CPU scale): FP32 reference vs the fused group-dequant
//! INT4/INT8 pipeline and the mixed-precision GEMM.

use atom_kernels::gemm::{fused_group_gemm, mixed_gemm};
use atom_kernels::{GroupQuantized, QuantSpec};
use atom_tensor::SeededRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_gemm(c: &mut Criterion) {
    let mut rng = SeededRng::new(1);
    let k = 256usize;
    let n = 256usize;
    let w = rng.normal_matrix(n, k, 0.0, 0.5);
    let qw4 = GroupQuantized::quantize(&w, QuantSpec::new(4, 16));
    let qw8 = GroupQuantized::quantize(&w, QuantSpec::new(8, 16));

    println!(
        "weight bytes: fp32 {} / int8+scales {} / int4+scales {}",
        n * k * 4,
        qw8.packed_bytes(),
        qw4.packed_bytes()
    );

    let mut group = c.benchmark_group("gemm");
    for batch in [1usize, 16, 64] {
        let x = rng.normal_matrix(batch, k, 0.0, 1.0);
        group.bench_with_input(BenchmarkId::new("fp32_reference", batch), &x, |b, x| {
            b.iter(|| x.matmul_nt(&w))
        });
        group.bench_with_input(BenchmarkId::new("fused_int4_group16", batch), &x, |b, x| {
            b.iter(|| {
                let qa = GroupQuantized::quantize(x, QuantSpec::new(4, 16));
                fused_group_gemm(&qa, &qw4).expect("shapes ok")
            })
        });
        group.bench_with_input(BenchmarkId::new("fused_int8_group16", batch), &x, |b, x| {
            b.iter(|| {
                let qa = GroupQuantized::quantize(x, QuantSpec::new(8, 16));
                fused_group_gemm(&qa, &qw8).expect("shapes ok")
            })
        });
    }
    group.finish();

    // Mixed-precision GEMM: 240 INT4 channels + 16 INT8 outlier channels.
    let mut group = c.benchmark_group("mixed_gemm");
    let w_n = rng.normal_matrix(n, 240, 0.0, 0.5);
    let w_o = rng.normal_matrix(n, 16, 0.0, 0.5);
    let qwn = GroupQuantized::quantize(&w_n, QuantSpec::new(4, 16));
    let qwo = GroupQuantized::quantize(&w_o, QuantSpec::new(8, 16));
    for batch in [16usize, 64] {
        let x_n = rng.normal_matrix(batch, 240, 0.0, 1.0);
        let x_o = rng.normal_matrix(batch, 16, 0.0, 30.0);
        group.bench_with_input(
            BenchmarkId::new("int4_plus_int8_outliers", batch),
            &(x_n, x_o),
            |b, (x_n, x_o)| {
                b.iter(|| {
                    let qa_n = GroupQuantized::quantize(x_n, QuantSpec::new(4, 16));
                    let qa_o = GroupQuantized::quantize(x_o, QuantSpec::new(8, 16));
                    mixed_gemm(&qa_n, &qwn, Some((&qa_o, &qwo))).expect("shapes ok")
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm
}
criterion_main!(benches);
