//! Criterion benches of the quantization operators themselves: dynamic
//! per-token group quantization (the runtime epilogue of §4.3), channel
//! reordering, asymmetric KV quantization, and offline GPTQ.

use atom::calibrate::ReorderPlan;
use atom::gptq::{gptq_quantize, GptqConfig};
use atom_kernels::{AsymQuantized, GroupQuantized, QuantSpec};
use atom_tensor::SeededRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_quantize(c: &mut Criterion) {
    let mut rng = SeededRng::new(3);
    let k = 256usize;

    let mut group = c.benchmark_group("dynamic_quantize");
    for batch in [16usize, 128] {
        let x = rng.normal_matrix(batch, k, 0.0, 1.0);
        group.bench_with_input(BenchmarkId::new("int4_group16", batch), &x, |b, x| {
            b.iter(|| GroupQuantized::quantize(x, QuantSpec::new(4, 16)))
        });
        group.bench_with_input(BenchmarkId::new("int8_per_token", batch), &x, |b, x| {
            b.iter(|| GroupQuantized::quantize(x, QuantSpec::new(8, usize::MAX)))
        });
        group.bench_with_input(BenchmarkId::new("asym_int4_per_row", batch), &x, |b, x| {
            b.iter(|| AsymQuantized::quantize(x, 4))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("reorder");
    let plan = ReorderPlan::from_outlier_set(k, &[3, 77, 130, 200, 250, 13, 99, 180]);
    for batch in [16usize, 128] {
        let x = rng.normal_matrix(batch, k, 0.0, 1.0);
        group.bench_with_input(BenchmarkId::new("activation_reorder", batch), &x, |b, x| {
            b.iter(|| plan.reorder_activation(x))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("gptq_offline");
    group.sample_size(10);
    for k in [64usize, 128] {
        let w = rng.normal_matrix(64, k, 0.0, 1.0);
        let x = rng.normal_matrix(256, k, 0.0, 1.0);
        let mut gram = vec![0.0f64; k * k];
        for r in 0..x.rows() {
            let row = x.row(r);
            for i in 0..k {
                for j in 0..k {
                    gram[i * k + j] += row[i] as f64 * row[j] as f64;
                }
            }
        }
        let cfg = GptqConfig::uniform(QuantSpec::new(4, 16));
        group.bench_with_input(BenchmarkId::new("gptq_64xk", k), &k, |b, _| {
            b.iter(|| gptq_quantize(&w, Some(&gram), &cfg))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_quantize
}
criterion_main!(benches);
