//! Benchmark harness regenerating every table and figure of the Atom paper.
//!
//! One binary per experiment (run with `cargo run --release -p atom-bench
//! --bin <name>`):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig02_ppl_vs_size` | Fig. 2 — W4A4 perplexity across model sizes |
//! | `fig03_runtime_breakdown` | Fig. 3 — dense/attention/other runtime |
//! | `fig04_roofline` | Fig. 4 — roofline of quantization approaches |
//! | `fig05_outliers` | Fig. 5 — activation outliers before/after reorder |
//! | `fig09_vcache` | Fig. 9 — V-cache value distribution |
//! | `fig10_end_to_end` | Fig. 10 — serving throughput/latency/fixed-memory |
//! | `fig11_kernels` | Fig. 11 — GEMM/attention sweeps + measured scalar-vs-SWAR gate |
//! | `table1_zeroshot` | Table 1 — zero-shot accuracy |
//! | `table2_perplexity` | Table 2 — perplexity on three corpora |
//! | `table3_ablation` | Table 3 — accuracy ablation ladder |
//! | `table4_generality` | Table 4 — Llama-2-like / MoE / FP4 |
//! | `table5_kernel_ablation` | §5.4.2 — fused-kernel TOPS and reorder fusion |
//! | `ablation_dynamic_vs_static` | §4.3 counterfactual — dynamic vs static scales |
//! | `ablation_mx` | §6 outlook — MX/microscaling block formats |
//! | `ablation_w4a8` | QServe-style W4A8 operating point |
//! | `ext_tensor_parallel` | multi-GPU tensor-parallel simulator extension |
//! | `chaos_serve` | robustness — engine under seeded faults + KV pressure |
//! | `slo_gate` | robustness — gateway SLO attainment under chaos, 1/2/8 threads |
//! | `prefix_gate` | prefix cache — hit TTFT collapse + KV sharing, bit-identical |
//! | `scaling_threads` | pool thread-scaling sweep, bit-identity across widths and kernel paths |
//! | `telemetry_report` | measured Fig. 3 breakdown vs roofline, instrumentation overhead |
//!
//! Each binary prints an aligned text table and writes the same content to
//! `results/<name>.txt`. Criterion benches (`cargo bench -p atom-bench`)
//! measure the *real CPU kernels* (packed GEMM, quantized-KV attention,
//! dynamic quantization, serving-simulator steps).

#![forbid(unsafe_code)]
use atom::Calibration;
use atom_nn::{zoo, DenseLinear, LlamaModel};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Renders an aligned text table.
///
/// # Example
///
/// ```
/// let t = atom_bench::table(&["a", "bb"], &[vec!["1".into(), "2".into()]]);
/// assert!(t.contains("bb"));
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i >= widths.len() {
                widths.push(cell.len());
            } else {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            let _ = write!(out, "{cell:>w$}  ");
        }
        out.push('\n');
    };
    fmt_row(&mut out, &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        fmt_row(&mut out, row);
    }
    out
}

/// Prints a report and writes it to `results/<name>.txt`.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    std::fs::write(dir.join(format!("{name}.txt")), content).expect("write results file");
    eprintln!("[written to results/{name}.txt]");
}

/// The repository's `results/` directory.
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Reads a `--<name> <value>` or `--<name>=<value>` u64 flag from the
/// command line, falling back to `default`. Accepts decimal or `0x`-prefixed
/// hex. Bench binaries use this for reproducible seeds (`--seed 42`).
///
/// Exits with status 2 on a malformed value — a bad seed silently replaced
/// by the default would un-reproduce the run it was meant to reproduce.
pub fn arg_u64(name: &str, default: u64) -> u64 {
    let flag = format!("--{name}");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let value = if a == flag {
            args.next()
        } else if let Some(rest) = a.strip_prefix(&flag) {
            rest.strip_prefix('=').map(str::to_string)
        } else {
            None
        };
        if let Some(v) = value {
            return parse_u64(&v).unwrap_or_else(|| {
                eprintln!("invalid {flag} value: {v:?} (expected u64, decimal or 0x-hex)");
                std::process::exit(2);
            });
        }
    }
    default
}

/// Parses a u64 from decimal or `0x`-prefixed hex.
fn parse_u64(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Loads a zoo model together with its calibration (Gram matrices
/// included), using the paper's 128 calibration sentences.
pub fn calibrated(id: zoo::ZooId) -> (LlamaModel<DenseLinear>, Calibration) {
    let model = zoo::trained(id);
    let seqs = zoo::calibration_sequences(128);
    let calib = Calibration::collect(&model, &seqs, true, 2);
    (model, calib)
}

/// Formats a float with 3 decimals, using scientific notation for huge
/// values (matching the paper's "2.7e4" style for diverged baselines).
pub fn fmt_ppl(v: f64) -> String {
    if !v.is_finite() {
        return "inf".into();
    }
    if v >= 1000.0 {
        format!("{v:.1e}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats a probability as a percentage with 2 decimals.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.2}", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = table(
            &["name", "v"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "2.25".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn ppl_formatting() {
        assert_eq!(fmt_ppl(5.681), "5.68");
        assert_eq!(fmt_ppl(27000.0), "2.7e4");
        assert_eq!(fmt_ppl(f64::INFINITY), "inf");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(fmt_pct(0.7737), "77.37");
    }

    #[test]
    fn u64_parsing_accepts_decimal_and_hex() {
        assert_eq!(parse_u64("42"), Some(42));
        assert_eq!(parse_u64("0xC4A0"), Some(0xC4A0));
        assert_eq!(parse_u64("0X51e9"), Some(0x51E9));
        assert_eq!(parse_u64("nope"), None);
        assert_eq!(parse_u64("-3"), None);
    }

    #[test]
    fn arg_u64_falls_back_to_default() {
        // The test binary's argv carries no --seed flag.
        assert_eq!(arg_u64("seed", 7), 7);
    }
}
