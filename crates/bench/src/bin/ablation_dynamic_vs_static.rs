//! §4.3 design ablation: dynamic vs static activation quantization.
//!
//! The paper *argues* for dynamic quantization ("tailoring quantization
//! parameters for each activation matrix during inference... the advantage
//! [of fine-grained quantization] would diminish if we statically calculated
//! the quantization parameters based on calibration data") but does not
//! table the counterfactual. This binary runs it: the identical Atom W4A4
//! pipeline with per-token dynamic scales vs calibration-frozen static
//! scales.

#![forbid(unsafe_code)]
use atom::pipeline::{AnyLinear, AtomScheme, QuantizedModel, Scheme};
use atom::qlinear::{AtomLinearConfig, OutlierMode, QuantizedLinear};
use atom::ReorderPlan;
use atom_data::CorpusStyle;
use atom_kernels::QuantSpec;
use atom_nn::{eval, zoo, LinearLayer};

fn main() {
    let mut rows = Vec::new();
    for id in [zoo::ZooId::Tiny, zoo::ZooId::Small] {
        let (model, calib) = atom_bench::calibrated(id);
        let tokens = zoo::validation_tokens(CorpusStyle::Wiki);
        let tokens = &tokens[..tokens.len().min(2500)];
        let scheme = AtomScheme::w4a4();

        let fp = eval::perplexity(&model, tokens, 96);
        let dynamic = Scheme::Atom(scheme)
            .quantize(&model, &calib)
            .perplexity(tokens, 96);

        // Same pipeline, static activation scales frozen from calibration.
        let static_model = model.clone().map_linears(|lid, dense| {
            let lc = calib.linear(lid).expect("calibrated");
            let k = dense.in_features();
            let n_outliers = scheme.outliers_for(k);
            let plan = ReorderPlan::from_stats(&lc.stats, n_outliers);
            let cfg = AtomLinearConfig {
                weight: QuantSpec::new(scheme.bits, scheme.group).with_clip(scheme.clip_w),
                act: QuantSpec::new(scheme.bits, scheme.group).with_clip(scheme.clip_a),
                n_outliers,
                outlier_mode: OutlierMode::Int8,
                use_gptq: true,
            };
            AnyLinear::Atom(
                QuantizedLinear::quantize(&dense, plan, lc.gram.as_deref(), &cfg)
                    .with_static_activations(&lc.sample),
            )
        });
        let static_ppl = QuantizedModel {
            model: static_model,
            kv_bits: scheme.kv_bits,
        }
        .perplexity(tokens, 96);

        rows.push(vec![
            id.label().to_string(),
            atom_bench::fmt_ppl(fp),
            atom_bench::fmt_ppl(dynamic),
            atom_bench::fmt_ppl(static_ppl),
            format!("{:+.2}", static_ppl - dynamic),
        ]);
        eprintln!("[ablation_dyn_static] finished {}", id.label());
    }
    let body = atom_bench::table(
        &["model", "FP16", "Atom dynamic", "Atom static", "static penalty"],
        &rows,
    );
    let content = format!(
        "§4.3 ablation — dynamic vs static activation quantization (Atom W4A4, wiki ppl)\n\
         (paper's design argument: static scales miss each input's local distribution,\n\
          so dynamic per-token quantization should win)\n\n{body}"
    );
    atom_bench::emit("ablation_dynamic_vs_static", &content);
}
