//! Telemetry report: a **measured** Fig. 3-style runtime breakdown of the
//! CPU serving stack (GEMM vs attention vs quantization epilogue vs
//! scheduler), printed next to the gpu-sim roofline prediction recorded
//! under identical metric names.
//!
//! The binary runs the same Atom-W4A4 serving workload twice — once with
//! the global telemetry disabled (the default) and once enabled — so the
//! report also documents the overhead of the instrumentation hooks in both
//! states. It then writes:
//!
//! * `results/telemetry_report.txt` / `.json` — the breakdown + overhead,
//! * `results/telemetry_metrics.prom` / `.json` — full metric exports,
//! * `results/telemetry_trace.json` — Chrome `trace_event` spans
//!   (load in `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! Exits non-zero if the breakdown components cover less than 95% of the
//! measured wall time (the instrumentation would be missing a hot path).

#![forbid(unsafe_code)]
use atom::pipeline::{AtomScheme, Scheme};
use atom::{AnyLinear, Calibration};
use atom_gpu_sim::{HardwareProfile, LlamaGpuConfig, Phase, SimScheme};
use atom_nn::kv::Fp32KvCache;
use atom_nn::zoo;
use atom_nn::LlamaModel;
use atom_serve::engine::CpuEngine;
use atom_serve::PrefixConfig;
use atom_telemetry::{export, names, MetricsSnapshot, Telemetry};
use std::fmt::Write as _;
use std::time::Instant;

const REQUESTS: usize = 16;
const MAX_BATCH: usize = 4;
const KV_POOL_TOKENS: usize = 1024; // roomy: this is a timing run, not a pressure run

struct RunStats {
    wall_s: f64,
    tokens: usize,
    steps: usize,
}

/// Runs the fixed serving workload on a freshly quantized engine and times
/// the `run_to_completion` loop (submissions land before the clock starts).
fn run_workload(model: LlamaModel<AnyLinear>) -> RunStats {
    let config = *model.config();
    let mut engine = CpuEngine::new(
        model,
        Box::new(move || Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))),
        MAX_BATCH,
        KV_POOL_TOKENS,
    )
    .expect("valid engine config")
    .with_prefix_cache(PrefixConfig::default());
    // Every prompt opens with the same 16-token system prefix so the
    // prefix-cache metrics show up in the report with real traffic behind
    // them (the first request donates, the rest hit).
    for i in 0..REQUESTS {
        let len = 8 + (i * 5) % 17;
        let max_new = 8 + (i * 3) % 9;
        let mut prompt: Vec<u16> = (0..16u16).map(|t| (t * 5) % 96).collect();
        prompt.extend(
            (0..len).map(|t| atom_tensor::cast::usize_to_u16_saturating((i * 13 + t * 7) % 96)),
        );
        engine.submit(prompt, max_new).expect("admission under a roomy pool");
    }
    let start = Instant::now(); // lint: allow(time-entropy) — measured-wall vs roofline comparison is the point of this report
    engine.run_to_completion();
    let wall_s = start.elapsed().as_secs_f64();
    let tokens = engine.outcomes().iter().map(|o| o.tokens.len()).sum();
    RunStats { wall_s, tokens, steps: engine.steps() }
}

fn hist_sum(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.histograms.get(name).map_or(0, |h| h.sum)
}

fn pct(part: u64, total: u64) -> String {
    if total == 0 {
        return "-".into();
    }
    format!("{:.1}%", part as f64 / total as f64 * 100.0)
}

fn main() {
    let model = zoo::trained(zoo::ZooId::Tiny);
    let calib = Calibration::collect(&model, &zoo::calibration_sequences(64), true, 2);
    let scheme = Scheme::Atom(AtomScheme::w4a4());

    // Warm-up (uncounted), then the disabled-mode baseline: the global
    // telemetry starts disabled, so these runs pay exactly one relaxed
    // atomic load per hook.
    run_workload(scheme.quantize(&model, &calib).model);
    let disabled = run_workload(scheme.quantize(&model, &calib).model);

    Telemetry::enable_global();
    let enabled = run_workload(scheme.quantize(&model, &calib).model);
    let snap = Telemetry::global().metrics().snapshot();

    // Measured breakdown. Scheduler time is everything in a step outside
    // the model forward; "other" is the forward residue outside the three
    // instrumented operator classes (norms, embeddings, sampling).
    let step_ns = hist_sum(&snap, names::ENGINE_STEP_WALL_NS);
    let fwd_ns = hist_sum(&snap, names::MODEL_FORWARD_WALL_NS);
    let gemm_ns = hist_sum(&snap, names::OP_GEMM_WALL_NS);
    let attn_ns = hist_sum(&snap, names::OP_ATTENTION_WALL_NS);
    let quant_ns = hist_sum(&snap, names::OP_QUANT_WALL_NS);
    let other_ns = fwd_ns.saturating_sub(gemm_ns + attn_ns + quant_ns);
    let sched_ns = step_ns.saturating_sub(fwd_ns);
    let wall_ns = (enabled.wall_s * 1e9) as u64;
    let coverage = step_ns as f64 / wall_ns as f64;

    // Simulated twin: one Atom-W4A4 decode iteration of the paper's
    // Llama-7B on the RTX 4090 roofline, recorded under the same names.
    let sim = Telemetry::enabled();
    atom_gpu_sim::record_iteration(
        &sim,
        &LlamaGpuConfig::llama7b(),
        SimScheme::AtomW4A4,
        64,
        1024,
        Phase::Decode,
        &HardwareProfile::rtx4090(),
    );
    let sim_snap = sim.metrics().snapshot();
    let sim_gemm = hist_sum(&sim_snap, names::OP_GEMM_WALL_NS);
    let sim_attn = hist_sum(&sim_snap, names::OP_ATTENTION_WALL_NS);
    let sim_quant = hist_sum(&sim_snap, names::OP_QUANT_WALL_NS);
    let sim_other = hist_sum(&sim_snap, names::OP_OTHER_WALL_NS);
    let sim_total = hist_sum(&sim_snap, names::MODEL_FORWARD_WALL_NS);

    let rows = vec![
        breakdown_row("op.gemm", gemm_ns, step_ns, sim_gemm, sim_total),
        breakdown_row("op.attention", attn_ns, step_ns, sim_attn, sim_total),
        breakdown_row("op.quant", quant_ns, step_ns, sim_quant, sim_total),
        breakdown_row("op.other", other_ns, step_ns, sim_other, sim_total),
        breakdown_row("scheduler", sched_ns, step_ns, 0, 0),
    ];
    let table = atom_bench::table(
        &["component", "measured ns", "share", "roofline ns", "share"],
        &rows,
    );

    let ttft = snap.histograms.get(names::ENGINE_TTFT_STEPS);
    let tpot = snap.histograms.get(names::ENGINE_TPOT_MILLISTEPS);
    let lat_rows = vec![
        vec![
            "TTFT (steps)".to_string(),
            q(ttft, 0.5),
            q(ttft, 0.9),
            q(ttft, 0.99),
        ],
        vec![
            "TPOT (millisteps)".to_string(),
            q(tpot, 0.5),
            q(tpot, 0.9),
            q(tpot, 0.99),
        ],
    ];
    let lat_table = atom_bench::table(&["latency", "p50", "p90", "p99"], &lat_rows);

    let disabled_tps = disabled.tokens as f64 / disabled.wall_s;
    let enabled_tps = enabled.tokens as f64 / enabled.wall_s;

    let mut content = String::new();
    let _ = writeln!(
        content,
        "Telemetry report — Atom W4A4 tiny model, {REQUESTS} requests, max batch {MAX_BATCH}.\n\
         Measured CPU breakdown over {} engine steps ({:.3}s wall) vs the gpu-sim\n\
         roofline prediction for one Llama-7B decode iteration (batch 64, kv 1024, RTX 4090),\n\
         both recorded under identical atom_telemetry::names keys.\n\n{table}",
        enabled.steps, enabled.wall_s,
    );
    let _ = writeln!(
        content,
        "breakdown coverage: components sum to {:.1}% of measured wall time (gate: >=95%)\n",
        coverage * 100.0
    );
    let _ = writeln!(content, "{lat_table}");
    let _ = writeln!(
        content,
        "instrumentation overhead: disabled-mode run {:.0} tok/s, enabled-mode run {:.0} tok/s\n\
         (enabled/disabled throughput ratio {:.3}). The disabled path is one relaxed atomic\n\
         load per hook — no clocks, no locks — so disabled-mode throughput is the baseline.",
        disabled_tps,
        enabled_tps,
        enabled_tps / disabled_tps,
    );
    let _ = writeln!(
        content,
        "terminal counters: completed={} preempted={} degraded={} faults={}",
        snap.counter(names::ENGINE_TERMINAL_COMPLETED),
        snap.counter(names::ENGINE_PREEMPTIONS),
        snap.counter(names::ENGINE_DEGRADED_ADMISSIONS),
        snap.counter(names::ENGINE_FAULTS),
    );
    let _ = writeln!(
        content,
        "kernel path calls: gemm scalar={} swar={}, attention scalar={} swar={}\n\
         (the serving run decodes on the env-selected path — `ATOM_KERNEL_PATH` — so one side\n\
         of the gemm pair is expected to be zero; the attention pair counts the quantized-KV\n\
         kernel, which this workload reaches through dequantize-on-load instead, so both sides\n\
         can be zero here. Both paths are proven bit-identical either way.)",
        snap.counter(names::OP_GEMM_SCALAR_CALLS),
        snap.counter(names::OP_GEMM_SWAR_CALLS),
        snap.counter(names::OP_ATTENTION_SCALAR_CALLS),
        snap.counter(names::OP_ATTENTION_SWAR_CALLS),
    );
    let hit_ttft = snap.histograms.get(names::PREFIX_HIT_TTFT_STEPS);
    let _ = writeln!(
        content,
        "prefix cache: hits={} misses={} evictions={} cow_forks={} hit-TTFT p50={} steps",
        snap.counter(names::PREFIX_HITS),
        snap.counter(names::PREFIX_MISSES),
        snap.counter(names::PREFIX_EVICTIONS),
        snap.counter(names::PREFIX_COW_FORKS),
        q(hit_ttft, 0.5),
    );
    atom_bench::emit("telemetry_report", &content);

    // JSON twin plus the raw exporter outputs and the Chrome trace.
    let dir = atom_bench::results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let json = format!(
        "{{\n  \"measured\": {{\n    \"wall_ns\": {wall_ns},\n    \"step_ns\": {step_ns},\n    \
         \"gemm_ns\": {gemm_ns},\n    \"attention_ns\": {attn_ns},\n    \"quant_ns\": {quant_ns},\n    \
         \"other_ns\": {other_ns},\n    \"scheduler_ns\": {sched_ns},\n    \"coverage\": {coverage:.4}\n  }},\n  \
         \"roofline\": {{\n    \"total_ns\": {sim_total},\n    \"gemm_ns\": {sim_gemm},\n    \
         \"attention_ns\": {sim_attn},\n    \"quant_ns\": {sim_quant},\n    \"other_ns\": {sim_other}\n  }},\n  \
         \"overhead\": {{\n    \"disabled_tok_per_s\": {disabled_tps:.1},\n    \
         \"enabled_tok_per_s\": {enabled_tps:.1},\n    \
         \"enabled_over_disabled\": {:.4}\n  }},\n  \
         \"prefix_cache\": {{\n    \"hits\": {},\n    \"misses\": {},\n    \
         \"evictions\": {},\n    \"cow_forks\": {}\n  }},\n  \
         \"kernel_paths\": {{\n    \"gemm_scalar_calls\": {},\n    \"gemm_swar_calls\": {},\n    \
         \"attention_scalar_calls\": {},\n    \"attention_swar_calls\": {}\n  }}\n}}\n",
        enabled_tps / disabled_tps,
        snap.counter(names::PREFIX_HITS),
        snap.counter(names::PREFIX_MISSES),
        snap.counter(names::PREFIX_EVICTIONS),
        snap.counter(names::PREFIX_COW_FORKS),
        snap.counter(names::OP_GEMM_SCALAR_CALLS),
        snap.counter(names::OP_GEMM_SWAR_CALLS),
        snap.counter(names::OP_ATTENTION_SCALAR_CALLS),
        snap.counter(names::OP_ATTENTION_SWAR_CALLS),
    );
    std::fs::write(dir.join("telemetry_report.json"), json).expect("write json report");
    std::fs::write(dir.join("telemetry_metrics.prom"), export::prometheus_text(&snap))
        .expect("write prometheus export");
    std::fs::write(dir.join("telemetry_metrics.json"), export::json(&snap))
        .expect("write metrics json");
    let events = Telemetry::global().tracer().drain();
    std::fs::write(dir.join("telemetry_trace.json"), export::chrome_trace(&events))
        .expect("write chrome trace");
    eprintln!(
        "[written to results/telemetry_report.json, telemetry_metrics.{{prom,json}}, \
         telemetry_trace.json ({} spans)]",
        events.len()
    );

    if coverage < 0.95 {
        eprintln!(
            "BREAKDOWN COVERAGE VIOLATED: components sum to {:.1}% of wall time (< 95%)",
            coverage * 100.0
        );
        std::process::exit(1);
    }
}

fn breakdown_row(name: &str, ns: u64, total: u64, sim_ns: u64, sim_total: u64) -> Vec<String> {
    vec![
        name.to_string(),
        ns.to_string(),
        pct(ns, total),
        if sim_total == 0 { "-".into() } else { sim_ns.to_string() },
        pct(sim_ns, sim_total),
    ]
}

fn q(h: Option<&atom_telemetry::HistogramSnapshot>, quantile: f64) -> String {
    h.and_then(|h| h.quantile(quantile))
        .map_or_else(|| "-".into(), |v| v.to_string())
}
