//! SLO gate: the full serving stack — gateway + Atom W4A4 engine — under
//! an open-loop multi-tenant flash-crowd trace with a seeded chaos fault
//! plan, graded against latency SLOs and replayed at several thread-pool
//! widths to prove bit-identical behaviour.
//!
//! The run replays one deterministic trace (interactive + batch tenants,
//! flash-crowd arrival curve) through a gateway configured with rate
//! limits, weighted fairness, retry/backoff, a brownout breaker, and a
//! graceful drain at the end. From the telemetry histograms it reports
//! p50/p99 TTFT and TPOT in gateway ticks plus SLO attainment (the
//! fraction of completed requests at or under the target), then gates —
//! with a non-zero exit for CI — on:
//!
//! 1. exactly one terminal per accepted request, zero lost in the drain;
//! 2. bit-identical outcomes and SLO report at 1, 2, and 8 threads;
//! 3. SLO attainment and completion-rate floors.

#![forbid(unsafe_code)]
use atom::pipeline::{AtomScheme, Scheme};
use atom::{Calibration, QuantizedKvCache};
use atom_data::{ArrivalPattern, TenantTraffic, TrafficSpec};
use atom_gateway::{Gateway, GatewayConfig, GatewayOutcome, RejectCounts, TenantSpec};
use atom_nn::kv::Fp32KvCache;
use atom_nn::zoo;
use atom_parallel::Pool;
use atom_serve::engine::CpuEngine;
use atom_serve::fault::{FaultPlan, FaultRates};
use atom_serve::PressurePolicy;
use atom_telemetry::{names, MetricsSnapshot, Telemetry};
use std::fmt::Write as _;
use std::sync::Arc;

const DEFAULT_SEED: u64 = 0x510;
const KV_POOL_TOKENS: usize = 1024; // 64 blocks
const MAX_BATCH: usize = 8;
const HORIZON_TICKS: u64 = 90;
const FAULT_HORIZON_STEPS: usize = 600;
const DRAIN_BUDGET_TICKS: u64 = 3_000;

/// SLO targets, in gateway ticks (one engine step per tick).
const TTFT_SLO_TICKS: u64 = 60;
const TPOT_SLO_MILLITICKS: u64 = 2_500;
/// Gates: deterministic for a fixed seed+trace, with margin for the
/// default seed so an intentional change shows up as a clear regression,
/// not noise.
const MIN_TTFT_ATTAINMENT: f64 = 0.90;
const MIN_COMPLETION_RATE: f64 = 0.90;

struct RunResult {
    outcomes: Vec<GatewayOutcome>,
    snapshot: MetricsSnapshot,
    offered: u64,
    accepted: u64,
    rejects: RejectCounts,
    retries: u64,
    ticks: u64,
    converged: bool,
}

fn main() {
    let seed = atom_bench::arg_u64("seed", DEFAULT_SEED);

    // Trained tiny model, quantized with the paper's W4A4 Atom scheme.
    let model = zoo::trained(zoo::ZooId::Tiny);
    let calib = Calibration::collect(&model, &zoo::calibration_sequences(64), true, 2);
    let quantized = Scheme::Atom(AtomScheme::w4a4()).quantize(&model, &calib);
    let weights = quantized.model;

    // Open-loop multi-tenant trace: an interactive tenant with deadlines
    // and a batch tenant, hit by a flash crowd one third in.
    let spec = TrafficSpec {
        base_rate_per_tick: 0.9,
        pattern: ArrivalPattern::FlashCrowd {
            at_tick: HORIZON_TICKS / 3,
            magnitude: 4.0,
            decay_ticks: 20,
        },
        horizon_ticks: HORIZON_TICKS,
        tenants: vec![
            TenantTraffic::interactive(0.65, 70),
            TenantTraffic::batch(0.35),
        ],
        users_per_request: 10_000,
    };
    let trace = spec.generate(seed);
    let users = spec.simulated_users(trace.len());

    let runs: Vec<(usize, RunResult)> = [1usize, 2, 8]
        .iter()
        .map(|&threads| (threads, run_stack(&weights, &trace, seed, threads)))
        .collect();

    let mut violations: Vec<String> = Vec::new();
    let Some((_, base)) = runs.first() else {
        eprintln!("INVARIANT VIOLATED: no runs executed");
        std::process::exit(1);
    };

    // Gate 1 — lifecycle: drain converged, exactly one terminal per
    // accepted request, no duplicate ids, offered = accepted + rejected.
    for (threads, r) in &runs {
        if !r.converged {
            violations.push(format!("{threads}-thread run did not drain to idle"));
        }
        if r.outcomes.len() as u64 != r.accepted {
            violations.push(format!(
                "{threads}-thread run lost requests: {} terminals for {} accepted",
                r.outcomes.len(),
                r.accepted
            ));
        }
        let mut ids: Vec<usize> = r.outcomes.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != r.outcomes.len() {
            violations.push(format!("{threads}-thread run has duplicate terminal records"));
        }
        if r.offered != r.accepted + r.rejects.total() {
            violations.push(format!(
                "{threads}-thread run dropped offers: {} offered, {} accepted, {} rejected",
                r.offered,
                r.accepted,
                r.rejects.total()
            ));
        }
    }

    // Gate 2 — determinism: every width reproduces the width-1 run bit
    // for bit (admission decisions, retry schedules, outcomes, report).
    for (threads, r) in runs.iter().skip(1) {
        if r.outcomes != base.outcomes {
            violations.push(format!(
                "outcomes diverge between 1 and {threads} threads"
            ));
        }
        if r.accepted != base.accepted || r.rejects != base.rejects {
            violations.push(format!(
                "admission decisions diverge between 1 and {threads} threads"
            ));
        }
        if r.retries != base.retries {
            violations.push(format!(
                "retry schedules diverge between 1 and {threads} threads"
            ));
        }
        if slo_row(&r.snapshot) != slo_row(&base.snapshot) {
            violations.push(format!(
                "SLO report diverges between 1 and {threads} threads"
            ));
        }
    }

    // Gate 3 — service levels, from the width-1 telemetry histograms.
    let r = base;
    let (ttft_p50, ttft_p99, ttft_att) = slo_triple(&r.snapshot, names::GATEWAY_TTFT_TICKS, TTFT_SLO_TICKS);
    let (tpot_p50, tpot_p99, tpot_att) = slo_triple(
        &r.snapshot,
        names::GATEWAY_TPOT_MILLITICKS,
        TPOT_SLO_MILLITICKS,
    );
    let completed = r
        .outcomes
        .iter()
        .filter(|o| o.terminal.is_completed())
        .count();
    let completion_rate = if r.accepted == 0 {
        0.0
    } else {
        completed as f64 / r.accepted as f64
    };
    if ttft_att < MIN_TTFT_ATTAINMENT {
        violations.push(format!(
            "TTFT SLO attainment {ttft_att:.3} below the {MIN_TTFT_ATTAINMENT} floor"
        ));
    }
    if completion_rate < MIN_COMPLETION_RATE {
        violations.push(format!(
            "completion rate {completion_rate:.3} below the {MIN_COMPLETION_RATE} floor"
        ));
    }

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("SLO GATE VIOLATED: {v}");
        }
        std::process::exit(1);
    }

    // Report.
    let sn = &r.snapshot;
    let count = |n: &str| sn.counter(n);
    let rows = vec![
        row("arrivals in trace", trace.len() as u64),
        row("simulated users", users),
        row("offered", r.offered),
        row("accepted", r.accepted),
        row("rejected: rate limited", r.rejects.rate_limited),
        row("rejected: queue full", r.rejects.queue_full),
        row("rejected: brownout", r.rejects.brownout),
        row("rejected: draining", r.rejects.draining),
        row("completed", completed as u64),
        row("deadline exceeded", count(names::GATEWAY_TERMINAL_DEADLINE)),
        row("cancelled", count(names::GATEWAY_TERMINAL_CANCELLED)),
        row("failed", count(names::GATEWAY_TERMINAL_FAILED)),
        row("retries", r.retries),
        row("drain force-fails", count(names::GATEWAY_DRAIN_FORCED)),
        row("engine faults observed", count(names::ENGINE_FAULTS)),
        row("degraded admissions (INT4 KV)", count(names::ENGINE_DEGRADED_ADMISSIONS)),
        row("gateway ticks to drain", r.ticks),
    ];
    let counters = atom_bench::table(&["counter", "value"], &rows);
    let lat = atom_bench::table(
        &["metric", "p50", "p99", "SLO", "attainment"],
        &[
            vec![
                "TTFT (ticks)".into(),
                fmt_opt(ttft_p50),
                fmt_opt(ttft_p99),
                TTFT_SLO_TICKS.to_string(),
                format!("{:.3}", ttft_att),
            ],
            vec![
                "TPOT (milliticks)".into(),
                fmt_opt(tpot_p50),
                fmt_opt(tpot_p99),
                TPOT_SLO_MILLITICKS.to_string(),
                format!("{:.3}", tpot_att),
            ],
        ],
    );

    let mut content = String::new();
    let _ = writeln!(
        content,
        "SLO gate — gateway + Atom W4A4 engine, seed {seed:#x}, flash-crowd trace\n\
         ({HORIZON_TICKS}-tick horizon, 2 tenants, {} arrivals ~ {users} users), seeded chaos\n\
         faults, graceful drain; replayed at 1/2/8 threads — bit-identical.\n\n{counters}\n{lat}",
        trace.len(),
    );
    let _ = writeln!(
        content,
        "gates held: exactly-once terminals, zero lost in drain, thread-invariant\n\
         outcomes + SLO report, TTFT attainment >= {MIN_TTFT_ATTAINMENT}, completion rate\n\
         {completion_rate:.3} >= {MIN_COMPLETION_RATE}"
    );
    atom_bench::emit("slo_gate", &content);

    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"arrivals\": {},\n  \"simulated_users\": {users},\n  \
         \"offered\": {},\n  \"accepted\": {},\n  \"completed\": {completed},\n  \
         \"rejected_rate_limited\": {},\n  \"rejected_queue_full\": {},\n  \
         \"rejected_brownout\": {},\n  \"rejected_draining\": {},\n  \
         \"deadline_exceeded\": {},\n  \"failed\": {},\n  \"retries\": {},\n  \
         \"drain_forced\": {},\n  \"engine_faults\": {},\n  \"ticks_to_drain\": {},\n  \
         \"ttft_p50_ticks\": {},\n  \"ttft_p99_ticks\": {},\n  \"ttft_slo_ticks\": {TTFT_SLO_TICKS},\n  \
         \"ttft_attainment\": {ttft_att:.6},\n  \"tpot_p50_milliticks\": {},\n  \
         \"tpot_p99_milliticks\": {},\n  \"tpot_slo_milliticks\": {TPOT_SLO_MILLITICKS},\n  \
         \"tpot_attainment\": {tpot_att:.6},\n  \"completion_rate\": {completion_rate:.6},\n  \
         \"thread_widths\": [1, 2, 8],\n  \"deterministic\": true\n}}\n",
        trace.len(),
        r.offered,
        r.accepted,
        r.rejects.rate_limited,
        r.rejects.queue_full,
        r.rejects.brownout,
        r.rejects.draining,
        count(names::GATEWAY_TERMINAL_DEADLINE),
        count(names::GATEWAY_TERMINAL_FAILED),
        r.retries,
        count(names::GATEWAY_DRAIN_FORCED),
        count(names::ENGINE_FAULTS),
        r.ticks,
        fmt_opt(ttft_p50),
        fmt_opt(ttft_p99),
        fmt_opt(tpot_p50),
        fmt_opt(tpot_p99),
    );
    let path = atom_bench::results_dir().join("slo_gate.json");
    std::fs::write(&path, json).expect("write json report");
    eprintln!("[written to results/slo_gate.json]");
}

/// Builds the full stack at one pool width and replays the trace through
/// offer -> dispatch -> retry -> drain.
fn run_stack(
    weights: &atom_nn::LlamaModel<atom::AnyLinear>,
    trace: &[atom_data::Arrival],
    seed: u64,
    threads: usize,
) -> RunResult {
    let config = *weights.config();
    let telemetry = Arc::new(Telemetry::enabled());
    let engine = CpuEngine::new(
        weights.clone(),
        Box::new(move || Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))),
        MAX_BATCH,
        KV_POOL_TOKENS,
    )
    .expect("valid engine config")
    .with_degraded_cache(Box::new(move || {
        Box::new(QuantizedKvCache::new(
            config.layers,
            config.kv_dim(),
            config.head_dim(),
            4,
        ))
    }))
    .with_policy(PressurePolicy {
        degrade_kv_at: 0.75,
        degrade_queue_depth: Some(6),
        shed_queue_depth: Some(24),
    })
    .with_fault_plan(FaultPlan::seeded_chaos(
        seed ^ 0xFA17,
        FAULT_HORIZON_STEPS,
        FaultRates {
            alloc: 0.02,
            forward: 0.04,
            timeout: 0.02,
            cancel: 0.01,
        },
    ))
    .with_telemetry(telemetry.clone())
    .with_pool(Pool::new(threads));

    let tenants = vec![
        TenantSpec::new("interactive", 3, 2).with_rate(2_000, 5_000),
        TenantSpec::new("batch", 1, 0)
            .with_rate(1_000, 3_000)
            .with_queue_cap(24),
    ];
    let mut cfg = GatewayConfig::new(tenants).with_seed(seed);
    // The flash crowd leaves a deep backlog; give the drain room to finish
    // honest work before force-failing stragglers.
    cfg.drain_grace_ticks = 256;
    let mut gw = Gateway::new(engine, cfg).expect("valid gateway config");
    let summary = gw.replay_trace(trace);
    gw.begin_drain();
    let converged = gw.run_until_idle(DRAIN_BUDGET_TICKS);
    RunResult {
        outcomes: gw.outcomes().to_vec(),
        snapshot: telemetry.metrics().snapshot(),
        offered: summary.offered,
        accepted: summary.accepted,
        rejects: gw.rejects(),
        retries: gw.retries(),
        ticks: gw.now(),
        converged,
    }
}

/// (p50, p99, attainment) of one latency histogram against its SLO.
fn slo_triple(sn: &MetricsSnapshot, name: &str, slo: u64) -> (Option<u64>, Option<u64>, f64) {
    match sn.histograms.get(name) {
        Some(h) => (
            h.p50(),
            h.p99(),
            h.fraction_at_or_below(slo).unwrap_or(1.0),
        ),
        None => (None, None, 1.0),
    }
}

/// The comparable SLO report row: every histogram quantile the report
/// prints, for the determinism gate.
fn slo_row(sn: &MetricsSnapshot) -> Vec<(Option<u64>, Option<u64>, u64)> {
    [names::GATEWAY_TTFT_TICKS, names::GATEWAY_TPOT_MILLITICKS]
        .iter()
        .map(|n| {
            let h = sn.histograms.get(*n);
            (
                h.and_then(|h| h.p50()),
                h.and_then(|h| h.p99()),
                h.map_or(0, |h| h.count),
            )
        })
        .collect()
}

fn fmt_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| x.to_string())
}

fn row(name: &str, v: u64) -> Vec<String> {
    vec![name.to_string(), v.to_string()]
}
