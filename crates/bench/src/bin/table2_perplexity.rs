//! Table 2: perplexity of quantized models on the three corpora
//! (wiki / ptb / c4 standing in for WikiText2 / PTB / C4), at W4A4 and
//! W3A3, across the four model sizes.

#![forbid(unsafe_code)]
use atom::pipeline::{AtomScheme, Scheme};
use atom_data::CorpusStyle;
use atom_nn::{eval, zoo};

fn main() {
    let corpora: Vec<(CorpusStyle, Vec<u16>)> = CorpusStyle::all()
        .into_iter()
        .map(|style| {
            let toks = zoo::validation_tokens(style);
            let take = toks.len().min(2500);
            (style, toks[..take].to_vec())
        })
        .collect();

    let mut rows = Vec::new();
    for id in zoo::ZooId::sizes() {
        let (model, calib) = atom_bench::calibrated(id);
        let mut push_row = |label: String, ppls: Vec<f64>| {
            let mut row = vec![label];
            row.extend(ppls.into_iter().map(atom_bench::fmt_ppl));
            rows.push(row);
        };
        // FP16 reference.
        push_row(
            format!("{} FP16", id.label()),
            corpora
                .iter()
                .map(|(_, toks)| eval::perplexity(&model, toks, 96))
                .collect(),
        );
        for (bits, schemes) in [
            (
                4u8,
                vec![
                    Scheme::SmoothQuant { w_bits: 4, a_bits: 4 },
                    Scheme::OmniQuantLike { w_bits: 4, a_bits: 4 },
                    Scheme::Atom(AtomScheme::w4a4()),
                ],
            ),
            (
                3u8,
                vec![
                    Scheme::SmoothQuant { w_bits: 3, a_bits: 3 },
                    Scheme::OmniQuantLike { w_bits: 3, a_bits: 3 },
                    Scheme::Atom(AtomScheme::w3a3()),
                ],
            ),
        ] {
            for scheme in schemes {
                let q = scheme.quantize(&model, &calib);
                push_row(
                    format!("{} W{bits}A{bits} {}", id.label(), short(&scheme)),
                    corpora.iter().map(|(_, toks)| q.perplexity(toks, 96)).collect(),
                );
            }
        }
        eprintln!("[table2] finished {}", id.label());
    }
    let body = atom_bench::table(&["model / scheme", "wiki", "ptb", "c4"], &rows);
    let content = format!(
        "Table 2 — perplexity (down is better) on the three corpora\n\
         (paper: Atom within ~0.4 of FP16 at W4A4; baselines 2x-1000x worse;\n\
          W3A3 degrades moderately for Atom, catastrophically for baselines)\n\n{body}"
    );
    atom_bench::emit("table2_perplexity", &content);
}

fn short(scheme: &Scheme) -> &'static str {
    match scheme {
        Scheme::SmoothQuant { .. } => "SmoothQuant",
        Scheme::OmniQuantLike { .. } => "OmniQuant*",
        Scheme::Atom(_) => "Atom",
        _ => "?",
    }
}
