//! Table 3: ablation of the quantization techniques in Atom, starting
//! from W4A4 RTN and adding mixed-precision outliers (FP16, then INT8),
//! group quantization, clipping, GPTQ, and KV-cache quantization.
//!
//! Paper shape (Llama-7B): RTN 2315.52 -> outliers FP16 11.34 -> INT8
//! 11.39 -> group 6.22 -> clip 6.13 -> GPTQ 6.04 -> KV4 6.16.

#![forbid(unsafe_code)]
use atom::pipeline::ablation_stages;
use atom_data::CorpusStyle;
use atom_nn::{eval, zoo};

fn main() {
    let (model, calib) = atom_bench::calibrated(zoo::ZooId::Tiny);
    let tokens = zoo::validation_tokens(CorpusStyle::Wiki);
    let tokens = &tokens[..tokens.len().min(2500)];

    let fp_ppl = eval::perplexity(&model, tokens, 96);
    let mut rows = vec![vec!["FP16 baseline".to_string(), atom_bench::fmt_ppl(fp_ppl), String::new()]];
    let mut prev = f64::NAN;
    for stage in ablation_stages() {
        let ppl = stage.scheme.quantize(&model, &calib).perplexity(tokens, 96);
        let delta = if prev.is_nan() {
            String::new()
        } else if ppl <= prev {
            format!("({:.2}↓)", prev - ppl)
        } else {
            format!("({:.2}↑)", ppl - prev)
        };
        rows.push(vec![stage.label.to_string(), atom_bench::fmt_ppl(ppl), delta]);
        prev = ppl;
        eprintln!("[table3] {}", stage.label);
    }
    let body = atom_bench::table(&["quantization method", "wiki PPL", "step"], &rows);
    let content = format!(
        "Table 3 — ablation of Atom's techniques on the 7B* model\n\
         (paper: outlier handling gives the huge drop; INT8 outliers cost ~nothing;\n\
          group quantization gives the second major drop; clip/GPTQ small gains;\n\
          KV4 costs ~0.1)\n\n{body}"
    );
    atom_bench::emit("table3_ablation", &content);
}
