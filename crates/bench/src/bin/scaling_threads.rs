//! Thread-scaling sweep for the deterministic pool (`atom-parallel`).
//!
//! Runs the Fig. 11 CPU kernel suite — fused W4A4 group GEMM, multi-head
//! quantized-KV attention, each on both the scalar reference and the SWAR
//! kernel path — plus the engine's batched decode loop at pool widths
//! 1/2/4/8, reporting wall time and speedup vs the sequential pool.
//! Every parallel run is also checked bit-identical to the 1-thread run,
//! and the two kernel paths are checked bit-identical to *each other* at
//! every width: the pool's determinism contract means thread count buys
//! wall-clock only, never a different answer, and the SWAR rewrite buys
//! instruction-level parallelism under the same contract.
//!
//! Writes `results/scaling_threads.txt` and a JSON twin at
//! `results/scaling_threads.json` (includes `host_threads` — speedups are
//! only physically possible up to the host's parallelism; on a single-CPU
//! container every width measures ~1x and that is reported honestly).
//!
//! Flags: `--seed <u64>` (default 7) seeds all matrix/model initialization.

#![forbid(unsafe_code)]
use atom::QuantizedKvCache;
use atom_kernels::attention::QuantizedKvHead;
use atom_kernels::gemm::fused_group_gemm_with_path;
use atom_kernels::{attention_quant_kv_heads_with_path, GroupQuantized, KernelPath, QuantSpec};
use atom_nn::{LlamaModel, ModelConfig};
use atom_parallel::Pool;
use atom_tensor::{Matrix, SeededRng};
use std::fmt::Write as _;
use std::time::Instant;

const WIDTHS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

/// Best-of-`REPS` wall time for `f`, returning (seconds, last output).
fn time_best<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t0 = Instant::now(); // lint: allow(time-entropy) — throughput measurement for the report; the identity gate compares token bytes, not time
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("REPS >= 1"))
}

fn main() {
    let seed = atom_bench::arg_u64("seed", 7);
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rng = SeededRng::new(seed);

    // (a) Fused W4A4 group GEMM, Llama-ish projection shape scaled to CPU.
    let (m, n, k) = (64usize, 256, 256);
    let a = rng.normal_matrix(m, k, 0.0, 1.0);
    let w = rng.normal_matrix(n, k, 0.0, 0.5);
    let qa = GroupQuantized::quantize(&a, QuantSpec::new(4, 32));
    let qw = GroupQuantized::quantize(&w, QuantSpec::new(4, 32));
    let gemm = |pool: &Pool, path: KernelPath| {
        fused_group_gemm_with_path(pool, &qa, &qw, path).expect("shapes validated")
    };

    // (b) Multi-head INT4-KV decode attention.
    let (heads, head_dim, kv_len, q_len) = (16usize, 64, 256, 4);
    let mut kv_heads = Vec::new();
    let mut q_heads = Vec::new();
    for _ in 0..heads {
        let mut h = QuantizedKvHead::new(head_dim, 4);
        h.append(
            &rng.normal_matrix(kv_len, head_dim, 0.0, 1.0),
            &rng.normal_matrix(kv_len, head_dim, 0.0, 1.0),
        );
        kv_heads.push(h);
        q_heads.push(rng.normal_matrix(q_len, head_dim, 0.0, 1.0));
    }
    let scale = 1.0 / atom_tensor::cast::usize_to_f32(head_dim).sqrt();
    let attn = |pool: &Pool, path: KernelPath| {
        attention_quant_kv_heads_with_path(pool, &q_heads, &kv_heads, scale, path)
            .expect("head counts match")
    };

    // (c) Engine batched decode: 6 concurrent requests on a small model
    // with INT8 KV caches, generated tokens returned for identity checks.
    let config = ModelConfig {
        dim: 64,
        layers: 2,
        heads: 8,
        kv_heads: 8,
        ffn_dim: 128,
        ..ModelConfig::default()
    };
    let decode = |pool: Pool| {
        let model = LlamaModel::random_init(config, seed);
        let mut engine = atom_serve::CpuEngine::new(
            model,
            Box::new(move || {
                Box::new(QuantizedKvCache::new(config.layers, config.kv_dim(), config.head_dim(), 8))
            }),
            6,
            4096,
        )
        .expect("valid engine config")
        .with_pool(pool);
        for r in 0..6usize {
            engine
                .submit(
                    vec![atom_tensor::cast::usize_to_u16_saturating(r * 7 + 1), 3, 5],
                    16,
                )
                .expect("valid submission");
        }
        let mut done = engine.run_to_completion().to_vec();
        done.sort_by_key(|c| c.id);
        done.iter().flat_map(|c| c.tokens.clone()).collect::<Vec<u16>>()
    };

    struct Suite {
        name: &'static str,
        secs: Vec<f64>,
    }
    let mut suites = vec![
        Suite { name: "fused_w4a4_gemm_scalar", secs: Vec::new() },
        Suite { name: "fused_w4a4_gemm_swar", secs: Vec::new() },
        Suite { name: "attention_quant_kv_scalar", secs: Vec::new() },
        Suite { name: "attention_quant_kv_swar", secs: Vec::new() },
        Suite { name: "engine_decode_loop", secs: Vec::new() },
    ];
    let mut baselines: Option<(Matrix, Vec<Matrix>, Vec<u16>)> = None;

    for &t in &WIDTHS {
        let pool = Pool::new(t);
        let (gs_s, gs_out) = time_best(|| gemm(&pool, KernelPath::Scalar));
        let (gw_s, gw_out) = time_best(|| gemm(&pool, KernelPath::Swar));
        let (as_s, as_out) = time_best(|| attn(&pool, KernelPath::Scalar));
        let (aw_s, aw_out) = time_best(|| attn(&pool, KernelPath::Swar));
        let (d_s, d_out) = time_best(|| decode(pool));
        // Cross-path identity at this width: the SWAR rewrite must agree
        // with the scalar reference bit for bit at every thread count.
        assert_eq!(
            gs_out.as_slice(),
            gw_out.as_slice(),
            "GEMM kernel paths disagree at {t} threads"
        );
        assert!(
            as_out.iter().zip(&aw_out).all(|(x, y)| x.as_slice() == y.as_slice()),
            "attention kernel paths disagree at {t} threads"
        );
        match &baselines {
            None => baselines = Some((gs_out, as_out, d_out)),
            Some((g0, a0, d0)) => {
                assert_eq!(g0.as_slice(), gs_out.as_slice(), "GEMM not bit-identical at {t} threads");
                assert!(
                    a0.iter().zip(&as_out).all(|(x, y)| x.as_slice() == y.as_slice()),
                    "attention not bit-identical at {t} threads"
                );
                assert_eq!(d0, &d_out, "decode tokens not bit-identical at {t} threads");
            }
        }
        for (suite, s) in suites.iter_mut().zip([gs_s, gw_s, as_s, aw_s, d_s]) {
            suite.secs.push(s);
        }
    }

    let mut rows = Vec::new();
    for suite in &suites {
        let base = suite.secs.first().copied().unwrap_or(f64::NAN);
        let mut row = vec![suite.name.to_string()];
        for s in &suite.secs {
            row.push(format!("{:.2}", s * 1e3));
        }
        for s in &suite.secs {
            row.push(format!("{:.2}x", base / s));
        }
        rows.push(row);
    }
    let table = atom_bench::table(
        &[
            "suite", "1t ms", "2t ms", "4t ms", "8t ms", "x@1", "x@2", "x@4", "x@8",
        ],
        &rows,
    );

    let mut content = String::new();
    let _ = writeln!(
        content,
        "Thread scaling — deterministic pool over the Fig. 11 CPU kernel suite + engine decode\n\
         (seed {seed:#x}, best of {REPS}, host parallelism {host_threads}; all widths verified\n\
         bit-identical to the 1-thread run, and the scalar/SWAR kernel paths verified\n\
         bit-identical to each other at every width)\n\n{table}"
    );
    let _ = writeln!(
        content,
        "note: speedup is bounded by host parallelism ({host_threads} on this machine);\n\
         widths beyond it time-slice one core and can only measure ~1x."
    );
    atom_bench::emit("scaling_threads", &content);

    // JSON twin (hand-rolled: the workspace deliberately has no JSON dep).
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"thread_widths\": [1, 2, 4, 8],");
    let _ = writeln!(json, "  \"bit_identical_across_widths\": true,");
    let _ = writeln!(json, "  \"bit_identical_across_kernel_paths\": true,");
    let _ = writeln!(json, "  \"suites\": {{");
    for (i, suite) in suites.iter().enumerate() {
        let secs: Vec<String> = suite.secs.iter().map(|s| format!("{s:.6}")).collect();
        let base = suite.secs.first().copied().unwrap_or(f64::NAN);
        let speedups: Vec<String> = suite.secs.iter().map(|s| format!("{:.3}", base / s)).collect();
        let comma = if i + 1 < suites.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    \"{}\": {{ \"seconds\": [{}], \"speedup\": [{}] }}{comma}",
            suite.name,
            secs.join(", "),
            speedups.join(", ")
        );
    }
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    let path = atom_bench::results_dir().join("scaling_threads.json");
    std::fs::write(&path, json).expect("write json report");
    eprintln!("[written to results/scaling_threads.json]");
}
