//! Fig. 3: runtime breakdown of Llama-7B inference across batch sizes
//! (dense vs. self-attention vs. other), on the simulated RTX 4090.
//!
//! Paper shape: dense + self-attention together consume over 90% of the
//! time at every batch size; the attention share grows with batch.

#![forbid(unsafe_code)]
use atom_gpu_sim::graph::iteration_breakdown;
use atom_gpu_sim::{HardwareProfile, LlamaGpuConfig, Phase, SimScheme};

fn main() {
    let hw = HardwareProfile::rtx4090();
    let cfg = LlamaGpuConfig::llama7b();
    let mut rows = Vec::new();
    for batch in [8usize, 16, 32, 64, 128, 256] {
        let b = iteration_breakdown(&cfg, SimScheme::Fp16, batch, 1024, Phase::Decode, &hw);
        let total = b.total_s();
        rows.push(vec![
            batch.to_string(),
            format!("{:.2}", total * 1e3),
            format!("{:.1}", 100.0 * b.dense_s / total),
            format!("{:.1}", 100.0 * b.attention_s / total),
            format!("{:.1}", 100.0 * b.other_s / total),
            format!("{:.1}", 100.0 * b.bottleneck_fraction()),
        ]);
    }
    let body = atom_bench::table(
        &["batch", "iter ms", "dense %", "attn %", "other %", "dense+attn %"],
        &rows,
    );
    let content = format!(
        "Fig. 3 — FP16 Llama-7B decode runtime breakdown vs batch (seq 1024, RTX 4090 model)\n\
         (paper: dense + self-attention account for >90% at every batch size)\n\n{body}"
    );
    atom_bench::emit("fig03_runtime_breakdown", &content);
}
