//! Fig. 2: WikiText2 perplexity across model sizes for 4-bit
//! weight-activation quantization mechanisms.
//!
//! Paper shape: SmoothQuant and OmniQuant blow up or sit far above FP16;
//! Atom stays close to the FP16 baseline at every size, and the gap shrinks
//! with model size.

#![forbid(unsafe_code)]
use atom::pipeline::{AtomScheme, Scheme};
use atom_data::CorpusStyle;
use atom_nn::{eval, zoo};

fn main() {
    let tokens = zoo::validation_tokens(CorpusStyle::Wiki);
    let tokens = &tokens[..tokens.len().min(2500)];
    let schemes = [
        Scheme::Fp16,
        Scheme::SmoothQuant { w_bits: 4, a_bits: 4 },
        Scheme::OmniQuantLike { w_bits: 4, a_bits: 4 },
        Scheme::Atom(AtomScheme::w4a4()),
    ];
    let mut rows = Vec::new();
    for id in zoo::ZooId::sizes() {
        let (model, calib) = atom_bench::calibrated(id);
        let mut row = vec![id.label().to_string()];
        for scheme in &schemes {
            let ppl = if matches!(scheme, Scheme::Fp16) {
                eval::perplexity(&model, tokens, 96)
            } else {
                scheme.quantize(&model, &calib).perplexity(tokens, 96)
            };
            row.push(atom_bench::fmt_ppl(ppl));
        }
        rows.push(row);
        eprintln!("[fig02] finished {}", id.label());
    }
    let headers: Vec<String> = std::iter::once("size".to_string())
        .chain(schemes.iter().map(|s| s.label()))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let body = atom_bench::table(&headers_ref, &rows);
    let content = format!(
        "Fig. 2 — wiki perplexity (down is better) across model sizes, W4A4 mechanisms\n\
         (paper: Atom tracks FP16 closely at every size; baselines degrade)\n\n{body}"
    );
    atom_bench::emit("fig02_ppl_vs_size", &content);
}
