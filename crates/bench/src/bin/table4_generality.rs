//! Table 4: generality of Atom across newer architectures and data
//! formats — a GQA model ("Llama-2-like"), a soft-MoE model
//! ("Mixtral-like"), and the FP4 number format.
//!
//! Paper shape: Atom (INT4) stays close to FP16 on Llama-2 and Mixtral
//! while the baselines degrade; Atom (FP4) lands within ~0.1 of Atom
//! (INT4).

#![forbid(unsafe_code)]
use atom::pipeline::{AtomScheme, Scheme};
use atom_data::CorpusStyle;
use atom_nn::{eval, zoo};

fn main() {
    let tokens = zoo::validation_tokens(CorpusStyle::Wiki);
    let tokens = &tokens[..tokens.len().min(2500)];

    let models = [zoo::ZooId::Tiny, zoo::ZooId::Small, zoo::ZooId::Gqa, zoo::ZooId::Moe];
    let schemes: Vec<(&str, Option<Scheme>)> = vec![
        ("FP16", None),
        ("SmoothQuant", Some(Scheme::SmoothQuant { w_bits: 4, a_bits: 4 })),
        ("OmniQuant*", Some(Scheme::OmniQuantLike { w_bits: 4, a_bits: 4 })),
        ("Atom (INT)", Some(Scheme::Atom(AtomScheme::w4a4()))),
        ("Atom (FP)", Some(Scheme::Atom(AtomScheme::fp4()))),
    ];

    // Rows are schemes, columns are models (matching the paper's layout).
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for &id in &models {
        let (model, calib) = atom_bench::calibrated(id);
        let mut col = Vec::new();
        for (_, scheme) in &schemes {
            let ppl = match scheme {
                None => eval::perplexity(&model, tokens, 96),
                Some(s) => s.quantize(&model, &calib).perplexity(tokens, 96),
            };
            col.push(ppl);
        }
        columns.push(col);
        eprintln!("[table4] finished {}", id.label());
    }

    let mut rows = Vec::new();
    for (i, (label, _)) in schemes.iter().enumerate() {
        let mut row = vec![label.to_string()];
        for col in &columns {
            row.push(atom_bench::fmt_ppl(col[i]));
        }
        rows.push(row);
    }
    let mut headers = vec!["method (W4A4)"];
    let labels: Vec<&str> = models.iter().map(|m| m.label()).collect();
    headers.extend(labels.iter());
    let body = atom_bench::table(&headers, &rows);
    let content = format!(
        "Table 4 — wiki perplexity on newer architectures and data formats\n\
         (L2-7B* is the GQA 'Llama-2-like' model, 8x7B* the soft-MoE 'Mixtral-like';\n\
          paper: Atom INT and FP4 both stay near FP16, FP4 within ~0.1 of INT4)\n\n{body}"
    );
    atom_bench::emit("table4_generality", &content);
}
