//! Fig. 10: end-to-end serving evaluation — (a) throughput vs batch,
//! (b) average decode latency per token vs batch, (c) throughput under a
//! fixed memory budget with each scheme at its own maximum batch.
//!
//! Paper shape: Atom dominates at every batch; at fixed memory it reaches
//! up to 7.73x FP16 and 2.53x W8A8 throughput while staying under the
//! 100 ms/token latency target even at batch 256.

#![forbid(unsafe_code)]
use atom_data::WorkloadSpec;
use atom_gpu_sim::{HardwareProfile, LlamaGpuConfig, MemoryModel, SimScheme};
use atom_serve::ServingSimulator;
use std::fmt::Write as _;

fn main() {
    let hw = HardwareProfile::rtx4090();
    let cfg = LlamaGpuConfig::llama7b();
    let seed = atom_bench::arg_u64("seed", 0x51E9);
    let trace = WorkloadSpec::default().generate(192, seed);
    let avg_ctx: usize = trace
        .iter()
        .map(|r| r.prefill_tokens + r.decode_tokens / 2)
        .sum::<usize>()
        / trace.len();

    // (a) + (b): sweep batch size with unconstrained memory (the paper's
    // dashed lines simulate beyond-capacity points the same way).
    let batches = [8usize, 16, 32, 64, 128, 256];
    let mut rows_a = Vec::new();
    for &batch in &batches {
        let mut row = vec![batch.to_string()];
        for scheme in SimScheme::all() {
            let sim = ServingSimulator::with_device_memory(cfg, hw, scheme, batch);
            let (tput, lat) = sim.steady_state(batch, avg_ctx);
            row.push(format!("{:.0} tok/s / {:.1} ms", tput, lat * 1e3));
        }
        rows_a.push(row);
    }
    let mut headers = vec!["batch"];
    let labels: Vec<&str> = SimScheme::all().iter().map(|s| s.label()).collect();
    headers.extend(labels.iter());
    let table_ab = atom_bench::table(&headers, &rows_a);

    // (c): fixed memory — each scheme runs a full trace simulation at its
    // own maximum batch under the 24 GB budget.
    let mut rows_c = Vec::new();
    let mut tputs = std::collections::HashMap::new();
    for scheme in SimScheme::all() {
        let mem = MemoryModel::new(cfg, scheme, hw.mem_bytes);
        let max_batch = mem.max_batch(avg_ctx).clamp(1, 256);
        let sim = ServingSimulator::with_device_memory(cfg, hw, scheme, max_batch);
        let report = sim.run(&trace).expect("non-empty trace");
        tputs.insert(scheme.label(), report.throughput_tps);
        rows_c.push(vec![
            scheme.label().to_string(),
            max_batch.to_string(),
            format!("{:.0}", report.throughput_tps),
            format!("{:.1}", report.avg_decode_latency_s * 1e3),
            format!("{:.1}", report.p99_decode_latency_s * 1e3),
            format!("{:.1}", mem.weight_bytes() / 1e9),
            report.peak_kv_blocks.to_string(),
        ]);
        eprintln!("[fig10] simulated {}", scheme.label());
    }
    let table_c = atom_bench::table(
        &["scheme", "max batch", "tok/s", "avg ms/tok", "p99 ms/tok", "weights GB", "peak KV blocks"],
        &rows_c,
    );

    let atom = tputs["Atom W4A4"];
    let mut content = String::new();
    let _ = writeln!(
        content,
        "Fig. 10 — end-to-end serving (Llama-7B, RTX 4090 model, ShareGPT-like trace,\n\
         seed {seed:#x}, mean context ~{avg_ctx} tokens)\n\n(a)+(b) throughput and decode latency vs batch size:\n\n{table_ab}"
    );
    let _ = writeln!(
        content,
        "(c) fixed 24 GB memory, each scheme at its own max batch (full trace simulation):\n\n{table_c}"
    );
    let _ = writeln!(
        content,
        "speedups at fixed memory: Atom vs FP16 = {:.2}x (paper 7.73x), vs W8A8 = {:.2}x (paper 2.53x), vs W4A16 = {:.2}x (paper ~5.5x)",
        atom / tputs["FP16"],
        atom / tputs["W8A8"],
        atom / tputs["W4A16"],
    );
    atom_bench::emit("fig10_end_to_end", &content);
}
