//! Fig. 5: sampled values of an activation matrix — (a) outlier channels
//! in the raw activations, (b) the same channels after Atom's reorder
//! moves them to the end of the matrix.
//!
//! Renders the per-channel RMS profile of a real calibrated linear input
//! before and after reordering, as a text sparkline plus summary numbers.

#![forbid(unsafe_code)]
use atom::Calibration;
use atom_nn::model::{LinearId, Proj};
use atom_nn::zoo;
use std::fmt::Write as _;

fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    values
        .iter()
        .map(|&v| {
            // Log scale so outliers do not flatten everything else.
            let t = ((v.max(1e-9) / max).log10() / 3.0 + 1.0).clamp(0.0, 1.0);
            GLYPHS[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}

fn main() {
    let model = zoo::trained(zoo::ZooId::Tiny);
    let seqs = zoo::calibration_sequences(128);
    let calib = Calibration::collect(&model, &seqs, false, 1);
    let id = LinearId::new(0, Proj::Q);
    let lc = calib.linear(id).expect("calibrated");
    let rms = lc.stats.rms();
    let plan = calib.reorder_plan(id, 6);
    let reordered: Vec<f64> = plan.perm().iter().map(|&p| rms[p]).collect();

    let mut content = String::new();
    let _ = writeln!(
        content,
        "Fig. 5 — per-channel RMS of the attention input activations (7B*, layer 0)\n\
         (paper: a few channels are orders larger; after reorder they sit at the end)\n"
    );
    let _ = writeln!(content, "(a) original channel order   ({} channels)", rms.len());
    let _ = writeln!(content, "    {}", sparkline(&rms));
    let _ = writeln!(content, "(b) after Atom reorder       (outliers -> last 6)");
    let _ = writeln!(content, "    {}", sparkline(&reordered));
    let mut sorted = rms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = sorted[sorted.len() / 2];
    let _ = writeln!(
        content,
        "\nmax channel RMS = {:.2}, median = {:.4}, outlier ratio = {:.0}x",
        sorted.last().unwrap(),
        median,
        lc.stats.outlier_ratio()
    );
    let outliers = lc.stats.top_square_sum_channels(6);
    let _ = writeln!(content, "outlier channels (by square sum): {outliers:?}");
    let tail = &reordered[reordered.len() - 6..];
    let head_max = reordered[..reordered.len() - 6]
        .iter()
        .cloned()
        .fold(0.0f64, f64::max);
    let _ = writeln!(
        content,
        "after reorder: max RMS among normal region = {head_max:.4}, outlier region RMS = {:?}",
        tail.iter().map(|v| format!("{v:.2}")).collect::<Vec<_>>()
    );
    atom_bench::emit("fig05_outliers", &content);
}
