//! Fig. 9: sampled values of the V cache within a single attention head,
//! compared with the activation matrix of Fig. 5.
//!
//! Paper shape: the V cache shows a much smaller dynamic range with far
//! fewer outlier channels than activations — which is why asymmetric
//! per-head quantization suffices for the KV cache (§4.4).

#![forbid(unsafe_code)]
use atom_nn::kv::{Fp32KvCache, KvStore};
use atom_nn::model::{LinearId, Proj};
use atom_nn::zoo;
use atom_tensor::stats::ChannelStats;
use std::fmt::Write as _;

fn main() {
    let model = zoo::trained(zoo::ZooId::Tiny);
    let config = *model.config();
    let seqs = zoo::calibration_sequences(64);

    // Activation stats at the attention input (the Fig. 5 comparison point).
    let calib = atom::Calibration::collect(&model, &seqs, false, 1);
    let act_ratio = calib
        .linear(LinearId::new(0, Proj::Q))
        .expect("calibrated")
        .stats
        .outlier_ratio();

    // V-cache stats: run sequences, collect layer-0 values per head.
    let head_dim = config.head_dim();
    let mut head_stats: Vec<ChannelStats> =
        (0..config.kv_heads).map(|_| ChannelStats::new(head_dim)).collect();
    for seq in &seqs {
        let mut cache = Fp32KvCache::new(config.layers, config.kv_dim());
        let take = seq.len().min(config.max_seq_len);
        model.forward(&seq[..take], &mut cache);
        let values = cache.values(0);
        for (h, stats) in head_stats.iter_mut().enumerate() {
            stats.update(&values.slice_cols(h * head_dim, (h + 1) * head_dim));
        }
    }

    let mut content = String::new();
    let _ = writeln!(
        content,
        "Fig. 9 — V-cache value distribution vs activations (7B*, layer 0)\n\
         (paper: the V cache has far fewer outlier channels than activations,\n\
          making it amenable to low-bit asymmetric quantization)\n"
    );
    let _ = writeln!(content, "activation outlier ratio (attention input): {act_ratio:.0}x");
    for (h, stats) in head_stats.iter().enumerate() {
        let _ = writeln!(
            content,
            "v-cache head {h}: outlier ratio {:>6.1}x, abs-max {:.3}",
            stats.outlier_ratio(),
            stats.abs_maxes().iter().cloned().fold(0.0f32, f32::max),
        );
    }
    let worst = head_stats
        .iter()
        .map(|s| s.outlier_ratio())
        .fold(0.0f64, f64::max);
    let _ = writeln!(
        content,
        "\nworst V-cache head ratio ({worst:.1}x) vs activation ratio ({act_ratio:.0}x): {}",
        if worst * 4.0 < act_ratio {
            "V cache is far milder — matches the paper's observation"
        } else {
            "WARNING: V cache unexpectedly spiky"
        }
    );
    atom_bench::emit("fig09_vcache", &content);
}
