//! Footnote 2 extension: large-model serving with tensor parallelism.
//!
//! The paper asserts that "with quantization, pipelining, and tensor
//! parallelism to amortize weights, it is practical to deploy a 180B model
//! with a 256 batch size". This binary checks the claim on the simulator:
//! a 180B-class dense model on 8x A100-80GB, per scheme — maximum batch
//! under memory and the decode latency/throughput at that batch.

#![forbid(unsafe_code)]
use atom_gpu_sim::tp::{iteration_breakdown_tp, max_batch_tp, TpConfig};
use atom_gpu_sim::{HardwareProfile, LlamaGpuConfig, Phase, SimScheme};
use std::fmt::Write as _;

fn main() {
    let hw = HardwareProfile::a100_80gb();
    let tp = TpConfig::nvlink(8);
    let ctx = 700;

    let mut content = String::new();
    for (name, cfg) in [
        ("Llama-70B", LlamaGpuConfig::llama70b()),
        ("180B-class", LlamaGpuConfig::llama180b()),
    ] {
        let mut rows = Vec::new();
        for scheme in SimScheme::all() {
            let max_batch = max_batch_tp(&cfg, scheme, &hw, &tp, ctx);
            let batch = max_batch.clamp(1, 256);
            let b = iteration_breakdown_tp(&cfg, scheme, batch, ctx, Phase::Decode, &hw, &tp);
            rows.push(vec![
                scheme.label().to_string(),
                max_batch.to_string(),
                batch.to_string(),
                format!("{:.1}", b.total_s() * 1e3),
                format!("{:.0}", batch as f64 / b.total_s()),
            ]);
        }
        let table = atom_bench::table(
            &["scheme", "max batch", "run batch", "ms/token", "tok/s"],
            &rows,
        );
        let _ = writeln!(content, "{name} on 8x {} (TP-8, NVLink, ctx ~{ctx}):\n\n{table}", hw.name);
    }
    let _ = writeln!(
        content,
        "footnote 2 check: Atom W4A4 reaches batch >= 256 on the 180B-class model\n\
         while FP16 cannot even hold its weights per GPU at useful batch sizes."
    );
    atom_bench::emit("ext_tensor_parallel", &content);
}
