//! Prefix-cache gate: the Atom W4A4 engine with the radix prefix cache
//! under a shared-prefix flash-crowd trace, graded on correctness and on
//! the two wins the cache exists for — TTFT collapse on hits and KV
//! footprint reduction from block sharing.
//!
//! One deterministic trace (two system prompts, linearly skewed, unique
//! user suffixes) is replayed through the engine six times: cache off and
//! cache on, each at 1, 2, and 8 pool threads. The KV cache itself stays
//! INT4-quantized in both modes, so shared blocks are the same low-bit
//! pages the paper serves from. Gates — non-zero exit for CI — on:
//!
//! 1. bit-identical token streams across all six runs (the cache is a
//!    pure optimization: attaching a shared run, forking a tail, or
//!    replaying a snapshot never changes a single token);
//! 2. cache-hit prefill collapse: mean prefill wall time of hit requests
//!    cache-on is >= [`MIN_PREFILL_SPEEDUP`]x cheaper than the same
//!    requests cache-off;
//! 3. KV footprint reduction: peak logical blocks (what tables would
//!    need without sharing) exceed peak physical blocks by
//!    [`MIN_FOOTPRINT_RATIO`]x with the cache on;
//! 4. block conservation: after drain the only live references are the
//!    cache's own, and flushing it returns the pool to exactly empty —
//!    zero leaked blocks, zero dangling refcounts.

#![forbid(unsafe_code)]
use atom::pipeline::{AtomScheme, Scheme};
use atom::{Calibration, QuantizedKvCache};
use atom_data::{ArrivalPattern, PromptArrival, ScenarioKind, ScenarioSpec, TenantTraffic, TrafficSpec};
use atom_nn::zoo;
use atom_parallel::Pool;
use atom_serve::engine::CpuEngine;
use atom_serve::{PrefixCacheStats, PrefixConfig};
use atom_telemetry::Telemetry;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

const DEFAULT_SEED: u64 = 0xCACE;
const KV_POOL_TOKENS: usize = 2048; // 128 blocks of 16 tokens
const MAX_BATCH: usize = 8;
/// Cache cap in blocks. Every unique suffix leaves a one-off forked tail
/// node behind; the cap makes LRU eviction churn those while the hot
/// system-prompt runs stay resident.
const MAX_CACHED_BLOCKS: usize = 32;
const HORIZON_TICKS: u64 = 48;
const STEP_BUDGET: usize = 20_000;

/// Shared-prefix scenario shape: two system prompts of six blocks each.
const PREFIX_POOL: usize = 2;
const PREFIX_TOKENS: usize = 96;

/// Gates. The speedup floor is the ISSUE's >= 5x cache-hit TTFT collapse,
/// measured on prefill wall time (step-count TTFT is compute-independent
/// by design); the footprint floor asserts sharing is material, not
/// incidental.
const MIN_PREFILL_SPEEDUP: f64 = 5.0;
const MIN_FOOTPRINT_RATIO: f64 = 1.1;
const MIN_HITS: u64 = 5;

struct RunResult {
    /// `(id, terminal_completed, tokens)` sorted by id — the bit-identity
    /// surface.
    streams: Vec<(usize, bool, Vec<u16>)>,
    /// Ids whose admission attached a cached prefix (empty cache-off).
    hit_ids: Vec<usize>,
    /// Per-request prefill wall time, ns.
    prefill_wall: HashMap<usize, u64>,
    stats: Option<PrefixCacheStats>,
    peak_used: usize,
    peak_logical: usize,
    /// Allocator state after drain, before and after flushing the cache:
    /// (used_blocks, total_refs, leak_check_ok).
    at_idle: (usize, u64, bool),
    after_flush: (usize, u64, bool),
    drained: bool,
}

fn main() {
    let seed = atom_bench::arg_u64("seed", DEFAULT_SEED);

    // Trained tiny model, quantized with the paper's W4A4 Atom scheme.
    let model = zoo::trained(zoo::ZooId::Tiny);
    let calib = Calibration::collect(&model, &zoo::calibration_sequences(64), true, 2);
    let quantized = Scheme::Atom(AtomScheme::w4a4()).quantize(&model, &calib);
    let weights = quantized.model;

    // Shared-prefix flash crowd: every request opens with one of two
    // 96-token system prompts (skewed hot/cold) plus a short unique
    // suffix — the chat-assistant shape where the prompt is mostly the
    // same bytes for everyone.
    let spec = ScenarioSpec {
        traffic: TrafficSpec {
            base_rate_per_tick: 0.5,
            pattern: ArrivalPattern::FlashCrowd {
                at_tick: HORIZON_TICKS / 3,
                magnitude: 4.0,
                decay_ticks: 10,
            },
            horizon_ticks: HORIZON_TICKS,
            tenants: vec![TenantTraffic {
                share: 1.0,
                prefill_range: (4, 12),
                decode_range: (2, 6),
                deadline_ticks: None,
            }],
            users_per_request: 50_000,
        },
        kind: ScenarioKind::SharedPrefix {
            prefixes: PREFIX_POOL,
            prefix_tokens: PREFIX_TOKENS,
        },
    };
    let trace = spec.generate(seed);
    let users = spec.traffic.simulated_users(trace.len());

    let widths = [1usize, 2, 8];
    let off: Vec<RunResult> = widths
        .iter()
        .map(|&t| run_engine(&weights, &trace, false, t))
        .collect();
    let on: Vec<RunResult> = widths
        .iter()
        .map(|&t| run_engine(&weights, &trace, true, t))
        .collect();

    let mut violations: Vec<String> = Vec::new();
    let (Some(base_off), Some(base_on)) = (off.first(), on.first()) else {
        eprintln!("PREFIX GATE VIOLATED: no runs executed");
        std::process::exit(1);
    };

    // Gate 1 — the cache never changes output: every run (cache on or
    // off, any width) produces the same terminal states and token
    // streams.
    for (mode, runs) in [("cache-off", &off), ("cache-on", &on)] {
        for (&threads, r) in widths.iter().zip(runs.iter()) {
            if !r.drained {
                violations.push(format!("{mode} {threads}-thread run did not drain"));
            }
            if r.streams != base_off.streams {
                violations.push(format!(
                    "{mode} {threads}-thread token streams diverge from cache-off width-1"
                ));
            }
        }
    }

    // Gate 2 — cache-hit TTFT collapse. The hit set comes from the
    // cache-on run; the baseline is the *same requests* replayed with the
    // cache off, so the only difference is the skipped prefill.
    let hits = base_on.hit_ids.len();
    let mean_off = mean_wall(&base_off.prefill_wall, &base_on.hit_ids);
    let mean_on = mean_wall(&base_on.prefill_wall, &base_on.hit_ids);
    let speedup = match (mean_off, mean_on) {
        (Some(off_ns), Some(on_ns)) if on_ns > 0.0 => off_ns / on_ns,
        _ => 0.0,
    };
    let stats = base_on.stats.unwrap_or_default();
    if stats.hits < MIN_HITS {
        violations.push(format!(
            "only {} cache hits; the trace must exercise the cache (>= {MIN_HITS})",
            stats.hits
        ));
    }
    if speedup < MIN_PREFILL_SPEEDUP {
        violations.push(format!(
            "hit-request prefill speedup {speedup:.2}x below the {MIN_PREFILL_SPEEDUP}x floor"
        ));
    }

    // Gate 3 — KV footprint: with sharing on, the blocks sequences
    // logically map (counted once per mapping) must exceed the physical
    // blocks actually allocated.
    let footprint_ratio = if base_on.peak_used == 0 {
        0.0
    } else {
        base_on.peak_logical as f64 / base_on.peak_used as f64
    };
    if footprint_ratio < MIN_FOOTPRINT_RATIO {
        violations.push(format!(
            "KV footprint ratio {footprint_ratio:.3} (logical/physical) below {MIN_FOOTPRINT_RATIO}"
        ));
    }

    // Gate 4 — block conservation through drain + flush, every run.
    for (mode, runs) in [("cache-off", &off), ("cache-on", &on)] {
        for (&threads, r) in widths.iter().zip(runs.iter()) {
            let (used, refs, ok) = r.at_idle;
            if !ok {
                violations.push(format!("{mode} {threads}-thread leak check failed at idle"));
            }
            if mode == "cache-off" && (used != 0 || refs != 0) {
                violations.push(format!(
                    "{mode} {threads}-thread run leaked blocks at idle: {used} used, {refs} refs"
                ));
            }
            let (used, refs, ok) = r.after_flush;
            if used != 0 || refs != 0 || !ok {
                violations.push(format!(
                    "{mode} {threads}-thread run leaked blocks after flush: {used} used, {refs} refs"
                ));
            }
        }
    }
    // At idle the cache's nodes must be the *only* thing holding blocks:
    // one ref per cached block, nothing else.
    let (idle_used, idle_refs, _) = base_on.at_idle;
    if idle_used != stats.cached_blocks || idle_refs != stats.cached_blocks as u64 {
        violations.push(format!(
            "cache-on idle accounting off: {idle_used} used / {idle_refs} refs for {} cached blocks",
            stats.cached_blocks
        ));
    }

    if !violations.is_empty() {
        for v in &violations {
            eprintln!("PREFIX GATE VIOLATED: {v}");
        }
        std::process::exit(1);
    }

    // Report.
    let completed = base_on.streams.iter().filter(|s| s.1).count();
    let rows = vec![
        row("arrivals in trace", trace.len() as u64),
        row("simulated users", users),
        row("completed", completed as u64),
        row("prefix hits", stats.hits),
        row("prefix misses", stats.misses),
        row("insertions", stats.insertions),
        row("evictions", stats.evictions),
        row("CoW forks", stats.cow_forks),
        row("cached blocks at idle", stats.cached_blocks as u64),
        row("peak physical blocks (cache-on)", base_on.peak_used as u64),
        row("peak logical blocks (cache-on)", base_on.peak_logical as u64),
        row("peak physical blocks (cache-off)", base_off.peak_used as u64),
    ];
    let counters = atom_bench::table(&["counter", "value"], &rows);
    let lat = atom_bench::table(
        &["metric", "cache off", "cache on", "ratio"],
        &[vec![
            format!("mean hit-request prefill wall ns ({hits} requests)"),
            fmt_mean(mean_off),
            fmt_mean(mean_on),
            format!("{speedup:.2}x"),
        ]],
    );

    let mut content = String::new();
    let _ = writeln!(
        content,
        "prefix gate — Atom W4A4 engine + radix prefix cache, seed {seed:#x}\n\
         shared-prefix flash crowd ({PREFIX_POOL} system prompts x {PREFIX_TOKENS} tokens,\n\
         {} arrivals ~ {users} users over {HORIZON_TICKS} ticks); cache off/on x 1/2/8\n\
         threads — all six token streams bit-identical.\n\n{counters}\n{lat}",
        trace.len(),
    );
    let _ = writeln!(
        content,
        "gates held: bit-identical streams, hit prefill speedup {speedup:.2}x >= {MIN_PREFILL_SPEEDUP}x,\n\
         KV footprint ratio {footprint_ratio:.3} >= {MIN_FOOTPRINT_RATIO}, zero leaked blocks through\n\
         drain + flush at every width"
    );
    atom_bench::emit("prefix_gate", &content);

    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"arrivals\": {},\n  \"simulated_users\": {users},\n  \
         \"completed\": {completed},\n  \"prefix_hits\": {},\n  \"prefix_misses\": {},\n  \
         \"insertions\": {},\n  \"evictions\": {},\n  \"cow_forks\": {},\n  \
         \"cached_blocks_at_idle\": {},\n  \"mean_hit_prefill_wall_ns_cache_off\": {},\n  \
         \"mean_hit_prefill_wall_ns_cache_on\": {},\n  \"hit_prefill_speedup\": {speedup:.3},\n  \
         \"min_prefill_speedup\": {MIN_PREFILL_SPEEDUP},\n  \"peak_physical_blocks\": {},\n  \
         \"peak_logical_blocks\": {},\n  \"kv_footprint_ratio\": {footprint_ratio:.4},\n  \
         \"min_footprint_ratio\": {MIN_FOOTPRINT_RATIO},\n  \"thread_widths\": [1, 2, 8],\n  \
         \"bit_identical\": true,\n  \"blocks_conserved\": true\n}}\n",
        trace.len(),
        stats.hits,
        stats.misses,
        stats.insertions,
        stats.evictions,
        stats.cow_forks,
        stats.cached_blocks,
        fmt_mean(mean_off),
        fmt_mean(mean_on),
        base_on.peak_used,
        base_on.peak_logical,
    );
    let path = atom_bench::results_dir().join("prefix_gate.json");
    std::fs::write(&path, json).expect("write json report");
    eprintln!("[written to results/prefix_gate.json]");
}

/// Replays the prompt trace straight into the engine (no gateway — the
/// gate isolates the cache) in tick order, drains, and snapshots every
/// accounting surface the gates compare.
fn run_engine(
    weights: &atom_nn::LlamaModel<atom::AnyLinear>,
    trace: &[PromptArrival],
    cached: bool,
    threads: usize,
) -> RunResult {
    let config = *weights.config();
    let telemetry = Arc::new(Telemetry::enabled());
    // INT4 KV as the *primary* cache: cached prefix runs stay low-bit, so
    // a hit serves quantized pages directly (ISSUE: degraded admissions
    // can still share).
    let mut engine = CpuEngine::new(
        weights.clone(),
        Box::new(move || {
            Box::new(QuantizedKvCache::new(
                config.layers,
                config.kv_dim(),
                config.head_dim(),
                4,
            ))
        }),
        MAX_BATCH,
        KV_POOL_TOKENS,
    )
    .expect("valid engine config")
    .with_telemetry(telemetry)
    .with_pool(Pool::new(threads));
    if cached {
        engine = engine.with_prefix_cache(PrefixConfig {
            max_cached_blocks: Some(MAX_CACHED_BLOCKS),
        });
    }

    let mut ids: Vec<usize> = Vec::new();
    let mut next = 0usize;
    let last_tick = trace.last().map_or(0, |p| p.arrival.tick);
    for tick in 0..=last_tick {
        while next < trace.len() && trace[next].arrival.tick <= tick {
            let p = &trace[next];
            let id = engine
                .submit(p.prompt.clone(), p.arrival.decode_tokens)
                .expect("no shed policy configured; every submission is accepted");
            ids.push(id);
            next += 1;
        }
        engine.step();
    }
    let mut steps = 0usize;
    let mut drained = true;
    while engine.step() {
        steps += 1;
        if steps > STEP_BUDGET {
            drained = false;
            break;
        }
    }

    let mut streams: Vec<(usize, bool, Vec<u16>)> = engine
        .outcomes()
        .iter()
        .map(|o| (o.id, o.terminal.is_completed(), o.tokens.clone()))
        .collect();
    streams.sort_by_key(|s| s.0);
    let mut hit_ids: Vec<usize> = engine
        .outcomes()
        .iter()
        .filter(|o| o.stats.prefix_tokens > 0)
        .map(|o| o.id)
        .collect();
    hit_ids.sort_unstable();
    let prefill_wall: HashMap<usize, u64> = ids
        .iter()
        .filter_map(|&id| engine.prefill_wall_ns(id).map(|w| (id, w)))
        .collect();

    let stats = engine.prefix_stats();
    let alloc = engine.batcher().allocator();
    let peak_used = alloc.peak_used();
    let peak_logical = alloc.peak_logical();
    let at_idle = (
        alloc.used_blocks(),
        alloc.total_refs(),
        alloc.leak_check().is_ok(),
    );
    engine.flush_prefix_cache();
    let alloc = engine.batcher().allocator();
    let after_flush = (
        alloc.used_blocks(),
        alloc.total_refs(),
        alloc.leak_check().is_ok(),
    );

    RunResult {
        streams,
        hit_ids,
        prefill_wall,
        stats,
        peak_used,
        peak_logical,
        at_idle,
        after_flush,
        drained,
    }
}

/// Mean wall time over `ids`, ns; `None` if any id has no recorded wall.
fn mean_wall(walls: &HashMap<usize, u64>, ids: &[usize]) -> Option<f64> {
    if ids.is_empty() {
        return None;
    }
    let mut total = 0u64;
    for id in ids {
        total += *walls.get(id)?;
    }
    Some(total as f64 / ids.len() as f64)
}

fn fmt_mean(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| format!("{:.0}", x))
}

fn row(name: &str, v: u64) -> Vec<String> {
    vec![name.to_string(), v.to_string()]
}
