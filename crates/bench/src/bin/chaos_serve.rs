//! Chaos serving report: the CPU engine under a seeded fault plan, a tight
//! KV pool, and KV-pressure degradation, with every request accounted for.
//!
//! Exercises the robustness layer end to end — allocator-grow faults,
//! injected forward-pass failures, deadlines, queue shedding, and
//! degradation of new admissions to the Atom INT4 KV cache — then checks
//! the bookkeeping invariants (exactly one terminal state per submission,
//! zero leaked KV blocks) and emits both an aligned text table and a JSON
//! report to `results/`.

#![forbid(unsafe_code)]
use atom::pipeline::{AtomScheme, Scheme};
use atom::{Calibration, QuantizedKvCache};
use atom_nn::kv::Fp32KvCache;
use atom_nn::zoo;
use atom_serve::engine::CpuEngine;
use atom_serve::{FaultPlan, PressurePolicy, SubmitOptions, Terminal};
use std::fmt::Write as _;

const DEFAULT_SEED: u64 = 0xC4A0;
const REQUESTS: usize = 24;
const KV_POOL_TOKENS: usize = 160; // 10 blocks — deliberately tight
const MAX_BATCH: usize = 4;

fn main() {
    let seed = atom_bench::arg_u64("seed", DEFAULT_SEED);
    let model = zoo::trained(zoo::ZooId::Tiny);
    let calib = Calibration::collect(&model, &zoo::calibration_sequences(64), true, 2);
    let quantized = Scheme::Atom(AtomScheme::w4a4()).quantize(&model, &calib);
    let config = *quantized.model.config();

    let plan = FaultPlan::seeded(seed, 600, 0.25, 0.02);
    let planned_faults = plan.fault_count();
    let mut engine = CpuEngine::new(
        quantized.model,
        Box::new(move || Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))),
        MAX_BATCH,
        KV_POOL_TOKENS,
    )
    .expect("valid engine config")
    .with_degraded_cache(Box::new(move || {
        Box::new(QuantizedKvCache::new(
            config.layers,
            config.kv_dim(),
            config.head_dim(),
            4,
        ))
    }))
    .with_policy(PressurePolicy {
        degrade_kv_at: 0.5,
        degrade_queue_depth: Some(4),
        shed_queue_depth: Some(18),
    })
    .with_fault_plan(plan);

    // A bursty workload: everything arrives at once, lengths vary, half the
    // requests carry deadlines tight enough that some expire under faults.
    let mut submitted = 0usize;
    for i in 0..REQUESTS {
        let len = 4 + (i * 7) % 29;
        let max_new = 4 + (i * 5) % 17;
        let opts = if i % 2 == 0 {
            SubmitOptions::new(max_new)
        } else {
            SubmitOptions::new(max_new).with_deadline(12 + i)
        };
        let prompt: Vec<u16> = (0..len).map(|t| atom_tensor::cast::usize_to_u16_saturating((i * 31 + t * 7) % 96)).collect();
        let _ = engine.submit_with(prompt, opts);
        submitted += 1;
    }
    // Cancel two requests mid-flight to exercise that path too.
    engine.step();
    let _ = engine.cancel(3);
    let _ = engine.cancel(17);

    let start = std::time::Instant::now();
    engine.run_to_completion();
    let elapsed = start.elapsed().as_secs_f64();

    let mut completed = 0usize;
    let mut rejected = 0usize;
    let mut cancelled = 0usize;
    let mut expired = 0usize;
    let mut failed = 0usize;
    let mut tokens = 0usize;
    for o in engine.outcomes() {
        tokens += o.tokens.len();
        match &o.terminal {
            Terminal::Completed => completed += 1,
            Terminal::Rejected(_) => rejected += 1,
            Terminal::Cancelled => cancelled += 1,
            Terminal::DeadlineExceeded => expired += 1,
            Terminal::Failed { .. } => failed += 1,
        }
    }
    let preemptions = engine.batcher().preemptions();
    let degraded = engine.degraded_admissions();
    let injected = engine.batcher().allocator().injected_failures();
    let leaked = engine.batcher().allocator().used_blocks();

    // Invariant checks: collect every violation so a broken run reports all
    // of them, then fail with a non-zero exit (CI gates on this).
    let mut violations: Vec<String> = Vec::new();
    if engine.outcomes().len() != submitted {
        violations.push(format!(
            "expected exactly one terminal state per submission: {} outcomes for {submitted} submissions",
            engine.outcomes().len()
        ));
    }
    let mut seen = std::collections::HashSet::new();
    for o in engine.outcomes() {
        if !seen.insert(o.id) {
            violations.push(format!("request {} has more than one terminal record", o.id));
        }
    }
    if leaked != 0 {
        violations.push(format!("idle engine still holds {leaked} KV blocks"));
    }
    if completed == 0 {
        violations.push("no request completed under the fault plan".to_string());
    }
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("INVARIANT VIOLATED: {v}");
        }
        std::process::exit(1);
    }

    let rows = vec![
        row("submitted", submitted),
        row("completed", completed),
        row("rejected", rejected),
        row("cancelled", cancelled),
        row("deadline exceeded", expired),
        row("failed (injected)", failed),
        row("preemptions", preemptions),
        row("degraded admissions (INT4 KV)", degraded),
        row("alloc faults fired", injected),
        row("planned fault points", planned_faults),
        row("tokens generated", tokens),
        row("engine steps", engine.steps()),
    ];
    let table = atom_bench::table(&["counter", "value"], &rows);

    let mut content = String::new();
    let _ = writeln!(
        content,
        "Chaos serving — Atom W4A4 7B* engine, seed {seed:#x}, {KV_POOL_TOKENS}-token KV pool,\n\
         max batch {MAX_BATCH}, degrade at 50% pool / queue depth 4, shed at depth 18.\n\n{table}"
    );
    let _ = writeln!(
        content,
        "invariants held: one terminal per submission, 0 leaked KV blocks ({elapsed:.2}s wall)"
    );
    atom_bench::emit("chaos_serve", &content);

    // JSON twin of the table for downstream tooling (hand-rolled: the
    // workspace deliberately has no JSON dependency).
    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"kv_pool_tokens\": {KV_POOL_TOKENS},\n  \"max_batch\": {MAX_BATCH},\n  \
         \"submitted\": {submitted},\n  \"completed\": {completed},\n  \"rejected\": {rejected},\n  \
         \"cancelled\": {cancelled},\n  \"deadline_exceeded\": {expired},\n  \"failed\": {failed},\n  \
         \"preemptions\": {preemptions},\n  \"degraded_admissions\": {degraded},\n  \
         \"alloc_faults_fired\": {injected},\n  \"planned_fault_points\": {planned_faults},\n  \
         \"tokens_generated\": {tokens},\n  \"engine_steps\": {steps},\n  \"leaked_blocks\": {leaked}\n}}\n",
        steps = engine.steps(),
    );
    let path = atom_bench::results_dir().join("chaos_serve.json");
    std::fs::write(&path, json).expect("write json report");
    eprintln!("[written to results/chaos_serve.json]");
}

fn row(name: &str, v: usize) -> Vec<String> {
    vec![name.to_string(), v.to_string()]
}
