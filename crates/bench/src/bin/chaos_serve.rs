//! Chaos serving report: the CPU engine under a seeded fault plan, a tight
//! KV pool, and KV-pressure degradation, with every request accounted for.
//!
//! Exercises the robustness layer end to end — allocator-grow faults,
//! injected forward-pass failures, deadlines, queue shedding, and
//! degradation of new admissions to the Atom INT4 KV cache — then checks
//! the bookkeeping invariants (exactly one terminal state per submission,
//! zero leaked KV blocks) and emits both an aligned text table and a JSON
//! report to `results/`.

#![forbid(unsafe_code)]
use atom::pipeline::{AtomScheme, Scheme};
use atom::{Calibration, QuantizedKvCache};
use atom_gateway::{synth_prompt, Gateway, GatewayConfig, TenantSpec};
use atom_nn::kv::Fp32KvCache;
use atom_nn::zoo;
use atom_serve::engine::CpuEngine;
use atom_serve::fault::FaultRates;
use atom_serve::{FaultPlan, PrefixConfig, PressurePolicy, SubmitOptions, Terminal};
use std::fmt::Write as _;

const DEFAULT_SEED: u64 = 0xC4A0;
const REQUESTS: usize = 24;
const KV_POOL_TOKENS: usize = 160; // 10 blocks — deliberately tight
const MAX_BATCH: usize = 4;

fn main() {
    let seed = atom_bench::arg_u64("seed", DEFAULT_SEED);
    let model = zoo::trained(zoo::ZooId::Tiny);
    let calib = Calibration::collect(&model, &zoo::calibration_sequences(64), true, 2);
    let quantized = Scheme::Atom(AtomScheme::w4a4()).quantize(&model, &calib);
    let weights = quantized.model;
    let config = *weights.config();

    let plan = FaultPlan::seeded(seed, 600, 0.25, 0.02);
    let planned_faults = plan.fault_count();
    let mut engine = CpuEngine::new(
        weights.clone(),
        Box::new(move || Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))),
        MAX_BATCH,
        KV_POOL_TOKENS,
    )
    .expect("valid engine config")
    .with_degraded_cache(Box::new(move || {
        Box::new(QuantizedKvCache::new(
            config.layers,
            config.kv_dim(),
            config.head_dim(),
            4,
        ))
    }))
    .with_policy(PressurePolicy {
        degrade_kv_at: 0.5,
        degrade_queue_depth: Some(4),
        shed_queue_depth: Some(18),
    })
    .with_fault_plan(plan);

    // A bursty workload: everything arrives at once, lengths vary, half the
    // requests carry deadlines tight enough that some expire under faults.
    let mut submitted = 0usize;
    for i in 0..REQUESTS {
        let len = 4 + (i * 7) % 29;
        let max_new = 4 + (i * 5) % 17;
        let opts = if i % 2 == 0 {
            SubmitOptions::new(max_new)
        } else {
            SubmitOptions::new(max_new).with_deadline(12 + i)
        };
        let prompt: Vec<u16> = (0..len).map(|t| atom_tensor::cast::usize_to_u16_saturating((i * 31 + t * 7) % 96)).collect();
        let _ = engine.submit_with(prompt, opts);
        submitted += 1;
    }
    // Cancel two requests mid-flight to exercise that path too.
    engine.step();
    let _ = engine.cancel(3);
    let _ = engine.cancel(17);

    let start = std::time::Instant::now(); // lint: allow(time-entropy) — wall time is printed context only; every gated invariant is step-counted
    engine.run_to_completion();
    let elapsed = start.elapsed().as_secs_f64();

    let mut completed = 0usize;
    let mut rejected = 0usize;
    let mut cancelled = 0usize;
    let mut expired = 0usize;
    let mut failed = 0usize;
    let mut tokens = 0usize;
    for o in engine.outcomes() {
        tokens += o.tokens.len();
        match &o.terminal {
            Terminal::Completed => completed += 1,
            Terminal::Rejected(_) => rejected += 1,
            Terminal::Cancelled => cancelled += 1,
            Terminal::DeadlineExceeded => expired += 1,
            Terminal::Failed { .. } => failed += 1,
        }
    }
    let preemptions = engine.batcher().preemptions();
    let degraded = engine.degraded_admissions();
    let injected = engine.batcher().allocator().injected_failures();
    let leaked = engine.batcher().allocator().used_blocks();

    // Scenario 2: gateway drain under fire. Accepted requests are mid-retry
    // and mid-flight when the drain begins, and the grace window is short
    // enough that force-drain fires — every accepted request must still get
    // exactly one terminal, none lost.
    let drain = drain_under_fault(&weights, seed);

    // Scenario 3: prefix-cache reuse under fire. Requests sharing cached
    // KV runs get timed out and cancelled mid-prefill; every shared
    // refcount must still return to zero through drain + flush.
    let prefix = prefix_reuse_under_fault(&weights, seed);

    // Invariant checks: collect every violation so a broken run reports all
    // of them, then fail with a non-zero exit (CI gates on this).
    let mut violations: Vec<String> = drain.violations.clone();
    violations.extend(prefix.violations.clone());
    if engine.outcomes().len() != submitted {
        violations.push(format!(
            "expected exactly one terminal state per submission: {} outcomes for {submitted} submissions",
            engine.outcomes().len()
        ));
    }
    let mut seen = std::collections::HashSet::new();
    for o in engine.outcomes() {
        if !seen.insert(o.id) {
            violations.push(format!("request {} has more than one terminal record", o.id));
        }
    }
    if leaked != 0 {
        violations.push(format!("idle engine still holds {leaked} KV blocks"));
    }
    if completed == 0 {
        violations.push("no request completed under the fault plan".to_string());
    }
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("INVARIANT VIOLATED: {v}");
        }
        std::process::exit(1);
    }

    let rows = vec![
        row("submitted", submitted),
        row("completed", completed),
        row("rejected", rejected),
        row("cancelled", cancelled),
        row("deadline exceeded", expired),
        row("failed (injected)", failed),
        row("preemptions", preemptions),
        row("degraded admissions (INT4 KV)", degraded),
        row("alloc faults fired", injected),
        row("planned fault points", planned_faults),
        row("tokens generated", tokens),
        row("engine steps", engine.steps()),
        row("drain scenario: offered", drain.offered),
        row("drain scenario: accepted", drain.accepted),
        row("drain scenario: completed", drain.completed),
        row("drain scenario: force-failed", drain.force_failed),
        row("prefix scenario: submitted", prefix.submitted),
        row("prefix scenario: completed", prefix.completed),
        row("prefix scenario: cache hits", prefix.hits),
        row("prefix scenario: CoW forks", prefix.cow_forks),
        row("prefix scenario: blocks flushed", prefix.flushed),
    ];
    let table = atom_bench::table(&["counter", "value"], &rows);

    let mut content = String::new();
    let _ = writeln!(
        content,
        "Chaos serving — Atom W4A4 7B* engine, seed {seed:#x}, {KV_POOL_TOKENS}-token KV pool,\n\
         max batch {MAX_BATCH}, degrade at 50% pool / queue depth 4, shed at depth 18.\n\n{table}"
    );
    let _ = writeln!(
        content,
        "invariants held: one terminal per submission, 0 leaked KV blocks; gateway\n\
         drain-under-fault: {} accepted, {} terminals, zero lost; prefix-reuse-under-\n\
         fault: {} hits on shared INT4 runs, every refcount back to zero through\n\
         drain + flush ({elapsed:.2}s wall)",
        drain.accepted, drain.accepted, prefix.hits,
    );
    atom_bench::emit("chaos_serve", &content);

    // JSON twin of the table for downstream tooling (hand-rolled: the
    // workspace deliberately has no JSON dependency).
    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"kv_pool_tokens\": {KV_POOL_TOKENS},\n  \"max_batch\": {MAX_BATCH},\n  \
         \"submitted\": {submitted},\n  \"completed\": {completed},\n  \"rejected\": {rejected},\n  \
         \"cancelled\": {cancelled},\n  \"deadline_exceeded\": {expired},\n  \"failed\": {failed},\n  \
         \"preemptions\": {preemptions},\n  \"degraded_admissions\": {degraded},\n  \
         \"alloc_faults_fired\": {injected},\n  \"planned_fault_points\": {planned_faults},\n  \
         \"tokens_generated\": {tokens},\n  \"engine_steps\": {steps},\n  \"leaked_blocks\": {leaked},\n  \
         \"drain_offered\": {},\n  \"drain_accepted\": {},\n  \"drain_completed\": {},\n  \
         \"drain_force_failed\": {},\n  \"prefix_submitted\": {},\n  \"prefix_completed\": {},\n  \
         \"prefix_hits\": {},\n  \"prefix_cow_forks\": {},\n  \"prefix_blocks_flushed\": {}\n}}\n",
        drain.offered,
        drain.accepted,
        drain.completed,
        drain.force_failed,
        prefix.submitted,
        prefix.completed,
        prefix.hits,
        prefix.cow_forks,
        prefix.flushed,
        steps = engine.steps(),
    );
    let path = atom_bench::results_dir().join("chaos_serve.json");
    std::fs::write(&path, json).expect("write json report");
    eprintln!("[written to results/chaos_serve.json]");
}

fn row(name: &str, v: usize) -> Vec<String> {
    vec![name.to_string(), v.to_string()]
}

struct DrainStats {
    offered: usize,
    accepted: usize,
    completed: usize,
    force_failed: usize,
    violations: Vec<String>,
}

/// Gateway drain while a dense fault plan is firing: offers a burst, lets
/// it get mid-flight (some requests parked in retry backoff), then drains
/// with a grace window short enough that force-drain fires. Checks that
/// every accepted request still reaches exactly one terminal and none are
/// lost across the drain.
fn drain_under_fault(weights: &atom_nn::LlamaModel<atom::AnyLinear>, seed: u64) -> DrainStats {
    let config = *weights.config();
    let engine = CpuEngine::new(
        weights.clone(),
        Box::new(move || Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))),
        MAX_BATCH,
        KV_POOL_TOKENS,
    )
    .expect("valid engine config")
    .with_degraded_cache(Box::new(move || {
        Box::new(QuantizedKvCache::new(
            config.layers,
            config.kv_dim(),
            config.head_dim(),
            4,
        ))
    }))
    .with_policy(PressurePolicy {
        degrade_kv_at: 0.5,
        degrade_queue_depth: Some(4),
        shed_queue_depth: Some(18),
    })
    .with_fault_plan(FaultPlan::seeded_chaos(
        seed ^ 0xD7A1,
        400,
        FaultRates {
            alloc: 0.10,
            forward: 0.08,
            timeout: 0.05,
            cancel: 0.03,
        },
    ));

    let mut cfg = GatewayConfig::new(vec![
        TenantSpec::new("drain-a", 2, 1).with_rate(8_000, 16_000),
        TenantSpec::new("drain-b", 1, 0).with_rate(8_000, 16_000),
    ])
    .with_seed(seed);
    cfg.drain_grace_ticks = 16; // short on purpose: force-drain must fire
    let mut gw = match Gateway::new(engine, cfg) {
        Ok(gw) => gw,
        Err(e) => {
            return DrainStats {
                offered: 0,
                accepted: 0,
                completed: 0,
                force_failed: 0,
                violations: vec![format!("drain scenario: gateway refused config: {e}")],
            }
        }
    };

    let mut offered = 0usize;
    for i in 0..20usize {
        let tenant = i % 2;
        let deadline = if i % 3 == 0 { Some(40) } else { None };
        let _ = gw.offer(tenant, synth_prompt(i, 4 + (i * 5) % 24), 6 + (i * 3) % 12, deadline);
        offered += 1;
    }
    // Let the burst get mid-flight (and some attempts fail into retry
    // parking) before pulling the plug.
    for _ in 0..6 {
        gw.tick();
    }
    gw.begin_drain();
    let converged = gw.run_until_idle(600);

    let accepted = usize::try_from(gw.accepted()).unwrap_or(usize::MAX);
    let mut violations = Vec::new();
    if !converged {
        violations.push("drain scenario: gateway did not reach idle".to_string());
    }
    if gw.outcomes().len() != accepted {
        violations.push(format!(
            "drain scenario lost requests: {} terminals for {accepted} accepted",
            gw.outcomes().len()
        ));
    }
    let mut seen = std::collections::HashSet::new();
    for o in gw.outcomes() {
        if !seen.insert(o.id) {
            violations.push(format!(
                "drain scenario: request {} has more than one terminal record",
                o.id
            ));
        }
    }
    let completed = gw
        .outcomes()
        .iter()
        .filter(|o| o.terminal.is_completed())
        .count();
    let force_failed = gw
        .outcomes()
        .iter()
        .filter(|o| {
            matches!(&o.terminal,
                atom_gateway::GatewayTerminal::Failed { reason } if reason.contains("drained"))
        })
        .count();
    DrainStats {
        offered,
        accepted,
        completed,
        force_failed,
        violations,
    }
}

struct PrefixChaosStats {
    submitted: usize,
    completed: usize,
    hits: usize,
    cow_forks: usize,
    flushed: usize,
    violations: Vec<String>,
}

/// Prefix-cache block conservation under faults: shared-prefix prompts
/// flow through an engine with the radix cache on while timeout, cancel,
/// forward, and alloc faults fire — so requests holding *shared* KV
/// blocks die mid-prefill and mid-decode. After drain the cache's own
/// references must be the only ones left, and flushing it must return
/// the pool to exactly empty.
fn prefix_reuse_under_fault(
    weights: &atom_nn::LlamaModel<atom::AnyLinear>,
    seed: u64,
) -> PrefixChaosStats {
    let config = *weights.config();
    let mut engine = match CpuEngine::new(
        weights.clone(),
        Box::new(move || Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))),
        MAX_BATCH,
        KV_POOL_TOKENS,
    ) {
        Ok(e) => e,
        Err(e) => {
            return PrefixChaosStats {
                submitted: 0,
                completed: 0,
                hits: 0,
                cow_forks: 0,
                flushed: 0,
                violations: vec![format!("prefix scenario: engine refused config: {e}")],
            }
        }
    };
    engine = engine
        .with_degraded_cache(Box::new(move || {
            Box::new(QuantizedKvCache::new(
                config.layers,
                config.kv_dim(),
                config.head_dim(),
                4,
            ))
        }))
        .with_policy(PressurePolicy {
            degrade_kv_at: 0.5,
            degrade_queue_depth: Some(4),
            shed_queue_depth: None,
        })
        .with_prefix_cache(PrefixConfig {
            max_cached_blocks: Some(6),
        })
        .with_fault_plan(FaultPlan::seeded_chaos(
            seed ^ 0x9EF1,
            400,
            FaultRates {
                alloc: 0.06,
                forward: 0.06,
                timeout: 0.08,
                cancel: 0.05,
            },
        ));

    // Two system prompts of two blocks each; every request reuses one and
    // appends a unique suffix, staggered so later arrivals hit the runs
    // earlier donors cached.
    let prefixes: [Vec<u16>; 2] = [
        (0..32u16).collect(),
        (0..32u16).map(|t| 95 - t).collect(),
    ];
    let mut submitted = 0usize;
    for wave in 0..5usize {
        for i in 0..4usize {
            let n = wave * 4 + i;
            let mut prompt = prefixes[n % 2].clone();
            prompt.extend((0..4 + n % 5).map(|t| atom_tensor::cast::usize_to_u16_saturating((n * 13 + t * 3) % 96)));
            let opts = if n % 3 == 0 {
                SubmitOptions::new(4 + n % 6).with_deadline(20 + n)
            } else {
                SubmitOptions::new(4 + n % 6)
            };
            let _ = engine.submit_with(prompt, opts);
            submitted += 1;
        }
        engine.step();
    }
    let _ = engine.cancel(2);
    let _ = engine.cancel(11);
    engine.run_to_completion();

    let mut violations = Vec::new();
    if engine.outcomes().len() != submitted {
        violations.push(format!(
            "prefix scenario lost requests: {} terminals for {submitted} submissions",
            engine.outcomes().len()
        ));
    }
    let completed = engine
        .outcomes()
        .iter()
        .filter(|o| o.terminal.is_completed())
        .count();
    let stats = engine.prefix_stats().unwrap_or_default();
    if stats.hits == 0 {
        violations.push("prefix scenario: no cache hits — faults were not exercised against shared blocks".to_string());
    }
    // At idle the cache holds exactly one reference per cached block;
    // every request-held reference (shared or owned) must be gone even
    // though many holders died to injected faults.
    let alloc = engine.batcher().allocator();
    if let Err(e) = alloc.leak_check() {
        violations.push(format!("prefix scenario: {e}"));
    }
    if alloc.used_blocks() != stats.cached_blocks
        || alloc.total_refs() != stats.cached_blocks as u64
    {
        violations.push(format!(
            "prefix scenario: idle pool holds {} blocks / {} refs for {} cached",
            alloc.used_blocks(),
            alloc.total_refs(),
            stats.cached_blocks
        ));
    }
    let flushed = engine.flush_prefix_cache();
    let alloc = engine.batcher().allocator();
    if alloc.used_blocks() != 0 || alloc.total_refs() != 0 || alloc.leak_check().is_err() {
        violations.push(format!(
            "prefix scenario: flush left {} blocks / {} refs live",
            alloc.used_blocks(),
            alloc.total_refs()
        ));
    }
    PrefixChaosStats {
        submitted,
        completed,
        hits: usize::try_from(stats.hits).unwrap_or(usize::MAX),
        cow_forks: usize::try_from(stats.cow_forks).unwrap_or(usize::MAX),
        flushed,
        violations,
    }
}
