//! Table 1: zero-shot accuracy of quantized models on the six task
//! families (stand-ins for PIQA / ARC-e / ARC-c / BoolQ / HellaSwag /
//! WinoGrande), at W4A4 and W3A3, across the four model sizes.

#![forbid(unsafe_code)]
use atom::pipeline::{AtomScheme, Scheme};
use atom_data::{TaskKind, TaskSuite, Tokenizer};
use atom_nn::{eval, zoo};

/// Items per task family (the suite totals 6x this).
const ITEMS: usize = 25;

fn main() {
    let suite = TaskSuite::generate(ITEMS, 0xBEEF);
    let tokenizer = Tokenizer::new();

    let mut rows: Vec<Vec<String>> = Vec::new();
    for id in zoo::ZooId::sizes() {
        let (model, calib) = atom_bench::calibrated(id);
        let mut push = |label: String, accs: Vec<f64>, avg: f64| {
            let mut row = vec![label];
            row.extend(accs.iter().map(|&a| atom_bench::fmt_pct(a)));
            row.push(atom_bench::fmt_pct(avg));
            rows.push(row);
        };
        let (accs, avg) = eval::zero_shot_row(&model, &suite, &tokenizer);
        push(format!("{} FP16", id.label()), accs, avg);
        for (tag, scheme) in [
            ("W4A4 SmoothQuant", Scheme::SmoothQuant { w_bits: 4, a_bits: 4 }),
            ("W4A4 OmniQuant*", Scheme::OmniQuantLike { w_bits: 4, a_bits: 4 }),
            ("W4A4 Atom", Scheme::Atom(AtomScheme::w4a4())),
            ("W3A3 SmoothQuant", Scheme::SmoothQuant { w_bits: 3, a_bits: 3 }),
            ("W3A3 Atom", Scheme::Atom(AtomScheme::w3a3())),
        ] {
            let q = scheme.quantize(&model, &calib);
            let (accs, avg) = q.zero_shot(&suite, &tokenizer);
            push(format!("{} {tag}", id.label()), accs, avg);
        }
        eprintln!("[table1] finished {}", id.label());
    }

    let mut headers: Vec<String> = vec!["model / scheme".into()];
    headers.extend(TaskKind::all().iter().map(|k| k.label().to_string()));
    headers.push("Avg.".into());
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let body = atom_bench::table(&headers_ref, &rows);
    let content = format!(
        "Table 1 — zero-shot accuracy (%) on six task families ({ITEMS} items each)\n\
         (paper: Atom loses <2.5% average vs FP16 at W4A4 while baselines lose 10-24%;\n\
          chance is 33% for 3-option tasks, 50% for 2-option, 25% for ARC-c*)\n\n{body}"
    );
    atom_bench::emit("table1_zeroshot", &content);
}
