//! Extension ablation: the W4A8 operating point between the paper's W4A4
//! and the W8A8 baseline.
//!
//! The paper's related work (ZeroQuant-FP) and its follow-on systems
//! (QServe) argue W4A8 trades a little of Atom's compute advantage for
//! W8A8-grade accuracy. The reproduction's fused GEMM supports mixed
//! operand widths, so the point is directly measurable: accuracy from the
//! real pipeline, serving throughput from the simulator (W4A8 computes on
//! INT8 tensor cores; weights stream at 4 bits).

#![forbid(unsafe_code)]
use atom::pipeline::{AtomScheme, Scheme};
use atom_data::CorpusStyle;
use atom_gpu_sim::cost::{op_time, ComputeKind, Op};
use atom_gpu_sim::HardwareProfile;
use atom_nn::{eval, zoo};
use std::fmt::Write as _;

fn main() {
    // Accuracy side (real pipeline).
    let (model, calib) = atom_bench::calibrated(zoo::ZooId::Tiny);
    let tokens = zoo::validation_tokens(CorpusStyle::Wiki);
    let tokens = &tokens[..tokens.len().min(2500)];
    let fp = eval::perplexity(&model, tokens, 96);
    let mut rows = Vec::new();
    for scheme in [
        Scheme::Atom(AtomScheme::w4a4()),
        Scheme::Atom(AtomScheme::w4a8()),
        Scheme::SmoothQuant { w_bits: 8, a_bits: 8 },
    ] {
        let ppl = scheme.quantize(&model, &calib).perplexity(tokens, 96);
        rows.push(vec![
            scheme.label(),
            atom_bench::fmt_ppl(ppl),
            format!("{:+.2}", ppl - fp),
        ]);
    }
    let acc_table = atom_bench::table(&["scheme", "wiki ppl", "vs FP16"], &rows);

    // Throughput side (simulator): batch-512 Llama-7B GEMM. W4A8 runs the
    // INT8 pipeline with 4-bit weight streams.
    let hw = HardwareProfile::rtx4090();
    let gemm = |wbits: f64, abits: f64, compute| {
        op_time(
            &Op::Gemm {
                m: 512,
                n: 4096,
                k: 4096,
                weight_bits: wbits,
                act_bits: abits,
                compute,
            },
            &hw,
        )
        .seconds()
    };
    let w4a4 = gemm(4.25, 4.25, ComputeKind::Int4Atom);
    let w4a8 = gemm(4.25, 8.0, ComputeKind::Int8Fused);
    let w8a8 = gemm(8.0, 8.0, ComputeKind::Int8Fused);

    let mut content = String::new();
    let _ = writeln!(
        content,
        "Extension — the W4A8 operating point (QServe-style) on the 7B* model\n\
         (expected shape: W4A8 accuracy ~= W8A8 > W4A4; W4A8 compute speed = W8A8 < W4A4)\n\n\
         accuracy (FP16 reference ppl {fp:.2}):\n\n{acc_table}"
    );
    let _ = writeln!(
        content,
        "batch-512 dense GEMM latency (RTX 4090 model):\n\
         \n  Atom W4A4: {:6.1} us\n  Atom W4A8: {:6.1} us\n  W8A8:      {:6.1} us\n\
         \nW4A4 is {:.2}x faster than W4A8 in compute; W4A8 matches W8A8 compute but\nstreams weights at 4 bits (memory-bound regimes and KV still win).",
        w4a4 * 1e6,
        w4a8 * 1e6,
        w8a8 * 1e6,
        w4a8 / w4a4,
    );
    atom_bench::emit("ablation_w4a8", &content);
}
