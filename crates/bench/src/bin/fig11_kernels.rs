//! Fig. 11: kernel-level evaluation — (a) dense GEMM latency across batch
//! sizes for FP16 / W4A16 / W8A8 / Atom W4A4, (b) self-attention
//! throughput across batch sizes for KV bits 16 / 8 / 4.
//!
//! Paper shape (RTX 4090, Llama-7B shapes, seq 1024): weight-only wins at
//! small batch and fades; at batch 512 Atom's GEMM is 3.4x FP16 and 1.9x
//! INT8; attention throughput scales ~linearly with KV compression, 3.5x
//! FP16 and 1.8x INT8 at batch 128.

#![forbid(unsafe_code)]
use atom_gpu_sim::cost::{op_time, ComputeKind, Op};
use atom_gpu_sim::{HardwareProfile, SimScheme};
use std::fmt::Write as _;

fn main() {
    let hw = HardwareProfile::rtx4090();
    let (n, k) = (4096usize, 4096usize);

    // (a) GEMM latency sweep.
    let mut rows_a = Vec::new();
    for batch in [1usize, 4, 16, 64, 128, 256, 512] {
        let lat = |wbits: f64, abits: f64, compute| {
            op_time(
                &Op::Gemm {
                    m: batch,
                    n,
                    k,
                    weight_bits: wbits,
                    act_bits: abits,
                    compute,
                },
                &hw,
            )
            .seconds()
        };
        let fp16 = lat(16.0, 16.0, ComputeKind::Fp16Tensor);
        let w4a16 = lat(4.25, 16.0, ComputeKind::Fp16Tensor);
        let w8a8 = lat(8.0, 8.0, ComputeKind::Int8Fused);
        let atom = lat(4.25, 4.25, ComputeKind::Int4Atom);
        rows_a.push(vec![
            batch.to_string(),
            format!("{:.1}", fp16 * 1e6),
            format!("{:.1}", w4a16 * 1e6),
            format!("{:.1}", w8a8 * 1e6),
            format!("{:.1}", atom * 1e6),
            format!("{:.2}x", fp16 / atom),
            format!("{:.2}x", w8a8 / atom),
        ]);
    }
    let table_a = atom_bench::table(
        &["batch", "FP16 us", "W4A16 us", "W8A8 us", "Atom us", "vs FP16", "vs INT8"],
        &rows_a,
    );

    // (b) Self-attention throughput sweep over KV bits.
    let mut rows_b = Vec::new();
    for batch in [1usize, 8, 32, 128, 256] {
        let att = |bits: f64| {
            op_time(
                &Op::Attention {
                    batch,
                    heads: 32,
                    head_dim: 128,
                    kv_len: 1024,
                    q_len: 1,
                    kv_bits: bits,
                },
                &hw,
            )
            .seconds()
        };
        let t16 = att(16.0);
        let t8 = att(8.0);
        let t4 = att(4.0);
        rows_b.push(vec![
            batch.to_string(),
            format!("{:.1}", t16 * 1e6),
            format!("{:.1}", t8 * 1e6),
            format!("{:.1}", t4 * 1e6),
            format!("{:.2}x", t16 / t4),
            format!("{:.2}x", t8 / t4),
        ]);
    }
    let table_b = atom_bench::table(
        &["batch", "KV16 us", "KV8 us", "KV4 us", "KV4 vs 16", "KV4 vs 8"],
        &rows_b,
    );

    let mut content = String::new();
    let _ = writeln!(
        content,
        "Fig. 11 — kernel evaluation on the RTX 4090 model (Llama-7B shapes, seq 1024)\n\n\
         (a) dense GEMM (4096x4096) latency vs batch\n\
         (paper anchors at batch 512: Atom 3.4x FP16, 1.9x INT8)\n\n{table_a}"
    );
    let _ = writeln!(
        content,
        "(b) decode self-attention latency vs batch by KV precision\n\
         (paper anchors at batch 128: INT4 KV 3.5x FP16, 1.8x INT8)\n\n{table_b}"
    );
    let _ = writeln!(
        content,
        "note: scheme memory footprints use effective bits (4.25 = INT4 + group scales);\n\
         labels match {:?}",
        SimScheme::all().map(|s| s.label())
    );
    atom_bench::emit("fig11_kernels", &content);
}
