//! Fig. 11: kernel-level evaluation — (a) dense GEMM latency across batch
//! sizes for FP16 / W4A16 / W8A8 / Atom W4A4, (b) self-attention
//! throughput across batch sizes for KV bits 16 / 8 / 4, and (c) the
//! *measured* CPU speedup of this repo's SWAR kernel path over the scalar
//! reference on the packed INT4 GEMM and quantized-KV attention.
//!
//! Paper shape (RTX 4090, Llama-7B shapes, seq 1024): weight-only wins at
//! small batch and fades; at batch 512 Atom's GEMM is 3.4x FP16 and 1.9x
//! INT8; attention throughput scales ~linearly with KV compression, 3.5x
//! FP16 and 1.8x INT8 at batch 128.
//!
//! Section (c) is a hard gate, not a report: the SWAR path must measure
//! at least 2.0x over scalar on the decode-shape (m=1) packed INT4 GEMM
//! or the bin exits non-zero. Both paths are also asserted bit-identical on every
//! measured shape, and the per-operator wall time of each path is recorded
//! through `atom_telemetry` (the same counters production serving uses)
//! so the before/after lives in telemetry, not just in `Instant` deltas.
//! A JSON twin lands at `results/fig11_kernels.json`; CI runs this bin
//! under both `ATOM_KERNEL_PATH` values and uploads both JSONs.
//!
//! Flags: `--seed <u64>` (default 7) seeds all matrix initialization.

#![forbid(unsafe_code)]
use atom_gpu_sim::cost::{op_time, ComputeKind, Op};
use atom_gpu_sim::{HardwareProfile, SimScheme};
use atom_kernels::attention::QuantizedKvHead;
use atom_kernels::gemm::{fused_group_gemm_with, fused_group_gemm_with_path};
use atom_kernels::{attention_quant_kv_path, GroupQuantized, KernelPath, QuantSpec};
use atom_parallel::Pool;
use atom_telemetry::{names, MetricsSnapshot, Telemetry};
use atom_tensor::SeededRng;
use std::fmt::Write as _;
use std::time::Instant;

/// Batch (activation-row) sweep for the measured CPU GEMM; m=1 is the
/// decode shape the speedup gate is anchored on.
const CPU_MS: [usize; 4] = [1, 4, 16, 64];
/// Measured CPU GEMM shape: Llama-ish projection scaled so the full sweep
/// stays in CI budget (weights 2048x2048 INT4, quant group 128).
const CPU_N: usize = 2048;
const CPU_K: usize = 2048;
const CPU_GROUP: usize = 128;
/// The acceptance threshold for SWAR over scalar at the decode shape.
const SPEEDUP_GATE: f64 = 2.0;

/// Best-of-`reps` wall time for `f`, returning (seconds, last output).
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now(); // lint: allow(time-entropy) — the scalar-vs-SWAR speedup measurement is the point of this report; correctness is gated on bit-identity, not time
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("reps >= 1"))
}

/// More reps at small shapes where a single run is microseconds.
fn reps_for(m: usize) -> usize {
    if m <= 4 {
        5
    } else {
        3
    }
}

fn hist_sum(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.histograms.get(name).map_or(0, |h| h.sum)
}

/// Histogram-sum delta between two snapshots (monotone counters, so plain
/// saturating subtraction).
fn hist_delta(before: &MetricsSnapshot, after: &MetricsSnapshot, name: &str) -> u64 {
    hist_sum(after, name).saturating_sub(hist_sum(before, name))
}

fn counter_delta(before: &MetricsSnapshot, after: &MetricsSnapshot, name: &str) -> u64 {
    after.counter(name).saturating_sub(before.counter(name))
}

fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

fn main() {
    let hw = HardwareProfile::rtx4090();
    let (n, k) = (4096usize, 4096usize);

    // (a) GEMM latency sweep.
    let mut rows_a = Vec::new();
    for batch in [1usize, 4, 16, 64, 128, 256, 512] {
        let lat = |wbits: f64, abits: f64, compute| {
            op_time(
                &Op::Gemm {
                    m: batch,
                    n,
                    k,
                    weight_bits: wbits,
                    act_bits: abits,
                    compute,
                },
                &hw,
            )
            .seconds()
        };
        let fp16 = lat(16.0, 16.0, ComputeKind::Fp16Tensor);
        let w4a16 = lat(4.25, 16.0, ComputeKind::Fp16Tensor);
        let w8a8 = lat(8.0, 8.0, ComputeKind::Int8Fused);
        let atom = lat(4.25, 4.25, ComputeKind::Int4Atom);
        rows_a.push(vec![
            batch.to_string(),
            format!("{:.1}", fp16 * 1e6),
            format!("{:.1}", w4a16 * 1e6),
            format!("{:.1}", w8a8 * 1e6),
            format!("{:.1}", atom * 1e6),
            format!("{:.2}x", fp16 / atom),
            format!("{:.2}x", w8a8 / atom),
        ]);
    }
    let table_a = atom_bench::table(
        &["batch", "FP16 us", "W4A16 us", "W8A8 us", "Atom us", "vs FP16", "vs INT8"],
        &rows_a,
    );

    // (b) Self-attention throughput sweep over KV bits.
    let mut rows_b = Vec::new();
    for batch in [1usize, 8, 32, 128, 256] {
        let att = |bits: f64| {
            op_time(
                &Op::Attention {
                    batch,
                    heads: 32,
                    head_dim: 128,
                    kv_len: 1024,
                    q_len: 1,
                    kv_bits: bits,
                },
                &hw,
            )
            .seconds()
        };
        let t16 = att(16.0);
        let t8 = att(8.0);
        let t4 = att(4.0);
        rows_b.push(vec![
            batch.to_string(),
            format!("{:.1}", t16 * 1e6),
            format!("{:.1}", t8 * 1e6),
            format!("{:.1}", t4 * 1e6),
            format!("{:.2}x", t16 / t4),
            format!("{:.2}x", t8 / t4),
        ]);
    }
    let table_b = atom_bench::table(
        &["batch", "KV16 us", "KV8 us", "KV4 us", "KV4 vs 16", "KV4 vs 8"],
        &rows_b,
    );

    // (c) Measured CPU scalar-vs-SWAR on the real kernels. One weight
    // matrix is shared across the batch sweep (exactly how serving reuses
    // packed weights across decode steps); activations are quantized per
    // batch size up front so timing loops measure only the GEMM.
    let seed = atom_bench::arg_u64("seed", 7);
    let mut rng = SeededRng::new(seed);
    let pool = Pool::global();
    let default_path = KernelPath::current();

    let w = rng.normal_matrix(CPU_N, CPU_K, 0.0, 0.5);
    let qw = GroupQuantized::quantize(&w, QuantSpec::new(4, CPU_GROUP));
    let qas: Vec<GroupQuantized> = CPU_MS
        .iter()
        .map(|&m| {
            let a = rng.normal_matrix(m, CPU_K, 0.0, 1.0);
            GroupQuantized::quantize(&a, QuantSpec::new(4, CPU_GROUP))
        })
        .collect();

    // Telemetry records the before/after: each path's sweep sits between
    // two snapshots, so the per-operator wall time and the path-split call
    // counters below come from the same instrumentation production uses.
    Telemetry::enable_global();
    let t = Telemetry::global();
    let s0 = t.metrics().snapshot();

    let mut scalar_secs = Vec::new();
    let mut scalar_outs = Vec::new();
    for (i, qa) in qas.iter().enumerate() {
        let (s, out) = time_best(reps_for(CPU_MS[i]), || {
            fused_group_gemm_with_path(pool, qa, &qw, KernelPath::Scalar)
                .expect("shapes validated")
        });
        scalar_secs.push(s);
        scalar_outs.push(out);
    }
    let s1 = t.metrics().snapshot();

    let mut swar_secs = Vec::new();
    for (i, qa) in qas.iter().enumerate() {
        let (s, out) = time_best(reps_for(CPU_MS[i]), || {
            fused_group_gemm_with_path(pool, qa, &qw, KernelPath::Swar).expect("shapes validated")
        });
        assert_eq!(
            scalar_outs[i].as_slice(),
            out.as_slice(),
            "scalar and SWAR GEMM disagree at m={}",
            CPU_MS[i]
        );
        swar_secs.push(s);
    }
    let s2 = t.metrics().snapshot();

    // The env-selected default path (what serving actually runs): timed at
    // the decode shape so the two CI runs of this bin (ATOM_KERNEL_PATH set
    // to each value) differ measurably in this one entry.
    let (default_secs, default_out) = time_best(5, || {
        fused_group_gemm_with(pool, &qas[0], &qw).expect("shapes validated")
    });
    assert_eq!(
        scalar_outs[0].as_slice(),
        default_out.as_slice(),
        "default path disagrees with scalar reference at m=1"
    );
    let s3 = t.metrics().snapshot();

    // Quantized-KV decode attention, paper decode shape (q_len 1, kv 1024,
    // head_dim 128, INT4 KV), one head.
    let (hd, kv_len) = (128usize, 1024);
    let mut kvh = QuantizedKvHead::new(hd, 4);
    kvh.append(
        &rng.normal_matrix(kv_len, hd, 0.0, 1.0),
        &rng.normal_matrix(kv_len, hd, 0.0, 1.0),
    );
    let q = rng.normal_matrix(1, hd, 0.0, 1.0);
    let scale = 1.0 / atom_tensor::cast::usize_to_f32(hd).sqrt();
    let (att_scalar_secs, att_scalar) =
        time_best(5, || attention_quant_kv_path(&q, &kvh, scale, KernelPath::Scalar));
    let s4 = t.metrics().snapshot();
    let (att_swar_secs, att_swar) =
        time_best(5, || attention_quant_kv_path(&q, &kvh, scale, KernelPath::Swar));
    assert_eq!(
        att_scalar.as_slice(),
        att_swar.as_slice(),
        "scalar and SWAR attention disagree"
    );
    let s5 = t.metrics().snapshot();

    let mut rows_c = Vec::new();
    for (i, &m) in CPU_MS.iter().enumerate() {
        rows_c.push(vec![
            m.to_string(),
            format!("{:.3}", scalar_secs[i] * 1e3),
            format!("{:.3}", swar_secs[i] * 1e3),
            format!("{:.2}x", scalar_secs[i] / swar_secs[i]),
        ]);
    }
    rows_c.push(vec![
        format!("attention kv{kv_len}"),
        format!("{:.3}", att_scalar_secs * 1e3),
        format!("{:.3}", att_swar_secs * 1e3),
        format!("{:.2}x", att_scalar_secs / att_swar_secs),
    ]);
    let table_c = atom_bench::table(&["m", "scalar ms", "swar ms", "speedup"], &rows_c);

    // Per-operator telemetry breakdown: each row is a snapshot delta, so
    // the wall numbers are what the production timers recorded, path by
    // path (timing reps included — this is the measurement's own cost).
    let tele_rows = vec![
        vec![
            "op.gemm".into(),
            "scalar".into(),
            ms(hist_delta(&s0, &s1, names::OP_GEMM_WALL_NS)),
            counter_delta(&s0, &s1, names::OP_GEMM_SCALAR_CALLS).to_string(),
        ],
        vec![
            "op.gemm".into(),
            "swar".into(),
            ms(hist_delta(&s1, &s2, names::OP_GEMM_WALL_NS)),
            counter_delta(&s1, &s2, names::OP_GEMM_SWAR_CALLS).to_string(),
        ],
        vec![
            "op.gemm".into(),
            format!("default ({})", default_path.label()),
            ms(hist_delta(&s2, &s3, names::OP_GEMM_WALL_NS)),
            counter_delta(&s2, &s3, names::OP_GEMM_CALLS).to_string(),
        ],
        vec![
            "op.attention".into(),
            "scalar".into(),
            ms(hist_delta(&s3, &s4, names::OP_ATTENTION_WALL_NS)),
            counter_delta(&s3, &s4, names::OP_ATTENTION_SCALAR_CALLS).to_string(),
        ],
        vec![
            "op.attention".into(),
            "swar".into(),
            ms(hist_delta(&s4, &s5, names::OP_ATTENTION_WALL_NS)),
            counter_delta(&s4, &s5, names::OP_ATTENTION_SWAR_CALLS).to_string(),
        ],
    ];
    let table_t = atom_bench::table(&["operator", "path", "wall ms", "calls"], &tele_rows);

    let decode_speedup = scalar_secs[0] / swar_secs[0];
    let att_speedup = att_scalar_secs / att_swar_secs;

    let mut content = String::new();
    let _ = writeln!(
        content,
        "Fig. 11 — kernel evaluation on the RTX 4090 model (Llama-7B shapes, seq 1024)\n\n\
         (a) dense GEMM (4096x4096) latency vs batch\n\
         (paper anchors at batch 512: Atom 3.4x FP16, 1.9x INT8)\n\n{table_a}"
    );
    let _ = writeln!(
        content,
        "(b) decode self-attention latency vs batch by KV precision\n\
         (paper anchors at batch 128: INT4 KV 3.5x FP16, 1.8x INT8)\n\n{table_b}"
    );
    let _ = writeln!(
        content,
        "(c) measured CPU kernels: scalar reference vs SWAR path\n\
         (packed INT4 GEMM {CPU_N}x{CPU_K}, group {CPU_GROUP}; attention q_len 1, head_dim {hd},\n\
         INT4 KV; seed {seed:#x}, best-of-reps, every row asserted bit-identical across paths;\n\
         default path this run: {})\n\n{table_c}",
        default_path.label()
    );
    let _ = writeln!(
        content,
        "default-path GEMM at m=1 ({}): {:.3} ms",
        default_path.label(),
        default_secs * 1e3
    );
    let _ = writeln!(
        content,
        "\nper-operator telemetry (snapshot deltas around each sweep, production counters)\n\n{table_t}"
    );
    let _ = writeln!(
        content,
        "gate: SWAR >= {SPEEDUP_GATE:.1}x scalar at the m=1 decode shape — measured {decode_speedup:.2}x"
    );
    let _ = writeln!(
        content,
        "\nnote: scheme memory footprints use effective bits (4.25 = INT4 + group scales);\n\
         labels match {:?}",
        SimScheme::all().map(|s| s.label())
    );
    atom_bench::emit("fig11_kernels", &content);

    // JSON twin (hand-rolled: the workspace deliberately has no JSON dep).
    let fmt_secs = |v: &[f64]| {
        v.iter().map(|s| format!("{s:.6}")).collect::<Vec<_>>().join(", ")
    };
    let speedups: Vec<String> = scalar_secs
        .iter()
        .zip(&swar_secs)
        .map(|(sc, sw)| format!("{:.3}", sc / sw))
        .collect();
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"default_path\": \"{}\",", default_path.label());
    let _ = writeln!(json, "  \"gemm\": {{");
    let _ = writeln!(
        json,
        "    \"n\": {CPU_N}, \"k\": {CPU_K}, \"group\": {CPU_GROUP}, \"bits\": 4,"
    );
    let _ = writeln!(json, "    \"m\": [1, 4, 16, 64],");
    let _ = writeln!(json, "    \"scalar_seconds\": [{}],", fmt_secs(&scalar_secs));
    let _ = writeln!(json, "    \"swar_seconds\": [{}],", fmt_secs(&swar_secs));
    let _ = writeln!(json, "    \"speedup\": [{}],", speedups.join(", "));
    let _ = writeln!(json, "    \"default_path_seconds_m1\": {default_secs:.6}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"attention\": {{");
    let _ = writeln!(
        json,
        "    \"kv_len\": {kv_len}, \"head_dim\": {hd}, \"kv_bits\": 4, \"q_len\": 1,"
    );
    let _ = writeln!(json, "    \"scalar_seconds\": {att_scalar_secs:.6},");
    let _ = writeln!(json, "    \"swar_seconds\": {att_swar_secs:.6},");
    let _ = writeln!(json, "    \"speedup\": {att_speedup:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"telemetry\": {{");
    let _ = writeln!(
        json,
        "    \"gemm_scalar_wall_ns\": {},",
        hist_delta(&s0, &s1, names::OP_GEMM_WALL_NS)
    );
    let _ = writeln!(
        json,
        "    \"gemm_swar_wall_ns\": {},",
        hist_delta(&s1, &s2, names::OP_GEMM_WALL_NS)
    );
    let _ = writeln!(
        json,
        "    \"gemm_scalar_calls\": {},",
        counter_delta(&s0, &s1, names::OP_GEMM_SCALAR_CALLS)
    );
    let _ = writeln!(
        json,
        "    \"gemm_swar_calls\": {},",
        counter_delta(&s1, &s2, names::OP_GEMM_SWAR_CALLS)
    );
    let _ = writeln!(
        json,
        "    \"attention_scalar_wall_ns\": {},",
        hist_delta(&s3, &s4, names::OP_ATTENTION_WALL_NS)
    );
    let _ = writeln!(
        json,
        "    \"attention_swar_wall_ns\": {}",
        hist_delta(&s4, &s5, names::OP_ATTENTION_WALL_NS)
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"bit_identical_across_paths\": true,");
    let _ = writeln!(
        json,
        "  \"gate\": {{ \"min_speedup\": {SPEEDUP_GATE:.1}, \"measured_decode_speedup\": {decode_speedup:.3}, \"pass\": {} }}",
        decode_speedup >= SPEEDUP_GATE
    );
    let _ = writeln!(json, "}}");
    let path = atom_bench::results_dir().join("fig11_kernels.json");
    std::fs::write(&path, json).expect("write json report");
    eprintln!("[written to results/fig11_kernels.json]");

    if decode_speedup < SPEEDUP_GATE {
        eprintln!(
            "FAIL: SWAR speedup at the m=1 decode shape is {decode_speedup:.2}x, \
             below the {SPEEDUP_GATE:.1}x gate"
        );
        std::process::exit(1);
    }
}
