//! §5.4.2: efficiency ablation — (1) fused-GEMM throughput ladder (pure
//! INT4 → + mixed precision → + group dequantization, vs the INT8
//! theoretical limit), profiled at the Llama-7B config with batch 4096;
//! (2) fused reorder+quantize vs matrix-decomposition baseline.
//!
//! Paper numbers: 980 → 900 → 770 TOPS; the fused kernel beats the INT8
//! limit by ~18%; reorder fusion wins 25–35% over decomposition on
//! layernorm + GEMM at batches 16–256.

#![forbid(unsafe_code)]
use atom_gpu_sim::ablation::{fused_gemm_ladder, reorder_ablation};
use atom_gpu_sim::HardwareProfile;
use std::fmt::Write as _;

fn main() {
    let hw = HardwareProfile::rtx4090();

    let ladder = fused_gemm_ladder(&hw);
    let rows: Vec<Vec<String>> = ladder
        .iter()
        .map(|r| vec![r.label.to_string(), format!("{:.0}", r.tops)])
        .collect();
    let table_1 = atom_bench::table(&["fused GEMM configuration", "TOPS"], &rows);

    let reorder = reorder_ablation(&hw, 4096, &[16, 32, 64, 128, 256]);
    let rows2: Vec<Vec<String>> = reorder
        .iter()
        .map(|r| {
            vec![
                r.batch.to_string(),
                format!("{:.1}", r.fused_s * 1e6),
                format!("{:.1}", r.decomposed_s * 1e6),
                format!("{:.0}%", r.speedup() * 100.0),
            ]
        })
        .collect();
    let table_2 = atom_bench::table(
        &["batch", "fused us", "decomposed us", "Atom advantage"],
        &rows2,
    );

    let mut content = String::new();
    let _ = writeln!(
        content,
        "§5.4.2 — kernel efficiency ablation (RTX 4090 model, batch-4096 Llama-7B GEMM)\n\
         (paper: 980 -> 900 -> 770 TOPS; fused kernel ~18% above the INT8 limit)\n\n{table_1}"
    );
    let margin = ladder[2].tops / ladder[3].tops - 1.0;
    let _ = writeln!(
        content,
        "fused Atom GEMM vs INT8 theoretical limit: +{:.0}%\n",
        margin * 100.0
    );
    let _ = writeln!(
        content,
        "reorder fusion vs matrix decomposition (layernorm + GEMM, dim 4096)\n\
         (paper: Atom consistently 25-35% faster at batches 16-256)\n\n{table_2}"
    );
    atom_bench::emit("table5_kernel_ablation", &content);
}
