//! §6 outlook ablation: the MX (microscaling) data format on
//! Blackwell-like hardware.
//!
//! Two halves: (1) accuracy — MXFP4 (FP4 payload, shared power-of-two E8M0
//! scale per 32) vs Atom's FP16-scaled FP4 and INT4 on a real model;
//! (2) efficiency — the paper "expects \[MX\] can mitigate the group
//! quantization overhead of Atom": with the scale applied as an exponent
//! add inside the tensor-core pipe, the fused GEMM recovers from the
//! group-fusion efficiency (770 TOPS) back to the mixed-precision-only
//! level (900).

#![forbid(unsafe_code)]
use atom::mx::{fake_quantize_mxfp4, mxfp4_effective_bits};
use atom::pipeline::{AtomScheme, Scheme};
use atom_data::CorpusStyle;
use atom_gpu_sim::cost::ComputeKind;
use atom_gpu_sim::HardwareProfile;
use atom_nn::{eval, zoo};
use atom_tensor::SeededRng;
use std::fmt::Write as _;

fn main() {
    // Accuracy half: tensor-level roundtrip error plus model perplexity.
    let mut rng = SeededRng::new(7);
    let x = rng.normal_matrix(64, 256, 0.0, 1.0);
    let mse_mx = fake_quantize_mxfp4(&x).mse(&x);
    let mse_fp4 = atom::fp4::fake_quantize_fp4(&x, 32, 1.0).mse(&x);
    let mse_int4 = atom_kernels::group::fake_quantize(
        &x,
        atom_kernels::QuantSpec::new(4, 32),
    )
    .mse(&x);

    let (model, calib) = atom_bench::calibrated(zoo::ZooId::Tiny);
    let tokens = zoo::validation_tokens(CorpusStyle::Wiki);
    let tokens = &tokens[..tokens.len().min(2500)];
    let fp = eval::perplexity(&model, tokens, 96);
    let int4 = Scheme::Atom(AtomScheme::w4a4())
        .quantize(&model, &calib)
        .perplexity(tokens, 96);
    let fp4 = Scheme::Atom(AtomScheme::fp4())
        .quantize(&model, &calib)
        .perplexity(tokens, 96);

    // Efficiency half.
    let hw = HardwareProfile::rtx4090();
    let current = ComputeKind::Int4Atom.effective_tops(&hw);
    let mx_native = ComputeKind::Int4Mixed.effective_tops(&hw);

    let mut content = String::new();
    let _ = writeln!(
        content,
        "§6 outlook — MX (microscaling) format\n\n\
         tensor roundtrip MSE on N(0,1), group 32:\n\
         \n  INT4 + f16 scales : {mse_int4:.5}\n  FP4  + f16 scales : {mse_fp4:.5}\n  MXFP4 (E8M0 scale): {mse_mx:.5}\n\
         \nMXFP4 effective bits: {:.3} (matching Atom's 4-bit + scales accounting)\n",
        mxfp4_effective_bits()
    );
    let _ = writeln!(
        content,
        "model perplexity (7B*, FP16 ref {fp:.2}): Atom INT4 {int4:.2}, Atom FP4 {fp4:.2}\n\
         (MXFP4's E8M0 scale costs at most one binade vs the f16 scale; the FP4 row\n\
          bounds its model-level accuracy from above)\n"
    );
    let _ = writeln!(
        content,
        "fused GEMM throughput at the §5.4.2 shape (RTX 4090 constants):\n\
         \n  today (fused group dequant on CUDA cores): {current:.0} TOPS\n\
         \n  MX-native (scale folded into tensor-core pipe): {mx_native:.0} TOPS\n\
         \nrecovered fusion overhead: +{:.0}% — the mitigation §6 anticipates from Blackwell.",
        (mx_native / current - 1.0) * 100.0
    );
    atom_bench::emit("ablation_mx", &content);
}
