//! Fig. 4: roofline model of different quantization approaches — (a)
//! weight-activation quantization, (b) weight-only quantization — on the
//! A100 profile the paper's §2 numbers come from.
//!
//! Paper shape: weight-activation quantization raises both the dense
//! compute roof (INT8/INT4 tensor cores) and the attention attainable
//! throughput (smaller KV); weight-only quantization leaves the FP16 roof
//! and the attention line untouched.

#![forbid(unsafe_code)]
use atom_gpu_sim::roofline::roofline_points;
use atom_gpu_sim::{HardwareProfile, LlamaGpuConfig, SimScheme};

fn main() {
    let hw = HardwareProfile::a100();
    let cfg = LlamaGpuConfig::llama7b();
    let mut rows = Vec::new();
    for scheme in SimScheme::all() {
        for batch in [1usize, 16, 128, 512] {
            for p in roofline_points(&cfg, scheme, batch, 1024, &hw) {
                rows.push(vec![
                    p.scheme.to_string(),
                    p.operator.to_string(),
                    p.batch.to_string(),
                    format!("{:.1}", p.intensity),
                    format!("{:.1}", p.attainable_tops),
                    format!("{:.1}", p.peak_tops),
                    if p.compute_bound { "compute" } else { "memory" }.to_string(),
                ]);
            }
        }
    }
    let body = atom_bench::table(
        &["scheme", "operator", "batch", "ops/byte", "attainable TOPS", "roof TOPS", "bound"],
        &rows,
    );
    let content = format!(
        "Fig. 4 — roofline of quantization approaches (A100, Llama-7B shapes, seq 1024)\n\
         (paper: dense becomes compute-bound at large batch and its roof rises with\n\
          lower-bit arithmetic; attention stays memory-bound and only KV quantization\n\
          lifts it; W4A16 changes neither roof)\n\n{body}"
    );
    atom_bench::emit("fig04_roofline", &content);
}
