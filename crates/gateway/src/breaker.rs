//! Circuit breaker: windowed failure counting mapped onto brownout tiers.
//!
//! Instead of a binary open/closed breaker, overload response is a
//! four-rung *brownout ladder* (Atom's quality/throughput trade made
//! operational): first degrade new admissions to quantized KV — cheaper
//! and slightly lossier, the paper's own knob — then shed low-priority
//! tenants, then refuse everything. Tripping up is instant; recovery
//! steps down one rung per cooldown so a still-sick backend is re-probed
//! gently rather than slammed.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::config::BreakerConfig;

/// Overload response tier, in escalation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BrownoutTier {
    /// Full service.
    Normal,
    /// New admissions get quantized (degraded) KV caches.
    DegradedKv,
    /// Tenants below the priority floor are refused.
    ShedLowPriority,
    /// Every offer is refused with a retry-after.
    RejectAll,
}

impl BrownoutTier {
    /// Numeric level for gauges and reports: 0 normal .. 3 reject-all.
    pub fn level(self) -> i64 {
        match self {
            BrownoutTier::Normal => 0,
            BrownoutTier::DegradedKv => 1,
            BrownoutTier::ShedLowPriority => 2,
            BrownoutTier::RejectAll => 3,
        }
    }

    /// The next tier toward normal (saturating).
    fn step_down(self) -> Self {
        match self {
            BrownoutTier::Normal | BrownoutTier::DegradedKv => BrownoutTier::Normal,
            BrownoutTier::ShedLowPriority => BrownoutTier::DegradedKv,
            BrownoutTier::RejectAll => BrownoutTier::ShedLowPriority,
        }
    }
}

impl std::fmt::Display for BrownoutTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrownoutTier::Normal => write!(f, "normal"),
            BrownoutTier::DegradedKv => write!(f, "degraded-kv"),
            BrownoutTier::ShedLowPriority => write!(f, "shed-low-priority"),
            BrownoutTier::RejectAll => write!(f, "reject-all"),
        }
    }
}

/// Sliding-window circuit breaker.
///
/// Call [`observe`] exactly once per gateway tick with that tick's
/// failure count; it returns the tier to apply for the next tick.
///
/// [`observe`]: Breaker::observe
#[derive(Debug, Clone)]
pub struct Breaker {
    cfg: BreakerConfig,
    window: VecDeque<u64>,
    tier: BrownoutTier,
    calm_ticks: u64,
}

impl Breaker {
    /// A closed (normal) breaker with the given thresholds.
    pub fn new(cfg: BreakerConfig) -> Self {
        Breaker {
            cfg,
            window: VecDeque::new(),
            tier: BrownoutTier::Normal,
            calm_ticks: 0,
        }
    }

    /// Current tier without observing anything.
    pub fn tier(&self) -> BrownoutTier {
        self.tier
    }

    /// Failures summed over the current window.
    pub fn windowed_failures(&self) -> u64 {
        self.window.iter().sum()
    }

    /// Feeds one tick's failure count and returns the tier to apply.
    ///
    /// Escalation is immediate; de-escalation happens one tier at a time
    /// after `cooldown_ticks` consecutive ticks in which the windowed sum
    /// maps to a calmer tier than the current one.
    pub fn observe(&mut self, failures: u64) -> BrownoutTier {
        self.window.push_back(failures);
        while self.window.len() > self.cfg.window_ticks.max(1) {
            self.window.pop_front();
        }
        let sum = self.windowed_failures();
        let desired = if sum >= self.cfg.reject_failures {
            BrownoutTier::RejectAll
        } else if sum >= self.cfg.shed_failures {
            BrownoutTier::ShedLowPriority
        } else if sum >= self.cfg.degrade_failures {
            BrownoutTier::DegradedKv
        } else {
            BrownoutTier::Normal
        };
        if desired >= self.tier {
            self.tier = desired;
            self.calm_ticks = 0;
        } else {
            self.calm_ticks += 1;
            if self.calm_ticks >= self.cfg.cooldown_ticks.max(1) {
                self.tier = self.tier.step_down();
                self.calm_ticks = 0;
            }
        }
        self.tier
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window_ticks: 4,
            degrade_failures: 2,
            shed_failures: 4,
            reject_failures: 6,
            shed_priority_floor: 1,
            cooldown_ticks: 3,
            retry_after_ticks: 8,
        }
    }

    #[test]
    fn trips_up_instantly() {
        let mut b = Breaker::new(cfg());
        assert_eq!(b.observe(0), BrownoutTier::Normal);
        assert_eq!(b.observe(2), BrownoutTier::DegradedKv);
        assert_eq!(b.observe(2), BrownoutTier::ShedLowPriority);
        assert_eq!(b.observe(3), BrownoutTier::RejectAll);
    }

    #[test]
    fn steps_down_one_tier_per_cooldown() {
        let mut b = Breaker::new(cfg());
        b.observe(6); // straight to reject-all
        assert_eq!(b.tier(), BrownoutTier::RejectAll);
        // The failure ages out of the 4-tick window after 4 calm ticks;
        // only then do calm ticks start counting toward de-escalation
        // (while the sum still maps >= current tier, calm resets).
        let mut seen = Vec::new();
        for _ in 0..16 {
            seen.push(b.observe(0));
        }
        assert_eq!(*seen.last().expect("nonempty"), BrownoutTier::Normal);
        // Every de-escalation is a single step: no tier is ever skipped.
        for pair in seen.windows(2) {
            if let [a, z] = pair {
                assert!(z.level() >= a.level() - 1);
            }
        }
    }

    #[test]
    fn window_slides() {
        let mut b = Breaker::new(cfg());
        b.observe(1);
        b.observe(1);
        assert_eq!(b.windowed_failures(), 2);
        for _ in 0..4 {
            b.observe(0);
        }
        assert_eq!(b.windowed_failures(), 0);
    }
}
