//! Gateway-level rejection and terminal types.
//!
//! The gateway's contract mirrors the engine's: every *offer* is either
//! refused synchronously with a [`GatewayReject`] or accepted and then
//! reaches exactly one [`GatewayTerminal`], retries notwithstanding — a
//! request that is dispatched three times still produces exactly one
//! gateway outcome.

use atom_serve::RejectReason;
use serde::{Deserialize, Serialize};

use crate::breaker::BrownoutTier;

/// Why an offer was refused at the gateway's front door.
///
/// Rejections are synchronous and cheap: nothing was queued, no engine
/// state was touched, and the client may retry after the advisory delay
/// where one is given.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GatewayReject {
    /// The tenant index is not in the config's tenant table.
    UnknownTenant {
        /// The offending index.
        tenant: usize,
    },
    /// The tenant's token bucket is empty.
    RateLimited {
        /// Ticks until the bucket can cover one request again.
        retry_after_ticks: u64,
    },
    /// The tenant's bounded gateway queue is at capacity.
    TenantQueueFull {
        /// Observed depth.
        depth: usize,
        /// Configured cap.
        cap: usize,
    },
    /// A brownout tier refused the offer (shed or reject-all).
    Brownout {
        /// The tier that refused it.
        tier: BrownoutTier,
        /// Advisory retry-after in ticks.
        retry_after_ticks: u64,
    },
    /// The gateway is draining and accepts no new work.
    Draining,
    /// Admission validation failed: the request is degenerate or could
    /// never be served (e.g. its KV footprint exceeds the whole pool).
    Invalid(RejectReason),
}

impl std::fmt::Display for GatewayReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayReject::UnknownTenant { tenant } => {
                write!(f, "unknown tenant index {tenant}")
            }
            GatewayReject::RateLimited { retry_after_ticks } => {
                write!(f, "rate limited; retry after {retry_after_ticks} ticks")
            }
            GatewayReject::TenantQueueFull { depth, cap } => {
                write!(f, "tenant queue full (depth {depth} >= cap {cap})")
            }
            GatewayReject::Brownout {
                tier,
                retry_after_ticks,
            } => write!(
                f,
                "brownout ({tier}); retry after {retry_after_ticks} ticks"
            ),
            GatewayReject::Draining => write!(f, "gateway draining"),
            GatewayReject::Invalid(reason) => write!(f, "invalid request: {reason}"),
        }
    }
}

/// The exactly-once terminal state of an *accepted* request.
///
/// Unlike the engine's [`Terminal`], there is no `Rejected` variant —
/// gateway rejections happen synchronously at offer time and never
/// consume an accepted-request id.
///
/// [`Terminal`]: atom_serve::Terminal
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GatewayTerminal {
    /// The full generation came back.
    Completed,
    /// Cancelled by the client while queued or in flight.
    Cancelled,
    /// The end-to-end deadline elapsed (queueing, backoff, and every
    /// attempt all count against it).
    DeadlineExceeded,
    /// The retry budget was exhausted, or a drain force-failed the
    /// request.
    Failed {
        /// Human-readable cause of the final failure.
        reason: String,
    },
}

impl GatewayTerminal {
    /// Whether the request finished with its full generation.
    pub fn is_completed(&self) -> bool {
        matches!(self, GatewayTerminal::Completed)
    }
}

impl std::fmt::Display for GatewayTerminal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayTerminal::Completed => write!(f, "completed"),
            GatewayTerminal::Cancelled => write!(f, "cancelled"),
            GatewayTerminal::DeadlineExceeded => write!(f, "deadline exceeded"),
            GatewayTerminal::Failed { reason } => write!(f, "failed: {reason}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let r = GatewayReject::Brownout {
            tier: BrownoutTier::ShedLowPriority,
            retry_after_ticks: 8,
        };
        assert!(r.to_string().contains("brownout"));
        assert!(r.to_string().contains("8 ticks"));
        let t = GatewayTerminal::Failed {
            reason: "retry budget exhausted".into(),
        };
        assert!(t.to_string().contains("retry budget"));
        assert!(!t.is_completed());
        assert!(GatewayTerminal::Completed.is_completed());
    }
}
