//! Overload-safe serving gateway in front of the Atom CPU engine.
//!
//! Atom's pitch is serving *throughput* under tight accuracy budgets;
//! this crate supplies the robustness layer a real deployment of it
//! needs: a front door that stays predictable when offered load exceeds
//! capacity. [`Gateway`] owns the request lifecycle end to end —
//!
//! - **Admission control** — per-tenant integer token buckets
//!   ([`bucket::TokenBucket`]) and bounded tenant queues refuse excess
//!   load synchronously with typed, retry-after-carrying rejections
//!   ([`GatewayReject`]) instead of letting queues grow without bound.
//! - **Weighted fairness** — virtual-time weighted fair queuing decides
//!   which tenant dispatches into the engine next, so one noisy tenant
//!   cannot starve the rest.
//! - **Retry with backoff** — retryable engine terminals (injected
//!   faults, spurious timeouts) are redispatched under an exponential
//!   backoff schedule with seeded deterministic jitter.
//! - **Brownout, not blackout** — a circuit breaker ([`Breaker`]) maps
//!   windowed failure counts onto a four-tier ladder
//!   ([`BrownoutTier`]): degrade new admissions to quantized KV (the
//!   paper's own quality/throughput knob), shed low-priority tenants,
//!   then reject-all with retry-after.
//! - **Graceful drain** — [`Gateway::begin_drain`] stops intake, lets
//!   accepted work finish, and force-fails stragglers when the grace
//!   budget elapses, so every accepted request reaches exactly one
//!   [`GatewayTerminal`] — proven under chaos schedules at any thread
//!   count.
//!
//! Ticks, not wall time: the gateway advances on a deterministic
//! tick-based event loop (one engine step per tick), which makes every
//! admission decision, retry schedule, and SLO report bit-identical for
//! a given (config, seed, trace) triple.
//!
//! # Example
//!
//! ```
//! use atom_gateway::{Gateway, GatewayConfig};
//! use atom_nn::kv::Fp32KvCache;
//! use atom_nn::{LlamaModel, ModelConfig};
//! use atom_serve::CpuEngine;
//!
//! let config = ModelConfig { dim: 32, layers: 1, heads: 4, kv_heads: 4, ffn_dim: 48, ..ModelConfig::default() };
//! let model = LlamaModel::random_init(config, 3);
//! let engine = CpuEngine::new(
//!     model,
//!     Box::new(move || Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))),
//!     4,
//!     1024,
//! ).unwrap();
//! let mut gw = Gateway::new(engine, GatewayConfig::single_tenant()).unwrap();
//! let id = gw.offer(0, vec![1, 2, 3], 4, None).unwrap();
//! assert!(gw.run_until_idle(100));
//! assert!(gw.outcome_of(id).unwrap().terminal.is_completed());
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod breaker;
pub mod bucket;
pub mod config;
pub mod error;
pub mod gateway;

pub use breaker::{Breaker, BrownoutTier};
pub use config::{BreakerConfig, GatewayConfig, RetryPolicy, TenantSpec};
pub use error::{GatewayReject, GatewayTerminal};
pub use gateway::{synth_prompt, Gateway, GatewayOutcome, RejectCounts, ReplaySummary};
