//! Gateway configuration: tenants, retry policy, and breaker thresholds.
//!
//! Everything here is plain data. The gateway derives every runtime
//! decision (admission, fairness, backoff, brownout) from these values
//! plus a seed, so a config + seed pair fully determines behaviour.

use serde::{Deserialize, Serialize};

/// Per-tenant admission contract.
///
/// `weight` controls the tenant's share of dispatch slots under
/// contention (weighted fair queuing); the token bucket
/// (`rate_millitokens_per_tick` / `burst_millitokens`) bounds its offered
/// rate; `queue_cap` bounds how much of its traffic the gateway will hold;
/// `priority` decides who is shed first in a brownout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Human-readable tenant label (reports only; never used for lookup).
    pub name: String,
    /// Fair-share weight (>= 1). A weight-3 tenant gets ~3x the dispatch
    /// slots of a weight-1 tenant when both are backlogged.
    pub weight: u64,
    /// Shed priority: higher survives longer. Tenants with
    /// `priority < BreakerConfig::shed_priority_floor` are refused while
    /// the breaker sits in the shed tier.
    pub priority: u8,
    /// Token-bucket refill per gateway tick, in milli-tokens. One admitted
    /// request costs 1000 milli-tokens, so `500` means one request every
    /// other tick sustained.
    pub rate_millitokens_per_tick: u64,
    /// Token-bucket capacity in milli-tokens — the burst the tenant may
    /// spend instantaneously after idling.
    pub burst_millitokens: u64,
    /// Bounded gateway-side queue depth for this tenant; offers beyond it
    /// are refused with `TenantQueueFull`.
    pub queue_cap: usize,
}

impl TenantSpec {
    /// A tenant with the given fair-share weight and shed priority, a
    /// 2-requests-per-tick bucket with a 4-request burst, and a 64-deep
    /// queue.
    pub fn new(name: &str, weight: u64, priority: u8) -> Self {
        TenantSpec {
            name: name.to_string(),
            weight,
            priority,
            rate_millitokens_per_tick: 2_000,
            burst_millitokens: 4_000,
            queue_cap: 64,
        }
    }

    /// Sets the token bucket (builder style). `rate` is milli-tokens per
    /// tick, `burst` is the bucket capacity in milli-tokens; one request
    /// costs 1000.
    pub fn with_rate(mut self, rate: u64, burst: u64) -> Self {
        self.rate_millitokens_per_tick = rate;
        self.burst_millitokens = burst;
        self
    }

    /// Sets the bounded queue depth (builder style).
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }
}

/// Retry budget and backoff shape for retryable terminals.
///
/// A request is *retryable* when its attempt ended in a fault
/// (`Terminal::Failed`) or — when `retry_timeouts` is set — in a spurious
/// `DeadlineExceeded` whose gateway-level deadline has not actually
/// elapsed (injected timeout faults look exactly like this). Client
/// cancellations are never retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum dispatch attempts per accepted request (>= 1). `1` disables
    /// retry entirely.
    pub max_attempts: u32,
    /// Base backoff in ticks; attempt `k` waits
    /// `min(base * 2^(k-1), max) + jitter` where `jitter < base`.
    pub backoff_base_ticks: u64,
    /// Ceiling on the exponential term.
    pub backoff_max_ticks: u64,
    /// Whether spurious timeout faults are retried (real deadline expiry
    /// never is).
    pub retry_timeouts: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_ticks: 2,
            backoff_max_ticks: 32,
            retry_timeouts: true,
        }
    }
}

/// Circuit-breaker thresholds driving the brownout ladder.
///
/// The breaker sums request failures over a sliding window of
/// `window_ticks` ticks and maps the sum onto a [`BrownoutTier`]: it
/// *trips up* instantly when a threshold is crossed and *steps down* one
/// tier at a time after `cooldown_ticks` consecutive calm ticks, so
/// recovery probes the load gently instead of slamming back to normal.
///
/// [`BrownoutTier`]: crate::BrownoutTier
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Sliding-window length in ticks.
    pub window_ticks: usize,
    /// Windowed failures at which admissions degrade to quantized KV.
    pub degrade_failures: u64,
    /// Windowed failures at which low-priority tenants are shed.
    pub shed_failures: u64,
    /// Windowed failures at which all offers are refused.
    pub reject_failures: u64,
    /// Tenants with `priority <` this floor are refused in the shed tier.
    pub shed_priority_floor: u8,
    /// Calm ticks (windowed failures below the current tier's threshold)
    /// before stepping down one tier.
    pub cooldown_ticks: u64,
    /// Advisory retry-after returned with brownout rejections, in ticks.
    pub retry_after_ticks: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window_ticks: 16,
            degrade_failures: 3,
            shed_failures: 6,
            reject_failures: 10,
            shed_priority_floor: 1,
            cooldown_ticks: 24,
            retry_after_ticks: 8,
        }
    }
}

/// Full gateway configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatewayConfig {
    /// Tenant table; offers name tenants by index into this vector.
    pub tenants: Vec<TenantSpec>,
    /// Retry/backoff policy shared by all tenants.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Target depth of the *engine's* pre-admission queue: the dispatcher
    /// stops feeding the engine once `engine.batcher().queued()` reaches
    /// this (or the engine's own shed watermark, whichever is lower), so
    /// gateway fairness — not engine FCFS — decides ordering under load.
    pub dispatch_queue_target: usize,
    /// Ticks a drain waits for in-flight and queued work before
    /// force-failing stragglers.
    pub drain_grace_ticks: u64,
    /// Seed for retry jitter. Same seed + same trace = identical
    /// schedules.
    pub seed: u64,
}

impl GatewayConfig {
    /// A config serving the given tenants with default retry, breaker,
    /// dispatch, and drain settings.
    pub fn new(tenants: Vec<TenantSpec>) -> Self {
        GatewayConfig {
            tenants,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            dispatch_queue_target: 4,
            drain_grace_ticks: 64,
            seed: 0,
        }
    }

    /// A single-tenant config (weight 1, priority 1) — handy for tests
    /// and single-stream benches.
    pub fn single_tenant() -> Self {
        GatewayConfig::new(vec![TenantSpec::new("default", 1, 1)])
    }

    /// Sets the jitter seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let t = TenantSpec::new("burst", 3, 2)
            .with_rate(500, 9_000)
            .with_queue_cap(7);
        assert_eq!(t.weight, 3);
        assert_eq!(t.rate_millitokens_per_tick, 500);
        assert_eq!(t.burst_millitokens, 9_000);
        assert_eq!(t.queue_cap, 7);
        let cfg = GatewayConfig::new(vec![t]).with_seed(42);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.tenants.len(), 1);
    }

    #[test]
    fn defaults_are_ordered_sanely() {
        let b = BreakerConfig::default();
        assert!(b.degrade_failures < b.shed_failures);
        assert!(b.shed_failures < b.reject_failures);
        let r = RetryPolicy::default();
        assert!(r.max_attempts >= 1);
        assert!(r.backoff_base_ticks <= r.backoff_max_ticks);
    }
}
