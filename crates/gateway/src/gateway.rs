//! The gateway event loop: admission, fairness, retry, brownout, drain.
//!
//! [`Gateway`] wraps a [`CpuEngine`] and owns the request lifecycle end
//! to end. It advances in discrete *ticks* — an in-process async event
//! loop with a deterministic clock instead of wall time. Each tick:
//!
//! 1. refill per-tenant token buckets;
//! 2. release retries whose backoff elapsed back into their tenant queue;
//! 3. dispatch queued requests into the engine by weighted fair credit,
//!    stopping at the engine's pre-admission queue target so gateway
//!    fairness (not engine FCFS) orders work under load;
//! 4. run one engine step;
//! 5. harvest engine terminals — completions finish, retryable faults
//!    park with seeded-jitter exponential backoff;
//! 6. feed the tick's failure count to the circuit breaker and apply its
//!    brownout tier;
//! 7. force-fail stragglers if a drain's grace budget elapsed.
//!
//! Nothing reads wall time or host entropy, so a (config, seed, trace)
//! triple reproduces admission decisions, retry schedules, and outcomes
//! bit-identically at any worker-pool width.

use std::collections::{BTreeMap, VecDeque};

use atom_data::Arrival;
use atom_nn::LinearLayer;
use atom_serve::{
    CpuEngine, Outcome, PressurePolicy, RejectReason, RequestStats, ServeError, SubmitOptions,
    Terminal,
};
use atom_telemetry::{names, Telemetry};
use atom_tensor::cast;

use crate::breaker::{Breaker, BrownoutTier};
use crate::bucket::{TokenBucket, REQUEST_COST_MILLI};
use crate::config::GatewayConfig;
use crate::error::{GatewayReject, GatewayTerminal};

/// Virtual-time scale for weighted fair queuing: one dispatch advances a
/// tenant's virtual finish time by `WFQ_SCALE / weight`, so long-run
/// dispatch ratios converge to the weight ratios. Divisible by 1..=10 to
/// keep truncation bias negligible for small weights.
const WFQ_SCALE: u64 = 10_080;

/// The exactly-once record of one accepted request, retries collapsed.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayOutcome {
    /// Gateway request id (acceptance order; rejected offers consume
    /// none).
    pub id: usize,
    /// Tenant index the request arrived under.
    pub tenant: usize,
    /// How the request ended, across all attempts.
    pub terminal: GatewayTerminal,
    /// Generated tokens of the final attempt (full generation for
    /// `Completed`).
    pub tokens: Vec<u16>,
    /// Engine dispatches performed (0 if it never left the gateway
    /// queue).
    pub attempts: u32,
    /// Gateway clock when the offer was accepted.
    pub offered_tick: u64,
    /// Gateway clock when the final attempt produced its first token.
    pub first_token_tick: Option<u64>,
    /// Gateway clock when the terminal was recorded.
    pub finished_tick: u64,
    /// Engine-side accounting of the final attempt (default if never
    /// dispatched).
    pub engine_stats: RequestStats,
}

/// Synchronous rejection tallies, by reason class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejectCounts {
    /// Token-bucket refusals.
    pub rate_limited: u64,
    /// Bounded tenant-queue refusals.
    pub queue_full: u64,
    /// Brownout-tier refusals (shed + reject-all).
    pub brownout: u64,
    /// Refusals while draining.
    pub draining: u64,
    /// Validation refusals (unknown tenant, degenerate, unservable).
    pub invalid: u64,
}

impl RejectCounts {
    /// Total synchronous rejections.
    pub fn total(&self) -> u64 {
        self.rate_limited + self.queue_full + self.brownout + self.draining + self.invalid
    }
}

/// Counts from replaying a trace (see [`Gateway::replay_trace`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Arrivals offered.
    pub offered: u64,
    /// Offers accepted into a tenant queue.
    pub accepted: u64,
}

/// Where an accepted, not-yet-terminal request currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    Queued,
    Parked,
    InFlight,
}

#[derive(Debug, Clone)]
struct GwRequest {
    tenant: usize,
    prompt: Vec<u16>,
    max_new: usize,
    offered_tick: u64,
    deadline_tick: Option<u64>,
    attempts: u32,
    loc: Loc,
    last_stats: RequestStats,
    last_first_token_tick: Option<u64>,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    gateway_id: usize,
    dispatch_tick: u64,
    engine_clock: usize,
    drain_cancelled: bool,
}

/// Overload-safe serving gateway in front of a [`CpuEngine`].
///
/// See the [module docs](self) for the per-tick loop. Construct with
/// [`Gateway::new`], feed it with [`offer`] / [`replay_trace`], advance
/// with [`tick`] / [`run_until_idle`], and read [`outcomes`].
///
/// [`offer`]: Gateway::offer
/// [`replay_trace`]: Gateway::replay_trace
/// [`tick`]: Gateway::tick
/// [`run_until_idle`]: Gateway::run_until_idle
/// [`outcomes`]: Gateway::outcomes
pub struct Gateway<L: LinearLayer> {
    engine: CpuEngine<L>,
    cfg: GatewayConfig,
    base_policy: PressurePolicy,
    buckets: Vec<TokenBucket>,
    queues: Vec<VecDeque<usize>>,
    /// Per-tenant virtual finish time for weighted fair dispatch.
    vft: Vec<u64>,
    /// Live (accepted, not yet terminal) request count per tenant.
    live: Vec<usize>,
    requests: BTreeMap<usize, GwRequest>,
    parked: BTreeMap<u64, Vec<usize>>,
    inflight: BTreeMap<usize, InFlight>,
    outcomes: Vec<GatewayOutcome>,
    engine_cursor: usize,
    breaker: Breaker,
    applied_tier: BrownoutTier,
    drain_started: Option<u64>,
    drain_forced: bool,
    next_id: usize,
    clock: u64,
    failures_this_tick: u64,
    accepted: u64,
    retries: u64,
    rejects: RejectCounts,
}

impl<L: LinearLayer> std::fmt::Debug for Gateway<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("tick", &self.clock)
            .field("tenants", &self.cfg.tenants.len())
            .field("live_requests", &self.requests.len())
            .field("inflight", &self.inflight.len())
            .field("outcomes", &self.outcomes.len())
            .field("tier", &self.applied_tier)
            .field("draining", &self.drain_started.is_some())
            .finish_non_exhaustive()
    }
}

impl<L: LinearLayer> Gateway<L> {
    /// Wraps `engine` with the given gateway config.
    ///
    /// The engine's current [`PressurePolicy`] becomes the *base* policy
    /// that brownout tiers perturb and recovery restores.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when the config is unusable:
    /// no tenants, a zero tenant weight, a zero retry budget, or a zero
    /// dispatch queue target.
    pub fn new(engine: CpuEngine<L>, cfg: GatewayConfig) -> Result<Self, ServeError> {
        if cfg.tenants.is_empty() {
            return Err(ServeError::InvalidConfig("gateway needs at least one tenant"));
        }
        if cfg.tenants.iter().any(|t| t.weight == 0) {
            return Err(ServeError::InvalidConfig("tenant weight must be >= 1"));
        }
        if cfg.retry.max_attempts == 0 {
            return Err(ServeError::InvalidConfig("retry budget must allow one attempt"));
        }
        if cfg.dispatch_queue_target == 0 {
            return Err(ServeError::InvalidConfig("dispatch queue target must be >= 1"));
        }
        let buckets = cfg
            .tenants
            .iter()
            .map(|t| TokenBucket::new(t.rate_millitokens_per_tick, t.burst_millitokens))
            .collect();
        let queues = cfg.tenants.iter().map(|_| VecDeque::new()).collect();
        let vft = cfg.tenants.iter().map(|_| 0u64).collect();
        let live = cfg.tenants.iter().map(|_| 0usize).collect();
        let breaker = Breaker::new(cfg.breaker);
        let base_policy = engine.policy();
        Ok(Gateway {
            engine,
            cfg,
            base_policy,
            buckets,
            queues,
            vft,
            live,
            requests: BTreeMap::new(),
            parked: BTreeMap::new(),
            inflight: BTreeMap::new(),
            outcomes: Vec::new(),
            engine_cursor: 0,
            breaker,
            applied_tier: BrownoutTier::Normal,
            drain_started: None,
            drain_forced: false,
            next_id: 0,
            clock: 0,
            failures_this_tick: 0,
            accepted: 0,
            retries: 0,
            rejects: RejectCounts::default(),
        })
    }

    /// Offers a request on behalf of `tenant`.
    ///
    /// Checks run front-door-outward: drain state, tenant validity,
    /// brownout tier, request validation, the tenant's bounded queue, and
    /// finally its token bucket (so refusals earlier in the chain never
    /// consume bucket tokens). Acceptance returns a gateway request id
    /// that will appear in exactly one [`GatewayOutcome`].
    ///
    /// # Errors
    ///
    /// Returns the first [`GatewayReject`] that applies; nothing is
    /// queued on rejection.
    pub fn offer(
        &mut self,
        tenant: usize,
        prompt: Vec<u16>,
        max_new: usize,
        deadline_ticks: Option<u64>,
    ) -> Result<usize, GatewayReject> {
        self.tel(|t| t.counter_add(names::GATEWAY_OFFERED, 1));
        if self.drain_started.is_some() {
            self.rejects.draining += 1;
            self.tel(|t| t.counter_add(names::GATEWAY_REJECT_DRAINING, 1));
            return Err(GatewayReject::Draining);
        }
        let Some(spec) = self.cfg.tenants.get(tenant) else {
            self.rejects.invalid += 1;
            self.tel(|t| t.counter_add(names::GATEWAY_REJECT_INVALID, 1));
            return Err(GatewayReject::UnknownTenant { tenant });
        };
        let (priority, queue_cap) = (spec.priority, spec.queue_cap);
        let tier = self.breaker.tier();
        let browned_out = match tier {
            BrownoutTier::RejectAll => true,
            BrownoutTier::ShedLowPriority => priority < self.cfg.breaker.shed_priority_floor,
            BrownoutTier::Normal | BrownoutTier::DegradedKv => false,
        };
        if browned_out {
            self.rejects.brownout += 1;
            self.tel(|t| t.counter_add(names::GATEWAY_REJECT_BROWNOUT, 1));
            return Err(GatewayReject::Brownout {
                tier,
                retry_after_ticks: self.cfg.breaker.retry_after_ticks,
            });
        }
        if let Some(reason) = self.validate(&prompt, max_new) {
            self.rejects.invalid += 1;
            self.tel(|t| t.counter_add(names::GATEWAY_REJECT_INVALID, 1));
            return Err(GatewayReject::Invalid(reason));
        }
        let depth = self.queues.get(tenant).map_or(0, VecDeque::len);
        if depth >= queue_cap {
            self.rejects.queue_full += 1;
            self.tel(|t| t.counter_add(names::GATEWAY_REJECT_QUEUE_FULL, 1));
            return Err(GatewayReject::TenantQueueFull {
                depth,
                cap: queue_cap,
            });
        }
        let Some(bucket) = self.buckets.get_mut(tenant) else {
            self.rejects.invalid += 1;
            self.tel(|t| t.counter_add(names::GATEWAY_REJECT_INVALID, 1));
            return Err(GatewayReject::UnknownTenant { tenant });
        };
        if !bucket.try_take(REQUEST_COST_MILLI) {
            let retry_after_ticks = bucket.ticks_until(REQUEST_COST_MILLI);
            self.rejects.rate_limited += 1;
            self.tel(|t| t.counter_add(names::GATEWAY_REJECT_RATE_LIMITED, 1));
            return Err(GatewayReject::RateLimited { retry_after_ticks });
        }
        // Fair-queuing catch-up: a tenant waking from idle starts at the
        // busiest peers' floor instead of monopolizing with a stale (low)
        // virtual time; with no live work at all, the clock resets.
        let floor = self
            .vft
            .iter()
            .enumerate()
            .filter(|(i, _)| self.live.get(*i).copied().unwrap_or(0) > 0)
            .map(|(_, v)| *v)
            .min();
        match floor {
            Some(f) => {
                if let Some(v) = self.vft.get_mut(tenant) {
                    *v = (*v).max(f);
                }
            }
            None => {
                for v in &mut self.vft {
                    *v = 0;
                }
            }
        }
        if let Some(n) = self.live.get_mut(tenant) {
            *n += 1;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.requests.insert(
            id,
            GwRequest {
                tenant,
                prompt,
                max_new,
                offered_tick: self.clock,
                deadline_tick: deadline_ticks.map(|d| self.clock.saturating_add(d)),
                attempts: 0,
                loc: Loc::Queued,
                last_stats: RequestStats::default(),
                last_first_token_tick: None,
            },
        );
        if let Some(q) = self.queues.get_mut(tenant) {
            q.push_back(id);
        }
        self.accepted += 1;
        self.tel(|t| t.counter_add(names::GATEWAY_ACCEPTED, 1));
        Ok(id)
    }

    /// Cancels an accepted request wherever it currently lives: queued
    /// and parked requests terminalize `Cancelled` immediately, in-flight
    /// ones are cancelled in the engine and harvested on the next tick.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownRequest`] if the id was never
    /// accepted or is already terminal.
    pub fn cancel(&mut self, id: usize) -> Result<(), ServeError> {
        let Some(req) = self.requests.get(&id) else {
            return Err(ServeError::UnknownRequest(id));
        };
        let (loc, tenant, stats, ftt) =
            (req.loc, req.tenant, req.last_stats, req.last_first_token_tick);
        match loc {
            Loc::Queued => {
                if let Some(q) = self.queues.get_mut(tenant) {
                    q.retain(|&x| x != id);
                }
                self.finish(id, GatewayTerminal::Cancelled, Vec::new(), stats, ftt);
                Ok(())
            }
            Loc::Parked => {
                for ids in self.parked.values_mut() {
                    ids.retain(|&x| x != id);
                }
                self.parked.retain(|_, v| !v.is_empty());
                self.finish(id, GatewayTerminal::Cancelled, Vec::new(), stats, ftt);
                Ok(())
            }
            Loc::InFlight => {
                let eid = self
                    .inflight
                    .iter()
                    .find(|(_, m)| m.gateway_id == id)
                    .map(|(e, _)| *e);
                match eid {
                    Some(e) => self.engine.cancel(e),
                    None => Err(ServeError::UnknownRequest(id)),
                }
            }
        }
    }

    /// Advances the gateway (and the engine underneath it) by one tick.
    pub fn tick(&mut self) {
        self.clock += 1;
        self.failures_this_tick = 0;
        for b in &mut self.buckets {
            b.refill();
        }
        self.release_due_retries();
        self.dispatch();
        self.engine.step();
        self.harvest();
        let tier = self.breaker.observe(self.failures_this_tick);
        self.apply_tier(tier);
        if let Some(start) = self.drain_started {
            if !self.drain_forced && self.clock.saturating_sub(start) >= self.cfg.drain_grace_ticks
            {
                self.force_drain();
            }
        }
        let depth: usize = self.queues.iter().map(VecDeque::len).sum();
        self.tel(|t| t.record(names::GATEWAY_QUEUE_DEPTH, depth as u64));
        let level = self.applied_tier.level();
        self.tel(|t| t.gauge_set(names::GATEWAY_BREAKER_TIER, level));
    }

    /// Stops accepting offers; queued and in-flight work keeps running.
    /// After `drain_grace_ticks` further ticks, stragglers are
    /// force-failed so the drain always converges. Idempotent.
    pub fn begin_drain(&mut self) {
        if self.drain_started.is_none() {
            self.drain_started = Some(self.clock);
        }
    }

    /// Whether a drain has begun.
    pub fn is_draining(&self) -> bool {
        self.drain_started.is_some()
    }

    /// Whether every accepted request has reached its terminal.
    pub fn is_idle(&self) -> bool {
        self.requests.is_empty()
    }

    /// Ticks until idle or until `max_ticks` elapse; returns whether idle
    /// was reached.
    pub fn run_until_idle(&mut self, max_ticks: u64) -> bool {
        let mut n = 0u64;
        while !self.is_idle() && n < max_ticks {
            self.tick();
            n += 1;
        }
        self.is_idle()
    }

    /// Replays an open-loop arrival trace: each tick, offers every
    /// arrival stamped for the current clock, then advances one tick.
    /// Returns offer/accept counts; leftover work keeps running via
    /// [`tick`](Gateway::tick) / [`run_until_idle`](Gateway::run_until_idle).
    pub fn replay_trace(&mut self, trace: &[Arrival]) -> ReplaySummary {
        let mut summary = ReplaySummary::default();
        let mut idx = 0usize;
        while idx < trace.len() {
            while let Some(a) = trace.get(idx) {
                if a.tick > self.clock {
                    break;
                }
                summary.offered += 1;
                let prompt = synth_prompt(idx, a.prefill_tokens);
                if self
                    .offer(a.tenant, prompt, a.decode_tokens, a.deadline_ticks)
                    .is_ok()
                {
                    summary.accepted += 1;
                }
                idx += 1;
            }
            self.tick();
        }
        summary
    }

    /// Terminal records, in finish order.
    pub fn outcomes(&self) -> &[GatewayOutcome] {
        &self.outcomes
    }

    /// The terminal record for `id`, if it finished.
    pub fn outcome_of(&self, id: usize) -> Option<&GatewayOutcome> {
        self.outcomes.iter().find(|o| o.id == id)
    }

    /// Gateway clock (ticks elapsed).
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Offers accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Retry dispatches performed so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Synchronous rejection tallies.
    pub fn rejects(&self) -> RejectCounts {
        self.rejects
    }

    /// The brownout tier currently applied.
    pub fn breaker_tier(&self) -> BrownoutTier {
        self.applied_tier
    }

    /// The engine behind the gateway (read-only).
    pub fn engine(&self) -> &CpuEngine<L> {
        &self.engine
    }

    /// Prefix-cache statistics from the engine, if its radix cache is
    /// enabled (`None` otherwise) — surfaced here so operators reading
    /// gateway dashboards need not reach through [`Self::engine`].
    pub fn prefix_stats(&self) -> Option<atom_serve::PrefixCacheStats> {
        self.engine.prefix_stats()
    }

    /// Requests currently waiting in gateway tenant queues.
    pub fn queued_depth(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn tel(&self, f: impl FnOnce(&Telemetry)) {
        f(self.engine.telemetry());
    }

    /// Offer-time validation mirroring the engine's own admission checks,
    /// so an accepted request can never terminalize `Rejected` later.
    fn validate(&self, prompt: &[u16], max_new: usize) -> Option<RejectReason> {
        if prompt.is_empty() {
            return Some(RejectReason::EmptyPrompt);
        }
        if max_new == 0 {
            return Some(RejectReason::ZeroDecodeTokens);
        }
        let alloc = self.engine.batcher().allocator();
        let needed = alloc.blocks_for(prompt.len() + max_new);
        let total = alloc.total_blocks();
        if needed > total {
            return Some(RejectReason::ExceedsKvPool {
                needed_blocks: needed,
                total_blocks: total,
            });
        }
        None
    }

    fn release_due_retries(&mut self) {
        let due: Vec<u64> = self.parked.range(..=self.clock).map(|(k, _)| *k).collect();
        for k in due {
            let Some(ids) = self.parked.remove(&k) else {
                continue;
            };
            for id in ids {
                let Some(req) = self.requests.get_mut(&id) else {
                    continue;
                };
                req.loc = Loc::Queued;
                let tenant = req.tenant;
                if let Some(q) = self.queues.get_mut(tenant) {
                    q.push_back(id);
                }
            }
        }
    }

    /// Weighted fair dispatch (virtual-time WFQ): the backlogged tenant
    /// with the *lowest* virtual finish time dispatches next (ties to the
    /// lowest index), and each dispatch advances that tenant's virtual
    /// time by `WFQ_SCALE / weight` — so long-run dispatch ratios equal
    /// the weight ratios regardless of how scarce slots are. Dispatch
    /// stops at the engine's pre-admission queue target — the smaller of
    /// the gateway's own target and the engine's shed watermark, so
    /// backpressure composes instead of fighting.
    fn dispatch(&mut self) {
        loop {
            let target = self
                .cfg
                .dispatch_queue_target
                .min(self.engine.policy().shed_queue_depth.unwrap_or(usize::MAX));
            if self.engine.batcher().queued() >= target {
                break;
            }
            let mut best: Option<(u64, usize)> = None;
            for (i, q) in self.queues.iter().enumerate() {
                if q.is_empty() {
                    continue;
                }
                let v = self.vft.get(i).copied().unwrap_or(0);
                match best {
                    Some((bv, _)) if bv <= v => {}
                    _ => best = Some((v, i)),
                }
            }
            let Some((_, tenant)) = best else {
                break;
            };
            let Some(id) = self.queues.get_mut(tenant).and_then(VecDeque::pop_front) else {
                break;
            };
            let cost = WFQ_SCALE
                / self
                    .cfg
                    .tenants
                    .get(tenant)
                    .map_or(1, |t| t.weight.max(1));
            if let Some(v) = self.vft.get_mut(tenant) {
                *v = v.saturating_add(cost.max(1));
            }
            if !self.dispatch_one(id) {
                // Transient engine refusal: restore the request and its
                // virtual time, and stop feeding the engine this tick.
                if let Some(q) = self.queues.get_mut(tenant) {
                    q.push_front(id);
                }
                if let Some(v) = self.vft.get_mut(tenant) {
                    *v = v.saturating_sub(cost.max(1));
                }
                break;
            }
        }
    }

    /// Submits one queued request into the engine. Returns `false` only
    /// on a transient engine refusal (queue-full), which tells the
    /// dispatcher to requeue and yield.
    fn dispatch_one(&mut self, id: usize) -> bool {
        let (prompt, opts) = {
            let Some(req) = self.requests.get(&id) else {
                return true;
            };
            if req.deadline_tick.is_some_and(|d| self.clock > d) {
                let (stats, ftt) = (req.last_stats, req.last_first_token_tick);
                self.finish(id, GatewayTerminal::DeadlineExceeded, Vec::new(), stats, ftt);
                return true;
            }
            let opts = match req.deadline_tick {
                // Engine steps advance 1:1 with gateway ticks while work
                // is in flight; `remaining + 1` lands engine-side expiry
                // on exactly the first expired gateway tick.
                Some(d) => SubmitOptions::new(req.max_new).with_deadline(
                    usize::try_from((d - self.clock).saturating_add(1)).unwrap_or(usize::MAX),
                ),
                None => SubmitOptions::new(req.max_new),
            };
            (req.prompt.clone(), opts)
        };
        let engine_clock = self.engine.steps();
        match self.engine.submit_with(prompt, opts) {
            Ok(eid) => {
                if let Some(req) = self.requests.get_mut(&id) {
                    req.attempts += 1;
                    req.loc = Loc::InFlight;
                }
                self.inflight.insert(
                    eid,
                    InFlight {
                        gateway_id: id,
                        dispatch_tick: self.clock,
                        engine_clock,
                        drain_cancelled: false,
                    },
                );
                true
            }
            Err(RejectReason::QueueFull { .. }) => false,
            Err(other) => {
                // Unreachable while offer-time validation mirrors the
                // engine's checks; terminalize rather than wedge.
                let (stats, ftt) = self
                    .requests
                    .get(&id)
                    .map(|r| (r.last_stats, r.last_first_token_tick))
                    .unwrap_or_default();
                self.finish(
                    id,
                    GatewayTerminal::Failed {
                        reason: format!("engine rejected a validated request: {other}"),
                    },
                    Vec::new(),
                    stats,
                    ftt,
                );
                true
            }
        }
    }

    /// Translates freshly recorded engine terminals into gateway
    /// decisions: finish, or park for retry.
    fn harvest(&mut self) {
        let fresh: Vec<Outcome> = self
            .engine
            .outcomes()
            .get(self.engine_cursor..)
            .map(<[Outcome]>::to_vec)
            .unwrap_or_default();
        self.engine_cursor += fresh.len();
        for o in fresh {
            // Engine ids not in the in-flight map are the engine's own
            // synchronous rejects (e.g. queue-full probes) — not gateway
            // requests.
            let Some(meta) = self.inflight.remove(&o.id) else {
                continue;
            };
            let gid = meta.gateway_id;
            let first_tick = o.stats.first_token_step.map(|c| {
                meta.dispatch_tick
                    + (c as u64)
                        .saturating_sub(meta.engine_clock as u64)
                        .saturating_sub(1)
            });
            if let Some(req) = self.requests.get_mut(&gid) {
                req.last_stats = o.stats;
                if first_tick.is_some() {
                    req.last_first_token_tick = first_tick;
                }
            } else {
                continue;
            }
            match o.terminal {
                Terminal::Completed => {
                    self.finish(gid, GatewayTerminal::Completed, o.tokens, o.stats, first_tick);
                }
                Terminal::Failed { reason } => {
                    self.failures_this_tick += 1;
                    self.maybe_retry(gid, reason, o.stats, first_tick);
                }
                Terminal::DeadlineExceeded => {
                    let real_expiry = self
                        .requests
                        .get(&gid)
                        .and_then(|r| r.deadline_tick)
                        .is_some_and(|d| self.clock > d);
                    if real_expiry || !self.cfg.retry.retry_timeouts {
                        self.finish(
                            gid,
                            GatewayTerminal::DeadlineExceeded,
                            o.tokens,
                            o.stats,
                            first_tick,
                        );
                    } else {
                        // The engine expired it but the end-to-end budget
                        // has not elapsed: an injected timeout fault.
                        self.failures_this_tick += 1;
                        self.maybe_retry(gid, "spurious timeout fault".to_string(), o.stats, first_tick);
                    }
                }
                Terminal::Cancelled => {
                    if meta.drain_cancelled {
                        self.tel(|t| t.counter_add(names::GATEWAY_DRAIN_FORCED, 1));
                        self.finish(
                            gid,
                            GatewayTerminal::Failed {
                                reason: "drained before completion".to_string(),
                            },
                            o.tokens,
                            o.stats,
                            first_tick,
                        );
                    } else {
                        self.finish(gid, GatewayTerminal::Cancelled, o.tokens, o.stats, first_tick);
                    }
                }
                Terminal::Rejected(reason) => {
                    self.finish(
                        gid,
                        GatewayTerminal::Failed {
                            reason: format!("unexpected engine reject in flight: {reason}"),
                        },
                        Vec::new(),
                        o.stats,
                        first_tick,
                    );
                }
            }
        }
    }

    /// Parks a failed request for redispatch, or finishes it when the
    /// retry budget is spent.
    fn maybe_retry(
        &mut self,
        gid: usize,
        reason: String,
        stats: RequestStats,
        first_tick: Option<u64>,
    ) {
        let Some((attempts, deadline)) = self
            .requests
            .get(&gid)
            .map(|r| (r.attempts, r.deadline_tick))
        else {
            return;
        };
        if attempts >= self.cfg.retry.max_attempts {
            self.finish(
                gid,
                GatewayTerminal::Failed {
                    reason: format!("retry budget exhausted after {attempts} attempts: {reason}"),
                },
                Vec::new(),
                stats,
                first_tick,
            );
            return;
        }
        let delay = self.backoff_delay(gid, attempts).max(1);
        let mut release = self.clock.saturating_add(delay);
        if let Some(d) = deadline {
            // No point waiting past the deadline; release one tick after
            // it so expiry is detected promptly.
            release = release.min(d.saturating_add(1));
        }
        self.tel(|t| t.record(names::GATEWAY_BACKOFF_TICKS, delay));
        self.tel(|t| t.counter_add(names::GATEWAY_RETRIES, 1));
        self.retries += 1;
        if let Some(req) = self.requests.get_mut(&gid) {
            req.loc = Loc::Parked;
        }
        self.parked.entry(release).or_default().push(gid);
    }

    /// Exponential backoff with deterministic seeded jitter: attempt `k`
    /// (1-based failures so far) waits `min(base * 2^(k-1), max) +
    /// (jitter < base)` ticks.
    fn backoff_delay(&self, gid: usize, failures: u32) -> u64 {
        let base = self.cfg.retry.backoff_base_ticks.max(1);
        let shift = failures.saturating_sub(1).min(16);
        let exp = base
            .saturating_mul(1u64 << shift)
            .min(self.cfg.retry.backoff_max_ticks.max(base));
        let jitter = splitmix(
            self.cfg
                .seed
                .wrapping_add((gid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(u64::from(failures) << 32),
        );
        exp + jitter % base
    }

    /// Applies a brownout tier to the engine: degraded tiers zero the KV
    /// degradation watermark (every new admission gets quantized KV);
    /// recovery restores the base policy.
    fn apply_tier(&mut self, tier: BrownoutTier) {
        if tier == self.applied_tier {
            return;
        }
        let mut policy = self.base_policy;
        if tier >= BrownoutTier::DegradedKv {
            policy.degrade_kv_at = 0.0;
        }
        self.engine.set_policy(policy);
        self.applied_tier = tier;
    }

    /// Force-fails everything still live once the drain grace budget is
    /// spent: queued and parked requests terminalize immediately;
    /// in-flight ones are cancelled in the engine and harvested as
    /// drain-failures next tick.
    fn force_drain(&mut self) {
        self.drain_forced = true;
        let queued: Vec<usize> = self
            .queues
            .iter_mut()
            .flat_map(std::mem::take)
            .collect();
        let parked: Vec<usize> = std::mem::take(&mut self.parked)
            .into_values()
            .flatten()
            .collect();
        for id in queued.into_iter().chain(parked) {
            let (stats, ftt) = self
                .requests
                .get(&id)
                .map(|r| (r.last_stats, r.last_first_token_tick))
                .unwrap_or_default();
            self.tel(|t| t.counter_add(names::GATEWAY_DRAIN_FORCED, 1));
            self.finish(
                id,
                GatewayTerminal::Failed {
                    reason: "drained before completion".to_string(),
                },
                Vec::new(),
                stats,
                ftt,
            );
        }
        let eids: Vec<usize> = self.inflight.keys().copied().collect();
        for eid in eids {
            if let Some(m) = self.inflight.get_mut(&eid) {
                m.drain_cancelled = true;
            }
            // Already-terminal engine ids are fine to skip.
            let _ = self.engine.cancel(eid);
        }
    }

    /// Records the exactly-once gateway terminal for `gid`.
    fn finish(
        &mut self,
        gid: usize,
        terminal: GatewayTerminal,
        tokens: Vec<u16>,
        stats: RequestStats,
        first_token_tick: Option<u64>,
    ) {
        let Some(req) = self.requests.remove(&gid) else {
            debug_assert!(false, "finish on unknown gateway request {gid}");
            return;
        };
        if let Some(n) = self.live.get_mut(req.tenant) {
            *n = n.saturating_sub(1);
        }
        let metric = match &terminal {
            GatewayTerminal::Completed => names::GATEWAY_TERMINAL_COMPLETED,
            GatewayTerminal::Cancelled => names::GATEWAY_TERMINAL_CANCELLED,
            GatewayTerminal::DeadlineExceeded => names::GATEWAY_TERMINAL_DEADLINE,
            GatewayTerminal::Failed { .. } => names::GATEWAY_TERMINAL_FAILED,
        };
        self.tel(|t| t.counter_add(metric, 1));
        if terminal.is_completed() {
            if let Some(ft) = first_token_tick {
                let ttft = ft.saturating_sub(req.offered_tick);
                self.tel(|t| t.record(names::GATEWAY_TTFT_TICKS, ttft));
                if tokens.len() >= 2 {
                    let span = self.clock.saturating_sub(ft);
                    let per = span.saturating_mul(1000) / (tokens.len() as u64 - 1);
                    self.tel(|t| t.record(names::GATEWAY_TPOT_MILLITICKS, per));
                }
            }
        }
        self.outcomes.push(GatewayOutcome {
            id: gid,
            tenant: req.tenant,
            terminal,
            tokens,
            attempts: req.attempts,
            offered_tick: req.offered_tick,
            first_token_tick,
            finished_tick: self.clock,
            engine_stats: stats,
        });
    }
}

/// Deterministic synthetic prompt for trace replay: `len` token ids in
/// `1..=89`, varied by arrival index so batches are not degenerate.
pub fn synth_prompt(index: usize, len: usize) -> Vec<u16> {
    (0..len.max(1))
        .map(|j| {
            let v = index
                .wrapping_mul(31)
                .wrapping_add(j.wrapping_mul(7))
                % 89
                + 1;
            cast::usize_to_u16_saturating(v)
        })
        .collect()
}

/// SplitMix64 finalizer — the jitter hash. Deterministic, seedable, and
/// independent of call order.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BreakerConfig, RetryPolicy, TenantSpec};
    use atom_nn::kv::Fp32KvCache;
    use atom_nn::{DenseLinear, LlamaModel, ModelConfig};
    use atom_parallel::Pool;
    use atom_serve::FaultPlan;
    use atom_serve::fault::FaultRates;

    fn tiny_config() -> ModelConfig {
        ModelConfig {
            dim: 32,
            layers: 1,
            heads: 4,
            kv_heads: 4,
            ffn_dim: 48,
            ..ModelConfig::default()
        }
    }

    fn tiny_engine(max_batch: usize, pool_tokens: usize) -> CpuEngine<DenseLinear> {
        let config = tiny_config();
        let model = LlamaModel::random_init(config, 3);
        CpuEngine::new(
            model,
            Box::new(move || Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))),
            max_batch,
            pool_tokens,
        )
        .expect("valid engine config")
    }

    fn gw(cfg: GatewayConfig) -> Gateway<DenseLinear> {
        Gateway::new(tiny_engine(4, 2048), cfg).expect("valid gateway config")
    }

    #[test]
    fn invalid_configs_are_refused() {
        let empty = GatewayConfig::new(vec![]);
        assert!(Gateway::new(tiny_engine(2, 1024), empty).is_err());
        let mut zero_weight = GatewayConfig::single_tenant();
        zero_weight.tenants[0].weight = 0;
        assert!(Gateway::new(tiny_engine(2, 1024), zero_weight).is_err());
        let mut no_retry = GatewayConfig::single_tenant();
        no_retry.retry.max_attempts = 0;
        assert!(Gateway::new(tiny_engine(2, 1024), no_retry).is_err());
    }

    #[test]
    fn single_request_completes_end_to_end() {
        let mut g = gw(GatewayConfig::single_tenant());
        let id = g.offer(0, vec![1, 2, 3], 4, None).expect("accepted");
        assert!(g.run_until_idle(100));
        let o = g.outcome_of(id).expect("terminal").clone();
        assert_eq!(o.terminal, GatewayTerminal::Completed);
        assert_eq!(o.tokens.len(), 4);
        assert_eq!(o.attempts, 1);
        assert_eq!(o.tenant, 0);
        assert!(o.first_token_tick.is_some());
        assert!(o.finished_tick >= o.first_token_tick.unwrap());
    }

    #[test]
    fn prefix_stats_surface_through_the_gateway() {
        let engine = tiny_engine(4, 2048).with_prefix_cache(atom_serve::PrefixConfig::default());
        let mut g = Gateway::new(engine, GatewayConfig::single_tenant()).expect("valid config");
        assert!(g.prefix_stats().is_some(), "cache enabled: stats present");
        // Two requests sharing a 16-token prefix: the second hits the run
        // the first donated, and the gateway reports it.
        let shared: Vec<u16> = (0..16).collect();
        let mut a = shared.clone();
        a.extend([20, 21, 22]);
        let mut b = shared;
        b.extend([30, 31]);
        g.offer(0, a, 2, None).expect("accepted");
        assert!(g.run_until_idle(100));
        g.offer(0, b, 2, None).expect("accepted");
        assert!(g.run_until_idle(100));
        let stats = g.prefix_stats().expect("cache enabled");
        assert_eq!(stats.hits, 1, "second prompt reuses the donated prefix");
        let plain = gw(GatewayConfig::single_tenant());
        assert!(plain.prefix_stats().is_none(), "cache disabled: no stats");
    }

    #[test]
    fn offer_validation_rejects_degenerate_requests() {
        let mut g = gw(GatewayConfig::single_tenant());
        assert!(matches!(
            g.offer(0, vec![], 4, None),
            Err(GatewayReject::Invalid(RejectReason::EmptyPrompt))
        ));
        assert!(matches!(
            g.offer(0, vec![1], 0, None),
            Err(GatewayReject::Invalid(RejectReason::ZeroDecodeTokens))
        ));
        assert!(matches!(
            g.offer(0, vec![1; 4000], 1000, None),
            Err(GatewayReject::Invalid(RejectReason::ExceedsKvPool { .. }))
        ));
        assert!(matches!(
            g.offer(9, vec![1], 1, None),
            Err(GatewayReject::UnknownTenant { tenant: 9 })
        ));
        assert_eq!(g.rejects().invalid, 4);
        // No terminal records were consumed by rejections.
        assert!(g.is_idle());
        assert_eq!(g.accepted(), 0);
    }

    #[test]
    fn token_bucket_rate_limits_offers() {
        let tenant = TenantSpec::new("limited", 1, 1).with_rate(500, 1_000);
        let mut g = gw(GatewayConfig::new(vec![tenant]));
        assert!(g.offer(0, vec![1, 2], 2, None).is_ok());
        match g.offer(0, vec![1, 2], 2, None) {
            Err(GatewayReject::RateLimited { retry_after_ticks }) => {
                assert_eq!(retry_after_ticks, 2);
            }
            other => panic!("expected rate limit, got {other:?}"),
        }
        // Two ticks of refill cover one more request.
        g.tick();
        g.tick();
        assert!(g.offer(0, vec![1, 2], 2, None).is_ok());
        assert_eq!(g.rejects().rate_limited, 1);
    }

    #[test]
    fn bounded_tenant_queue_rejects_overflow() {
        let tenant = TenantSpec::new("t", 1, 1)
            .with_rate(10_000, 100_000)
            .with_queue_cap(2);
        let mut g = gw(GatewayConfig::new(vec![tenant]));
        assert!(g.offer(0, vec![1], 2, None).is_ok());
        assert!(g.offer(0, vec![1], 2, None).is_ok());
        assert!(matches!(
            g.offer(0, vec![1], 2, None),
            Err(GatewayReject::TenantQueueFull { depth: 2, cap: 2 })
        ));
        assert_eq!(g.rejects().queue_full, 1);
    }

    #[test]
    fn weighted_fairness_shares_dispatch_under_contention() {
        // Two saturating tenants, weights 3:1, on a batch-1 engine so
        // dispatch slots are scarce.
        let heavy = TenantSpec::new("heavy", 3, 1)
            .with_rate(100_000, 1_000_000)
            .with_queue_cap(1_000);
        let light = TenantSpec::new("light", 1, 1)
            .with_rate(100_000, 1_000_000)
            .with_queue_cap(1_000);
        let mut cfg = GatewayConfig::new(vec![heavy, light]);
        cfg.dispatch_queue_target = 1;
        let mut g = Gateway::new(tiny_engine(1, 2048), cfg).expect("valid");
        for _ in 0..60 {
            let _ = g.offer(0, vec![1, 2], 2, None);
            let _ = g.offer(1, vec![1, 2], 2, None);
        }
        for _ in 0..200 {
            g.tick();
        }
        // Measure shares over the contention window: among the first 40
        // finishes both tenants were still backlogged, so the 3:1 weights
        // should show (once heavy's backlog drains, light catches up).
        let window: Vec<&GatewayOutcome> = g.outcomes().iter().take(40).collect();
        let done = |tenant: usize| {
            window
                .iter()
                .filter(|o| o.tenant == tenant && o.terminal.is_completed())
                .count()
        };
        let (h, l) = (done(0), done(1));
        assert!(h > 0 && l > 0, "both tenants make progress (h={h}, l={l})");
        // Weight-3 tenant completes roughly 3x the weight-1 tenant.
        assert!(
            h >= 2 * l,
            "weighted share not honored in contention window: heavy={h}, light={l}"
        );
        // And nothing is lost overall: every accepted request finishes.
        assert!(g.run_until_idle(500));
        assert_eq!(g.outcomes().len() as u64, g.accepted());
    }

    #[test]
    fn deadline_propagates_into_engine_and_expires() {
        let mut g = gw(GatewayConfig::single_tenant());
        // 200-token decode with a 5-tick budget can never finish.
        let id = g.offer(0, vec![1, 2, 3], 200, Some(5)).expect("accepted");
        assert!(g.run_until_idle(100));
        let o = g.outcome_of(id).expect("terminal");
        assert_eq!(o.terminal, GatewayTerminal::DeadlineExceeded);
        // The engine saw a step budget (deadline propagated, not just
        // enforced gateway-side).
        assert!(o.engine_stats.deadline_steps.is_some());
        // Expiry lands exactly one tick after the budget.
        assert_eq!(o.finished_tick, o.offered_tick + 5 + 1);
    }

    #[test]
    fn fault_is_retried_and_completes_with_timing_stats() {
        // One forward fault at engine step 2 kills the sole in-flight
        // request; the gateway parks it, backs off, redispatches, and the
        // second attempt completes.
        let engine = tiny_engine(2, 1024);
        let engine = engine.with_fault_plan(FaultPlan::none().with_forward_fault(2, 0));
        let mut cfg = GatewayConfig::single_tenant().with_seed(7);
        cfg.retry = RetryPolicy {
            max_attempts: 3,
            backoff_base_ticks: 2,
            backoff_max_ticks: 8,
            retry_timeouts: true,
        };
        let mut g = Gateway::new(engine, cfg).expect("valid");
        let id = g.offer(0, vec![1, 2, 3], 6, None).expect("accepted");
        assert!(g.run_until_idle(200));
        let o = g.outcome_of(id).expect("terminal").clone();
        assert_eq!(o.terminal, GatewayTerminal::Completed);
        assert_eq!(o.attempts, 2, "one fault, one retry");
        assert_eq!(o.tokens.len(), 6);
        assert_eq!(g.retries(), 1);
        // RequestStats describe the *final* attempt: it was submitted
        // after the fault+backoff, admitted, and produced a first token
        // at or after admission.
        let s = o.engine_stats;
        assert!(s.submitted_step >= 2, "resubmitted after the fault step");
        let admitted = s.admitted_step.expect("second attempt admitted");
        assert!(admitted >= s.submitted_step);
        let first = s.first_token_step.expect("second attempt decoded");
        assert!(first >= admitted, "prefill emits the first token");
        let finished = s.finished_step.expect("terminal attempt has finish step");
        assert!(finished >= first);
        assert_eq!(s.ttft_steps(), Some(first - s.submitted_step));
        // Gateway-level timing spans the retry: first token happened
        // after the backoff window.
        let ft = o.first_token_tick.expect("completed has first token");
        assert!(ft > 2, "first token only after redispatch (tick {ft})");
        assert!(o.finished_tick >= ft);
    }

    #[test]
    fn retry_budget_exhaustion_fails_the_request() {
        // Faults at every early step: all attempts die.
        let mut plan = FaultPlan::none();
        for step in 1..60 {
            plan = plan.with_forward_fault(step, 0);
        }
        let engine = tiny_engine(2, 1024).with_fault_plan(plan);
        let mut cfg = GatewayConfig::single_tenant();
        cfg.retry.max_attempts = 2;
        cfg.retry.backoff_base_ticks = 1;
        cfg.retry.backoff_max_ticks = 2;
        let mut g = Gateway::new(engine, cfg).expect("valid");
        let id = g.offer(0, vec![1, 2, 3], 8, None).expect("accepted");
        assert!(g.run_until_idle(200));
        let o = g.outcome_of(id).expect("terminal");
        assert_eq!(o.attempts, 2);
        match &o.terminal {
            GatewayTerminal::Failed { reason } => {
                assert!(reason.contains("retry budget exhausted"), "{reason}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn breaker_escalates_sheds_and_recovers() {
        // A solid wall of forward faults drives windowed failures up.
        let mut plan = FaultPlan::none();
        for step in 1..30 {
            plan = plan.with_forward_fault(step, 0);
        }
        let engine = tiny_engine(2, 2048).with_fault_plan(plan);
        let low = TenantSpec::new("low", 1, 0).with_rate(100_000, 1_000_000);
        let high = TenantSpec::new("high", 1, 5).with_rate(100_000, 1_000_000);
        let mut cfg = GatewayConfig::new(vec![low, high]);
        cfg.retry.max_attempts = 1; // every fault is a terminal failure
        cfg.breaker = BreakerConfig {
            window_ticks: 8,
            degrade_failures: 2,
            shed_failures: 3,
            reject_failures: 20,
            shed_priority_floor: 1,
            cooldown_ticks: 2,
            retry_after_ticks: 4,
        };
        let mut g = Gateway::new(engine, cfg).expect("valid");
        let mut max_tier = BrownoutTier::Normal;
        for _ in 0..30 {
            let _ = g.offer(0, vec![1, 2], 4, None);
            let _ = g.offer(1, vec![1, 2], 4, None);
            g.tick();
            max_tier = max_tier.max(g.breaker_tier());
        }
        assert!(
            max_tier >= BrownoutTier::ShedLowPriority,
            "sustained faults must trip the breaker (reached {max_tier})"
        );
        // While shedding, the low-priority tenant is refused and the
        // high-priority one is not.
        if g.breaker_tier() == BrownoutTier::ShedLowPriority {
            assert!(matches!(
                g.offer(0, vec![1, 2], 2, None),
                Err(GatewayReject::Brownout { .. })
            ));
            assert!(g.offer(1, vec![1, 2], 2, None).is_ok());
        }
        assert!(g.rejects().brownout > 0 || max_tier == BrownoutTier::RejectAll);
        // Faults end at step 30; calm ticks walk the ladder back down.
        assert!(g.run_until_idle(300));
        for _ in 0..40 {
            g.tick();
        }
        assert_eq!(g.breaker_tier(), BrownoutTier::Normal, "breaker recovers");
    }

    #[test]
    fn drain_refuses_new_work_and_finishes_accepted() {
        let mut g = gw(GatewayConfig::single_tenant());
        let a = g.offer(0, vec![1, 2], 3, None).expect("accepted");
        let b = g.offer(0, vec![3, 4], 3, None).expect("accepted");
        g.begin_drain();
        assert!(matches!(
            g.offer(0, vec![5], 2, None),
            Err(GatewayReject::Draining)
        ));
        assert!(g.run_until_idle(200));
        for id in [a, b] {
            let o = g.outcome_of(id).expect("drained request still finishes");
            assert_eq!(o.terminal, GatewayTerminal::Completed);
        }
        assert_eq!(g.rejects().draining, 1);
    }

    #[test]
    fn drain_grace_force_fails_stragglers_exactly_once() {
        let tenant = TenantSpec::new("t", 1, 1)
            .with_rate(100_000, 1_000_000)
            .with_queue_cap(100);
        let mut cfg = GatewayConfig::new(vec![tenant]);
        cfg.drain_grace_ticks = 3;
        cfg.dispatch_queue_target = 1;
        // Batch-1 engine + long decodes: most of the backlog cannot
        // finish inside the 3-tick grace.
        let mut g = Gateway::new(tiny_engine(1, 2048), cfg).expect("valid");
        let mut ids = Vec::new();
        for _ in 0..8 {
            ids.push(g.offer(0, vec![1, 2, 3], 40, None).expect("accepted"));
        }
        g.tick();
        g.begin_drain();
        assert!(g.run_until_idle(100), "drain must converge");
        // Exactly one terminal per accepted request, no losses.
        assert_eq!(g.outcomes().len(), ids.len());
        let mut seen: Vec<usize> = g.outcomes().iter().map(|o| o.id).collect();
        seen.sort_unstable();
        let mut want = ids.clone();
        want.sort_unstable();
        assert_eq!(seen, want);
        // At least one straggler was force-failed by the grace budget.
        assert!(g
            .outcomes()
            .iter()
            .any(|o| matches!(&o.terminal, GatewayTerminal::Failed { reason } if reason.contains("drained"))));
    }

    #[test]
    fn client_cancel_works_in_every_location() {
        let tenant = TenantSpec::new("t", 1, 1).with_rate(100_000, 1_000_000);
        let mut cfg = GatewayConfig::new(vec![tenant]);
        cfg.dispatch_queue_target = 1;
        let mut g = Gateway::new(tiny_engine(1, 2048), cfg).expect("valid");
        let queued = g.offer(0, vec![1, 2], 30, None).expect("accepted");
        let inflight = g.offer(0, vec![3, 4], 30, None).expect("accepted");
        // Cancel one while still queued (no tick has run).
        g.cancel(queued).expect("cancel queued");
        assert_eq!(
            g.outcome_of(queued).expect("terminal").terminal,
            GatewayTerminal::Cancelled
        );
        // Let the other go in flight, then cancel it.
        g.tick();
        g.tick();
        g.cancel(inflight).expect("cancel in flight");
        assert!(g.run_until_idle(100));
        assert_eq!(
            g.outcome_of(inflight).expect("terminal").terminal,
            GatewayTerminal::Cancelled
        );
        assert!(g.cancel(queued).is_err(), "double cancel is an error");
    }

    #[test]
    fn chaos_replay_is_exactly_once_and_thread_invariant() {
        let spec = atom_data::TrafficSpec {
            base_rate_per_tick: 1.2,
            pattern: atom_data::ArrivalPattern::Bursty {
                on_ticks: 10,
                off_ticks: 5,
            },
            horizon_ticks: 60,
            tenants: vec![
                atom_data::TenantTraffic::interactive(0.7, 40),
                atom_data::TenantTraffic::batch(0.3),
            ],
            users_per_request: 50,
        };
        let trace = spec.generate(11);
        assert!(!trace.is_empty());
        let run = |threads: usize| {
            let engine = tiny_engine(4, 2048)
                .with_pool(Pool::new(threads))
                .with_fault_plan(FaultPlan::seeded_chaos(
                    99,
                    400,
                    FaultRates {
                        alloc: 0.0,
                        forward: 0.05,
                        timeout: 0.03,
                        cancel: 0.02,
                    },
                ));
            let tenants = vec![
                TenantSpec::new("interactive", 3, 2).with_rate(3_000, 9_000),
                TenantSpec::new("batch", 1, 0).with_rate(2_000, 6_000),
            ];
            let cfg = GatewayConfig::new(tenants).with_seed(5);
            let mut g = Gateway::new(engine, cfg).expect("valid");
            let summary = g.replay_trace(&trace);
            g.begin_drain();
            assert!(g.run_until_idle(2_000), "drain converges under chaos");
            (summary, g.outcomes().to_vec())
        };
        let (s1, o1) = run(1);
        // Exactly-once: one terminal per accepted request, unique ids.
        assert_eq!(o1.len() as u64, s1.accepted);
        let mut ids: Vec<usize> = o1.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len() as u64, s1.accepted, "duplicate terminals");
        // Bit-identical behaviour at other pool widths.
        let (s2, o2) = run(2);
        let (s8, o8) = run(8);
        assert_eq!(s1, s2);
        assert_eq!(s1, s8);
        assert_eq!(o1, o2, "outcomes differ between 1 and 2 threads");
        assert_eq!(o1, o8, "outcomes differ between 1 and 8 threads");
    }

    #[test]
    fn synth_prompt_is_deterministic_and_in_vocab() {
        let a = synth_prompt(3, 10);
        let b = synth_prompt(3, 10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.iter().all(|&t| (1..=89).contains(&t)));
        assert_ne!(synth_prompt(4, 10), a);
        assert_eq!(synth_prompt(0, 0).len(), 1, "degenerate length clamps to 1");
    }
}
