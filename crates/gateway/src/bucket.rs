//! Integer token bucket for per-tenant rate limiting.
//!
//! All arithmetic is in integer milli-tokens so refill accounting is
//! exact and bit-identical across platforms — no float drift, no
//! wall-clock reads. The bucket refills once per gateway tick.

use serde::{Deserialize, Serialize};

/// Milli-token cost of admitting one request.
pub const REQUEST_COST_MILLI: u64 = 1_000;

/// A classic token bucket over integer milli-tokens.
///
/// Starts full, refills `rate` per [`refill`] call (one call per gateway
/// tick), and caps at `burst`.
///
/// [`refill`]: TokenBucket::refill
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenBucket {
    rate: u64,
    burst: u64,
    level: u64,
}

impl TokenBucket {
    /// A full bucket refilling `rate_milli` per tick and holding at most
    /// `burst_milli`.
    pub fn new(rate_milli: u64, burst_milli: u64) -> Self {
        TokenBucket {
            rate: rate_milli,
            burst: burst_milli,
            level: burst_milli,
        }
    }

    /// Adds one tick's refill, saturating at the burst capacity.
    pub fn refill(&mut self) {
        self.level = self.level.saturating_add(self.rate).min(self.burst);
    }

    /// Takes `cost_milli` if available; returns whether it was taken.
    pub fn try_take(&mut self, cost_milli: u64) -> bool {
        if self.level >= cost_milli {
            self.level -= cost_milli;
            true
        } else {
            false
        }
    }

    /// Ticks of refill needed before `cost_milli` could be covered
    /// (`0` if it already can; `u64::MAX` if the rate is zero and the
    /// level will never reach it).
    pub fn ticks_until(&self, cost_milli: u64) -> u64 {
        if self.level >= cost_milli {
            return 0;
        }
        let deficit = cost_milli - self.level;
        if self.rate == 0 {
            return u64::MAX;
        }
        deficit.div_ceil(self.rate)
    }

    /// Current level in milli-tokens.
    pub fn level_milli(&self) -> u64 {
        self.level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_spends_down() {
        let mut b = TokenBucket::new(500, 2_000);
        assert!(b.try_take(REQUEST_COST_MILLI));
        assert!(b.try_take(REQUEST_COST_MILLI));
        assert!(!b.try_take(REQUEST_COST_MILLI));
        assert_eq!(b.level_milli(), 0);
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(1_500, 2_000);
        assert!(b.try_take(2_000));
        b.refill();
        assert_eq!(b.level_milli(), 1_500);
        b.refill();
        assert_eq!(b.level_milli(), 2_000);
        b.refill();
        assert_eq!(b.level_milli(), 2_000);
    }

    #[test]
    fn ticks_until_is_a_ceiling() {
        let mut b = TokenBucket::new(300, 1_000);
        assert!(b.try_take(1_000));
        // Deficit 1000 at 300/tick -> ceil = 4.
        assert_eq!(b.ticks_until(REQUEST_COST_MILLI), 4);
        b.refill();
        assert_eq!(b.ticks_until(REQUEST_COST_MILLI), 3);
        assert_eq!(TokenBucket::new(0, 500).ticks_until(1_000), u64::MAX);
        assert_eq!(TokenBucket::new(7, 2_000).ticks_until(1_000), 0);
    }

    #[test]
    fn sustained_rate_matches_refill() {
        // 500/tick with 1000 burst admits one request every 2 ticks
        // sustained, after an initial burst of one.
        let mut b = TokenBucket::new(500, 1_000);
        let mut admitted = 0;
        for _ in 0..20 {
            b.refill();
            if b.try_take(REQUEST_COST_MILLI) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 10);
    }
}
