//! Quick Table 3 ladder check used during development; the full version
//! is `atom-bench --bin table3_ablation`.
use atom::pipeline::ablation_stages;
use atom::Calibration;
use atom_data::CorpusStyle;
use atom_nn::{eval, zoo};

fn main() {
    let model = zoo::trained(zoo::ZooId::Tiny);
    let seqs = zoo::calibration_sequences(128);
    let calib = Calibration::collect(&model, &seqs, true, 2);
    let toks = zoo::validation_tokens(CorpusStyle::Wiki);
    let toks = &toks[..toks.len().min(2500)];
    println!("FP32 ppl = {:.3}", eval::perplexity(&model, toks, 96));
    for stage in ablation_stages() {
        let q = stage.scheme.quantize(&model, &calib);
        println!("{:34} ppl = {:9.3}", stage.label, q.perplexity(toks, 96));
    }
}
