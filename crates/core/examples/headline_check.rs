//! Quick headline-shape check: wiki perplexity per scheme on the tiny model.
use atom::pipeline::{AtomScheme, Scheme};
use atom::Calibration;
use atom_data::CorpusStyle;
use atom_nn::{eval, zoo};

fn main() {
    let model = zoo::trained(zoo::ZooId::Tiny);
    let seqs = zoo::calibration_sequences(128);
    let t0 = std::time::Instant::now();
    let calib = Calibration::collect(&model, &seqs, true, 2);
    println!("calibration: {:.1}s", t0.elapsed().as_secs_f64());
    let toks = zoo::validation_tokens(CorpusStyle::Wiki);
    let toks = &toks[..toks.len().min(2500)];
    println!("FP32 ppl = {:.3}", eval::perplexity(&model, toks, 96));
    for scheme in [
        Scheme::Rtn { w_bits: 4, a_bits: 4 },
        Scheme::SmoothQuant { w_bits: 4, a_bits: 4 },
        Scheme::OmniQuantLike { w_bits: 4, a_bits: 4 },
        Scheme::WeightOnly { w_bits: 4, group: 16 },
        Scheme::Atom(AtomScheme::w4a4()),
        Scheme::Atom(AtomScheme::w3a3()),
        Scheme::Atom(AtomScheme::fp4()),
    ] {
        let t = std::time::Instant::now();
        let q = scheme.quantize(&model, &calib);
        let ppl = q.perplexity(toks, 96);
        println!("{:22} ppl = {:9.3}   ({:.1}s)", scheme.label(), ppl, t.elapsed().as_secs_f64());
    }
}
