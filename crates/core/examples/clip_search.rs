//! Grid search of the clipping factors (paper §5.1) on the 7B* model;
//! used to pick the defaults in `AtomScheme::w4a4`.
use atom::pipeline::{AtomScheme, Scheme};
use atom::Calibration;
use atom_data::CorpusStyle;
use atom_nn::zoo;

fn main() {
    let model = zoo::trained(zoo::ZooId::Tiny);
    let calib = Calibration::collect(&model, &zoo::calibration_sequences(128), true, 2);
    let toks = zoo::validation_tokens(CorpusStyle::Wiki);
    let toks = &toks[..toks.len().min(2500)];
    for clip_a in [1.0f32, 0.97, 0.95, 0.9] {
        for clip_w in [1.0f32, 0.97, 0.95, 0.9, 0.85] {
            let s = Scheme::Atom(AtomScheme { clip_a, clip_w, ..AtomScheme::w4a4() });
            let ppl = s.quantize(&model, &calib).perplexity(toks, 96);
            println!("clip_a={clip_a} clip_w={clip_w}  ppl={ppl:.3}");
        }
    }
}
