//! **Atom: low-bit weight-activation quantization for efficient and
//! accurate LLM serving** — the core algorithms of the MLSys 2024 paper,
//! reproduced from scratch.
//!
//! Atom quantizes both weights and activations to 4 bits while keeping
//! accuracy, by combining four techniques (paper §4):
//!
//! 1. **Mixed-precision with channel reordering** ([`calibrate`],
//!    [`qlinear`]) — a small set of outlier activation channels, identified
//!    offline by calibration square sums, is kept in INT8 while everything
//!    else goes to INT4; reordering moves the outliers to the end of the
//!    matrix so memory access stays regular.
//! 2. **Fine-grained group quantization** (`atom-kernels`) — every group of
//!    channels gets its own FP16 scale, fused into the GEMM pipeline.
//! 3. **Dynamic activation quantization** ([`qlinear`]) — activation scales
//!    are computed per token at run time, fused into the preceding
//!    operator; weights are quantized offline with clipping and GPTQ
//!    ([`gptq`]).
//! 4. **KV-cache quantization** ([`kv`]) — asymmetric low-bit storage at
//!    attention-head granularity with dequantize-on-load.
//!
//! The baselines of the paper's evaluation (RTN, SmoothQuant,
//! OmniQuant-like, AWQ-style weight-only) live in [`baselines`]; the FP4
//! data format of Table 4 in [`fp4`]; and [`pipeline`] assembles any of
//! these into a runnable quantized model.
//!
//! # Quickstart
//!
//! ```
//! use atom::calibrate::Calibration;
//! use atom::pipeline::{AtomScheme, Scheme};
//! use atom_nn::{LlamaModel, ModelConfig};
//!
//! // A small random model (real experiments use the trained zoo).
//! let config = ModelConfig { dim: 32, layers: 1, heads: 4, kv_heads: 4,
//!                            ffn_dim: 48, ..ModelConfig::default() };
//! let model = LlamaModel::random_init(config, 0);
//!
//! // Calibrate on sample sequences (collecting GPTQ Hessians), then
//! // quantize W4A4 and evaluate.
//! let seqs: Vec<Vec<u16>> = vec![(0..32).collect(); 4];
//! let calib = Calibration::collect(&model, &seqs, true, 1);
//! let quantized = Scheme::Atom(AtomScheme::w4a4()).quantize(&model, &calib);
//! let tokens: Vec<u16> = (0..80).map(|i| (i % 96) as u16).collect();
//! let ppl = quantized.perplexity(&tokens, 40);
//! assert!(ppl.is_finite());
//! ```

#![forbid(unsafe_code)]
pub mod baselines;
pub mod calibrate;
pub mod clip;
pub mod fp4;
pub mod gptq;
pub mod kv;
pub mod mx;
pub mod pipeline;
pub mod qlinear;

pub use calibrate::{Calibration, ReorderPlan};
pub use kv::QuantizedKvCache;
pub use pipeline::{ablation_stages, AnyLinear, AtomScheme, DataFormat, QuantizedModel, Scheme};
pub use qlinear::{AtomLinearConfig, OutlierMode, QuantizedLinear};
