//! Atom's quantized linear layer: reorder → dynamic mixed-precision
//! quantization → fused low-bit GEMM.
//!
//! [`QuantizedLinear`] executes exactly the runtime workflow of paper
//! Fig. 6/7: the incoming activation is permuted so outlier channels sit at
//! the end (reorder indices fixed at calibration time), both regions are
//! quantized *dynamically* per token per group (§4.3) — the normal region to
//! the low-bit width, the outlier region to INT8 (§4.1) — and the product is
//! computed by the bit-exact fused group GEMM of `atom-kernels` against
//! statically quantized weights (GPTQ or RTN).
//!
//! The ablation variants of Table 3 are all expressible: no outliers,
//! FP16 outliers ([`OutlierMode::Fp16`]), INT8 outliers, per-channel instead
//! of per-group, clipping on or off.

use crate::calibrate::ReorderPlan;
use crate::gptq::{gptq_quantize, rtn_quantize, GptqConfig, QuantizedWeight};
use atom_kernels::gemm::mixed_gemm;
use atom_kernels::{GroupQuantized, QuantSpec};
use atom_nn::{DenseLinear, LinearLayer};
use atom_parallel::Pool;
use atom_telemetry::{names, span, Telemetry};
use atom_tensor::f16::round_f16;
use atom_tensor::Matrix;

/// How the outlier region is handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutlierMode {
    /// No mixed precision: every channel goes through the low-bit path.
    None,
    /// Keep outlier channels in FP16 (the intermediate ablation step of
    /// Table 3).
    Fp16,
    /// Quantize outlier channels to INT8 (Atom's choice, §4.1).
    Int8,
}

/// Configuration of one Atom linear layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomLinearConfig {
    /// Weight quantization of the normal region (bits, group, clip).
    pub weight: QuantSpec,
    /// Dynamic activation quantization of the normal region.
    pub act: QuantSpec,
    /// Number of outlier channels kept in high precision.
    pub n_outliers: usize,
    /// Outlier handling mode.
    pub outlier_mode: OutlierMode,
    /// Whether weights go through GPTQ (needs a Gram matrix) or RTN.
    pub use_gptq: bool,
}

impl AtomLinearConfig {
    /// The paper's W4A4 recipe scaled to this reproduction's dimensions:
    /// group 16 (↙128 at 4096 channels), grid-searched clipping, INT8
    /// outliers, GPTQ. (Whole-model defaults live in
    /// `atom::pipeline::AtomScheme`; this helper mirrors them per layer.)
    pub fn w4a4(n_outliers: usize) -> Self {
        AtomLinearConfig {
            weight: QuantSpec::new(4, 16).with_clip(0.97),
            act: QuantSpec::new(4, 16),
            n_outliers,
            outlier_mode: OutlierMode::Int8,
            use_gptq: true,
        }
    }

    /// The W3A3 recipe.
    pub fn w3a3(n_outliers: usize) -> Self {
        AtomLinearConfig {
            weight: QuantSpec::new(3, 16).with_clip(0.97),
            act: QuantSpec::new(3, 16),
            n_outliers,
            outlier_mode: OutlierMode::Int8,
            use_gptq: true,
        }
    }
}

/// A linear layer executing Atom's quantized inference path.
///
/// # Example
///
/// Quantize a dense layer to W4A4 with two INT8 outlier channels and run a
/// forward pass; the quantized output stays close to the FP32 reference:
///
/// ```
/// use atom::{AtomLinearConfig, QuantizedLinear, ReorderPlan};
/// use atom_nn::{DenseLinear, LinearLayer};
/// use atom_tensor::SeededRng;
///
/// let mut rng = SeededRng::new(1);
/// let dense = DenseLinear::new(rng.normal_matrix(24, 64, 0.0, 0.3));
/// let x = rng.normal_matrix(4, 64, 0.0, 1.0);
///
/// let plan = ReorderPlan::from_outlier_set(64, &[5, 40]);
/// let cfg = AtomLinearConfig {
///     use_gptq: false, // GPTQ needs a calibration Gram matrix
///     ..AtomLinearConfig::w4a4(2)
/// };
/// let q = QuantizedLinear::quantize(&dense, plan, None, &cfg);
///
/// let exact = dense.forward(&x);
/// let approx = q.forward(&x);
/// let rel = approx.sub(&exact).frob_norm() / exact.frob_norm();
/// assert!(rel < 0.15, "W4A4 forward error {rel}");
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedLinear {
    plan: ReorderPlan,
    weight: QuantizedWeight,
    /// FP16-rounded outlier weights when `outlier_mode == Fp16`.
    weight_fp_outlier: Option<Matrix>,
    act_normal: QuantSpec,
    act_outlier: QuantSpec,
    outlier_mode: OutlierMode,
    /// Static per-group activation scales (normal region, outlier region)
    /// computed at calibration time; `None` means dynamic quantization
    /// (Atom's choice, §4.3).
    act_static: Option<(Vec<f32>, Vec<f32>)>,
    in_features: usize,
    out_features: usize,
}

impl QuantizedLinear {
    /// Quantizes a dense layer.
    ///
    /// `plan` carries the calibration-derived channel permutation and
    /// outlier count; `gram` is the (un-reordered) Gram matrix for GPTQ, in
    /// the original channel order.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not match the layer width, or GPTQ is
    /// requested without a Gram matrix.
    pub fn quantize(
        dense: &DenseLinear,
        plan: ReorderPlan,
        gram: Option<&[f64]>,
        cfg: &AtomLinearConfig,
    ) -> Self {
        let k = dense.in_features();
        assert_eq!(plan.channels(), k, "reorder plan width mismatch");
        assert_eq!(
            plan.n_outliers(),
            if cfg.outlier_mode == OutlierMode::None {
                0
            } else {
                cfg.n_outliers
            },
            "plan outlier count disagrees with config"
        );
        let w_reordered = plan.reorder_weight(dense.weight());
        let gram_reordered = gram.map(|g| plan.reorder_gram(g, k));

        let (quant_cols, fp_outlier) = match cfg.outlier_mode {
            OutlierMode::None => (k, None),
            OutlierMode::Int8 => (k, None),
            OutlierMode::Fp16 => {
                // The trailing outlier columns stay in FP16; only the
                // normal region is integer-quantized.
                let n_out = plan.n_outliers();
                let mut fp = w_reordered.slice_cols(k - n_out, k);
                fp.map_in_place(round_f16);
                (k - n_out, Some(fp))
            }
        };

        let gptq_cfg = GptqConfig {
            normal: cfg.weight,
            outlier: match cfg.outlier_mode {
                OutlierMode::Int8 if plan.n_outliers() > 0 => {
                    Some(QuantSpec::new(8, cfg.weight.group))
                }
                _ => None,
            },
            n_outliers: if cfg.outlier_mode == OutlierMode::Int8 {
                plan.n_outliers()
            } else {
                0
            },
            damp: 0.01,
        };
        let w_quant_region = w_reordered.slice_cols(0, quant_cols);
        let gram_region = gram_reordered
            .as_ref()
            .map(|g| slice_gram(g, k, quant_cols));
        let weight = if cfg.use_gptq {
            let g = gram_region
                .as_deref()
                .expect("GPTQ requested but no Gram matrix collected");
            gptq_quantize(&w_quant_region, Some(g), &gptq_cfg)
        } else {
            rtn_quantize(&w_quant_region, &gptq_cfg)
        };

        QuantizedLinear {
            plan,
            weight,
            weight_fp_outlier: fp_outlier,
            act_normal: cfg.act,
            act_outlier: QuantSpec::new(8, cfg.act.group),
            outlier_mode: cfg.outlier_mode,
            act_static: None,
            in_features: k,
            out_features: dense.out_features(),
        }
    }

    /// Switches the layer to *static* activation quantization: per-group
    /// scales are frozen from `calibration_sample` (rows of representative
    /// inputs in the original channel order) instead of being recomputed
    /// per token. This is the §4.3 counterfactual — the paper argues
    /// dynamic quantization is needed because "the actual input might have
    /// a different local distribution" — and exists for the ablation bench.
    ///
    /// # Panics
    ///
    /// Panics if the sample width disagrees with the layer.
    pub fn with_static_activations(mut self, calibration_sample: &Matrix) -> Self {
        assert_eq!(
            calibration_sample.cols(),
            self.in_features,
            "calibration sample width mismatch"
        );
        let xr = self.plan.reorder_activation(calibration_sample);
        let k_normal = self.in_features - self.plan.n_outliers();
        let normal = GroupQuantized::calibrate_shared_scales(
            &xr.slice_cols(0, k_normal),
            self.act_normal,
        );
        let outlier = if self.plan.n_outliers() > 0 {
            GroupQuantized::calibrate_shared_scales(
                &xr.slice_cols(k_normal, self.in_features),
                self.act_outlier,
            )
        } else {
            Vec::new()
        };
        self.act_static = Some((normal, outlier));
        self
    }

    fn quantize_act(&self, x: &Matrix, region: Region) -> GroupQuantized {
        let (spec, scales) = match region {
            Region::Normal => (self.act_normal, self.act_static.as_ref().map(|s| &s.0)),
            Region::Outlier => (self.act_outlier, self.act_static.as_ref().map(|s| &s.1)),
        };
        match scales {
            Some(shared) => GroupQuantized::quantize_with_shared_scales(x, spec, shared),
            // Dynamic per-token quantization is row-independent, so the
            // pool-parallel path packs the same bytes as the sequential one.
            None => GroupQuantized::quantize_with(Pool::global(), x, spec),
        }
    }

    /// The channel-reorder plan in use.
    pub fn plan(&self) -> &ReorderPlan {
        &self.plan
    }

    /// Real memory footprint of the stored weights, in bytes.
    pub fn weight_bytes(&self) -> usize {
        let mut bytes = self.weight.normal.packed_bytes();
        if let Some(o) = &self.weight.outlier {
            bytes += o.packed_bytes();
        }
        if let Some(fp) = &self.weight_fp_outlier {
            bytes += fp.len() * 2;
        }
        bytes
    }

    /// Effective bits per weight element including scales (paper §4.2).
    pub fn effective_weight_bits(&self) -> f64 {
        8.0 * self.weight_bytes() as f64 / (self.in_features * self.out_features) as f64
    }
}

#[derive(Clone, Copy)]
enum Region {
    Normal,
    Outlier,
}

/// Quantized outlier operand handed from the epilogue to the GEMM stage.
enum OutlierOperand {
    None,
    Int8(GroupQuantized),
    Fp16(Matrix),
}

fn slice_gram(g: &[f64], k: usize, take: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; take * take];
    for i in 0..take {
        out[i * take..(i + 1) * take].copy_from_slice(&g[i * k..i * k + take]);
    }
    out
}

impl LinearLayer for QuantizedLinear {
    fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_features, "input width mismatch");
        // Fused epilogue of the previous operator in the paper: reorder the
        // channels, then dynamically quantize each region. The epilogue is
        // timed separately from the GEMM it feeds (Fig. 3's "dequant"
        // slice), so the quantization work finishes — and the timer stops —
        // before the fused GEMM starts.
        let t = Telemetry::global();
        let quant_timer = t.timer(names::OP_QUANT_WALL_NS);
        let quant_span = span!(names::SPAN_QUANT_EPILOGUE, rows = x.rows());
        t.counter_add(names::OP_QUANT_CALLS, 1);
        let xp = self.plan.reorder_activation(x);
        let n_out = self.plan.n_outliers();
        let k_normal = self.in_features - n_out;

        let (qa_n, outlier) = match self.outlier_mode {
            OutlierMode::None => (self.quantize_act(&xp, Region::Normal), OutlierOperand::None),
            OutlierMode::Int8 => {
                let x_n = xp.slice_cols(0, k_normal);
                let qa_n = self.quantize_act(&x_n, Region::Normal);
                if n_out == 0 {
                    (qa_n, OutlierOperand::None)
                } else {
                    let x_o = xp.slice_cols(k_normal, self.in_features);
                    (qa_n, OutlierOperand::Int8(self.quantize_act(&x_o, Region::Outlier)))
                }
            }
            OutlierMode::Fp16 => {
                let x_n = xp.slice_cols(0, k_normal);
                let qa_n = self.quantize_act(&x_n, Region::Normal);
                let mut x_o = xp.slice_cols(k_normal, self.in_features);
                x_o.map_in_place(round_f16);
                (qa_n, OutlierOperand::Fp16(x_o))
            }
        };
        drop(quant_span);
        quant_timer.stop();

        match outlier {
            OutlierOperand::None => {
                mixed_gemm(&qa_n, &self.weight.normal, None).expect("shape-checked")
            }
            OutlierOperand::Int8(qa_o) => {
                let w_o = self.weight.outlier.as_ref().expect("outlier weights");
                mixed_gemm(&qa_n, &self.weight.normal, Some((&qa_o, w_o))).expect("shape-checked")
            }
            OutlierOperand::Fp16(x_o) => {
                let mut out =
                    mixed_gemm(&qa_n, &self.weight.normal, None).expect("shape-checked");
                let w_fp = self.weight_fp_outlier.as_ref().expect("fp outlier weights");
                out.add_scaled_in_place(&x_o.matmul_nt(w_fp), 1.0);
                out
            }
        }
    }

    fn in_features(&self) -> usize {
        self.in_features
    }

    fn out_features(&self) -> usize {
        self.out_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_tensor::SeededRng;

    /// Builds a dense layer plus activations with heavy outlier channels.
    fn outlier_scenario(seed: u64) -> (DenseLinear, Matrix, ReorderPlan) {
        let mut rng = SeededRng::new(seed);
        let (n, k) = (24, 64);
        let w = rng.normal_matrix(n, k, 0.0, 0.3);
        let mut x = rng.normal_matrix(12, k, 0.0, 1.0);
        // Channels 5 and 40 are outliers with 60x magnitude.
        for r in 0..x.rows() {
            x[(r, 5)] *= 60.0;
            x[(r, 40)] *= 60.0;
        }
        let plan = ReorderPlan::from_outlier_set(k, &[5, 40]);
        (DenseLinear::new(w), x, plan)
    }

    fn rel_err(a: &Matrix, b: &Matrix) -> f64 {
        (a.sub(b).frob_norm() / b.frob_norm()) as f64
    }

    #[test]
    fn mixed_precision_rescues_outliers() {
        let (dense, x, plan) = outlier_scenario(1);
        let exact = dense.forward(&x);

        // Atom with INT8 outliers.
        let cfg = AtomLinearConfig {
            n_outliers: 2,
            use_gptq: false,
            ..AtomLinearConfig::w4a4(2)
        };
        let atom = QuantizedLinear::quantize(&dense, plan.clone(), None, &cfg);
        let err_atom = rel_err(&atom.forward(&x), &exact);

        // Same bits with no outlier handling.
        let cfg_none = AtomLinearConfig {
            n_outliers: 0,
            outlier_mode: OutlierMode::None,
            use_gptq: false,
            ..AtomLinearConfig::w4a4(0)
        };
        let plain = QuantizedLinear::quantize(
            &dense,
            ReorderPlan::identity(64),
            None,
            &cfg_none,
        );
        let err_plain = rel_err(&plain.forward(&x), &exact);

        assert!(
            err_atom < err_plain / 2.0,
            "mixed precision should help: atom {err_atom} vs plain {err_plain}"
        );
        assert!(err_atom < 0.1, "atom error too large: {err_atom}");
    }

    #[test]
    fn fp16_and_int8_outliers_are_close() {
        // Table 3: quantizing outliers from FP16 to INT8 costs almost
        // nothing (0.05 ppl in the paper).
        let (dense, x, plan) = outlier_scenario(2);
        let exact = dense.forward(&x);
        let mk = |mode| {
            let cfg = AtomLinearConfig {
                n_outliers: 2,
                outlier_mode: mode,
                use_gptq: false,
                ..AtomLinearConfig::w4a4(2)
            };
            let q = QuantizedLinear::quantize(&dense, plan.clone(), None, &cfg);
            rel_err(&q.forward(&x), &exact)
        };
        let err_fp16 = mk(OutlierMode::Fp16);
        let err_int8 = mk(OutlierMode::Int8);
        assert!(
            (err_int8 - err_fp16).abs() < 0.25 * err_fp16.max(1e-3),
            "INT8 outliers should match FP16 closely: {err_int8} vs {err_fp16}"
        );
    }

    #[test]
    fn reorder_does_not_change_function_without_quantization_error() {
        // With 8-bit weights+activations and no clip the reordered path
        // must closely match the dense output even with no outliers.
        let mut rng = SeededRng::new(3);
        let dense = DenseLinear::new(rng.normal_matrix(8, 32, 0.0, 1.0));
        let x = rng.normal_matrix(4, 32, 0.0, 1.0);
        let plan = ReorderPlan::from_outlier_set(32, &[3, 17]);
        let cfg = AtomLinearConfig {
            weight: QuantSpec::new(8, 16),
            act: QuantSpec::new(8, 16),
            n_outliers: 2,
            outlier_mode: OutlierMode::Int8,
            use_gptq: false,
        };
        let q = QuantizedLinear::quantize(&dense, plan, None, &cfg);
        let err = rel_err(&q.forward(&x), &dense.forward(&x));
        assert!(err < 0.02, "8-bit path error {err}");
    }

    #[test]
    fn gptq_path_works_with_gram() {
        let (dense, x, plan) = outlier_scenario(4);
        // Gram from the activations themselves.
        let k = x.cols();
        let mut gram = vec![0.0f64; k * k];
        for r in 0..x.rows() {
            let row = x.row(r);
            for i in 0..k {
                for j in 0..k {
                    gram[i * k + j] += row[i] as f64 * row[j] as f64;
                }
            }
        }
        let cfg = AtomLinearConfig {
            n_outliers: 2,
            ..AtomLinearConfig::w4a4(2)
        };
        let q = QuantizedLinear::quantize(&dense, plan, Some(&gram), &cfg);
        let err = rel_err(&q.forward(&x), &dense.forward(&x));
        assert!(err < 0.12, "GPTQ path error {err}");
    }

    #[test]
    fn effective_bits_are_low() {
        let (dense, _, plan) = outlier_scenario(5);
        let cfg = AtomLinearConfig {
            n_outliers: 2,
            use_gptq: false,
            ..AtomLinearConfig::w4a4(2)
        };
        let q = QuantizedLinear::quantize(&dense, plan, None, &cfg);
        let eb = q.effective_weight_bits();
        // 4-bit body + 2/64 channels in INT8 + f16 scales per group of 16:
        // about 4 + 16/16 + small = ~5.2 bits.
        assert!(eb > 4.0 && eb < 6.0, "effective bits {eb}");
    }

    #[test]
    fn static_activations_work_but_lose_to_dynamic_on_shift() {
        // The §4.3 design point: static scales fit the calibration
        // distribution; dynamic scales adapt to the live input.
        let (dense, x, plan) = outlier_scenario(9);
        let exact = dense.forward(&x);
        let cfg = AtomLinearConfig {
            n_outliers: 2,
            use_gptq: false,
            ..AtomLinearConfig::w4a4(2)
        };
        let dynamic = QuantizedLinear::quantize(&dense, plan.clone(), None, &cfg);
        // Calibrate statics on a *scaled-down* sample to emulate
        // distribution shift between calibration and serving.
        let static_layer = QuantizedLinear::quantize(&dense, plan, None, &cfg)
            .with_static_activations(&x.scaled(0.2));
        let err_dyn = rel_err(&dynamic.forward(&x), &exact);
        let err_static = rel_err(&static_layer.forward(&x), &exact);
        assert!(
            err_static > err_dyn * 1.5,
            "static under shift should lose: {err_static} vs {err_dyn}"
        );
        // With a matching sample, static is usable (close to dynamic).
        let static_matched = QuantizedLinear::quantize(
            &dense,
            crate::calibrate::ReorderPlan::from_outlier_set(64, &[5, 40]),
            None,
            &cfg,
        )
        .with_static_activations(&x);
        let err_matched = rel_err(&static_matched.forward(&x), &exact);
        assert!(err_matched < err_dyn * 3.0, "{err_matched} vs {err_dyn}");
    }

    #[test]
    #[should_panic(expected = "reorder plan width mismatch")]
    fn plan_width_checked() {
        let mut rng = SeededRng::new(6);
        let dense = DenseLinear::new(rng.normal_matrix(4, 16, 0.0, 1.0));
        let plan = ReorderPlan::identity(8);
        let cfg = AtomLinearConfig {
            n_outliers: 0,
            outlier_mode: OutlierMode::None,
            use_gptq: false,
            ..AtomLinearConfig::w4a4(0)
        };
        QuantizedLinear::quantize(&dense, plan, None, &cfg);
    }
}
