//! Offline calibration: activation statistics, outlier-channel
//! identification, and channel-reorder plans (paper §4.1, §5.1).
//!
//! Atom identifies outlier channels *offline*: calibration data (128 random
//! sentences, §5.1) flows through the FP model while an observer collects
//! per-channel square sums at every linear-layer input. The channels with
//! the largest square sums become the outlier set; the reorder plan moves
//! them to the end of the matrix so the mixed-precision kernel sees two
//! contiguous regions.
//!
//! The same pass optionally accumulates the Gram matrix `H = Σ xᵀx` of each
//! linear's inputs, which is the Hessian proxy GPTQ needs (§4.3).

use atom_nn::kv::Fp32KvCache;
use atom_nn::model::{ForwardObserver, LinearId};
use atom_nn::{LinearLayer, LlamaModel};
use atom_tensor::stats::ChannelStats;
use atom_tensor::Matrix;
use std::collections::HashMap;

/// Per-linear calibration data.
#[derive(Debug, Clone)]
pub struct LinearCalibration {
    /// Streaming channel statistics of the layer's input activations.
    pub stats: ChannelStats,
    /// Gram matrix `Σ xᵀx` over (subsampled) calibration rows, in f64.
    /// Present only when Hessian collection was requested.
    pub gram: Option<Vec<f64>>,
    /// Number of rows accumulated into `gram`.
    pub gram_rows: usize,
    /// A capped sample of raw input rows, used by the SmoothQuant/AWQ alpha
    /// grid searches and the clipping search.
    pub sample: Matrix,
}

/// Maximum activation rows retained per linear for grid searches.
const MAX_SAMPLE_ROWS: usize = 192;

/// Calibration results for a whole model.
#[derive(Debug, Clone, Default)]
pub struct Calibration {
    per_linear: HashMap<LinearId, LinearCalibration>,
}

impl Calibration {
    /// Runs `sequences` through the model and collects statistics at every
    /// linear input.
    ///
    /// `collect_gram = true` additionally accumulates the GPTQ Hessian
    /// proxy; rows are subsampled by `gram_stride` (1 = every token) to
    /// bound the O(tokens · k²) cost.
    ///
    /// # Panics
    ///
    /// Panics if `sequences` is empty or `gram_stride == 0`.
    pub fn collect<L: LinearLayer>(
        model: &LlamaModel<L>,
        sequences: &[Vec<u16>],
        collect_gram: bool,
        gram_stride: usize,
    ) -> Self {
        assert!(!sequences.is_empty(), "calibration needs sequences");
        assert!(gram_stride > 0, "gram_stride must be positive");
        let config = model.config();
        let mut obs = CalibObserver {
            calib: Calibration::default(),
            collect_gram,
            gram_stride,
        };
        for seq in sequences {
            if seq.is_empty() {
                continue;
            }
            let mut cache = Fp32KvCache::new(config.layers, config.kv_dim());
            let take = seq.len().min(config.max_seq_len);
            model.forward_observed(&seq[..take], &mut cache, &mut obs);
        }
        obs.calib
    }

    /// Calibration data of one linear.
    pub fn linear(&self, id: LinearId) -> Option<&LinearCalibration> {
        self.per_linear.get(&id)
    }

    /// All linear ids seen during calibration.
    pub fn linear_ids(&self) -> Vec<LinearId> {
        let mut ids: Vec<LinearId> = self.per_linear.keys().copied().collect();
        ids.sort_by_key(|id| (id.layer, format!("{:?}", id.proj), id.expert));
        ids
    }

    /// Builds the channel-reorder plan for one linear: the `n_outliers`
    /// channels with the largest square sums move to the end (paper §5.1).
    ///
    /// # Panics
    ///
    /// Panics if the linear was not calibrated or `n_outliers` exceeds its
    /// channel count.
    pub fn reorder_plan(&self, id: LinearId, n_outliers: usize) -> ReorderPlan {
        let calib = self
            .per_linear
            .get(&id)
            .unwrap_or_else(|| panic!("linear {id} was not calibrated"));
        ReorderPlan::from_stats(&calib.stats, n_outliers)
    }
}

/// A channel permutation separating normal channels (front, original
/// relative order) from outlier channels (back, by descending square sum).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReorderPlan {
    perm: Vec<usize>,
    n_outliers: usize,
}

impl ReorderPlan {
    /// Builds a plan from channel statistics.
    ///
    /// # Panics
    ///
    /// Panics if `n_outliers > stats.channels()`.
    pub fn from_stats(stats: &ChannelStats, n_outliers: usize) -> Self {
        let channels = stats.channels();
        assert!(
            n_outliers <= channels,
            "n_outliers {n_outliers} exceeds {channels} channels"
        );
        let outliers = stats.top_square_sum_channels(n_outliers);
        Self::from_outlier_set(channels, &outliers)
    }

    /// Builds a plan from an explicit outlier channel list (descending
    /// priority).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or duplicate indices.
    pub fn from_outlier_set(channels: usize, outliers: &[usize]) -> Self {
        let mut is_outlier = vec![false; channels];
        for &c in outliers {
            assert!(c < channels, "outlier channel {c} out of range");
            assert!(!is_outlier[c], "duplicate outlier channel {c}");
            is_outlier[c] = true;
        }
        let mut perm = Vec::with_capacity(channels);
        for (c, &flag) in is_outlier.iter().enumerate() {
            if !flag {
                perm.push(c);
            }
        }
        perm.extend_from_slice(outliers);
        ReorderPlan {
            perm,
            n_outliers: outliers.len(),
        }
    }

    /// The identity plan (no outliers, no reordering).
    pub fn identity(channels: usize) -> Self {
        ReorderPlan {
            perm: (0..channels).collect(),
            n_outliers: 0,
        }
    }

    /// The permutation: output channel `i` reads input channel `perm[i]`.
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Number of outlier channels (at the end of the permuted order).
    pub fn n_outliers(&self) -> usize {
        self.n_outliers
    }

    /// Total channels.
    pub fn channels(&self) -> usize {
        self.perm.len()
    }

    /// Number of normal (low-bit) channels.
    pub fn n_normal(&self) -> usize {
        self.perm.len() - self.n_outliers
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> Vec<usize> {
        let mut inv = vec![0usize; self.perm.len()];
        for (i, &p) in self.perm.iter().enumerate() {
            inv[p] = i;
        }
        inv
    }

    /// Applies the plan to activation columns.
    pub fn reorder_activation(&self, x: &Matrix) -> Matrix {
        x.permute_cols(&self.perm)
    }

    /// Applies the plan to a weight stored `out_features x in_features`
    /// (reorders the input-feature columns so the product is unchanged).
    pub fn reorder_weight(&self, w: &Matrix) -> Matrix {
        w.permute_cols(&self.perm)
    }

    /// Applies the plan to a `k x k` Gram/Hessian matrix (both dimensions).
    pub fn reorder_gram(&self, gram: &[f64], k: usize) -> Vec<f64> {
        assert_eq!(gram.len(), k * k, "gram size mismatch");
        assert_eq!(k, self.perm.len(), "gram dimension mismatch");
        let mut out = vec![0.0f64; k * k];
        for i in 0..k {
            for j in 0..k {
                out[i * k + j] = gram[self.perm[i] * k + self.perm[j]];
            }
        }
        out
    }
}

struct CalibObserver {
    calib: Calibration,
    collect_gram: bool,
    gram_stride: usize,
}

impl ForwardObserver for CalibObserver {
    fn observe(&mut self, id: LinearId, input: &Matrix) {
        let k = input.cols();
        let entry = self
            .calib
            .per_linear
            .entry(id)
            .or_insert_with(|| LinearCalibration {
                stats: ChannelStats::new(k),
                gram: if self.collect_gram {
                    Some(vec![0.0f64; k * k])
                } else {
                    None
                },
                gram_rows: 0,
                sample: Matrix::zeros(0, k),
            });
        entry.stats.update(input);
        if entry.sample.rows() < MAX_SAMPLE_ROWS {
            let take = (MAX_SAMPLE_ROWS - entry.sample.rows()).min(input.rows());
            entry.sample = entry.sample.vstack(&input.slice_rows(0, take));
        }
        if let Some(gram) = &mut entry.gram {
            let mut r = 0;
            while r < input.rows() {
                let row = input.row(r);
                for i in 0..k {
                    let xi = row[i] as f64;
                    if xi == 0.0 {
                        continue;
                    }
                    let dst = &mut gram[i * k..(i + 1) * k];
                    for (d, &xj) in dst.iter_mut().zip(row.iter()) {
                        *d += xi * xj as f64;
                    }
                }
                entry.gram_rows += 1;
                r += self.gram_stride;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_nn::config::ModelConfig;
    use atom_nn::model::Proj;

    fn tiny_model() -> LlamaModel<atom_nn::DenseLinear> {
        LlamaModel::random_init(
            ModelConfig {
                dim: 32,
                layers: 2,
                heads: 4,
                kv_heads: 4,
                ffn_dim: 48,
                ..ModelConfig::default()
            },
            7,
        )
    }

    fn seqs() -> Vec<Vec<u16>> {
        (0..4)
            .map(|s| (0..20).map(|i| ((s * 31 + i * 7) % 96) as u16).collect())
            .collect()
    }

    #[test]
    fn collects_stats_for_every_linear() {
        let m = tiny_model();
        let calib = Calibration::collect(&m, &seqs(), false, 1);
        assert_eq!(calib.linear_ids().len(), m.num_linears());
        let q0 = calib.linear(LinearId::new(0, Proj::Q)).unwrap();
        assert_eq!(q0.stats.channels(), 32);
        assert_eq!(q0.stats.count(), 80); // 4 sequences x 20 tokens
        assert!(q0.gram.is_none());
        assert_eq!(q0.sample.rows(), 80);
        assert_eq!(q0.sample.cols(), 32);
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal() {
        let m = tiny_model();
        let calib = Calibration::collect(&m, &seqs(), true, 1);
        let g = calib
            .linear(LinearId::new(1, Proj::Gate))
            .unwrap()
            .gram
            .as_ref()
            .unwrap()
            .clone();
        let k = 32;
        for i in 0..k {
            assert!(g[i * k + i] >= 0.0, "diagonal must be nonnegative");
            for j in 0..k {
                assert!((g[i * k + j] - g[j * k + i]).abs() < 1e-6, "symmetry");
            }
        }
    }

    #[test]
    fn gram_stride_subsamples() {
        let m = tiny_model();
        let full = Calibration::collect(&m, &seqs(), true, 1);
        let sub = Calibration::collect(&m, &seqs(), true, 4);
        let id = LinearId::new(0, Proj::Q);
        assert!(sub.linear(id).unwrap().gram_rows < full.linear(id).unwrap().gram_rows);
        assert!(sub.linear(id).unwrap().gram_rows >= 80 / 4);
    }

    #[test]
    fn reorder_plan_moves_outliers_to_end() {
        let mut stats = ChannelStats::new(6);
        let mut m = Matrix::zeros(2, 6);
        m[(0, 1)] = 100.0;
        m[(1, 4)] = 50.0;
        m[(0, 0)] = 1.0;
        stats.update(&m);
        let plan = ReorderPlan::from_stats(&stats, 2);
        assert_eq!(plan.n_outliers(), 2);
        assert_eq!(plan.n_normal(), 4);
        // Outliers 1 (biggest) then 4 go last; normals keep order.
        assert_eq!(plan.perm(), &[0, 2, 3, 5, 1, 4]);
    }

    #[test]
    fn reorder_preserves_linear_output() {
        let mut rng = atom_tensor::SeededRng::new(3);
        let x = rng.normal_matrix(4, 8, 0.0, 1.0);
        let w = rng.normal_matrix(5, 8, 0.0, 1.0);
        let plan = ReorderPlan::from_outlier_set(8, &[6, 2]);
        let xr = plan.reorder_activation(&x);
        let wr = plan.reorder_weight(&w);
        let before = x.matmul_nt(&w);
        let after = xr.matmul_nt(&wr);
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn inverse_permutation_roundtrips() {
        let plan = ReorderPlan::from_outlier_set(5, &[0, 3]);
        let mut rng = atom_tensor::SeededRng::new(4);
        let x = rng.normal_matrix(2, 5, 0.0, 1.0);
        let round = plan.reorder_activation(&x).permute_cols(&plan.inverse());
        assert_eq!(round, x);
    }

    #[test]
    fn reorder_gram_consistent_with_activation_reorder() {
        let mut rng = atom_tensor::SeededRng::new(5);
        let x = rng.normal_matrix(10, 6, 0.0, 1.0);
        let plan = ReorderPlan::from_outlier_set(6, &[1, 5]);
        // Gram of reordered activations == reordered gram of activations.
        let gram = |m: &Matrix| {
            let k = m.cols();
            let mut g = vec![0.0f64; k * k];
            for r in 0..m.rows() {
                let row = m.row(r);
                for i in 0..k {
                    for j in 0..k {
                        g[i * k + j] += row[i] as f64 * row[j] as f64;
                    }
                }
            }
            g
        };
        let direct = gram(&plan.reorder_activation(&x));
        let via_plan = plan.reorder_gram(&gram(&x), 6);
        for (a, b) in direct.iter().zip(via_plan.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate outlier")]
    fn duplicate_outliers_rejected() {
        ReorderPlan::from_outlier_set(4, &[1, 1]);
    }
}
