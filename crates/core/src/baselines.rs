//! Baseline quantization schemes the paper compares against: RTN,
//! SmoothQuant, an OmniQuant-like clipped RTN, and AWQ-style weight-only
//! quantization.
//!
//! Baselines run through [`FakeQuantLinear`]: weights are quantized offline
//! and stored dequantized, activations are (optionally) fake-quantized per
//! token at run time, and the product runs in f32. For per-token/per-channel
//! symmetric schemes this is numerically equivalent to the integer pipeline
//! up to f32 summation, which is the standard accuracy-evaluation practice
//! in the papers being compared.

use crate::calibrate::LinearCalibration;
use atom_kernels::{group, QuantSpec};
use atom_nn::{DenseLinear, LinearLayer};
use atom_tensor::Matrix;

/// Run-time activation handling of a baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActQuant {
    /// Activations stay FP16 (weight-only quantization).
    None,
    /// Symmetric dynamic fake quantization with the given spec (per-token
    /// when `group == usize::MAX`).
    Dynamic(QuantSpec),
}

/// A linear layer with offline-quantized weights and optional run-time
/// activation fake quantization.
#[derive(Debug, Clone)]
pub struct FakeQuantLinear {
    /// Dequantized weight (`out x in`).
    weight: Matrix,
    /// Per-input-channel multiplier applied to activations before
    /// quantization (SmoothQuant/AWQ folding); the inverse is already folded
    /// into `weight`.
    premul: Option<Vec<f32>>,
    act: ActQuant,
}

impl FakeQuantLinear {
    /// Plain RTN: per-output-channel symmetric weights, per-token dynamic
    /// activations — the "standard quantization recipe" of §5.4.1.
    pub fn rtn(dense: &DenseLinear, w_bits: u8, a_bits: u8) -> Self {
        Self::clipped_rtn(dense, w_bits, a_bits, 1.0, 1.0)
    }

    /// RTN with clipping factors (the OmniQuant-like baseline: learned
    /// clipping approximated by fixed factors).
    pub fn clipped_rtn(dense: &DenseLinear, w_bits: u8, a_bits: u8, clip_w: f32, clip_a: f32) -> Self {
        let wq = group::fake_quantize(
            dense.weight(),
            QuantSpec::new(w_bits, usize::MAX).with_clip(clip_w),
        );
        FakeQuantLinear {
            weight: wq,
            premul: None,
            act: ActQuant::Dynamic(QuantSpec::new(a_bits, usize::MAX).with_clip(clip_a)),
        }
    }

    /// SmoothQuant: per-channel smoothing `s_j = amax_x(j)^α /
    /// amax_w(j)^(1-α)` migrates activation outliers into the weights, then
    /// both quantize per-channel/per-token.
    ///
    /// # Panics
    ///
    /// Panics if the calibration stats width disagrees with the layer.
    pub fn smoothquant(
        dense: &DenseLinear,
        calib: &LinearCalibration,
        alpha: f32,
        w_bits: u8,
        a_bits: u8,
    ) -> Self {
        Self::smoothquant_clipped(dense, calib, alpha, w_bits, a_bits, 1.0, 1.0)
    }

    /// SmoothQuant folding combined with clipping factors — the
    /// OmniQuant-like baseline (learned equivalent transformation and
    /// learned weight clipping, approximated by a grid-searched smoothing
    /// alpha plus fixed clip factors).
    ///
    /// # Panics
    ///
    /// Panics if the calibration stats width disagrees with the layer.
    pub fn smoothquant_clipped(
        dense: &DenseLinear,
        calib: &LinearCalibration,
        alpha: f32,
        w_bits: u8,
        a_bits: u8,
        clip_w: f32,
        clip_a: f32,
    ) -> Self {
        let k = dense.in_features();
        assert_eq!(calib.stats.channels(), k, "stats width mismatch");
        let act_amax = calib.stats.abs_maxes();
        let w = dense.weight();
        let mut smooth = vec![1.0f32; k];
        for (j, s) in smooth.iter_mut().enumerate() {
            let a = act_amax[j].max(1e-5);
            let mut wmax = 0.0f32;
            for r in 0..w.rows() {
                wmax = wmax.max(w[(r, j)].abs());
            }
            let wmax = wmax.max(1e-5);
            *s = (a.powf(alpha) / wmax.powf(1.0 - alpha)).clamp(1e-4, 1e4);
        }
        // y = (x / s) @ (W * diag(s))^T.
        let mut folded = w.clone();
        folded.scale_cols_in_place(&smooth);
        let wq = group::fake_quantize(
            &folded,
            QuantSpec::new(w_bits, usize::MAX).with_clip(clip_w),
        );
        let premul: Vec<f32> = smooth.iter().map(|&s| 1.0 / s).collect();
        FakeQuantLinear {
            weight: wq,
            premul: Some(premul),
            act: ActQuant::Dynamic(QuantSpec::new(a_bits, usize::MAX).with_clip(clip_a)),
        }
    }

    /// Grid-searches alpha for the OmniQuant-like baseline (smoothing +
    /// clipping) and returns the best layer.
    pub fn omniquant_like(
        dense: &DenseLinear,
        calib: &LinearCalibration,
        w_bits: u8,
        a_bits: u8,
    ) -> Self {
        let exact = dense.forward(&calib.sample);
        let mut best_err = f64::INFINITY;
        let mut best_alpha = 0.5f32;
        for &alpha in &[0.3f32, 0.4, 0.5, 0.6, 0.7, 0.8] {
            let cand =
                Self::smoothquant_clipped(dense, calib, alpha, w_bits, a_bits, 0.9, 0.95);
            let err = cand.forward(&calib.sample).sub(&exact).frob_norm() as f64;
            if err < best_err {
                best_err = err;
                best_alpha = alpha;
            }
        }
        Self::smoothquant_clipped(dense, calib, best_alpha, w_bits, a_bits, 0.9, 0.95)
    }

    /// AWQ-style weight-only quantization: per-group low-bit weights with an
    /// activation-aware scale `s_j = amax_x(j)^α` protecting salient
    /// channels; activations stay in FP16.
    pub fn weight_only_awq(
        dense: &DenseLinear,
        calib: &LinearCalibration,
        alpha: f32,
        w_bits: u8,
        group_size: usize,
    ) -> Self {
        let k = dense.in_features();
        assert_eq!(calib.stats.channels(), k, "stats width mismatch");
        let act_amax = calib.stats.abs_maxes();
        let mean_amax: f32 =
            (act_amax.iter().map(|&v| v as f64).sum::<f64>() / k as f64).max(1e-6) as f32;
        let smooth: Vec<f32> = act_amax
            .iter()
            .map(|&a| ((a.max(1e-5) / mean_amax).powf(alpha)).clamp(1e-3, 1e3))
            .collect();
        let mut folded = dense.weight().clone();
        folded.scale_cols_in_place(&smooth);
        let wq = group::fake_quantize(&folded, QuantSpec::new(w_bits, group_size));
        let premul: Vec<f32> = smooth.iter().map(|&s| 1.0 / s).collect();
        FakeQuantLinear {
            weight: wq,
            premul: Some(premul),
            act: ActQuant::None,
        }
    }

    /// Grid-searches the SmoothQuant migration strength `alpha` on the
    /// calibration sample, returning the constructed layer and the winning
    /// alpha (the paper grid-searched alpha per benchmark).
    pub fn smoothquant_search(
        dense: &DenseLinear,
        calib: &LinearCalibration,
        w_bits: u8,
        a_bits: u8,
    ) -> (Self, f32) {
        let exact = dense.forward(&calib.sample);
        let mut best = (f64::INFINITY, 0.5f32);
        for &alpha in &[0.3f32, 0.4, 0.5, 0.6, 0.7, 0.8] {
            let candidate = Self::smoothquant(dense, calib, alpha, w_bits, a_bits);
            let err = candidate.forward(&calib.sample).sub(&exact).frob_norm() as f64;
            if err < best.0 {
                best = (err, alpha);
            }
        }
        (
            Self::smoothquant(dense, calib, best.1, w_bits, a_bits),
            best.1,
        )
    }

    /// The stored (dequantized) weight.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }
}

impl LinearLayer for FakeQuantLinear {
    fn forward(&self, x: &Matrix) -> Matrix {
        let mut xs = x.clone();
        if let Some(premul) = &self.premul {
            xs.scale_cols_in_place(premul);
        }
        let xq = match self.act {
            ActQuant::None => xs,
            ActQuant::Dynamic(spec) => group::fake_quantize(&xs, spec),
        };
        xq.matmul_nt(&self.weight)
    }

    fn in_features(&self) -> usize {
        self.weight.cols()
    }

    fn out_features(&self) -> usize {
        self.weight.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_tensor::stats::ChannelStats;
    use atom_tensor::SeededRng;

    fn calib_for(x: &Matrix) -> LinearCalibration {
        let mut stats = ChannelStats::new(x.cols());
        stats.update(x);
        LinearCalibration {
            stats,
            gram: None,
            gram_rows: 0,
            sample: x.clone(),
        }
    }

    fn outlier_activations(seed: u64, rows: usize, k: usize) -> Matrix {
        let mut rng = SeededRng::new(seed);
        let mut x = rng.normal_matrix(rows, k, 0.0, 1.0);
        for r in 0..rows {
            x[(r, 2)] *= 50.0;
            x[(r, k - 3)] *= 40.0;
        }
        x
    }

    fn rel_err(a: &Matrix, b: &Matrix) -> f64 {
        (a.sub(b).frob_norm() / b.frob_norm()) as f64
    }

    #[test]
    fn rtn_w8a8_is_accurate() {
        let mut rng = SeededRng::new(1);
        let dense = DenseLinear::new(rng.normal_matrix(8, 32, 0.0, 1.0));
        let x = rng.normal_matrix(4, 32, 0.0, 1.0);
        let q = FakeQuantLinear::rtn(&dense, 8, 8);
        assert!(rel_err(&q.forward(&x), &dense.forward(&x)) < 0.02);
    }

    #[test]
    fn rtn_w4a4_fails_on_outliers() {
        // The motivating observation: plain W4A4 RTN degrades sharply when
        // activations carry outlier channels, while W8A8 holds up.
        let mut rng = SeededRng::new(2);
        let dense = DenseLinear::new(rng.normal_matrix(8, 32, 0.0, 1.0));
        let x = outlier_activations(3, 6, 32);
        let exact = dense.forward(&x);
        let e44 = rel_err(&FakeQuantLinear::rtn(&dense, 4, 4).forward(&x), &exact);
        let e88 = rel_err(&FakeQuantLinear::rtn(&dense, 8, 8).forward(&x), &exact);
        assert!(
            e44 > 5.0 * e88 && e44 > 0.05,
            "expected W4A4 ({e44}) to degrade far beyond W8A8 ({e88})"
        );
    }

    #[test]
    fn smoothquant_beats_rtn_at_w8a8_with_outliers() {
        let mut rng = SeededRng::new(4);
        let dense = DenseLinear::new(rng.normal_matrix(16, 32, 0.0, 1.0));
        let x = outlier_activations(5, 8, 32);
        let calib = calib_for(&x);
        let rtn = FakeQuantLinear::rtn(&dense, 8, 8);
        let sq = FakeQuantLinear::smoothquant(&dense, &calib, 0.5, 8, 8);
        let exact = dense.forward(&x);
        let e_rtn = rel_err(&rtn.forward(&x), &exact);
        let e_sq = rel_err(&sq.forward(&x), &exact);
        assert!(e_sq < e_rtn, "smoothquant {e_sq} should beat rtn {e_rtn}");
    }

    #[test]
    fn smoothquant_search_picks_reasonable_alpha() {
        let mut rng = SeededRng::new(5);
        let dense = DenseLinear::new(rng.normal_matrix(12, 24, 0.0, 1.0));
        let x = outlier_activations(6, 12, 24);
        let calib = calib_for(&x);
        let (_, alpha) = FakeQuantLinear::smoothquant_search(&dense, &calib, 8, 8);
        assert!((0.3..=0.8).contains(&alpha));
    }

    #[test]
    fn weight_only_is_exact_on_activations() {
        // W4A16 touches only the weights; with benign weights the output
        // error is small regardless of activation outliers.
        let mut rng = SeededRng::new(6);
        let dense = DenseLinear::new(rng.normal_matrix(12, 32, 0.0, 1.0));
        let x = outlier_activations(7, 6, 32);
        let calib = calib_for(&x);
        let q = FakeQuantLinear::weight_only_awq(&dense, &calib, 0.3, 4, 16);
        let err = rel_err(&q.forward(&x), &dense.forward(&x));
        // 4-bit group-16 weights alone cost roughly step/sqrt(12) ≈ 8%
        // relative error on N(0,1) weights; activation outliers add nothing.
        assert!(err < 0.12, "weight-only error {err}");
    }

    #[test]
    fn clipping_helps_gaussian_weights_at_low_bits() {
        // The classic result behind Atom's clipping choice: for Gaussian
        // data at 3-4 bits the MSE-optimal clip point is below the sample
        // maximum (~2.5-3 sigma vs an amax of ~3.5 sigma over wide rows), so
        // a sub-unit clipping factor reduces quantization error.
        let mut rng = SeededRng::new(7);
        let w = rng.normal_matrix(16, 128, 0.0, 1.0);
        let dense = DenseLinear::new(w.clone());
        let plain = FakeQuantLinear::clipped_rtn(&dense, 3, 8, 1.0, 1.0);
        let clipped = FakeQuantLinear::clipped_rtn(&dense, 3, 8, 0.8, 1.0);
        let e_plain = plain.weight().mse(&w);
        let e_clip = clipped.weight().mse(&w);
        assert!(
            e_clip < e_plain,
            "clip {e_clip} should beat plain {e_plain} at 3 bits"
        );
    }

    #[test]
    fn premul_fold_preserves_function_without_quantization() {
        // With 8-bit everything and alpha = 0.5 the smoothed layer must
        // stay close to the dense layer on ordinary data.
        let mut rng = SeededRng::new(8);
        let dense = DenseLinear::new(rng.normal_matrix(8, 16, 0.0, 1.0));
        let x = rng.normal_matrix(4, 16, 0.0, 1.0);
        let calib = calib_for(&x);
        let sq = FakeQuantLinear::smoothquant(&dense, &calib, 0.5, 8, 8);
        assert!(rel_err(&sq.forward(&x), &dense.forward(&x)) < 0.03);
    }
}
