//! Quantized KV-cache (paper §4.4).
//!
//! Keys and values are quantized *asymmetrically* at attention-head
//! granularity as they are appended, and dequantized on load. Plugging this
//! [`atom_nn::KvStore`] implementation into the unchanged model forward
//! reproduces the paper's KV-quantization accuracy ablation (Table 3's
//! final row), and its byte accounting feeds the serving-memory model.

use atom_kernels::attention::QuantizedKvHead;
use atom_kernels::KernelPath;
use atom_nn::KvStore;
use atom_parallel::Pool;
use atom_tensor::Matrix;

/// KV cache storing each layer/head block in low-bit asymmetric form.
#[derive(Debug, Clone)]
pub struct QuantizedKvCache {
    layers: Vec<Vec<QuantizedKvHead>>,
    kv_dim: usize,
    head_dim: usize,
    bits: u8,
}

impl QuantizedKvCache {
    /// Creates an empty cache: `layers` layers of `kv_dim / head_dim` heads.
    ///
    /// # Panics
    ///
    /// Panics if `head_dim` does not divide `kv_dim` or bits are out of
    /// range.
    pub fn new(layers: usize, kv_dim: usize, head_dim: usize, bits: u8) -> Self {
        assert!(head_dim > 0 && kv_dim.is_multiple_of(head_dim), "head layout invalid");
        let heads = kv_dim / head_dim;
        QuantizedKvCache {
            layers: (0..layers)
                .map(|_| (0..heads).map(|_| QuantizedKvHead::new(head_dim, bits)).collect())
                .collect(),
            kv_dim,
            head_dim,
            bits,
        }
    }

    /// Bit width of the stored cache.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Total packed bytes across all layers and heads.
    pub fn packed_bytes(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|heads| heads.iter().map(|h| h.packed_bytes()))
            .sum()
    }

    /// Direct access to one head block (used by the quantized attention
    /// kernel benches).
    pub fn head(&self, layer: usize, head: usize) -> &QuantizedKvHead {
        &self.layers[layer][head]
    }

    fn materialize(&self, layer: usize, keys: bool) -> Matrix {
        let heads = &self.layers[layer];
        let len = heads[0].len();
        let hd = self.head_dim;
        // Dequantize-on-load parallelizes per head: each head decodes its
        // own `len x head_dim` block (bit-identical to the sequential
        // per-head loop), and the caller stitches the column blocks in head
        // order afterwards — no worker ever shares an output.
        // Each head's sweep reuses one code scratch buffer across all its
        // rows (`dequantize_row_scratch`), decoding on the process-wide
        // kernel path; scratch reuse and path choice change no bytes.
        let path = KernelPath::current();
        let decode_head = |block: &QuantizedKvHead| {
            let src = if keys { &block.keys } else { &block.values };
            let mut m = Matrix::zeros(len, hd);
            let mut scratch = Vec::new();
            for t in 0..len {
                src.dequantize_row_scratch(t, m.row_mut(t), &mut scratch, path);
            }
            m
        };
        let per_head = Pool::global()
            .par_map(heads, |_, block| decode_head(block))
            .unwrap_or_else(|_| heads.iter().map(decode_head).collect());
        let mut out = Matrix::zeros(len, self.kv_dim);
        for (h, m) in per_head.iter().enumerate() {
            for t in 0..len {
                out.row_mut(t)[h * hd..(h + 1) * hd].copy_from_slice(m.row(t));
            }
        }
        out
    }
}

impl KvStore for QuantizedKvCache {
    fn append(&mut self, layer: usize, k: &Matrix, v: &Matrix) {
        assert_eq!(k.cols(), self.kv_dim, "k width mismatch");
        assert_eq!(v.cols(), self.kv_dim, "v width mismatch");
        for (h, block) in self.layers[layer].iter_mut().enumerate() {
            let ks = k.slice_cols(h * self.head_dim, (h + 1) * self.head_dim);
            let vs = v.slice_cols(h * self.head_dim, (h + 1) * self.head_dim);
            block.append(&ks, &vs);
        }
    }

    fn keys(&self, layer: usize) -> Matrix {
        self.materialize(layer, true)
    }

    fn values(&self, layer: usize) -> Matrix {
        self.materialize(layer, false)
    }

    fn len(&self, layer: usize) -> usize {
        self.layers[layer][0].len()
    }

    fn clear(&mut self) {
        for heads in &mut self.layers {
            for h in heads.iter_mut() {
                *h = QuantizedKvHead::new(self.head_dim, self.bits);
            }
        }
    }

    fn clone_box(&self) -> Box<dyn KvStore> {
        Box::new(self.clone())
    }

    fn truncate(&mut self, tokens: usize) {
        for heads in &mut self.layers {
            for h in heads.iter_mut() {
                h.truncate(tokens);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_nn::{Fp32KvCache, LlamaModel, ModelConfig};
    use atom_tensor::SeededRng;

    #[test]
    fn append_and_materialize_roundtrip() {
        let mut rng = SeededRng::new(1);
        let mut cache = QuantizedKvCache::new(2, 16, 8, 8);
        let k = rng.normal_matrix(5, 16, 0.0, 1.0);
        let v = rng.normal_matrix(5, 16, 0.0, 1.0);
        cache.append(0, &k, &v);
        assert_eq!(cache.len(0), 5);
        assert_eq!(cache.len(1), 0);
        let km = cache.keys(0);
        assert_eq!(km.shape(), (5, 16));
        let rel = km.sub(&k).frob_norm() / k.frob_norm();
        assert!(rel < 0.02, "INT8 kv roundtrip error {rel}");
    }

    #[test]
    fn int4_cache_coarser_than_int8() {
        let mut rng = SeededRng::new(2);
        let k = rng.normal_matrix(10, 16, 0.0, 1.0);
        let v = rng.normal_matrix(10, 16, 0.0, 1.0);
        let err = |bits| {
            let mut c = QuantizedKvCache::new(1, 16, 8, bits);
            c.append(0, &k, &v);
            (c.values(0).sub(&v).frob_norm() / v.frob_norm()) as f64
        };
        assert!(err(4) > err(8));
        assert!(err(4) < 0.2);
    }

    #[test]
    fn model_runs_with_quantized_cache() {
        let config = ModelConfig {
            dim: 32,
            layers: 2,
            heads: 4,
            kv_heads: 4,
            ffn_dim: 64,
            ..ModelConfig::default()
        };
        let model = LlamaModel::random_init(config, 3);
        let tokens = [1u16, 5, 9, 13, 2];

        let mut fp = Fp32KvCache::new(config.layers, config.kv_dim());
        let exact = model.forward(&tokens, &mut fp);

        let mut q = QuantizedKvCache::new(config.layers, config.kv_dim(), config.head_dim(), 8);
        let approx = model.forward(&tokens, &mut q);
        let rel = approx.sub(&exact).frob_norm() / exact.frob_norm();
        assert!(rel < 0.05, "INT8 KV cache changed logits too much: {rel}");
    }

    #[test]
    fn memory_shrinks_with_bits() {
        let mut rng = SeededRng::new(4);
        let k = rng.normal_matrix(64, 32, 0.0, 1.0);
        let v = rng.normal_matrix(64, 32, 0.0, 1.0);
        let bytes = |bits| {
            let mut c = QuantizedKvCache::new(1, 32, 8, bits);
            c.append(0, &k, &v);
            c.packed_bytes()
        };
        assert!(bytes(4) < bytes(8));
        assert!(bytes(2) < bytes(4));
    }

    #[test]
    fn clear_resets_all_layers() {
        let mut c = QuantizedKvCache::new(2, 8, 4, 4);
        c.append(0, &Matrix::full(2, 8, 1.0), &Matrix::full(2, 8, 1.0));
        c.append(1, &Matrix::full(3, 8, 1.0), &Matrix::full(3, 8, 1.0));
        c.clear();
        assert_eq!(c.len(0), 0);
        assert_eq!(c.len(1), 0);
    }

    #[test]
    fn clone_box_truncate_is_bit_identical_to_short_history() {
        // Appending [a; b] then truncating back to |a| must be bit-identical
        // to appending only `a` — the invariant the prefix cache replays rely
        // on (per-(token, head) asymmetric quantization is row-independent).
        let mut rng = SeededRng::new(11);
        let a_k = rng.normal_matrix(5, 16, 0.0, 1.0);
        let a_v = rng.normal_matrix(5, 16, 0.0, 1.0);
        let b_k = rng.normal_matrix(3, 16, 1.0, 0.5);
        let b_v = rng.normal_matrix(3, 16, -1.0, 0.5);
        let mut long = QuantizedKvCache::new(2, 16, 8, 4);
        let mut short = QuantizedKvCache::new(2, 16, 8, 4);
        for layer in 0..2 {
            long.append(layer, &a_k, &a_v);
            long.append(layer, &b_k, &b_v);
            short.append(layer, &a_k, &a_v);
        }
        let mut cut = long.clone_box();
        cut.truncate(5);
        for layer in 0..2 {
            assert_eq!(cut.len(layer), 5);
            assert_eq!(cut.keys(layer).as_slice(), short.keys(layer).as_slice());
            assert_eq!(cut.values(layer).as_slice(), short.values(layer).as_slice());
        }
        assert_eq!(long.len(0), 8, "truncating the clone must not touch the original");
    }

    #[test]
    fn incremental_decode_with_quant_cache_is_stable() {
        let config = ModelConfig {
            dim: 32,
            layers: 1,
            heads: 4,
            kv_heads: 4,
            ffn_dim: 48,
            ..ModelConfig::default()
        };
        let model = LlamaModel::random_init(config, 5);
        let mut cache = QuantizedKvCache::new(1, config.kv_dim(), config.head_dim(), 8);
        let mut last = Matrix::zeros(0, 0);
        for &t in &[3u16, 7, 11, 15] {
            last = model.forward(&[t], &mut cache);
        }
        assert!(last.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(cache.len(0), 4);
    }
}
