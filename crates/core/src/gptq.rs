//! GPTQ weight quantization with group-aware error compensation.
//!
//! Atom applies GPTQ (Frantar et al.) to weight matrices after reordering
//! (paper §4.3, §5.1): columns are quantized one at a time and the rounding
//! error of each column is propagated into the not-yet-quantized columns via
//! the inverse Hessian `H⁻¹ = (2 X^T X + λI)⁻¹`, so later columns absorb the
//! damage. This module implements the exact algorithm in f64 — Cholesky
//! factorization of `H⁻¹`, sequential column quantization, per-group scales
//! recomputed when entering each group — supporting Atom's two-region
//! layout: the leading `k - outliers` columns quantize at the normal bit
//! width, the trailing outlier columns at INT8, with error compensation
//! flowing across the boundary.

use atom_kernels::{GroupQuantized, PackedMatrix, QuantSpec};
use atom_tensor::f16::round_f16;
use atom_tensor::Matrix;

/// Configuration of one GPTQ run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GptqConfig {
    /// Quantization of the normal (leading) region.
    pub normal: QuantSpec,
    /// Quantization of the outlier (trailing) region; `None` when the
    /// weight has no outlier region.
    pub outlier: Option<QuantSpec>,
    /// Number of trailing outlier columns.
    pub n_outliers: usize,
    /// Dampening fraction of the mean Hessian diagonal (GPTQ's `percdamp`,
    /// typically 0.01).
    pub damp: f64,
}

impl GptqConfig {
    /// Config with no outlier region.
    pub fn uniform(spec: QuantSpec) -> Self {
        GptqConfig {
            normal: spec,
            outlier: None,
            n_outliers: 0,
            damp: 0.01,
        }
    }
}

/// Result of quantizing one weight matrix: the normal-region container and,
/// if configured, the outlier-region container.
#[derive(Debug, Clone)]
pub struct QuantizedWeight {
    /// Leading `k - n_outliers` columns at the normal bit width.
    pub normal: GroupQuantized,
    /// Trailing outlier columns at the outlier bit width.
    pub outlier: Option<GroupQuantized>,
}

impl QuantizedWeight {
    /// Dequantizes and re-concatenates both regions (reordered layout).
    pub fn dequantize(&self) -> Matrix {
        let n = self.normal.dequantize();
        match &self.outlier {
            Some(o) => n.hstack(&o.dequantize()),
            None => n,
        }
    }
}

/// Quantizes `w` (`n x k`, already reordered) with GPTQ against the Gram
/// matrix `gram` (`k x k`, already reordered; pass `None` to fall back to
/// the identity, which degenerates GPTQ to plain RTN).
///
/// # Panics
///
/// Panics on shape mismatches or invalid specs.
pub fn gptq_quantize(w: &Matrix, gram: Option<&[f64]>, cfg: &GptqConfig) -> QuantizedWeight {
    let (n, k) = w.shape();
    cfg.normal.validate().expect("invalid normal spec");
    if let Some(o) = &cfg.outlier {
        o.validate().expect("invalid outlier spec");
    }
    assert!(cfg.n_outliers <= k, "outliers exceed columns");
    assert!(
        (cfg.outlier.is_some() && cfg.n_outliers > 0) || cfg.n_outliers == 0,
        "n_outliers > 0 requires an outlier spec"
    );
    let k_normal = k - cfg.n_outliers;

    // Build the damped Hessian (2 X^T X; the factor 2 cancels in the
    // algorithm so the Gram matrix itself works).
    let mut h = match gram {
        Some(g) => {
            assert_eq!(g.len(), k * k, "gram shape mismatch");
            g.to_vec()
        }
        None => {
            let mut id = vec![0.0f64; k * k];
            for i in 0..k {
                id[i * k + i] = 1.0;
            }
            id
        }
    };
    let mean_diag: f64 = (0..k).map(|i| h[i * k + i]).sum::<f64>() / k as f64;
    let lambda = (cfg.damp * mean_diag).max(1e-8);
    let mut w_work: Vec<f64> = w.as_slice().iter().map(|&v| v as f64).collect();
    for i in 0..k {
        if h[i * k + i] <= 0.0 {
            // Dead channel: never activated during calibration. Freeze the
            // column at zero and decouple it from the Hessian.
            for row in 0..n {
                w_work[row * k + i] = 0.0;
            }
            for j in 0..k {
                h[i * k + j] = 0.0;
                h[j * k + i] = 0.0;
            }
            h[i * k + i] = 1.0;
        }
        h[i * k + i] += lambda;
    }

    // U = upper Cholesky factor of H⁻¹ (the quantity GPTQ's updates use).
    let hinv = invert_spd(&h, k);
    let u = upper_cholesky(&hinv, k);

    // Sequential column quantization with group scales computed on entry.
    let mut codes = vec![0i8; n * k];
    let norm_groups = region_groups(k_normal, cfg.normal.group);
    let out_groups = cfg
        .outlier
        .map(|spec| region_groups(cfg.n_outliers, spec.group))
        .unwrap_or_default();
    let mut norm_scales = Matrix::zeros(n, norm_groups.len().max(1));
    let mut out_scales = Matrix::zeros(n, out_groups.len().max(1));
    let mut scales = vec![0.0f32; n]; // active scale per row
    let mut qlo = 0f64;
    let mut qhi = 0f64;

    for j in 0..k {
        // Entering a new group: recompute the scales from the *current*
        // (error-compensated) weights of the group's columns.
        let (spec, region_start, groups, scale_mat, group_idx) = if j < k_normal {
            let gi = find_group(&norm_groups, j);
            (
                cfg.normal,
                0usize,
                &norm_groups,
                &mut norm_scales,
                gi,
            )
        } else {
            let spec = cfg.outlier.expect("outlier spec present");
            let gi = find_group(&out_groups, j - k_normal);
            (spec, k_normal, &out_groups, &mut out_scales, gi)
        };
        let (g_start, g_end) = groups[group_idx];
        if j == region_start + g_start {
            let levels = ((1i32 << spec.bits) - 1) as f64;
            for row in 0..n {
                let mut amax = 0.0f64;
                for c in g_start..g_end {
                    amax = amax.max(w_work[row * k + region_start + c].abs());
                }
                let mut s = 2.0 * amax * spec.clip as f64 / levels;
                if s <= 0.0 {
                    s = 1.0;
                }
                let s = round_f16(s as f32).max(f32::MIN_POSITIVE);
                scales[row] = s;
                scale_mat[(row, group_idx)] = s;
            }
            qlo = -(1i64 << (spec.bits - 1)) as f64;
            qhi = ((1i64 << (spec.bits - 1)) - 1) as f64;
        }

        let d = u[j * k + j];
        for row in 0..n {
            let wv = w_work[row * k + j];
            let s = scales[row] as f64;
            let q = (wv / s).round().clamp(qlo, qhi);
            codes[row * k + j] = q as i8;
            let dequant = q * s;
            let err = (wv - dequant) / d;
            // Propagate the rounding error into the remaining columns.
            let urow = &u[j * k..(j + 1) * k];
            let wrow = &mut w_work[row * k..(row + 1) * k];
            for l in (j + 1)..k {
                wrow[l] -= err * urow[l];
            }
        }
    }

    // Assemble containers.
    let mut norm_packed = PackedMatrix::zeros(n, k_normal, cfg.normal.bits);
    for row in 0..n {
        for c in 0..k_normal {
            norm_packed.set(row, c, codes[row * k + c]);
        }
    }
    let normal = GroupQuantized::from_parts(cfg.normal, norm_packed, norm_scales);
    let outlier = cfg.outlier.map(|spec| {
        let mut packed = PackedMatrix::zeros(n, cfg.n_outliers, spec.bits);
        for row in 0..n {
            for c in 0..cfg.n_outliers {
                packed.set(row, c, codes[row * k + k_normal + c]);
            }
        }
        GroupQuantized::from_parts(spec, packed, out_scales)
    });
    QuantizedWeight { normal, outlier }
}

/// RTN (round-to-nearest) region quantization: the non-GPTQ baseline with
/// the same two-region layout.
pub fn rtn_quantize(w: &Matrix, cfg: &GptqConfig) -> QuantizedWeight {
    let k = w.cols();
    let k_normal = k - cfg.n_outliers;
    let normal = GroupQuantized::quantize(&w.slice_cols(0, k_normal), cfg.normal);
    let outlier = cfg
        .outlier
        .map(|spec| GroupQuantized::quantize(&w.slice_cols(k_normal, k), spec));
    QuantizedWeight { normal, outlier }
}

/// Group boundaries `(start, end)` within a region of `len` columns.
fn region_groups(len: usize, group: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let group = group.min(len);
    let mut out = Vec::new();
    let mut start = 0;
    while start < len {
        out.push((start, (start + group).min(len)));
        start += group;
    }
    out
}

fn find_group(groups: &[(usize, usize)], col: usize) -> usize {
    groups
        .iter()
        .position(|&(s, e)| col >= s && col < e)
        .expect("column inside a group")
}

/// Lower Cholesky factorization of a symmetric positive-definite matrix.
///
/// # Panics
///
/// Panics if the matrix is not positive definite (after damping this
/// indicates corrupt calibration data).
fn lower_cholesky(a: &[f64], k: usize) -> Vec<f64> {
    let mut l = vec![0.0f64; k * k];
    for i in 0..k {
        for j in 0..=i {
            let mut sum = a[i * k + j];
            for p in 0..j {
                sum -= l[i * k + p] * l[j * k + p];
            }
            if i == j {
                assert!(sum > 0.0, "matrix not positive definite at {i} (sum {sum})");
                l[i * k + i] = sum.sqrt();
            } else {
                l[i * k + j] = sum / l[j * k + j];
            }
        }
    }
    l
}

/// Inverse of a symmetric positive-definite matrix via Cholesky.
fn invert_spd(a: &[f64], k: usize) -> Vec<f64> {
    let l = lower_cholesky(a, k);
    // Solve L y = e_i, then L^T x = y, column by column.
    let mut inv = vec![0.0f64; k * k];
    let mut y = vec![0.0f64; k];
    for col in 0..k {
        // Forward substitution.
        for i in 0..k {
            let mut sum = if i == col { 1.0 } else { 0.0 };
            for p in 0..i {
                sum -= l[i * k + p] * y[p];
            }
            y[i] = sum / l[i * k + i];
        }
        // Back substitution.
        for i in (0..k).rev() {
            let mut sum = y[i];
            for p in (i + 1)..k {
                sum -= l[p * k + i] * inv[p * k + col];
            }
            inv[i * k + col] = sum / l[i * k + i];
        }
    }
    inv
}

/// Upper Cholesky factor `U` with `A = U^T U` (the transpose of the lower
/// factor, matching `torch.linalg.cholesky(..., upper=True)` that GPTQ's
/// reference implementation uses).
fn upper_cholesky(a: &[f64], k: usize) -> Vec<f64> {
    let l = lower_cholesky(a, k);
    let mut u = vec![0.0f64; k * k];
    for i in 0..k {
        for j in 0..=i {
            u[j * k + i] = l[i * k + j];
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_tensor::SeededRng;

    fn gram_of(x: &Matrix) -> Vec<f64> {
        let k = x.cols();
        let mut g = vec![0.0f64; k * k];
        for r in 0..x.rows() {
            let row = x.row(r);
            for i in 0..k {
                for j in 0..k {
                    g[i * k + j] += row[i] as f64 * row[j] as f64;
                }
            }
        }
        g
    }

    #[test]
    fn cholesky_roundtrip() {
        let mut rng = SeededRng::new(1);
        let x = rng.normal_matrix(20, 6, 0.0, 1.0);
        let mut g = gram_of(&x);
        for i in 0..6 {
            g[i * 6 + i] += 0.5;
        }
        let l = lower_cholesky(&g, 6);
        // L L^T == G.
        for i in 0..6 {
            for j in 0..6 {
                let mut s = 0.0;
                for p in 0..6 {
                    s += l[i * 6 + p] * l[j * 6 + p];
                }
                assert!((s - g[i * 6 + j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn spd_inverse_correct() {
        let mut rng = SeededRng::new(2);
        let x = rng.normal_matrix(30, 5, 0.0, 1.0);
        let mut g = gram_of(&x);
        for i in 0..5 {
            g[i * 5 + i] += 1.0;
        }
        let inv = invert_spd(&g, 5);
        for i in 0..5 {
            for j in 0..5 {
                let mut s = 0.0;
                for p in 0..5 {
                    s += g[i * 5 + p] * inv[p * 5 + j];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((s - expect).abs() < 1e-8, "({i},{j}) -> {s}");
            }
        }
    }

    #[test]
    fn upper_cholesky_factorizes() {
        let mut rng = SeededRng::new(3);
        let x = rng.normal_matrix(30, 5, 0.0, 1.0);
        let mut g = gram_of(&x);
        for i in 0..5 {
            g[i * 5 + i] += 1.0;
        }
        let u = upper_cholesky(&g, 5);
        // U must be upper triangular and U^T U == G.
        for i in 0..5 {
            for j in 0..i {
                assert_eq!(u[i * 5 + j], 0.0, "not upper triangular");
            }
        }
        for i in 0..5 {
            for j in 0..5 {
                let mut s = 0.0;
                for p in 0..5 {
                    s += u[p * 5 + i] * u[p * 5 + j];
                }
                assert!((s - g[i * 5 + j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn gptq_with_identity_gram_matches_rtn() {
        let mut rng = SeededRng::new(4);
        let w = rng.normal_matrix(6, 32, 0.0, 1.0);
        let cfg = GptqConfig::uniform(QuantSpec::new(4, 8));
        let g = gptq_quantize(&w, None, &cfg);
        let r = rtn_quantize(&w, &cfg);
        // With H = I there is no error propagation, so GPTQ == RTN.
        let gd = g.dequantize();
        let rd = r.dequantize();
        for (a, b) in gd.as_slice().iter().zip(rd.as_slice()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn gptq_beats_rtn_on_correlated_inputs() {
        let mut rng = SeededRng::new(5);
        // Strongly correlated activations: X = base + small noise.
        let base = rng.normal_matrix(1, 48, 0.0, 1.0);
        let mut x = Matrix::zeros(200, 48);
        for r in 0..200 {
            let coeff = rng.normal_f32(1.0, 0.5);
            for c in 0..48 {
                x[(r, c)] = base[(0, c)] * coeff + rng.normal_f32(0.0, 0.2);
            }
        }
        let w = rng.normal_matrix(16, 48, 0.0, 1.0);
        let gram = gram_of(&x);
        let cfg = GptqConfig::uniform(QuantSpec::new(3, 16));
        let gq = gptq_quantize(&w, Some(&gram), &cfg);
        let rq = rtn_quantize(&w, &cfg);
        let exact = x.matmul_nt(&w);
        let err_g = x.matmul_nt(&gq.dequantize()).sub(&exact).frob_norm();
        let err_r = x.matmul_nt(&rq.dequantize()).sub(&exact).frob_norm();
        assert!(
            err_g < err_r * 0.9,
            "GPTQ {err_g} should beat RTN {err_r} on correlated data"
        );
    }

    #[test]
    fn two_region_layout_shapes() {
        let mut rng = SeededRng::new(6);
        let w = rng.normal_matrix(4, 40, 0.0, 1.0);
        let cfg = GptqConfig {
            normal: QuantSpec::new(4, 8),
            outlier: Some(QuantSpec::new(8, 8)),
            n_outliers: 8,
            damp: 0.01,
        };
        let q = gptq_quantize(&w, None, &cfg);
        assert_eq!(q.normal.cols(), 32);
        assert_eq!(q.normal.spec().bits, 4);
        let o = q.outlier.as_ref().unwrap();
        assert_eq!(o.cols(), 8);
        assert_eq!(o.spec().bits, 8);
        assert_eq!(q.dequantize().shape(), (4, 40));
    }

    #[test]
    fn outlier_region_gets_higher_fidelity() {
        let mut rng = SeededRng::new(7);
        // Outlier columns (trailing 8) have 50x magnitude.
        let mut w = rng.normal_matrix(8, 32, 0.0, 1.0);
        for r in 0..8 {
            for c in 24..32 {
                w[(r, c)] *= 50.0;
            }
        }
        let cfg = GptqConfig {
            normal: QuantSpec::new(4, 8),
            outlier: Some(QuantSpec::new(8, 8)),
            n_outliers: 8,
            damp: 0.01,
        };
        let q = gptq_quantize(&w, None, &cfg);
        let d = q.dequantize();
        // Outlier region relative error should be much smaller than the
        // normal region's (8-bit vs 4-bit grids).
        let rel = |lo: usize, hi: usize| {
            let mut num = 0.0f64;
            let mut den = 0.0f64;
            for r in 0..8 {
                for c in lo..hi {
                    num += ((d[(r, c)] - w[(r, c)]) as f64).powi(2);
                    den += (w[(r, c)] as f64).powi(2);
                }
            }
            (num / den).sqrt()
        };
        assert!(rel(24, 32) < rel(0, 24) / 4.0);
    }

    #[test]
    fn dead_channels_are_frozen() {
        let mut rng = SeededRng::new(8);
        let w = rng.normal_matrix(4, 16, 0.0, 1.0);
        // Gram with two dead channels (rows/cols of zeros).
        let x = {
            let mut x = rng.normal_matrix(50, 16, 0.0, 1.0);
            for r in 0..50 {
                x[(r, 3)] = 0.0;
                x[(r, 10)] = 0.0;
            }
            x
        };
        let gram = gram_of(&x);
        let cfg = GptqConfig::uniform(QuantSpec::new(4, 16));
        let q = gptq_quantize(&w, Some(&gram), &cfg);
        let d = q.dequantize();
        for r in 0..4 {
            assert_eq!(d[(r, 3)], 0.0);
            assert_eq!(d[(r, 10)], 0.0);
        }
    }
}
