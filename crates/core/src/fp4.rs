//! FP4 (E2M1) quantization for the Table 4 data-format generality study.
//!
//! The paper shows Atom's recipe carries over to the FP4 format of upcoming
//! hardware (Blackwell, MX): "Atom (FP)" quantizes normal values to FP4
//! instead of INT4 and keeps the rest of the pipeline. E2M1 has 8 positive
//! magnitudes `{0, 0.5, 1, 1.5, 2, 3, 4, 6}`; a per-group FP16 scale maps
//! each group's maximum onto the top code, mirroring the MX shared-scale
//! idea.

use atom_nn::LinearLayer as _;
use atom_tensor::f16::round_f16;
use atom_tensor::Matrix;

/// The 8 non-negative magnitudes representable by FP4 E2M1.
pub const FP4_GRID: [f32; 8] = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0];

/// Snaps one value (already divided by the group scale) to the signed FP4
/// grid.
pub fn snap_fp4(v: f32) -> f32 {
    let mag = v.abs();
    let mut best = FP4_GRID[0];
    let mut best_d = f32::INFINITY;
    for &g in &FP4_GRID {
        let d = (mag - g).abs();
        if d < best_d {
            best_d = d;
            best = g;
        }
    }
    if v < 0.0 {
        -best
    } else {
        best
    }
}

/// Fake-quantizes `x` to FP4 with per-group scales: each group of `group`
/// elements in a row shares an FP16 scale chosen so the group maximum maps
/// to 6.0 (the top E2M1 code), shrunk by `clip`.
///
/// # Panics
///
/// Panics if `group == 0`.
pub fn fake_quantize_fp4(x: &Matrix, group: usize, clip: f32) -> Matrix {
    assert!(group > 0, "group must be positive");
    let (rows, cols) = x.shape();
    let group = group.min(cols.max(1));
    let mut out = Matrix::zeros(rows, cols);
    for r in 0..rows {
        let row = x.row(r);
        let dst = out.row_mut(r);
        let mut start = 0;
        while start < cols {
            let end = (start + group).min(cols);
            let amax = row[start..end].iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let mut s = amax * clip / 6.0;
            if s <= 0.0 {
                s = 1.0;
            }
            let s = round_f16(s).max(f32::MIN_POSITIVE);
            for c in start..end {
                dst[c] = snap_fp4(row[c] / s) * s;
            }
            start = end;
        }
    }
    out
}

/// Atom's layout executed in the FP4 data format ("Atom (FP)" in Table 4):
/// reorder, FP4 normal region with per-group scales, INT8 outlier region —
/// run through fake quantization (there is no integer FP4 pipeline to be
/// bit-exact against; new hardware executes this natively).
///
/// Weights are quantized offline with RTN on the FP4 grid (GPTQ's
/// grid-aware rounding for non-uniform grids is out of scope, as in the
/// paper's FP4 appendix setting).
#[derive(Debug, Clone)]
pub struct Fp4AtomLinear {
    plan: crate::calibrate::ReorderPlan,
    /// Reordered weight with the normal region snapped to FP4 and the
    /// outlier region snapped to INT8, stored dequantized.
    weight: Matrix,
    group: usize,
    act_clip: f32,
    in_features: usize,
    out_features: usize,
}

impl Fp4AtomLinear {
    /// Quantizes a dense layer into the FP4 Atom layout.
    ///
    /// # Panics
    ///
    /// Panics if the plan width disagrees with the layer.
    pub fn quantize(
        dense: &atom_nn::DenseLinear,
        plan: crate::calibrate::ReorderPlan,
        group: usize,
        weight_clip: f32,
        act_clip: f32,
    ) -> Self {
        let k = dense.in_features();
        assert_eq!(plan.channels(), k, "reorder plan width mismatch");
        let w = plan.reorder_weight(dense.weight());
        let k_normal = plan.n_normal();
        let w_n = fake_quantize_fp4(&w.slice_cols(0, k_normal), group, weight_clip);
        let weight = if k_normal < k {
            let w_o = atom_kernels::group::fake_quantize(
                &w.slice_cols(k_normal, k),
                atom_kernels::QuantSpec::new(8, group),
            );
            w_n.hstack(&w_o)
        } else {
            w_n
        };
        Fp4AtomLinear {
            plan,
            weight,
            group,
            act_clip,
            in_features: k,
            out_features: dense.out_features(),
        }
    }
}

impl atom_nn::LinearLayer for Fp4AtomLinear {
    fn forward(&self, x: &Matrix) -> Matrix {
        let xp = self.plan.reorder_activation(x);
        let k_normal = self.plan.n_normal();
        let x_n = fake_quantize_fp4(&xp.slice_cols(0, k_normal), self.group, self.act_clip);
        let xq = if k_normal < self.in_features {
            let x_o = atom_kernels::group::fake_quantize(
                &xp.slice_cols(k_normal, self.in_features),
                atom_kernels::QuantSpec::new(8, self.group),
            );
            x_n.hstack(&x_o)
        } else {
            x_n
        };
        xq.matmul_nt(&self.weight)
    }

    fn in_features(&self) -> usize {
        self.in_features
    }

    fn out_features(&self) -> usize {
        self.out_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_tensor::SeededRng;

    #[test]
    fn snap_hits_grid_points() {
        for &g in &FP4_GRID {
            assert_eq!(snap_fp4(g), g);
            assert_eq!(snap_fp4(-g), -g);
        }
        assert_eq!(snap_fp4(0.2), 0.0);
        assert_eq!(snap_fp4(0.3), 0.5);
        assert_eq!(snap_fp4(5.1), 6.0); // midpoint 5.0 belongs to 4 or 6; 5.1 -> 6
        assert_eq!(snap_fp4(-2.6), -3.0);
        assert_eq!(snap_fp4(100.0), 6.0);
    }

    #[test]
    fn group_max_is_representable() {
        let mut rng = SeededRng::new(1);
        let x = rng.normal_matrix(4, 32, 0.0, 2.0);
        let q = fake_quantize_fp4(&x, 8, 1.0);
        // The max of each group maps near itself (onto code 6 * scale).
        for r in 0..4 {
            for g in 0..4 {
                let (s, e) = (g * 8, (g + 1) * 8);
                let amax_idx = (s..e)
                    .max_by(|&a, &b| {
                        x[(r, a)].abs().partial_cmp(&x[(r, b)].abs()).unwrap()
                    })
                    .unwrap();
                let orig = x[(r, amax_idx)];
                let quant = q[(r, amax_idx)];
                assert!(
                    (orig - quant).abs() / orig.abs().max(1e-6) < 0.01,
                    "group max should be nearly exact: {orig} vs {quant}"
                );
            }
        }
    }

    #[test]
    fn fp4_error_comparable_to_int4() {
        // Paper Table 4: Atom (FP4) is close to Atom (INT4) — the grids
        // have similar representation capability.
        let mut rng = SeededRng::new(2);
        let x = rng.normal_matrix(16, 64, 0.0, 1.0);
        let fp4 = fake_quantize_fp4(&x, 16, 1.0).mse(&x);
        let int4 = atom_kernels::group::fake_quantize(
            &x,
            atom_kernels::QuantSpec::new(4, 16),
        )
        .mse(&x);
        let ratio = fp4 / int4;
        assert!(
            (0.3..3.0).contains(&ratio),
            "FP4 ({fp4}) and INT4 ({int4}) should be comparable"
        );
    }

    #[test]
    fn fp4_atom_linear_close_to_dense_with_outliers() {
        use atom_nn::{DenseLinear, LinearLayer};
        let mut rng = SeededRng::new(9);
        let dense = DenseLinear::new(rng.normal_matrix(12, 32, 0.0, 0.5));
        let mut x = rng.normal_matrix(6, 32, 0.0, 1.0);
        for r in 0..6 {
            x[(r, 7)] *= 50.0;
        }
        let plan = crate::calibrate::ReorderPlan::from_outlier_set(32, &[7]);
        let q = Fp4AtomLinear::quantize(&dense, plan, 16, 1.0, 1.0);
        let exact = dense.forward(&x);
        let rel = q.forward(&x).sub(&exact).frob_norm() / exact.frob_norm();
        assert!(rel < 0.15, "FP4 Atom linear error {rel}");
    }

    #[test]
    fn zeros_and_ragged_groups() {
        let x = Matrix::zeros(2, 10);
        assert_eq!(fake_quantize_fp4(&x, 4, 1.0), x);
        let mut rng = SeededRng::new(3);
        let y = rng.normal_matrix(2, 10, 0.0, 1.0);
        let q = fake_quantize_fp4(&y, 4, 1.0); // groups 4,4,2
        assert!(q.mse(&y) < 0.1);
    }
}
