//! Clipping-factor grid search (paper §5.1).
//!
//! "For clipping, we use a grid search to find optimal clipping factors 0.9
//! and 0.85 for activation and weight quantization" — this module is that
//! search as a first-class API. Given a linear layer and its calibration
//! sample, it evaluates a grid of `(clip_a, clip_w)` pairs by the output
//! MSE of the fake-quantized product and returns the argmin. The whole-
//! model defaults in [`crate::pipeline::AtomScheme`] were chosen with the
//! model-level variant of this search (see `clip_search` in the core
//! examples); this per-layer version is cheap enough to run inside a
//! quantization pipeline.

use crate::calibrate::LinearCalibration;
use atom_kernels::{group, QuantSpec};
use atom_nn::{DenseLinear, LinearLayer};

/// Result of one clipping grid search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClipChoice {
    /// Best activation clipping factor.
    pub clip_a: f32,
    /// Best weight clipping factor.
    pub clip_w: f32,
    /// Output MSE achieved at the optimum.
    pub mse: f64,
}

/// The default search grid (the paper searched a similar neighborhood).
pub const DEFAULT_GRID: [f32; 5] = [1.0, 0.97, 0.95, 0.9, 0.85];

/// Grid-searches clipping factors for one linear layer at the given bits
/// and group size, scoring each pair by `|| q(x) q(w)^T - x w^T ||^2` on
/// the calibration sample.
///
/// # Panics
///
/// Panics if the calibration sample is empty or its width disagrees with
/// the layer.
pub fn search_clips(
    dense: &DenseLinear,
    calib: &LinearCalibration,
    bits: u8,
    group_size: usize,
    grid: &[f32],
) -> ClipChoice {
    assert!(calib.sample.rows() > 0, "empty calibration sample");
    assert_eq!(
        calib.sample.cols(),
        dense.in_features(),
        "sample width mismatch"
    );
    assert!(!grid.is_empty(), "empty search grid");
    let exact = dense.forward(&calib.sample);
    let mut best = ClipChoice {
        clip_a: 1.0,
        clip_w: 1.0,
        mse: f64::INFINITY,
    };
    for &clip_w in grid {
        let wq = group::fake_quantize(
            dense.weight(),
            QuantSpec::new(bits, group_size).with_clip(clip_w),
        );
        for &clip_a in grid {
            let xq = group::fake_quantize(
                &calib.sample,
                QuantSpec::new(bits, group_size).with_clip(clip_a),
            );
            let mse = xq.matmul_nt(&wq).mse(&exact);
            if mse < best.mse {
                best = ClipChoice { clip_a, clip_w, mse };
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_tensor::stats::ChannelStats;
    use atom_tensor::{Matrix, SeededRng};

    fn calib_for(x: &Matrix) -> LinearCalibration {
        let mut stats = ChannelStats::new(x.cols());
        stats.update(x);
        LinearCalibration {
            stats,
            gram: None,
            gram_rows: 0,
            sample: x.clone(),
        }
    }

    #[test]
    fn search_returns_grid_member_with_finite_mse() {
        let mut rng = SeededRng::new(1);
        let dense = DenseLinear::new(rng.normal_matrix(8, 32, 0.0, 1.0));
        let x = rng.normal_matrix(16, 32, 0.0, 1.0);
        let choice = search_clips(&dense, &calib_for(&x), 4, 16, &DEFAULT_GRID);
        assert!(DEFAULT_GRID.contains(&choice.clip_a));
        assert!(DEFAULT_GRID.contains(&choice.clip_w));
        assert!(choice.mse.is_finite());
    }

    #[test]
    fn search_beats_or_matches_no_clipping() {
        let mut rng = SeededRng::new(2);
        let dense = DenseLinear::new(rng.normal_matrix(12, 64, 0.0, 1.0));
        let x = rng.normal_matrix(32, 64, 0.0, 1.0);
        let calib = calib_for(&x);
        let exact = dense.forward(&x);
        let choice = search_clips(&dense, &calib, 3, usize::MAX, &DEFAULT_GRID);
        // Unclipped per-channel 3-bit as the reference point.
        let wq = group::fake_quantize(dense.weight(), QuantSpec::new(3, usize::MAX));
        let xq = group::fake_quantize(&x, QuantSpec::new(3, usize::MAX));
        let unclipped_mse = xq.matmul_nt(&wq).mse(&exact);
        assert!(choice.mse <= unclipped_mse + 1e-12);
        // At 3 bits per-channel on Gaussian data, some clipping must win.
        assert!(
            choice.clip_a < 1.0 || choice.clip_w < 1.0,
            "expected clipping to pay at 3 bits: {choice:?}"
        );
    }

    #[test]
    fn fine_groups_prefer_weaker_clipping_than_per_channel() {
        // The observation behind our recipe change vs the paper: group 16
        // already tracks local ranges, so its optimal clip sits closer to
        // 1.0 than per-channel's.
        let mut rng = SeededRng::new(3);
        let dense = DenseLinear::new(rng.normal_matrix(16, 128, 0.0, 1.0));
        let x = rng.normal_matrix(64, 128, 0.0, 1.0);
        let calib = calib_for(&x);
        let fine = search_clips(&dense, &calib, 4, 16, &DEFAULT_GRID);
        let coarse = search_clips(&dense, &calib, 4, usize::MAX, &DEFAULT_GRID);
        let product = |c: &ClipChoice| c.clip_a * c.clip_w;
        assert!(
            product(&fine) >= product(&coarse),
            "fine {fine:?} should clip no harder than coarse {coarse:?}"
        );
    }

    #[test]
    #[should_panic(expected = "empty search grid")]
    fn empty_grid_panics() {
        let mut rng = SeededRng::new(4);
        let dense = DenseLinear::new(rng.normal_matrix(2, 8, 0.0, 1.0));
        let x = rng.normal_matrix(4, 8, 0.0, 1.0);
        search_clips(&dense, &calib_for(&x), 4, 8, &[]);
    }
}
