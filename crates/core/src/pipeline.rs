//! Whole-model quantization pipeline and scheme registry.
//!
//! This module turns a trained FP32 `LlamaModel<DenseLinear>` into a
//! runnable quantized model under any of the paper's schemes — Atom itself
//! (INT or FP4 format, W4A4/W3A3), and the baselines it is compared against
//! (RTN, SmoothQuant, OmniQuant-like clipped RTN, AWQ-style W4A16) — plus
//! the Table 3 ablation ladder. Every accuracy number in the reproduction's
//! tables comes through [`Scheme::quantize`] followed by the evaluation
//! helpers on [`QuantizedModel`].

use crate::baselines::FakeQuantLinear;
use crate::calibrate::{Calibration, ReorderPlan};
use crate::fp4::Fp4AtomLinear;
use crate::kv::QuantizedKvCache;
use crate::qlinear::{AtomLinearConfig, OutlierMode, QuantizedLinear};
use atom_data::{TaskSuite, Tokenizer};
use atom_kernels::QuantSpec;
use atom_nn::kv::Fp32KvCache;
use atom_nn::model::LinearId;
use atom_nn::{eval, DenseLinear, KvStore, LinearLayer, LlamaModel};
use atom_tensor::Matrix;

/// Numeric format of Atom's normal (low-bit) region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataFormat {
    /// Signed integers (INT4/INT3) on the bit-exact kernel path.
    Int,
    /// FP4 E2M1 through fake quantization (Table 4 "Atom (FP)").
    Fp4,
}

/// Full Atom scheme configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomScheme {
    /// Bit width of the normal region (4 or 3 in the paper).
    pub bits: u8,
    /// Activation bit width of the normal region; usually equal to `bits`
    /// (the paper's W4A4/W3A3), but e.g. 8 gives the W4A8 operating point
    /// later systems (QServe) build on.
    pub act_bits: u8,
    /// Group size (128 in the paper at 4096 channels; 16 here, the same
    /// 1/256 fraction of the channel dimension — see DESIGN.md).
    pub group: usize,
    /// Fraction of channels kept as outliers (128/4096 = 3.1% in the
    /// paper).
    pub outlier_frac: f64,
    /// Lower bound on outlier channels per linear.
    pub min_outliers: usize,
    /// Outlier handling.
    pub outlier_mode: OutlierMode,
    /// Clipping factor for weights (paper's grid search found 0.85 at
    /// group 128 / 4096 channels; ours finds 0.97 at group 16 — smaller
    /// groups track local ranges already, leaving almost no tail to clip).
    pub clip_w: f32,
    /// Clipping factor for activations (paper: 0.9; our grid search finds
    /// clipping activations does not pay at group 16, so 1.0).
    pub clip_a: f32,
    /// Whether weights go through GPTQ.
    pub use_gptq: bool,
    /// KV-cache quantization bits (`None` keeps the FP16 cache).
    pub kv_bits: Option<u8>,
    /// Normal-region number format.
    pub format: DataFormat,
}

impl AtomScheme {
    /// The paper's full W4A4 recipe.
    pub fn w4a4() -> Self {
        AtomScheme {
            bits: 4,
            act_bits: 4,
            group: 16,
            outlier_frac: 1.0 / 12.0,
            min_outliers: 6,
            outlier_mode: OutlierMode::Int8,
            clip_w: 0.97,
            clip_a: 1.0,
            use_gptq: true,
            kv_bits: Some(4),
            format: DataFormat::Int,
        }
    }

    /// The paper's W3A3 recipe (KV stays INT4, as 3-bit KV is not
    /// evaluated in the paper).
    pub fn w3a3() -> Self {
        AtomScheme {
            bits: 3,
            act_bits: 3,
            ..AtomScheme::w4a4()
        }
    }

    /// W4A8: 4-bit weights with 8-bit activations — the operating point the
    /// paper's INT8-activation related work (and follow-on systems) target.
    /// KV stays INT8 to match the activation precision.
    pub fn w4a8() -> Self {
        AtomScheme {
            bits: 4,
            act_bits: 8,
            kv_bits: Some(8),
            ..AtomScheme::w4a4()
        }
    }

    /// W4A4 in the FP4 data format (Table 4 "Atom (FP)").
    pub fn fp4() -> Self {
        AtomScheme {
            format: DataFormat::Fp4,
            ..AtomScheme::w4a4()
        }
    }

    /// Outlier count for a linear with `k` input channels.
    pub fn outliers_for(&self, k: usize) -> usize {
        if self.outlier_mode == OutlierMode::None {
            return 0;
        }
        ((k as f64 * self.outlier_frac) as usize)
            .max(self.min_outliers)
            .min(k / 2)
    }
}

/// A quantization scheme: Atom or one of the paper's baselines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// Unquantized baseline (FP16 in the paper; FP32 weights here with the
    /// same role).
    Fp16,
    /// Round-to-nearest: per-channel weights, per-token activations.
    Rtn {
        /// Weight bits.
        w_bits: u8,
        /// Activation bits.
        a_bits: u8,
    },
    /// SmoothQuant with per-linear alpha grid search.
    SmoothQuant {
        /// Weight bits.
        w_bits: u8,
        /// Activation bits.
        a_bits: u8,
    },
    /// OmniQuant-like: RTN with tuned clipping factors.
    OmniQuantLike {
        /// Weight bits.
        w_bits: u8,
        /// Activation bits.
        a_bits: u8,
    },
    /// AWQ-style weight-only quantization (activations FP16).
    WeightOnly {
        /// Weight bits.
        w_bits: u8,
        /// Weight group size.
        group: usize,
    },
    /// Atom.
    Atom(AtomScheme),
}

impl Scheme {
    /// Display label used in table output.
    pub fn label(&self) -> String {
        match self {
            Scheme::Fp16 => "FP16".into(),
            Scheme::Rtn { w_bits, a_bits } => format!("RTN W{w_bits}A{a_bits}"),
            Scheme::SmoothQuant { w_bits, a_bits } => format!("SmoothQuant W{w_bits}A{a_bits}"),
            Scheme::OmniQuantLike { w_bits, a_bits } => format!("OmniQuant* W{w_bits}A{a_bits}"),
            Scheme::WeightOnly { w_bits, .. } => format!("AWQ* W{w_bits}A16"),
            Scheme::Atom(a) => match a.format {
                DataFormat::Int => format!("Atom W{}A{}", a.bits, a.act_bits),
                DataFormat::Fp4 => "Atom (FP4)".into(),
            },
        }
    }

    /// Whether this scheme needs GPTQ's Gram matrices at calibration time.
    pub fn needs_gram(&self) -> bool {
        matches!(self, Scheme::Atom(a) if a.use_gptq)
    }

    /// Quantizes a dense model under this scheme.
    ///
    /// # Panics
    ///
    /// Panics if the calibration is missing data the scheme requires (e.g.
    /// Gram matrices for GPTQ).
    pub fn quantize(&self, model: &LlamaModel<DenseLinear>, calib: &Calibration) -> QuantizedModel {
        let scheme = *self;
        let kv_bits = match scheme {
            Scheme::Atom(a) => a.kv_bits,
            _ => None,
        };
        let quantized = model.clone().map_linears(|id, dense| {
            quantize_one(&scheme, id, dense, calib)
        });
        QuantizedModel {
            model: quantized,
            kv_bits,
        }
    }
}

fn quantize_one(
    scheme: &Scheme,
    id: LinearId,
    dense: DenseLinear,
    calib: &Calibration,
) -> AnyLinear {
    match scheme {
        Scheme::Fp16 => AnyLinear::Dense(dense),
        Scheme::Rtn { w_bits, a_bits } => {
            AnyLinear::Fake(FakeQuantLinear::rtn(&dense, *w_bits, *a_bits))
        }
        Scheme::OmniQuantLike { w_bits, a_bits } => {
            let lc = calib
                .linear(id)
                .unwrap_or_else(|| panic!("no calibration for {id}"));
            AnyLinear::Fake(FakeQuantLinear::omniquant_like(&dense, lc, *w_bits, *a_bits))
        }
        Scheme::SmoothQuant { w_bits, a_bits } => {
            let lc = calib
                .linear(id)
                .unwrap_or_else(|| panic!("no calibration for {id}"));
            let (layer, _) = FakeQuantLinear::smoothquant_search(&dense, lc, *w_bits, *a_bits);
            AnyLinear::Fake(layer)
        }
        Scheme::WeightOnly { w_bits, group } => {
            let lc = calib
                .linear(id)
                .unwrap_or_else(|| panic!("no calibration for {id}"));
            AnyLinear::Fake(FakeQuantLinear::weight_only_awq(
                &dense, lc, 0.3, *w_bits, *group,
            ))
        }
        Scheme::Atom(a) => {
            let lc = calib
                .linear(id)
                .unwrap_or_else(|| panic!("no calibration for {id}"));
            let k = dense.in_features();
            let n_outliers = a.outliers_for(k);
            let plan = if a.outlier_mode == OutlierMode::None {
                ReorderPlan::identity(k)
            } else {
                ReorderPlan::from_stats(&lc.stats, n_outliers)
            };
            match a.format {
                DataFormat::Fp4 => AnyLinear::Fp4(Fp4AtomLinear::quantize(
                    &dense, plan, a.group, a.clip_w, a.clip_a,
                )),
                DataFormat::Int => {
                    let cfg = AtomLinearConfig {
                        weight: QuantSpec::new(a.bits, a.group).with_clip(a.clip_w),
                        act: QuantSpec::new(a.act_bits, a.group).with_clip(a.clip_a),
                        n_outliers,
                        outlier_mode: a.outlier_mode,
                        use_gptq: a.use_gptq,
                    };
                    AnyLinear::Atom(QuantizedLinear::quantize(
                        &dense,
                        plan,
                        lc.gram.as_deref(),
                        &cfg,
                    ))
                }
            }
        }
    }
}

/// Linear-layer sum type produced by the pipeline.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // a model holds few of these; boxing would
                                     // complicate the hot forward path
pub enum AnyLinear {
    /// Unquantized dense layer.
    Dense(DenseLinear),
    /// Atom's bit-exact integer path.
    Atom(QuantizedLinear),
    /// Fake-quantized baseline path.
    Fake(FakeQuantLinear),
    /// Atom's FP4 path.
    Fp4(Fp4AtomLinear),
}

impl LinearLayer for AnyLinear {
    fn forward(&self, x: &Matrix) -> Matrix {
        match self {
            AnyLinear::Dense(l) => l.forward(x),
            AnyLinear::Atom(l) => l.forward(x),
            AnyLinear::Fake(l) => l.forward(x),
            AnyLinear::Fp4(l) => l.forward(x),
        }
    }

    fn in_features(&self) -> usize {
        match self {
            AnyLinear::Dense(l) => l.in_features(),
            AnyLinear::Atom(l) => l.in_features(),
            AnyLinear::Fake(l) => l.in_features(),
            AnyLinear::Fp4(l) => l.in_features(),
        }
    }

    fn out_features(&self) -> usize {
        match self {
            AnyLinear::Dense(l) => l.out_features(),
            AnyLinear::Atom(l) => l.out_features(),
            AnyLinear::Fake(l) => l.out_features(),
            AnyLinear::Fp4(l) => l.out_features(),
        }
    }
}

/// A quantized model together with its KV-cache precision.
#[derive(Debug)]
pub struct QuantizedModel {
    /// The model with quantized linears.
    pub model: LlamaModel<AnyLinear>,
    /// KV-cache bits; `None` keeps the full-precision cache.
    pub kv_bits: Option<u8>,
}

impl QuantizedModel {
    /// Creates a KV cache of the configured precision.
    pub fn new_cache(&self) -> Box<dyn KvStore> {
        let c = self.model.config();
        match self.kv_bits {
            Some(bits) => Box::new(QuantizedKvCache::new(
                c.layers,
                c.kv_dim(),
                c.head_dim(),
                bits,
            )),
            None => Box::new(Fp32KvCache::new(c.layers, c.kv_dim())),
        }
    }

    /// Perplexity of a token stream under this model (KV precision
    /// included).
    pub fn perplexity(&self, tokens: &[u16], window: usize) -> f64 {
        eval::perplexity_with_cache(&self.model, tokens, window, &mut || self.new_cache())
    }

    /// Zero-shot accuracy row (per-kind accuracies and average).
    pub fn zero_shot(&self, suite: &TaskSuite, tokenizer: &Tokenizer) -> (Vec<f64>, f64) {
        eval::zero_shot_row_with_cache(&self.model, suite, tokenizer, &mut || self.new_cache())
    }
}

/// One rung of the Table 3 ablation ladder.
#[derive(Debug, Clone)]
pub struct AblationStage {
    /// Row label matching the paper's Table 3.
    pub label: &'static str,
    /// Scheme for this rung.
    pub scheme: Scheme,
}

/// The Table 3 ablation ladder: start from W4A4 RTN and add Atom's
/// techniques one at a time.
pub fn ablation_stages() -> Vec<AblationStage> {
    let coarse = |mode, group, clip_w: f32, clip_a: f32, gptq, kv| {
        Scheme::Atom(AtomScheme {
            bits: 4,
            act_bits: 4,
            group,
            outlier_frac: 1.0 / 12.0,
            min_outliers: 6,
            outlier_mode: mode,
            clip_w,
            clip_a,
            use_gptq: gptq,
            kv_bits: kv,
            format: DataFormat::Int,
        })
    };
    vec![
        AblationStage {
            label: "W4A4 RTN",
            scheme: Scheme::Rtn {
                w_bits: 4,
                a_bits: 4,
            },
        },
        AblationStage {
            label: "+ Keeping outliers in FP16",
            scheme: coarse(OutlierMode::Fp16, usize::MAX, 1.0, 1.0, false, None),
        },
        AblationStage {
            label: "+ Quantizing outliers to INT8",
            scheme: coarse(OutlierMode::Int8, usize::MAX, 1.0, 1.0, false, None),
        },
        AblationStage {
            label: "+ Group size 16",
            scheme: coarse(OutlierMode::Int8, 16, 1.0, 1.0, false, None),
        },
        AblationStage {
            label: "+ Clipping",
            scheme: coarse(OutlierMode::Int8, 16, 0.97, 1.0, false, None),
        },
        AblationStage {
            label: "+ GPTQ",
            scheme: coarse(OutlierMode::Int8, 16, 0.97, 1.0, true, None),
        },
        AblationStage {
            label: "+ Quantizing KV-cache to INT4",
            scheme: coarse(OutlierMode::Int8, 16, 0.97, 1.0, true, Some(4)),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_nn::ModelConfig;

    /// A *trained* micro model (repeating-motif language) with injected
    /// outliers: quantization quality is only observable against weights
    /// that encode real structure, so the tests train for a couple of
    /// seconds rather than using random weights whose perplexity is chance
    /// either way.
    fn tiny_setup() -> (LlamaModel<DenseLinear>, Calibration, Vec<u16>) {
        use std::sync::OnceLock;
        static SETUP: OnceLock<(LlamaModel<DenseLinear>, Vec<u16>)> = OnceLock::new();
        let (model, tokens) = SETUP.get_or_init(|| {
            let config = ModelConfig {
                dim: 32,
                layers: 1,
                heads: 4,
                kv_heads: 4,
                ffn_dim: 48,
                max_seq_len: 64,
                ..ModelConfig::default()
            };
            let motif = [1u16, 7, 3, 9, 42, 5, 11, 2, 30, 77];
            let tokens: Vec<u16> = (0..800).map(|i| motif[i % motif.len()]).collect();
            let spec = atom_nn::train::TrainSpec {
                steps: 50,
                batch: 2,
                seq_len: 40,
                lr: 5e-3,
                warmup: 5,
                ..atom_nn::train::TrainSpec::default()
            };
            let (mut model, _) = atom_nn::train::train(config, &tokens, spec);
            atom_nn::transform::inject_outliers(
                &mut model,
                &atom_nn::transform::OutlierSpec {
                    channels_per_site: 2,
                    magnitude: 30.0,
                    value_magnitude: 4.0,
                    spread: 0.2,
                    seed: 1,
                },
            );
            (model, tokens)
        });
        let seqs: Vec<Vec<u16>> = (0..6)
            .map(|s| tokens[s * 40..s * 40 + 32].to_vec())
            .collect();
        let calib = Calibration::collect(model, &seqs, true, 1);
        (model.clone(), calib, tokens[..200].to_vec())
    }

    #[test]
    fn every_scheme_quantizes_and_runs() {
        let (model, calib, tokens) = tiny_setup();
        let schemes = [
            Scheme::Fp16,
            Scheme::Rtn {
                w_bits: 4,
                a_bits: 4,
            },
            Scheme::SmoothQuant {
                w_bits: 8,
                a_bits: 8,
            },
            Scheme::OmniQuantLike {
                w_bits: 4,
                a_bits: 4,
            },
            Scheme::WeightOnly { w_bits: 4, group: 16 },
            Scheme::Atom(AtomScheme::w4a4()),
            Scheme::Atom(AtomScheme::w3a3()),
            Scheme::Atom(AtomScheme::fp4()),
        ];
        for scheme in schemes {
            let q = scheme.quantize(&model, &calib);
            let ppl = q.perplexity(&tokens, 40);
            assert!(
                ppl.is_finite() && ppl > 1.0,
                "{} produced ppl {ppl}",
                scheme.label()
            );
        }
    }

    #[test]
    fn fp16_scheme_is_identity() {
        let (model, calib, tokens) = tiny_setup();
        let q = Scheme::Fp16.quantize(&model, &calib);
        let ppl_q = q.perplexity(&tokens, 40);
        let ppl_ref = eval::perplexity(&model, &tokens, 40);
        assert!((ppl_q - ppl_ref).abs() < 1e-9);
    }

    #[test]
    fn atom_beats_rtn_on_outlier_model() {
        let (model, calib, tokens) = tiny_setup();
        let ppl_ref = eval::perplexity(&model, &tokens, 40);
        let ppl_rtn = Scheme::Rtn {
            w_bits: 4,
            a_bits: 4,
        }
        .quantize(&model, &calib)
        .perplexity(&tokens, 40);
        let ppl_atom = Scheme::Atom(AtomScheme::w4a4())
            .quantize(&model, &calib)
            .perplexity(&tokens, 40);
        assert!(
            ppl_atom < ppl_rtn / 2.0,
            "Atom ({ppl_atom}) should beat RTN ({ppl_rtn}); ref {ppl_ref}"
        );
        // Atom stays within a modest factor of the trained reference.
        assert!(ppl_atom < ppl_ref * 2.0, "atom {ppl_atom} vs ref {ppl_ref}");
    }

    #[test]
    fn ablation_ladder_has_paper_rows() {
        let stages = ablation_stages();
        assert_eq!(stages.len(), 7);
        assert_eq!(stages[0].label, "W4A4 RTN");
        assert!(stages[6].label.contains("KV-cache"));
        // Last stage is the full recipe with KV quant.
        match stages[6].scheme {
            Scheme::Atom(a) => {
                assert_eq!(a.kv_bits, Some(4));
                assert!(a.use_gptq);
            }
            _ => panic!("last stage must be Atom"),
        }
    }

    #[test]
    fn ablation_stages_all_run() {
        let (model, calib, tokens) = tiny_setup();
        let mut ppls = Vec::new();
        for stage in ablation_stages() {
            let ppl = stage.scheme.quantize(&model, &calib).perplexity(&tokens, 40);
            assert!(ppl.is_finite(), "{} diverged", stage.label);
            ppls.push(ppl);
        }
        // The headline shape: adding outlier handling to RTN helps hugely,
        // and the full recipe lands far below plain RTN.
        assert!(ppls[1] < ppls[0] / 2.0, "outliers should help: {ppls:?}");
        assert!(ppls[6] < ppls[0] / 2.0, "full recipe should help: {ppls:?}");
    }

    #[test]
    fn kv_bits_selects_cache_type() {
        let (model, calib, _) = tiny_setup();
        let atom = Scheme::Atom(AtomScheme::w4a4()).quantize(&model, &calib);
        assert_eq!(atom.kv_bits, Some(4));
        let rtn = Scheme::Rtn {
            w_bits: 8,
            a_bits: 8,
        }
        .quantize(&model, &calib);
        assert_eq!(rtn.kv_bits, None);
    }

    #[test]
    fn w4a8_scheme_runs_and_labels() {
        let (model, calib, tokens) = tiny_setup();
        let scheme = Scheme::Atom(AtomScheme::w4a8());
        assert_eq!(scheme.label(), "Atom W4A8");
        let q = scheme.quantize(&model, &calib);
        assert_eq!(q.kv_bits, Some(8));
        let p48 = q.perplexity(&tokens, 40);
        let p44 = Scheme::Atom(AtomScheme::w4a4())
            .quantize(&model, &calib)
            .perplexity(&tokens, 40);
        assert!(p48.is_finite());
        // 8-bit activations cannot be (meaningfully) worse than 4-bit.
        assert!(p48 <= p44 * 1.1, "W4A8 {p48} vs W4A4 {p44}");
    }

    #[test]
    fn outlier_count_scaling() {
        let a = AtomScheme::w4a4();
        assert_eq!(a.outliers_for(48), 6);
        assert_eq!(a.outliers_for(96), 8);
        assert_eq!(a.outliers_for(384), 32);
        assert_eq!(AtomScheme { outlier_mode: OutlierMode::None, ..a }.outliers_for(96), 0);
    }
}
