//! MX (microscaling) data format — the §6 outlook.
//!
//! The paper closes by noting that "group quantization with the MX format
//! is supported by NVIDIA Blackwell GPUs. We expect this hardware feature
//! can mitigate the group quantization overhead of Atom" (§5.4.2's
//! 900→770 TOPS fusion cost). This module implements the OCP MX idea that
//! makes that possible: instead of an arbitrary FP16 scale per group, MX
//! uses a *power-of-two* shared scale (E8M0) per fixed group of 32
//! elements, so dequantization is an exponent add the tensor core applies
//! in-pipe rather than a CUDA-core FMA epilogue.
//!
//! [`fake_quantize_mxfp4`] is the MXFP4 codec (FP4 E2M1 payload, E8M0
//! scale); the `ablation_mx` bench binary models the §6 expectation on a
//! Blackwell-like profile by removing the group-fusion efficiency penalty.

use crate::fp4::snap_fp4;
use atom_tensor::Matrix;

/// The MX specification's fixed group size.
pub const MX_GROUP: usize = 32;

/// Snaps a positive scale to the nearest power of two at or above
/// `value / 6` such that the group maximum stays representable (E2M1's top
/// code is 6.0). Returns the exponent-scale as an `f32`.
///
/// E8M0 has no mantissa: the scale is exactly `2^e` for an 8-bit biased
/// exponent, so dequantization is an exponent addition.
pub fn e8m0_scale_for(amax: f32) -> f32 {
    if amax <= 0.0 {
        return 1.0;
    }
    // Smallest power of two >= amax / 6 keeps the max inside the grid.
    let target = amax / 6.0;
    let e = target.log2().ceil();
    // E8M0 exponent range mirrors f32's.
    2.0f32.powi(e.clamp(-126.0, 127.0) as i32)
}

/// Fake-quantizes `x` to MXFP4: FP4 E2M1 payloads with one shared E8M0
/// power-of-two scale per group of [`MX_GROUP`] elements (ragged final
/// group allowed).
pub fn fake_quantize_mxfp4(x: &Matrix) -> Matrix {
    let (rows, cols) = x.shape();
    let mut out = Matrix::zeros(rows, cols);
    for r in 0..rows {
        let row = x.row(r);
        let dst = out.row_mut(r);
        let mut start = 0;
        while start < cols {
            let end = (start + MX_GROUP).min(cols);
            let amax = row[start..end].iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let s = e8m0_scale_for(amax);
            for c in start..end {
                dst[c] = snap_fp4(row[c] / s) * s;
            }
            start = end;
        }
    }
    out
}

/// Effective bits per element of MXFP4: a 4-bit payload plus one 8-bit
/// shared scale per 32 elements = 4.25 bits — identical to Atom's INT4 +
/// FP16-scale-per-128 accounting, which is why the paper expects MX to be a
/// drop-in efficiency win.
pub fn mxfp4_effective_bits() -> f64 {
    4.0 + 8.0 / MX_GROUP as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_tensor::SeededRng;

    #[test]
    fn scales_are_powers_of_two() {
        for amax in [0.01f32, 0.5, 1.0, 5.9, 6.0, 6.1, 100.0, 1e4] {
            let s = e8m0_scale_for(amax);
            assert!(s > 0.0);
            let e = s.log2();
            assert!((e - e.round()).abs() < 1e-6, "scale {s} not a power of two");
            // The group max must stay representable: amax/s <= 6.
            assert!(amax / s <= 6.0 + 1e-4, "amax {amax} overflows at scale {s}");
        }
        assert_eq!(e8m0_scale_for(0.0), 1.0);
    }

    #[test]
    fn mxfp4_roundtrip_quality_near_fp16_scaled_fp4() {
        // The power-of-two scale restriction costs at most one binade of
        // headroom (a factor <= 2 on the scale), so MXFP4 error is within
        // ~2x of the FP16-scaled FP4 path.
        let mut rng = SeededRng::new(1);
        let x = rng.normal_matrix(8, 128, 0.0, 1.5);
        let mx = fake_quantize_mxfp4(&x).mse(&x);
        let fp = crate::fp4::fake_quantize_fp4(&x, MX_GROUP, 1.0).mse(&x);
        assert!(mx < fp * 4.0, "mx {mx} vs fp4 {fp}");
        assert!(mx > 0.0);
    }

    #[test]
    fn values_land_on_scaled_grid() {
        let mut rng = SeededRng::new(2);
        let x = rng.normal_matrix(2, 64, 0.0, 3.0);
        let q = fake_quantize_mxfp4(&x);
        for r in 0..2 {
            for g in 0..2 {
                let (s_col, e_col) = (g * 32, (g + 1) * 32);
                let amax = x.row(r)[s_col..e_col]
                    .iter()
                    .fold(0.0f32, |m, &v| m.max(v.abs()));
                let s = e8m0_scale_for(amax);
                for c in s_col..e_col {
                    let code = q[(r, c)] / s;
                    assert_eq!(snap_fp4(code), code, "off grid at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn effective_bits_match_paper_accounting() {
        assert!((mxfp4_effective_bits() - 4.25).abs() < 1e-12);
    }

}
