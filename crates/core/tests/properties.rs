//! Property-based tests of the core quantization algorithms.

use atom::calibrate::ReorderPlan;
use atom::fp4::{fake_quantize_fp4, snap_fp4, FP4_GRID};
use atom::gptq::{gptq_quantize, rtn_quantize, GptqConfig};
use atom_kernels::QuantSpec;
use atom_tensor::SeededRng;
use proptest::prelude::*;

proptest! {
    #[test]
    fn reorder_plan_is_permutation(channels in 2usize..64, n_out in 0usize..8, seed in 0u64..500) {
        let n_out = n_out.min(channels);
        let mut rng = SeededRng::new(seed);
        let outliers = rng.sample_indices(channels, n_out);
        let plan = ReorderPlan::from_outlier_set(channels, &outliers);
        let mut seen = plan.perm().to_vec();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..channels).collect::<Vec<_>>());
        prop_assert_eq!(plan.n_outliers(), n_out);
        // The trailing positions carry exactly the outlier set (in order).
        prop_assert_eq!(&plan.perm()[channels - n_out..], &outliers[..]);
    }

    #[test]
    fn reorder_preserves_matmul(seed in 0u64..300, k in 4usize..24, n_out in 0usize..4) {
        let n_out = n_out.min(k / 2);
        let mut rng = SeededRng::new(seed);
        let outliers = rng.sample_indices(k, n_out);
        let plan = ReorderPlan::from_outlier_set(k, &outliers);
        let x = rng.normal_matrix(3, k, 0.0, 1.0);
        let w = rng.normal_matrix(5, k, 0.0, 1.0);
        let before = x.matmul_nt(&w);
        let after = plan.reorder_activation(&x).matmul_nt(&plan.reorder_weight(&w));
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn inverse_perm_roundtrips(channels in 2usize..32, seed in 0u64..200) {
        let mut rng = SeededRng::new(seed);
        let n_out = rng.below(channels / 2 + 1);
        let outliers = rng.sample_indices(channels, n_out);
        let plan = ReorderPlan::from_outlier_set(channels, &outliers);
        let x = rng.normal_matrix(2, channels, 0.0, 1.0);
        let round = plan.reorder_activation(&x).permute_cols(&plan.inverse());
        prop_assert_eq!(round, x);
    }

    #[test]
    fn gptq_identity_gram_equals_rtn(seed in 0u64..200, n in 1usize..8, k in 4usize..32) {
        let mut rng = SeededRng::new(seed);
        let w = rng.normal_matrix(n, k, 0.0, 1.0);
        let cfg = GptqConfig::uniform(QuantSpec::new(4, 8));
        let g = gptq_quantize(&w, None, &cfg).dequantize();
        let r = rtn_quantize(&w, &cfg).dequantize();
        for (a, b) in g.as_slice().iter().zip(r.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn gptq_quantized_values_on_grid(seed in 0u64..100) {
        // Every dequantized weight must be an integer multiple of its
        // group's scale.
        let mut rng = SeededRng::new(seed);
        let w = rng.normal_matrix(4, 16, 0.0, 1.0);
        let x = rng.normal_matrix(64, 16, 0.0, 1.0);
        let mut gram = vec![0.0f64; 16 * 16];
        for r in 0..x.rows() {
            let row = x.row(r);
            for i in 0..16 {
                for j in 0..16 {
                    gram[i * 16 + j] += row[i] as f64 * row[j] as f64;
                }
            }
        }
        let cfg = GptqConfig::uniform(QuantSpec::new(4, 8));
        let q = gptq_quantize(&w, Some(&gram), &cfg);
        let d = q.normal.dequantize();
        for r in 0..4 {
            for c in 0..16 {
                let s = q.normal.scales()[(r, c / 8)];
                let ratio = d[(r, c)] / s;
                prop_assert!((ratio - ratio.round()).abs() < 1e-3, "off grid: {ratio}");
                prop_assert!((-8.0..=7.0).contains(&ratio.round()));
            }
        }
    }

    #[test]
    fn fp4_snap_is_idempotent_and_nearest(v in -20.0f32..20.0) {
        let s = snap_fp4(v);
        prop_assert_eq!(snap_fp4(s), s);
        // s must be the nearest grid point (ties allowed either way).
        let best = FP4_GRID
            .iter()
            .map(|&g| (v.abs() - g).abs())
            .fold(f32::INFINITY, f32::min);
        prop_assert!(((v.abs() - s.abs()).abs() - best).abs() < 1e-6);
        prop_assert_eq!(s < 0.0, v < 0.0 && s != 0.0);
    }

    #[test]
    fn fp4_group_error_bounded(seed in 0u64..200, cols in 4usize..32) {
        let mut rng = SeededRng::new(seed);
        let x = rng.normal_matrix(3, cols, 0.0, 2.0);
        let q = fake_quantize_fp4(&x, 8, 1.0);
        // FP4 with a per-group max-to-6 scale: the largest grid gap is 2.0
        // (between codes 4 and 6), so the worst-case error is half that gap
        // times the scale, i.e. amax * (2/2) / 6 = amax / 6.
        for r in 0..x.rows() {
            for c in 0..cols {
                let group_start = (c / 8) * 8;
                let group_end = (group_start + 8).min(cols);
                let amax = x.row(r)[group_start..group_end]
                    .iter()
                    .fold(0.0f32, |m, &v| m.max(v.abs()));
                let err = (x[(r, c)] - q[(r, c)]).abs();
                prop_assert!(err <= amax / 6.0 + amax * 2e-3 + 1e-6, "err {err} amax {amax}");
            }
        }
    }
}
