//! Probes the Large zoo model with hand-picked task-style prompts and
//! prints per-option likelihoods — a quick check that the lexicon facts
//! were absorbed during training.
use atom_nn::{eval, zoo};
use atom_data::Tokenizer;

fn main() {
    let model = zoo::trained(zoo::ZooId::Large);
    let tok = Tokenizer::new();
    for (prompt, opts) in [
        ("the robin is a", vec![" bird .", " fish .", " tool ."]),
        ("the hammer is a", vec![" tool .", " bird .", " vessel ."]),
        ("the lighthouse is a", vec![" building .", " fish .", " mammal ."]),
        ("is the robin a bird ?", vec![" yes .", " no ."]),
        ("is the robin a fish ?", vec![" yes .", " no ."]),
        ("to strike a nail , use the", vec![" hammer .", " violin .", " ferry ."]),
        ("one wolf howls while two wolfs", vec![" howl .", " howls ."]),
    ] {
        let p = tok.encode(prompt);
        print!("{prompt:35}");
        for o in &opts {
            let lp = eval::continuation_logprob(&model, &p, &tok.encode(o));
            print!("  {o:?}={lp:.3}");
        }
        println!();
    }
}
