//! Prints validation perplexity of every zoo model on the three corpora.
use atom_data::CorpusStyle;
use atom_nn::{eval, zoo};

fn main() {
    for id in zoo::ZooId::all() {
        let model = zoo::trained(id);
        print!("{:8}", id.label());
        for style in CorpusStyle::all() {
            let toks = zoo::validation_tokens(style);
            let ppl = eval::perplexity(&model, &toks[..toks.len().min(3000)], 96);
            print!("  {}={:.3}", style, ppl);
        }
        println!();
    }
}
