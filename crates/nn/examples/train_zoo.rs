//! Trains (or loads) every zoo model and reports parameter counts and
//! wall-clock training time. Run this once to warm the model cache.
fn main() {
    let t0 = std::time::Instant::now();
    for id in atom_nn::zoo::ZooId::all() {
        let t = std::time::Instant::now();
        let m = atom_nn::zoo::trained(id);
        println!("{}: params={} trained in {:.1}s", id, m.config().param_count(), t.elapsed().as_secs_f64());
    }
    println!("total {:.1}s", t0.elapsed().as_secs_f64());
}
