//! Model quality metrics: perplexity, zero-shot task accuracy, generation.
//!
//! All functions are generic over the linear precision `L`, so the same code
//! scores the FP32 reference model and every quantized variant — Tables 1
//! and 2 of the paper are produced by calling these with different `L`.

use crate::kv::{Fp32KvCache, KvStore};
use crate::linear::LinearLayer;
use crate::model::LlamaModel;
use atom_data::{TaskKind, TaskSuite, Tokenizer};
use atom_tensor::cast;
use atom_tensor::{ops, SeededRng};

/// Computes perplexity (e^mean-NLL) of a token stream under the model.
///
/// The stream is scored in non-overlapping windows of `window` tokens with a
/// fresh KV cache per window, matching the standard fixed-context perplexity
/// protocol.
///
/// # Panics
///
/// Panics if `window < 2` or `tokens.len() < window`.
pub fn perplexity<L: LinearLayer>(model: &LlamaModel<L>, tokens: &[u16], window: usize) -> f64 {
    let config = *model.config();
    perplexity_with_cache(model, tokens, window, &mut || {
        Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))
    })
}

/// [`perplexity`] with a caller-supplied KV-cache factory, so quantized
/// caches (paper §4.4) evaluate through the identical protocol.
///
/// # Panics
///
/// Panics if `window < 2` or `tokens.len() < window`.
pub fn perplexity_with_cache<L: LinearLayer>(
    model: &LlamaModel<L>,
    tokens: &[u16],
    window: usize,
    new_cache: &mut dyn FnMut() -> Box<dyn KvStore>,
) -> f64 {
    assert!(window >= 2, "window must be at least 2");
    assert!(
        tokens.len() >= window,
        "need at least one window of {window} tokens, got {}",
        tokens.len()
    );
    let mut total_nll = 0.0f64;
    let mut count = 0usize;
    let mut start = 0;
    while start + window <= tokens.len() {
        let chunk = &tokens[start..start + window];
        let mut cache = new_cache();
        let logits = model.forward(&chunk[..window - 1], cache.as_mut());
        for (r, &target) in chunk[1..].iter().enumerate() {
            total_nll += ops::cross_entropy(logits.row(r), target as usize) as f64;
            count += 1;
        }
        start += window;
    }
    (total_nll / count as f64).exp()
}

/// Length-normalized log-likelihood of `continuation` given `prompt`
/// (lm-eval's `acc_norm` scoring rule).
pub fn continuation_logprob<L: LinearLayer>(
    model: &LlamaModel<L>,
    prompt: &[u16],
    continuation: &[u16],
) -> f64 {
    let config = *model.config();
    continuation_logprob_with_cache(model, prompt, continuation, &mut || {
        Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))
    })
}

/// [`continuation_logprob`] with a caller-supplied KV-cache factory.
pub fn continuation_logprob_with_cache<L: LinearLayer>(
    model: &LlamaModel<L>,
    prompt: &[u16],
    continuation: &[u16],
    new_cache: &mut dyn FnMut() -> Box<dyn KvStore>,
) -> f64 {
    assert!(!continuation.is_empty(), "empty continuation");
    let mut ids = prompt.to_vec();
    ids.extend_from_slice(continuation);
    let mut cache = new_cache();
    // Score tokens prompt.len()..end; the logit predicting ids[i] sits at
    // row i-1, so we need rows prompt.len()-1 ..= end-2.
    let logits = model.forward(&ids[..ids.len() - 1], cache.as_mut());
    let mut lp = 0.0f64;
    #[allow(clippy::needless_range_loop)] // i indexes both ids and logits rows
    for i in prompt.len()..ids.len() {
        let row = logits.row(i - 1);
        lp += ops::log_softmax(row)[ids[i] as usize] as f64;
    }
    lp / continuation.len() as f64
}

/// Accuracy of the model on one task kind of a suite.
pub fn task_accuracy<L: LinearLayer>(
    model: &LlamaModel<L>,
    suite: &TaskSuite,
    kind: TaskKind,
    tokenizer: &Tokenizer,
) -> f64 {
    let config = *model.config();
    task_accuracy_with_cache(model, suite, kind, tokenizer, &mut || {
        Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))
    })
}

/// [`task_accuracy`] with a caller-supplied KV-cache factory.
pub fn task_accuracy_with_cache<L: LinearLayer>(
    model: &LlamaModel<L>,
    suite: &TaskSuite,
    kind: TaskKind,
    tokenizer: &Tokenizer,
    new_cache: &mut dyn FnMut() -> Box<dyn KvStore>,
) -> f64 {
    let items = suite.items(kind);
    assert!(!items.is_empty(), "no items for {kind:?}");
    let mut correct = 0usize;
    for task in &items {
        let prompt = tokenizer.encode(&task.prompt);
        let mut best = 0usize;
        let mut best_lp = f64::NEG_INFINITY;
        for (i, opt) in task.options.iter().enumerate() {
            let cont = tokenizer.encode(opt);
            let lp = continuation_logprob_with_cache(model, &prompt, &cont, new_cache);
            if lp > best_lp {
                best_lp = lp;
                best = i;
            }
        }
        if best == task.answer {
            correct += 1;
        }
    }
    correct as f64 / items.len() as f64
}

/// Accuracy on every kind, in [`TaskKind::all`] order, plus the average —
/// one row of the paper's Table 1.
pub fn zero_shot_row<L: LinearLayer>(
    model: &LlamaModel<L>,
    suite: &TaskSuite,
    tokenizer: &Tokenizer,
) -> (Vec<f64>, f64) {
    let config = *model.config();
    zero_shot_row_with_cache(model, suite, tokenizer, &mut || {
        Box::new(Fp32KvCache::new(config.layers, config.kv_dim()))
    })
}

/// [`zero_shot_row`] with a caller-supplied KV-cache factory.
pub fn zero_shot_row_with_cache<L: LinearLayer>(
    model: &LlamaModel<L>,
    suite: &TaskSuite,
    tokenizer: &Tokenizer,
    new_cache: &mut dyn FnMut() -> Box<dyn KvStore>,
) -> (Vec<f64>, f64) {
    let accs: Vec<f64> = TaskKind::all()
        .iter()
        .map(|&k| task_accuracy_with_cache(model, suite, k, tokenizer, new_cache))
        .collect();
    let avg = accs.iter().sum::<f64>() / accs.len() as f64;
    (accs, avg)
}

/// Greedy or temperature sampling from the model.
///
/// Returns the generated token ids (not including the prompt). Temperature
/// `0.0` means greedy decoding.
pub fn generate<L: LinearLayer>(
    model: &LlamaModel<L>,
    prompt: &[u16],
    max_new: usize,
    temperature: f32,
    rng: &mut SeededRng,
) -> Vec<u16> {
    assert!(!prompt.is_empty(), "empty prompt");
    let config = model.config();
    let mut cache = Fp32KvCache::new(config.layers, config.kv_dim());
    let mut logits = model.forward(prompt, &mut cache);
    let mut out = Vec::with_capacity(max_new);
    for _ in 0..max_new {
        let last = logits.row(logits.rows() - 1);
        let next = sample_token(last, temperature, rng);
        out.push(next);
        logits = model.forward(&[next], &mut cache);
    }
    out
}

fn sample_token(logits: &[f32], temperature: f32, rng: &mut SeededRng) -> u16 {
    if temperature <= 0.0 {
        return cast::usize_to_u16_saturating(ops::argmax(logits));
    }
    let mut probs: Vec<f32> = logits.iter().map(|&l| l / temperature).collect();
    ops::softmax_in_place(&mut probs);
    let weights: Vec<f64> = probs.iter().map(|&p| p as f64).collect();
    cast::usize_to_u16_saturating(rng.weighted_index(&weights))
}

/// Mean KL divergence (nats/token) between the next-token distributions of a
/// reference and a test model over a token stream. This is the most
/// sensitive "how much did quantization change the model" metric and is used
/// by the ablation analyses.
pub fn mean_kl<A: LinearLayer, B: LinearLayer>(
    reference: &LlamaModel<A>,
    test: &LlamaModel<B>,
    tokens: &[u16],
    window: usize,
) -> f64 {
    assert!(window >= 2 && tokens.len() >= window, "stream too short");
    let (ca, cb) = (reference.config(), test.config());
    let mut total = 0.0f64;
    let mut count = 0usize;
    let mut start = 0;
    while start + window <= tokens.len() {
        let chunk = &tokens[start..start + window - 1];
        let mut cache_a = Fp32KvCache::new(ca.layers, ca.kv_dim());
        let mut cache_b = Fp32KvCache::new(cb.layers, cb.kv_dim());
        let la = reference.forward(chunk, &mut cache_a);
        let lb = test.forward(chunk, &mut cache_b);
        for r in 0..la.rows() {
            total += kl_divergence(la.row(r), lb.row(r));
            count += 1;
        }
        start += window;
    }
    total / count as f64
}

fn kl_divergence(p_logits: &[f32], q_logits: &[f32]) -> f64 {
    let lp = ops::log_softmax(p_logits);
    let lq = ops::log_softmax(q_logits);
    lp.iter()
        .zip(lq.iter())
        .map(|(&lp, &lq)| (lp.exp() * (lp - lq)) as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::model::LlamaModel;

    fn tiny() -> LlamaModel<crate::linear::DenseLinear> {
        let config = ModelConfig {
            dim: 32,
            layers: 2,
            heads: 4,
            kv_heads: 4,
            ffn_dim: 64,
            ..ModelConfig::default()
        };
        LlamaModel::random_init(config, 42)
    }

    #[test]
    fn random_model_perplexity_near_vocab() {
        // An untrained model's perplexity should be within a factor of a few
        // of uniform (vocab = 96).
        let m = tiny();
        let tokens: Vec<u16> = (0..300).map(|i| (i * 37 % 96) as u16).collect();
        let ppl = perplexity(&m, &tokens, 50);
        assert!(ppl > 20.0 && ppl < 500.0, "ppl {ppl}");
    }

    #[test]
    fn perplexity_of_model_against_itself_is_consistent() {
        let m = tiny();
        let tokens: Vec<u16> = (0..200).map(|i| (i % 96) as u16).collect();
        let a = perplexity(&m, &tokens, 40);
        let b = perplexity(&m, &tokens, 40);
        assert_eq!(a, b);
    }

    #[test]
    fn continuation_logprob_is_finite_and_negative() {
        let m = tiny();
        let lp = continuation_logprob(&m, &[1, 2, 3], &[4, 5]);
        assert!(lp.is_finite());
        assert!(lp < 0.0);
    }

    #[test]
    fn zero_shot_random_model_near_chance() {
        let m = tiny();
        let suite = TaskSuite::generate(12, 1);
        let tok = Tokenizer::new();
        let (accs, avg) = zero_shot_row(&m, &suite, &tok);
        assert_eq!(accs.len(), 6);
        // A random model should be roughly at chance (max option count 4,
        // min 2) — just require the value is a valid probability.
        assert!((0.0..=1.0).contains(&avg));
    }

    #[test]
    fn generate_produces_valid_tokens() {
        let m = tiny();
        let mut rng = SeededRng::new(1);
        let greedy = generate(&m, &[5, 6], 8, 0.0, &mut rng);
        assert_eq!(greedy.len(), 8);
        assert!(greedy.iter().all(|&t| (t as usize) < 96));
        let sampled = generate(&m, &[5, 6], 8, 1.0, &mut rng);
        assert_eq!(sampled.len(), 8);
    }

    #[test]
    fn greedy_generation_deterministic() {
        let m = tiny();
        let mut r1 = SeededRng::new(1);
        let mut r2 = SeededRng::new(2);
        assert_eq!(
            generate(&m, &[7], 6, 0.0, &mut r1),
            generate(&m, &[7], 6, 0.0, &mut r2)
        );
    }

    #[test]
    fn kl_of_identical_models_is_zero() {
        let m = tiny();
        let tokens: Vec<u16> = (0..100).map(|i| (i % 90) as u16).collect();
        let kl = mean_kl(&m, &m, &tokens, 30);
        assert!(kl.abs() < 1e-9, "kl {kl}");
    }

    #[test]
    fn kl_of_different_models_is_positive() {
        let a = tiny();
        let config = *a.config();
        let b = LlamaModel::random_init(config, 43);
        let tokens: Vec<u16> = (0..100).map(|i| (i % 90) as u16).collect();
        assert!(mean_kl(&a, &b, &tokens, 30) > 0.01);
    }
}
