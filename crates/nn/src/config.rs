//! Model configuration for the Llama-family architectures used in the
//! reproduction.

use serde::{Deserialize, Serialize};

/// Architecture hyperparameters of a decoder-only Llama-style model.
///
/// The reproduction's model zoo instantiates this at four sizes standing in
/// for Llama 7B/13B/30B/65B, plus a GQA variant ("Llama-2-like") and an MoE
/// variant ("Mixtral-like") for the paper's Table 4 generality study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Vocabulary size (the tokenizer's 96 symbols).
    pub vocab: usize,
    /// Hidden dimension.
    pub dim: usize,
    /// Number of transformer blocks.
    pub layers: usize,
    /// Number of query heads; must divide `dim`.
    pub heads: usize,
    /// Number of key/value heads; equal to `heads` for MHA, smaller for GQA.
    /// Must divide `heads`.
    pub kv_heads: usize,
    /// Hidden dimension of the SwiGLU MLP.
    pub ffn_dim: usize,
    /// Number of MoE experts; `1` means a dense MLP.
    pub experts: usize,
    /// RoPE base frequency.
    pub rope_theta: f32,
    /// RMSNorm epsilon.
    pub norm_eps: f32,
    /// Maximum sequence length the model is trained/evaluated on.
    pub max_seq_len: usize,
}

impl ModelConfig {
    /// Per-head dimension (`dim / heads`).
    pub fn head_dim(&self) -> usize {
        self.dim / self.heads
    }

    /// Width of the K/V projections (`kv_heads * head_dim`).
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim()
    }

    /// Number of query heads sharing each KV head.
    pub fn group_size(&self) -> usize {
        self.heads / self.kv_heads
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        let attn = self.dim * self.dim * 2 + self.dim * self.kv_dim() * 2;
        let mlp = 3 * self.dim * self.ffn_dim * self.experts;
        let router = if self.experts > 1 { self.dim * self.experts } else { 0 };
        let norms = 2 * self.dim;
        let per_layer = attn + mlp + router + norms;
        self.vocab * self.dim * 2 + self.dim + self.layers * per_layer
    }

    /// Validates internal divisibility constraints.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 || self.layers == 0 || self.heads == 0 || self.vocab == 0 {
            return Err("all dimensions must be positive".into());
        }
        if !self.dim.is_multiple_of(self.heads) {
            return Err(format!("dim {} not divisible by heads {}", self.dim, self.heads));
        }
        if !self.head_dim().is_multiple_of(2) {
            return Err(format!("head_dim {} must be even for RoPE", self.head_dim()));
        }
        if self.kv_heads == 0 || !self.heads.is_multiple_of(self.kv_heads) {
            return Err(format!(
                "heads {} not divisible by kv_heads {}",
                self.heads, self.kv_heads
            ));
        }
        if self.experts == 0 {
            return Err("experts must be at least 1".into());
        }
        Ok(())
    }
}

impl Default for ModelConfig {
    /// The "base" size used by most unit tests: a 4-layer, 96-dim model.
    fn default() -> Self {
        ModelConfig {
            vocab: 96,
            dim: 96,
            layers: 4,
            heads: 6,
            kv_heads: 6,
            ffn_dim: 256,
            experts: 1,
            rope_theta: 10_000.0,
            norm_eps: 1e-5,
            max_seq_len: 256,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        assert!(ModelConfig::default().validate().is_ok());
    }

    #[test]
    fn head_math() {
        let c = ModelConfig {
            dim: 64,
            heads: 4,
            kv_heads: 2,
            ..ModelConfig::default()
        };
        assert_eq!(c.head_dim(), 16);
        assert_eq!(c.kv_dim(), 32);
        assert_eq!(c.group_size(), 2);
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = ModelConfig {
            heads: 5, // 96 % 5 != 0
            ..ModelConfig::default()
        };
        assert!(c.validate().is_err());
        let c2 = ModelConfig {
            kv_heads: 4, // 6 % 4 != 0
            ..ModelConfig::default()
        };
        assert!(c2.validate().is_err());
        let c3 = ModelConfig {
            experts: 0,
            ..ModelConfig::default()
        };
        assert!(c3.validate().is_err());
    }

    #[test]
    fn param_count_scales() {
        let small = ModelConfig::default();
        let big = ModelConfig {
            dim: 192,
            ffn_dim: 512,
            layers: 8,
            ..ModelConfig::default()
        };
        assert!(big.param_count() > 4 * small.param_count());
    }
}
