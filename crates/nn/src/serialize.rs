//! Compact binary serialization of trained dense models.
//!
//! The model zoo trains its models once and caches them on disk so the
//! examples, benches, and table binaries do not retrain. The format is a
//! fixed little-endian layout: a magic tag, the [`ModelConfig`] fields, then
//! every tensor's raw `f32` data in the canonical parameter-schema order
//! (shapes are fully determined by the config, so no per-tensor headers are
//! needed).

use crate::config::ModelConfig;
use crate::linear::DenseLinear;
use crate::model::{Attention, Block, FeedForward, LlamaModel, Mlp};
use atom_tensor::Matrix;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: u64 = 0x41544F4D_4D444C31; // "ATOMMDL1"

/// Saves a dense model to `path`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_model(model: &LlamaModel<DenseLinear>, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension("tmp");
    {
        let mut w = io::BufWriter::new(std::fs::File::create(&tmp)?);
        w.write_all(&MAGIC.to_le_bytes())?;
        write_config(&mut w, model.config())?;
        write_matrix(&mut w, &model.embed)?;
        for block in &model.blocks {
            write_f32s(&mut w, &block.attn_norm)?;
            for l in [&block.attn.wq, &block.attn.wk, &block.attn.wv, &block.attn.wo] {
                write_matrix(&mut w, l.weight())?;
            }
            write_f32s(&mut w, &block.ffn_norm)?;
            match &block.ffn {
                FeedForward::Dense(mlp) => {
                    write_mlp(&mut w, mlp)?;
                }
                FeedForward::Moe { router, experts } => {
                    write_matrix(&mut w, router.weight())?;
                    for mlp in experts {
                        write_mlp(&mut w, mlp)?;
                    }
                }
            }
        }
        write_f32s(&mut w, &model.final_norm)?;
        write_matrix(&mut w, &model.head)?;
        w.flush()?;
    }
    std::fs::rename(&tmp, path)
}

/// Loads a dense model from `path`.
///
/// # Errors
///
/// Returns an error on I/O failure, bad magic, or a truncated/corrupt file.
pub fn load_model(path: &Path) -> io::Result<LlamaModel<DenseLinear>> {
    let mut r = io::BufReader::new(std::fs::File::open(path)?);
    let magic = read_u64(&mut r)?;
    if magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad magic {magic:#x}"),
        ));
    }
    let config = read_config(&mut r)?;
    config
        .validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let dim = config.dim;
    let kv_dim = config.kv_dim();
    let embed = read_matrix(&mut r, config.vocab, dim)?;
    let mut blocks = Vec::with_capacity(config.layers);
    for _ in 0..config.layers {
        let attn_norm = read_f32s(&mut r, dim)?;
        let wq = DenseLinear::new(read_matrix(&mut r, dim, dim)?);
        let wk = DenseLinear::new(read_matrix(&mut r, kv_dim, dim)?);
        let wv = DenseLinear::new(read_matrix(&mut r, kv_dim, dim)?);
        let wo = DenseLinear::new(read_matrix(&mut r, dim, dim)?);
        let ffn_norm = read_f32s(&mut r, dim)?;
        let ffn = if config.experts > 1 {
            let router = DenseLinear::new(read_matrix(&mut r, config.experts, dim)?);
            let experts = (0..config.experts)
                .map(|_| read_mlp(&mut r, &config))
                .collect::<io::Result<Vec<_>>>()?;
            FeedForward::Moe { router, experts }
        } else {
            FeedForward::Dense(read_mlp(&mut r, &config)?)
        };
        blocks.push(Block {
            attn_norm,
            attn: Attention { wq, wk, wv, wo },
            ffn_norm,
            ffn,
        });
    }
    let final_norm = read_f32s(&mut r, dim)?;
    let head = read_matrix(&mut r, config.vocab, dim)?;
    // Require exact EOF so truncation/corruption is detected.
    let mut probe = [0u8; 1];
    if r.read(&mut probe)? != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trailing bytes after model",
        ));
    }
    Ok(LlamaModel::from_parts(config, embed, blocks, final_norm, head))
}

fn write_mlp<W: Write>(w: &mut W, mlp: &Mlp<DenseLinear>) -> io::Result<()> {
    write_matrix(w, mlp.gate.weight())?;
    write_matrix(w, mlp.up.weight())?;
    write_matrix(w, mlp.down.weight())
}

fn read_mlp<R: Read>(r: &mut R, config: &ModelConfig) -> io::Result<Mlp<DenseLinear>> {
    Ok(Mlp {
        gate: DenseLinear::new(read_matrix(r, config.ffn_dim, config.dim)?),
        up: DenseLinear::new(read_matrix(r, config.ffn_dim, config.dim)?),
        down: DenseLinear::new(read_matrix(r, config.dim, config.ffn_dim)?),
    })
}

fn write_config<W: Write>(w: &mut W, c: &ModelConfig) -> io::Result<()> {
    for v in [
        c.vocab, c.dim, c.layers, c.heads, c.kv_heads, c.ffn_dim, c.experts, c.max_seq_len,
    ] {
        w.write_all(&(v as u64).to_le_bytes())?;
    }
    w.write_all(&c.rope_theta.to_le_bytes())?;
    w.write_all(&c.norm_eps.to_le_bytes())
}

fn read_config<R: Read>(r: &mut R) -> io::Result<ModelConfig> {
    let mut vals = [0u64; 8];
    for v in &mut vals {
        *v = read_u64(r)?;
    }
    let mut f = [0u8; 4];
    r.read_exact(&mut f)?;
    let rope_theta = f32::from_le_bytes(f);
    r.read_exact(&mut f)?;
    let norm_eps = f32::from_le_bytes(f);
    Ok(ModelConfig {
        vocab: vals[0] as usize,
        dim: vals[1] as usize,
        layers: vals[2] as usize,
        heads: vals[3] as usize,
        kv_heads: vals[4] as usize,
        ffn_dim: vals[5] as usize,
        experts: vals[6] as usize,
        max_seq_len: vals[7] as usize,
        rope_theta,
        norm_eps,
    })
}

fn write_matrix<W: Write>(w: &mut W, m: &Matrix) -> io::Result<()> {
    write_f32s(w, m.as_slice())
}

fn write_f32s<W: Write>(w: &mut W, values: &[f32]) -> io::Result<()> {
    for v in values {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_matrix<R: Read>(r: &mut R, rows: usize, cols: usize) -> io::Result<Matrix> {
    Ok(Matrix::from_vec(rows, cols, read_f32s(r, rows * cols)?))
}

fn read_f32s<R: Read>(r: &mut R, n: usize) -> io::Result<Vec<f32>> {
    let mut bytes = vec![0u8; n * 4];
    r.read_exact(&mut bytes)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::kv::Fp32KvCache;

    fn roundtrip(config: ModelConfig) {
        let m = LlamaModel::random_init(config, 11);
        let dir = std::env::temp_dir().join(format!(
            "atom-serialize-test-{}-{}",
            std::process::id(),
            config.experts
        ));
        let path = dir.join("model.bin");
        save_model(&m, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.config(), m.config());
        let tokens = [1u16, 2, 3];
        let mut c1 = Fp32KvCache::new(config.layers, config.kv_dim());
        let mut c2 = Fp32KvCache::new(config.layers, config.kv_dim());
        assert_eq!(
            m.forward(&tokens, &mut c1).as_slice(),
            loaded.forward(&tokens, &mut c2).as_slice()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dense_roundtrip() {
        roundtrip(ModelConfig {
            dim: 32,
            layers: 2,
            heads: 4,
            kv_heads: 4,
            ffn_dim: 64,
            ..ModelConfig::default()
        });
    }

    #[test]
    fn moe_gqa_roundtrip() {
        roundtrip(ModelConfig {
            dim: 32,
            layers: 2,
            heads: 4,
            kv_heads: 2,
            ffn_dim: 48,
            experts: 3,
            ..ModelConfig::default()
        });
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = std::env::temp_dir().join(format!("atom-serialize-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk.bin");
        std::fs::write(&path, b"not a model at all").unwrap();
        assert!(load_model(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_rejected() {
        let config = ModelConfig {
            dim: 32,
            layers: 1,
            heads: 4,
            kv_heads: 4,
            ffn_dim: 64,
            ..ModelConfig::default()
        };
        let m = LlamaModel::random_init(config, 1);
        let dir = std::env::temp_dir().join(format!("atom-serialize-trunc-{}", std::process::id()));
        let path = dir.join("model.bin");
        save_model(&m, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 17]).unwrap();
        assert!(load_model(&path).is_err());
        // Trailing garbage is also rejected.
        let mut extended = bytes.clone();
        extended.extend_from_slice(&[0u8; 8]);
        std::fs::write(&path, &extended).unwrap();
        assert!(load_model(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
