//! The linear-layer abstraction that makes the model quantizable.
//!
//! [`LlamaModel`](crate::model::LlamaModel) is generic over
//! [`LinearLayer`], so the FP32 reference model and Atom's quantized model
//! share every line of attention/MLP plumbing: quantization swaps only the
//! linear operator (exactly as the paper swaps GEMM kernels, Fig. 6).

use atom_telemetry::{names, Telemetry};
use atom_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A bias-free linear operator `y = x @ W^T` (Llama layers carry no biases).
///
/// Implementations may compute the product in full precision, through a
/// fake-quantization path, or through bit-exact packed integer kernels.
///
/// `Send + Sync` are supertraits so a model built from these layers can be
/// shared by reference across the thread pool's scoped workers (batched
/// prefill/decode run one request per worker against the same model).
pub trait LinearLayer: std::fmt::Debug + Send + Sync {
    /// Applies the layer to a `tokens x in_features` activation matrix.
    fn forward(&self, x: &Matrix) -> Matrix;

    /// Number of input features.
    fn in_features(&self) -> usize;

    /// Number of output features.
    fn out_features(&self) -> usize;
}

/// Dense FP32 linear layer storing its weight `out_features x in_features`.
///
/// # Example
///
/// ```
/// use atom_nn::linear::{DenseLinear, LinearLayer};
/// use atom_tensor::Matrix;
///
/// let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
/// let layer = DenseLinear::new(w);
/// let y = layer.forward(&Matrix::from_row(&[3.0, 4.0]));
/// assert_eq!(y.as_slice(), &[3.0, 8.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLinear {
    weight: Matrix,
}

impl DenseLinear {
    /// Wraps a weight matrix stored `out_features x in_features`.
    pub fn new(weight: Matrix) -> Self {
        DenseLinear { weight }
    }

    /// The weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Mutable access to the weight matrix (used by the outlier-injection
    /// transform and by GPTQ's in-place quantization).
    pub fn weight_mut(&mut self) -> &mut Matrix {
        &mut self.weight
    }

    /// Consumes the layer, returning the weight.
    pub fn into_weight(self) -> Matrix {
        self.weight
    }
}

impl LinearLayer for DenseLinear {
    fn forward(&self, x: &Matrix) -> Matrix {
        let t = Telemetry::global();
        let _timer = t.timer(names::OP_GEMM_WALL_NS);
        // FP32 operands: 4 bytes per element of x and W.
        t.counter_add(
            names::OP_GEMM_BYTES,
            4 * (x.rows() * x.cols() + self.weight.rows() * self.weight.cols()) as u64,
        );
        t.counter_add(names::OP_GEMM_ROWS, x.rows() as u64);
        t.counter_add(names::OP_GEMM_CALLS, 1);
        x.matmul_nt(&self.weight)
    }

    fn in_features(&self) -> usize {
        self.weight.cols()
    }

    fn out_features(&self) -> usize {
        self.weight.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_matmul() {
        let w = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-1.0, 0.5, 0.0]]);
        let l = DenseLinear::new(w.clone());
        assert_eq!(l.in_features(), 3);
        assert_eq!(l.out_features(), 2);
        let x = Matrix::from_rows(&[&[1.0, 1.0, 1.0], &[2.0, 0.0, -2.0]]);
        assert_eq!(l.forward(&x), x.matmul_nt(&w));
    }
}
