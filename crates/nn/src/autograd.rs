//! Tape-based reverse-mode automatic differentiation over
//! [`atom_tensor::Matrix`].
//!
//! The engine is a classic Wengert list: every operation appends a node
//! holding its result and a pure backward function mapping the upstream
//! gradient plus the parent values to parent gradients. It implements
//! exactly the operator set a Llama-style decoder needs — embedding gather,
//! `x @ W^T` linears, attention matmuls, RMSNorm, SiLU, RoPE, causally
//! masked softmax, and mean cross-entropy — nothing more.
//!
//! The models in this reproduction are small enough (≲2M parameters) that
//! cloning parameter matrices onto a fresh tape every step is cheap relative
//! to the matmuls themselves.

use atom_tensor::cast;
use atom_tensor::{ops, Matrix};

/// Handle to a tensor on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorId(usize);

type BackwardFn = Box<dyn Fn(&Matrix, &[&Matrix]) -> Vec<Matrix>>;

struct Node {
    value: Matrix,
    parents: Vec<TensorId>,
    backward: Option<BackwardFn>,
}

/// A single-use computation tape.
///
/// Build the forward graph with the op methods, call [`Tape::backward`] on a
/// scalar loss, then read gradients with [`Tape::grad`].
///
/// # Example
///
/// ```
/// use atom_nn::autograd::Tape;
/// use atom_tensor::Matrix;
///
/// let mut tape = Tape::new();
/// let x = tape.leaf(Matrix::from_row(&[2.0, 3.0]));
/// let y = tape.mul(x, x); // y = x^2 elementwise
/// let loss = tape.sum(y);
/// tape.backward(loss);
/// let g = tape.grad(x).unwrap();
/// assert_eq!(g.as_slice(), &[4.0, 6.0]); // d(x^2)/dx = 2x
/// ```
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<Matrix>>,
}

impl std::fmt::Debug for Tape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tape({} nodes)", self.nodes.len())
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, parents: Vec<TensorId>, backward: Option<BackwardFn>) -> TensorId {
        self.nodes.push(Node {
            value,
            parents,
            backward,
        });
        TensorId(self.nodes.len() - 1)
    }

    /// Registers an input tensor (parameter or data). Gradients are
    /// accumulated for every leaf.
    pub fn leaf(&mut self, value: Matrix) -> TensorId {
        self.push(value, Vec::new(), None)
    }

    /// The forward value of a tensor.
    pub fn value(&self, id: TensorId) -> &Matrix {
        &self.nodes[id.0].value
    }

    /// The gradient of a tensor after [`Tape::backward`]; `None` if the
    /// tensor did not influence the loss or backward has not run.
    pub fn grad(&self, id: TensorId) -> Option<&Matrix> {
        self.grads.get(id.0).and_then(|g| g.as_ref())
    }

    // ------------------------------------------------------------------
    // Operator set
    // ------------------------------------------------------------------

    /// Row gather: `out[r] = weight[tokens[r]]` (embedding lookup).
    pub fn embedding(&mut self, weight: TensorId, tokens: &[u16]) -> TensorId {
        let w = self.value(weight);
        let dim = w.cols();
        let vocab = w.rows();
        let mut out = Matrix::zeros(tokens.len(), dim);
        for (r, &t) in tokens.iter().enumerate() {
            assert!((t as usize) < vocab, "token {t} out of vocabulary {vocab}");
            out.row_mut(r).copy_from_slice(w.row(t as usize));
        }
        let toks: Vec<u16> = tokens.to_vec();
        self.push(
            out,
            vec![weight],
            Some(Box::new(move |g, parents| {
                let w = parents[0];
                let mut dw = Matrix::zeros(w.rows(), w.cols());
                for (r, &t) in toks.iter().enumerate() {
                    let dst = dw.row_mut(t as usize);
                    for (d, s) in dst.iter_mut().zip(g.row(r)) {
                        *d += s;
                    }
                }
                vec![dw]
            })),
        )
    }

    /// Linear layer `a @ w^T` with `w` stored `out_features x in_features`.
    pub fn matmul_nt(&mut self, a: TensorId, w: TensorId) -> TensorId {
        let out = self.value(a).matmul_nt(self.value(w));
        self.push(
            out,
            vec![a, w],
            Some(Box::new(|g, parents| {
                let (a, w) = (parents[0], parents[1]);
                let da = g.matmul(w); // (m x out) @ (out x in)
                let dw = g.transpose().matmul(a); // (out x m) @ (m x in)
                vec![da, dw]
            })),
        )
    }

    /// Plain matrix product `a @ b`.
    pub fn matmul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let out = self.value(a).matmul(self.value(b));
        self.push(
            out,
            vec![a, b],
            Some(Box::new(|g, parents| {
                let (a, b) = (parents[0], parents[1]);
                let da = g.matmul_nt(b); // g @ b^T
                let db = a.transpose().matmul(g);
                vec![da, db]
            })),
        )
    }

    /// Element-wise sum of two same-shape tensors.
    pub fn add(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let out = self.value(a).add(self.value(b));
        self.push(
            out,
            vec![a, b],
            Some(Box::new(|g, _| vec![g.clone(), g.clone()])),
        )
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let out = self.value(a).hadamard(self.value(b));
        self.push(
            out,
            vec![a, b],
            Some(Box::new(|g, parents| {
                vec![g.hadamard(parents[1]), g.hadamard(parents[0])]
            })),
        )
    }

    /// Multiplication by a compile-time constant.
    pub fn scale(&mut self, a: TensorId, s: f32) -> TensorId {
        let out = self.value(a).scaled(s);
        self.push(
            out,
            vec![a],
            Some(Box::new(move |g, _| vec![g.scaled(s)])),
        )
    }

    /// Broadcast product of a `T x d` tensor with a `T x 1` column (used to
    /// weight MoE expert outputs by their router gate).
    ///
    /// # Panics
    ///
    /// Panics if `col` is not `T x 1`.
    pub fn mul_broadcast_col(&mut self, a: TensorId, col: TensorId) -> TensorId {
        let av = self.value(a);
        let cv = self.value(col);
        assert_eq!(cv.cols(), 1, "broadcast operand must have one column");
        assert_eq!(cv.rows(), av.rows(), "broadcast height mismatch");
        let mut out = av.clone();
        for r in 0..out.rows() {
            let s = cv[(r, 0)];
            for v in out.row_mut(r) {
                *v *= s;
            }
        }
        self.push(
            out,
            vec![a, col],
            Some(Box::new(|g, parents| {
                let (a, c) = (parents[0], parents[1]);
                let mut da = g.clone();
                for r in 0..da.rows() {
                    let s = c[(r, 0)];
                    for v in da.row_mut(r) {
                        *v *= s;
                    }
                }
                let mut dc = Matrix::zeros(c.rows(), 1);
                for r in 0..a.rows() {
                    let dot: f32 = g.row(r).iter().zip(a.row(r)).map(|(g, a)| g * a).sum();
                    dc[(r, 0)] = dot;
                }
                vec![da, dc]
            })),
        )
    }

    /// Sum of all elements, producing a `1 x 1` tensor.
    pub fn sum(&mut self, a: TensorId) -> TensorId {
        let total: f32 = self.value(a).as_slice().iter().sum();
        self.push(
            Matrix::from_row(&[total]),
            vec![a],
            Some(Box::new(|g, parents| {
                let s = g[(0, 0)];
                vec![Matrix::full(parents[0].rows(), parents[0].cols(), s)]
            })),
        )
    }

    /// RMSNorm over rows with a learned `1 x d` gain vector.
    pub fn rmsnorm(&mut self, x: TensorId, gain: TensorId, eps: f32) -> TensorId {
        let xv = self.value(x);
        let gv = self.value(gain);
        assert_eq!(gv.rows(), 1, "gain must be a row vector");
        assert_eq!(gv.cols(), xv.cols(), "gain width mismatch");
        let out = ops::rmsnorm_rows(xv, gv.row(0), eps);
        self.push(
            out,
            vec![x, gain],
            Some(Box::new(move |g, parents| {
                let (x, gain) = (parents[0], parents[1]);
                let n = cast::usize_to_f32(x.cols());
                let gr = gain.row(0);
                let mut dx = Matrix::zeros(x.rows(), x.cols());
                let mut dgain = Matrix::zeros(1, x.cols());
                for r in 0..x.rows() {
                    let xr = x.row(r);
                    let gy = g.row(r);
                    let ms: f32 = xr.iter().map(|v| v * v).sum::<f32>() / n;
                    let inv = 1.0 / (ms + eps).sqrt();
                    // s = sum_j gy_j * gain_j * x_j
                    let s: f32 = gy
                        .iter()
                        .zip(gr.iter())
                        .zip(xr.iter())
                        .map(|((gy, g), x)| gy * g * x)
                        .sum();
                    let dxr = dx.row_mut(r);
                    for i in 0..xr.len() {
                        dxr[i] = inv * gr[i] * gy[i] - xr[i] * s * inv * inv * inv / n;
                    }
                    let dg = dgain.row_mut(0);
                    for i in 0..xr.len() {
                        dg[i] += gy[i] * xr[i] * inv;
                    }
                }
                vec![dx, dgain]
            })),
        )
    }

    /// SiLU activation.
    pub fn silu(&mut self, x: TensorId) -> TensorId {
        let out = self.value(x).map(ops::silu);
        self.push(
            out,
            vec![x],
            Some(Box::new(|g, parents| {
                let x = parents[0];
                let mut dx = g.clone();
                for (d, &v) in dx.as_mut_slice().iter_mut().zip(x.as_slice()) {
                    let sig = 1.0 / (1.0 + (-v).exp());
                    *d *= sig * (1.0 + v * (1.0 - sig));
                }
                vec![dx]
            })),
        )
    }

    /// Rotary position embedding with fixed positions (not differentiated
    /// with respect to positions; the rotation is orthogonal so the backward
    /// pass is the inverse rotation).
    pub fn rope(&mut self, x: TensorId, positions: &[usize], head_dim: usize, theta: f32) -> TensorId {
        let mut out = self.value(x).clone();
        ops::rope_in_place(&mut out, positions, head_dim, theta);
        let pos: Vec<usize> = positions.to_vec();
        self.push(
            out,
            vec![x],
            Some(Box::new(move |g, _| {
                let mut dx = g.clone();
                ops::rope_inverse_in_place(&mut dx, &pos, head_dim, theta);
                vec![dx]
            })),
        )
    }

    /// Causally masked row softmax: entry `(q, k)` is masked out when
    /// `k > q + offset` (see [`atom_tensor::ops::causal_mask_in_place`]).
    pub fn masked_softmax(&mut self, scores: TensorId, offset: usize) -> TensorId {
        let mut masked = self.value(scores).clone();
        ops::causal_mask_in_place(&mut masked, offset);
        let probs = ops::softmax_rows(&masked);
        let probs_for_backward = probs.clone();
        self.push(
            probs,
            vec![scores],
            Some(Box::new(move |g, _| {
                let p = &probs_for_backward;
                let mut dx = Matrix::zeros(p.rows(), p.cols());
                for r in 0..p.rows() {
                    let pr = p.row(r);
                    let gr = g.row(r);
                    let dot: f32 = pr.iter().zip(gr.iter()).map(|(p, g)| p * g).sum();
                    let dr = dx.row_mut(r);
                    for i in 0..pr.len() {
                        dr[i] = pr[i] * (gr[i] - dot);
                    }
                }
                vec![dx]
            })),
        )
    }

    /// Extracts columns `[start, end)` (e.g. one attention head).
    pub fn slice_cols(&mut self, x: TensorId, start: usize, end: usize) -> TensorId {
        let out = self.value(x).slice_cols(start, end);
        self.push(
            out,
            vec![x],
            Some(Box::new(move |g, parents| {
                let x = parents[0];
                let mut dx = Matrix::zeros(x.rows(), x.cols());
                for r in 0..x.rows() {
                    dx.row_mut(r)[start..end].copy_from_slice(g.row(r));
                }
                vec![dx]
            })),
        )
    }

    /// Horizontally concatenates several same-height tensors (reassembling
    /// attention heads).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or heights differ.
    pub fn hstack(&mut self, parts: &[TensorId]) -> TensorId {
        assert!(!parts.is_empty(), "hstack of zero tensors");
        let mut out = self.value(parts[0]).clone();
        for &p in &parts[1..] {
            out = out.hstack(self.value(p));
        }
        let widths: Vec<usize> = parts.iter().map(|&p| self.value(p).cols()).collect();
        self.push(
            out,
            parts.to_vec(),
            Some(Box::new(move |g, _| {
                let mut grads = Vec::with_capacity(widths.len());
                let mut start = 0;
                for &w in &widths {
                    grads.push(g.slice_cols(start, start + w));
                    start += w;
                }
                grads
            })),
        )
    }

    /// Mean token cross-entropy between `logits` (`T x vocab`) and target
    /// ids, producing a `1 x 1` loss tensor.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != logits.rows()` or a target is out of
    /// vocabulary.
    pub fn cross_entropy_mean(&mut self, logits: TensorId, targets: &[u16]) -> TensorId {
        let lv = self.value(logits);
        assert_eq!(targets.len(), lv.rows(), "targets length mismatch");
        let t = cast::usize_to_f32(lv.rows());
        let mut total = 0.0f32;
        let mut probs = Matrix::zeros(lv.rows(), lv.cols());
        for (r, &t_id) in targets.iter().enumerate() {
            let ls = ops::log_softmax(lv.row(r));
            let target = t_id as usize;
            assert!(target < lv.cols(), "target {target} out of vocabulary");
            total -= ls[target];
            let pr = probs.row_mut(r);
            for (p, &l) in pr.iter_mut().zip(ls.iter()) {
                *p = l.exp();
            }
        }
        let targets: Vec<u16> = targets.to_vec();
        self.push(
            Matrix::from_row(&[total / t]),
            vec![logits],
            Some(Box::new(move |g, _| {
                let s = g[(0, 0)] / t;
                let mut dl = probs.clone();
                for (r, &target) in targets.iter().enumerate() {
                    dl.row_mut(r)[target as usize] -= 1.0;
                }
                dl.scale_in_place(s);
                vec![dl]
            })),
        )
    }

    /// Runs the backward pass from a scalar loss tensor, accumulating
    /// gradients for every contributing node (including leaves).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a `1 x 1` tensor.
    pub fn backward(&mut self, loss: TensorId) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "loss must be scalar"
        );
        self.grads = (0..self.nodes.len()).map(|_| None).collect();
        self.grads[loss.0] = Some(Matrix::from_row(&[1.0]));
        for i in (0..=loss.0).rev() {
            let Some(g) = self.grads[i].clone() else {
                continue;
            };
            let node = &self.nodes[i];
            let Some(backward) = &node.backward else {
                continue;
            };
            let parent_values: Vec<&Matrix> =
                node.parents.iter().map(|p| &self.nodes[p.0].value).collect();
            let parent_grads = backward(&g, &parent_values);
            assert_eq!(
                parent_grads.len(),
                node.parents.len(),
                "backward returned wrong arity"
            );
            let parents = node.parents.clone();
            for (p, pg) in parents.into_iter().zip(parent_grads) {
                match &mut self.grads[p.0] {
                    Some(existing) => existing.add_scaled_in_place(&pg, 1.0),
                    slot @ None => *slot = Some(pg),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atom_tensor::SeededRng;

    /// Central-difference gradient check for a scalar function of one leaf.
    fn grad_check(
        build: impl Fn(&mut Tape, TensorId) -> TensorId,
        input: Matrix,
        tol: f32,
    ) {
        // Analytic gradient.
        let mut tape = Tape::new();
        let x = tape.leaf(input.clone());
        let loss = build(&mut tape, x);
        tape.backward(loss);
        let analytic = tape.grad(x).expect("input must receive gradient").clone();

        // Numeric gradient.
        let eps = 1e-3f32;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[i] -= eps;
            let f = |m: Matrix| {
                let mut t = Tape::new();
                let x = t.leaf(m);
                let l = build(&mut t, x);
                t.value(l)[(0, 0)]
            };
            let numeric = (f(plus) - f(minus)) / (2.0 * eps);
            let got = analytic.as_slice()[i];
            assert!(
                (numeric - got).abs() < tol + 0.02 * numeric.abs(),
                "grad mismatch at {i}: numeric {numeric} vs analytic {got}"
            );
        }
    }

    #[test]
    fn square_gradient() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_row(&[2.0, -3.0]));
        let y = tape.mul(x, x);
        let loss = tape.sum(y);
        tape.backward(loss);
        assert_eq!(tape.grad(x).unwrap().as_slice(), &[4.0, -6.0]);
    }

    #[test]
    fn matmul_nt_grad_check() {
        let mut rng = SeededRng::new(1);
        let w = rng.normal_matrix(3, 4, 0.0, 1.0);
        let input = rng.normal_matrix(2, 4, 0.0, 1.0);
        grad_check(
            move |t, x| {
                let w = t.leaf(w.clone());
                let y = t.matmul_nt(x, w);
                let y2 = t.mul(y, y);
                t.sum(y2)
            },
            input,
            1e-2,
        );
    }

    #[test]
    fn matmul_weight_grad_check() {
        let mut rng = SeededRng::new(2);
        let a = rng.normal_matrix(2, 3, 0.0, 1.0);
        let w_init = rng.normal_matrix(4, 3, 0.0, 1.0);
        grad_check(
            move |t, w| {
                let a = t.leaf(a.clone());
                let y = t.matmul_nt(a, w);
                let y2 = t.mul(y, y);
                t.sum(y2)
            },
            w_init,
            1e-2,
        );
    }

    #[test]
    fn plain_matmul_grad_check() {
        let mut rng = SeededRng::new(3);
        let b = rng.normal_matrix(3, 2, 0.0, 1.0);
        let input = rng.normal_matrix(2, 3, 0.0, 1.0);
        grad_check(
            move |t, a| {
                let b = t.leaf(b.clone());
                let y = t.matmul(a, b);
                let y2 = t.mul(y, y);
                t.sum(y2)
            },
            input,
            1e-2,
        );
    }

    #[test]
    fn rmsnorm_grad_check() {
        let mut rng = SeededRng::new(4);
        let gain = rng.normal_matrix(1, 5, 1.0, 0.1);
        let input = rng.normal_matrix(3, 5, 0.0, 2.0);
        grad_check(
            move |t, x| {
                let g = t.leaf(gain.clone());
                let y = t.rmsnorm(x, g, 1e-5);
                let y2 = t.mul(y, y);
                t.sum(y2)
            },
            input,
            2e-2,
        );
    }

    #[test]
    fn rmsnorm_gain_grad_check() {
        let mut rng = SeededRng::new(5);
        let x = rng.normal_matrix(3, 5, 0.0, 1.5);
        let gain_init = rng.normal_matrix(1, 5, 1.0, 0.1);
        grad_check(
            move |t, gain| {
                let x = t.leaf(x.clone());
                let y = t.rmsnorm(x, gain, 1e-5);
                let y2 = t.mul(y, y);
                t.sum(y2)
            },
            gain_init,
            2e-2,
        );
    }

    #[test]
    fn silu_grad_check() {
        let mut rng = SeededRng::new(6);
        let input = rng.normal_matrix(2, 6, 0.0, 2.0);
        grad_check(
            |t, x| {
                let y = t.silu(x);
                let y2 = t.mul(y, y);
                t.sum(y2)
            },
            input,
            1e-2,
        );
    }

    #[test]
    fn rope_grad_check() {
        let mut rng = SeededRng::new(7);
        let input = rng.normal_matrix(3, 8, 0.0, 1.0);
        grad_check(
            |t, x| {
                let y = t.rope(x, &[0, 3, 7], 4, 100.0);
                let y2 = t.mul(y, y);
                t.sum(y2)
            },
            input,
            1e-2,
        );
    }

    #[test]
    fn masked_softmax_grad_check() {
        let mut rng = SeededRng::new(8);
        let input = rng.normal_matrix(3, 3, 0.0, 1.0);
        grad_check(
            |t, x| {
                let p = t.masked_softmax(x, 0);
                let p2 = t.mul(p, p);
                t.sum(p2)
            },
            input,
            1e-2,
        );
    }

    #[test]
    fn cross_entropy_grad_check() {
        let mut rng = SeededRng::new(9);
        let input = rng.normal_matrix(3, 5, 0.0, 1.0);
        grad_check(
            |t, x| t.cross_entropy_mean(x, &[1, 4, 0]),
            input,
            1e-2,
        );
    }

    #[test]
    fn embedding_scatters_gradient() {
        let mut tape = Tape::new();
        let w = tape.leaf(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 2.0]]));
        let e = tape.embedding(w, &[2, 0, 2]);
        let loss = tape.sum(e);
        tape.backward(loss);
        let g = tape.grad(w).unwrap();
        // Row 2 was gathered twice, row 0 once, row 1 never.
        assert_eq!(g.row(0), &[1.0, 1.0]);
        assert_eq!(g.row(1), &[0.0, 0.0]);
        assert_eq!(g.row(2), &[2.0, 2.0]);
    }

    #[test]
    fn slice_hstack_roundtrip_gradient() {
        let mut rng = SeededRng::new(10);
        let input = rng.normal_matrix(2, 6, 0.0, 1.0);
        grad_check(
            |t, x| {
                let a = t.slice_cols(x, 0, 3);
                let b = t.slice_cols(x, 3, 6);
                let y = t.hstack(&[b, a]);
                let y2 = t.mul(y, y);
                t.sum(y2)
            },
            input,
            1e-2,
        );
    }

    #[test]
    fn reused_node_accumulates_gradient() {
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::from_row(&[3.0]));
        let y = tape.add(x, x); // y = 2x
        let loss = tape.sum(y);
        tape.backward(loss);
        assert_eq!(tape.grad(x).unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn attention_shaped_graph_grad_check() {
        // A miniature single-head attention: checks the composition of
        // matmul, scale, masked softmax, and matmul.
        let mut rng = SeededRng::new(11);
        let k = rng.normal_matrix(4, 3, 0.0, 1.0);
        let v = rng.normal_matrix(4, 3, 0.0, 1.0);
        let input = rng.normal_matrix(4, 3, 0.0, 1.0); // queries
        grad_check(
            move |t, q| {
                let k = t.leaf(k.clone());
                let v = t.leaf(v.clone());
                let scores = t.matmul_nt(q, k);
                let scaled = t.scale(scores, 1.0 / 3.0f32.sqrt());
                let probs = t.masked_softmax(scaled, 0);
                let out = t.matmul(probs, v);
                let o2 = t.mul(out, out);
                t.sum(o2)
            },
            input,
            2e-2,
        );
    }
}
