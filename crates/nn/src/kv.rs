//! KV-cache abstraction.
//!
//! The model writes each layer's keys and values through the [`KvStore`]
//! trait, so cache precision is swappable exactly like linear-layer
//! precision: the FP32 store here is the baseline, and the `atom` crate
//! provides the paper's asymmetric low-bit quantized store (§4.4), which
//! dequantizes on load.

use atom_tensor::Matrix;

/// Per-layer append-only key/value storage used during autoregressive
/// decoding.
///
/// Keys are stored *after* RoPE is applied, matching serving systems where
/// the cache holds position-encoded keys.
///
/// `Send` is a supertrait so boxed caches can move across the serving
/// engine's scoped worker threads during batched prefill/decode.
pub trait KvStore: std::fmt::Debug + Send {
    /// Appends `k` and `v` rows (one per new token) to layer `layer`.
    ///
    /// Both matrices are `new_tokens x kv_dim`.
    fn append(&mut self, layer: usize, k: &Matrix, v: &Matrix);

    /// Materializes the full key cache of a layer (`seq_len x kv_dim`).
    fn keys(&self, layer: usize) -> Matrix;

    /// Materializes the full value cache of a layer (`seq_len x kv_dim`).
    fn values(&self, layer: usize) -> Matrix;

    /// Number of cached positions in a layer.
    fn len(&self, layer: usize) -> usize;

    /// Whether the layer cache is empty.
    fn is_empty(&self, layer: usize) -> bool {
        self.len(layer) == 0
    }

    /// Clears all layers.
    fn clear(&mut self);
}

/// Full-precision KV cache (the FP16-serving baseline; values are kept in
/// f32 here since f32→f16 rounding of the *cache* is exercised separately by
/// the quantized store).
#[derive(Debug, Clone)]
pub struct Fp32KvCache {
    layers: Vec<(Matrix, Matrix)>,
    kv_dim: usize,
}

impl Fp32KvCache {
    /// Creates an empty cache for `layers` layers of width `kv_dim`.
    pub fn new(layers: usize, kv_dim: usize) -> Self {
        Fp32KvCache {
            layers: (0..layers)
                .map(|_| (Matrix::zeros(0, kv_dim), Matrix::zeros(0, kv_dim)))
                .collect(),
            kv_dim,
        }
    }

    /// KV width the cache was created with.
    pub fn kv_dim(&self) -> usize {
        self.kv_dim
    }
}

impl KvStore for Fp32KvCache {
    fn append(&mut self, layer: usize, k: &Matrix, v: &Matrix) {
        assert_eq!(k.cols(), self.kv_dim, "k width mismatch");
        assert_eq!(v.cols(), self.kv_dim, "v width mismatch");
        assert_eq!(k.rows(), v.rows(), "k/v row mismatch");
        let (ks, vs) = &mut self.layers[layer];
        *ks = ks.vstack(k);
        *vs = vs.vstack(v);
    }

    fn keys(&self, layer: usize) -> Matrix {
        self.layers[layer].0.clone()
    }

    fn values(&self, layer: usize) -> Matrix {
        self.layers[layer].1.clone()
    }

    fn len(&self, layer: usize) -> usize {
        self.layers[layer].0.rows()
    }

    fn clear(&mut self) {
        for (k, v) in &mut self.layers {
            *k = Matrix::zeros(0, self.kv_dim);
            *v = Matrix::zeros(0, self.kv_dim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read() {
        let mut c = Fp32KvCache::new(2, 4);
        assert!(c.is_empty(0));
        let k = Matrix::full(3, 4, 1.0);
        let v = Matrix::full(3, 4, 2.0);
        c.append(0, &k, &v);
        c.append(0, &k, &v);
        assert_eq!(c.len(0), 6);
        assert_eq!(c.len(1), 0);
        assert_eq!(c.keys(0).rows(), 6);
        assert_eq!(c.values(0)[(5, 3)], 2.0);
    }

    #[test]
    fn clear_resets() {
        let mut c = Fp32KvCache::new(1, 2);
        c.append(0, &Matrix::full(1, 2, 1.0), &Matrix::full(1, 2, 1.0));
        c.clear();
        assert!(c.is_empty(0));
    }

    #[test]
    #[should_panic(expected = "k width mismatch")]
    fn wrong_width_panics() {
        let mut c = Fp32KvCache::new(1, 4);
        c.append(0, &Matrix::full(1, 3, 0.0), &Matrix::full(1, 3, 0.0));
    }
}
