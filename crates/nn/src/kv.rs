//! KV-cache abstraction.
//!
//! The model writes each layer's keys and values through the [`KvStore`]
//! trait, so cache precision is swappable exactly like linear-layer
//! precision: the FP32 store here is the baseline, and the `atom` crate
//! provides the paper's asymmetric low-bit quantized store (§4.4), which
//! dequantizes on load.

use atom_tensor::Matrix;

/// Per-layer append-only key/value storage used during autoregressive
/// decoding.
///
/// Keys are stored *after* RoPE is applied, matching serving systems where
/// the cache holds position-encoded keys.
///
/// `Send` is a supertrait so boxed caches can move across the serving
/// engine's scoped worker threads during batched prefill/decode; `Sync`
/// so frozen prefix-cache snapshots (`Arc<Snapshot>` in `atom-prefix`)
/// can be shared immutably between those workers.
pub trait KvStore: std::fmt::Debug + Send + Sync {
    /// Appends `k` and `v` rows (one per new token) to layer `layer`.
    ///
    /// Both matrices are `new_tokens x kv_dim`.
    fn append(&mut self, layer: usize, k: &Matrix, v: &Matrix);

    /// Materializes the full key cache of a layer (`seq_len x kv_dim`).
    fn keys(&self, layer: usize) -> Matrix;

    /// Materializes the full value cache of a layer (`seq_len x kv_dim`).
    fn values(&self, layer: usize) -> Matrix;

    /// Number of cached positions in a layer.
    fn len(&self, layer: usize) -> usize;

    /// Whether the layer cache is empty.
    fn is_empty(&self, layer: usize) -> bool {
        self.len(layer) == 0
    }

    /// Clears all layers.
    fn clear(&mut self);

    /// Deep-copies the cache behind a fresh box.
    ///
    /// The prefix cache snapshots per-request KV state through this hook:
    /// a snapshot must be bit-identical to the original (same codes, same
    /// scales for quantized stores), so later replays decode the exact
    /// rows the donor request produced.
    fn clone_box(&self) -> Box<dyn KvStore>;

    /// Drops every cached position beyond the first `tokens` in *all*
    /// layers. A no-op when the cache already holds `tokens` or fewer.
    ///
    /// Because both stores in this workspace quantize/record per token row,
    /// truncating to `n` rows is bit-identical to having only ever appended
    /// those first `n` rows — the property the radix prefix cache relies on
    /// when it replays a snapshot cut at a block boundary.
    fn truncate(&mut self, tokens: usize);
}

/// Full-precision KV cache (the FP16-serving baseline; values are kept in
/// f32 here since f32→f16 rounding of the *cache* is exercised separately by
/// the quantized store).
#[derive(Debug, Clone)]
pub struct Fp32KvCache {
    layers: Vec<(Matrix, Matrix)>,
    kv_dim: usize,
}

impl Fp32KvCache {
    /// Creates an empty cache for `layers` layers of width `kv_dim`.
    pub fn new(layers: usize, kv_dim: usize) -> Self {
        Fp32KvCache {
            layers: (0..layers)
                .map(|_| (Matrix::zeros(0, kv_dim), Matrix::zeros(0, kv_dim)))
                .collect(),
            kv_dim,
        }
    }

    /// KV width the cache was created with.
    pub fn kv_dim(&self) -> usize {
        self.kv_dim
    }
}

impl KvStore for Fp32KvCache {
    fn append(&mut self, layer: usize, k: &Matrix, v: &Matrix) {
        assert_eq!(k.cols(), self.kv_dim, "k width mismatch");
        assert_eq!(v.cols(), self.kv_dim, "v width mismatch");
        assert_eq!(k.rows(), v.rows(), "k/v row mismatch");
        let (ks, vs) = &mut self.layers[layer];
        *ks = ks.vstack(k);
        *vs = vs.vstack(v);
    }

    fn keys(&self, layer: usize) -> Matrix {
        self.layers[layer].0.clone()
    }

    fn values(&self, layer: usize) -> Matrix {
        self.layers[layer].1.clone()
    }

    fn len(&self, layer: usize) -> usize {
        self.layers[layer].0.rows()
    }

    fn clear(&mut self) {
        for (k, v) in &mut self.layers {
            *k = Matrix::zeros(0, self.kv_dim);
            *v = Matrix::zeros(0, self.kv_dim);
        }
    }

    fn clone_box(&self) -> Box<dyn KvStore> {
        Box::new(self.clone())
    }

    fn truncate(&mut self, tokens: usize) {
        let top_rows = |m: &Matrix, n: usize| {
            let mut out = Matrix::zeros(n, m.cols());
            for r in 0..n {
                out.row_mut(r).copy_from_slice(m.row(r));
            }
            out
        };
        for (k, v) in &mut self.layers {
            if k.rows() > tokens {
                *k = top_rows(k, tokens);
                *v = top_rows(v, tokens);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read() {
        let mut c = Fp32KvCache::new(2, 4);
        assert!(c.is_empty(0));
        let k = Matrix::full(3, 4, 1.0);
        let v = Matrix::full(3, 4, 2.0);
        c.append(0, &k, &v);
        c.append(0, &k, &v);
        assert_eq!(c.len(0), 6);
        assert_eq!(c.len(1), 0);
        assert_eq!(c.keys(0).rows(), 6);
        assert_eq!(c.values(0)[(5, 3)], 2.0);
    }

    #[test]
    fn clear_resets() {
        let mut c = Fp32KvCache::new(1, 2);
        c.append(0, &Matrix::full(1, 2, 1.0), &Matrix::full(1, 2, 1.0));
        c.clear();
        assert!(c.is_empty(0));
    }

    #[test]
    #[should_panic(expected = "k width mismatch")]
    fn wrong_width_panics() {
        let mut c = Fp32KvCache::new(1, 4);
        c.append(0, &Matrix::full(1, 3, 0.0), &Matrix::full(1, 3, 0.0));
    }

    #[test]
    fn clone_box_then_truncate_matches_short_append() {
        let mut long = Fp32KvCache::new(2, 4);
        let mut short = Fp32KvCache::new(2, 4);
        for t in 0..5u32 {
            let k = Matrix::full(1, 4, t as f32);
            let v = Matrix::full(1, 4, -(t as f32));
            long.append(0, &k, &v);
            long.append(1, &k, &v);
            if t < 3 {
                short.append(0, &k, &v);
                short.append(1, &k, &v);
            }
        }
        let mut cut = long.clone_box();
        cut.truncate(3);
        for layer in 0..2 {
            assert_eq!(cut.len(layer), 3);
            assert_eq!(cut.keys(layer).as_slice(), short.keys(layer).as_slice());
            assert_eq!(cut.values(layer).as_slice(), short.values(layer).as_slice());
        }
        // The original is untouched by truncating the clone.
        assert_eq!(long.len(0), 5);
        // Truncating past the end is a no-op.
        cut.truncate(10);
        assert_eq!(cut.len(0), 3);
    }
}
